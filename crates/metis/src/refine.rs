//! Greedy k-way refinement (Fiduccia–Mattheyses style) and rebalancing.
//!
//! Part weights travel as flat `nparts * ncon` buffers and the per-part
//! connectivity scratch is reused across vertex evaluations — the inner
//! loops allocate nothing.

use crate::balance::BalanceModel;
use crate::error::Fuel;
use crate::graph::Graph;
use mcpart_rng::seq::SliceRandom;
use mcpart_rng::Rng;

/// Connectivity of a vertex to each part, written into the caller's
/// reusable scratch buffer.
fn external_degrees_into(graph: &Graph, assignment: &[u32], v: u32, ed: &mut [i64]) {
    ed.fill(0);
    for (u, w) in graph.neighbors(v) {
        ed[assignment[u as usize] as usize] += w as i64;
    }
}

fn apply_move(graph: &Graph, assignment: &mut [u32], pw: &mut [u64], v: u32, to: usize) {
    let ncon = graph.num_constraints();
    let from = assignment[v as usize] as usize;
    let vw = graph.vertex_weight(v);
    for (c, &w) in vw.iter().enumerate() {
        pw[from * ncon + c] -= w;
        pw[to * ncon + c] += w;
    }
    assignment[v as usize] = to as u32;
}

/// Runs up to `passes` greedy refinement passes over boundary vertices.
///
/// A vertex moves to the part maximizing cut gain when the move keeps
/// the destination within its balance limits; zero-gain moves are taken
/// when they strictly reduce the maximum relative overweight. Returns
/// the total number of moves performed.
///
/// Every boundary-vertex evaluation spends one unit of `fuel`; when the
/// meter runs dry the pass stops immediately (the driver reports the
/// exhaustion as a typed error).
pub fn refine<R: Rng>(
    graph: &Graph,
    assignment: &mut [u32],
    balance: &BalanceModel,
    pw: &mut [u64],
    passes: usize,
    fuel: &mut Fuel,
    rng: &mut R,
) -> usize {
    let nparts = balance.nparts();
    let ncon = graph.num_constraints();
    let n = graph.num_vertices();
    let mut total_moves = 0;
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut ed = vec![0i64; nparts];
    for _ in 0..passes {
        order.shuffle(rng);
        let mut moved = 0;
        for &v in &order {
            if !fuel.spend() {
                return total_moves + moved;
            }
            let from = assignment[v as usize] as usize;
            external_degrees_into(graph, assignment, v, &mut ed);
            let internal = ed[from];
            // Pick the best feasible destination.
            let mut best: Option<(usize, i64)> = None;
            let vw = graph.vertex_weight(v);
            let current_over = balance.max_overweight(pw);
            for to in 0..nparts {
                if to == from {
                    continue;
                }
                let gain = ed[to] - internal;
                if gain < 0 {
                    continue;
                }
                if !balance.fits(to, &pw[to * ncon..(to + 1) * ncon], vw) {
                    // Soft balance: when the partition is already
                    // overweight (e.g. indivisible objects make exact
                    // balance impossible), still chase cut gains as
                    // long as the worst overweight does not grow.
                    apply_move(graph, assignment, pw, v, to);
                    let after = balance.max_overweight(pw);
                    apply_move(graph, assignment, pw, v, from);
                    if after > current_over + 1e-9 {
                        continue;
                    }
                }
                if best.map(|(_, bg)| gain > bg).unwrap_or(true) {
                    best = Some((to, gain));
                }
            }
            if let Some((to, gain)) = best {
                if gain > 0 {
                    apply_move(graph, assignment, pw, v, to);
                    moved += 1;
                } else {
                    // Zero-gain: accept only if it improves balance.
                    let before = balance.max_overweight(pw);
                    apply_move(graph, assignment, pw, v, to);
                    let after = balance.max_overweight(pw);
                    if after + 1e-12 < before {
                        moved += 1;
                    } else {
                        apply_move(graph, assignment, pw, v, from);
                    }
                }
            }
        }
        total_moves += moved;
        if moved == 0 {
            break;
        }
    }
    total_moves
}

/// Restores balance by evicting vertices from overweight parts,
/// preferring evictions that lose the least cut gain.
///
/// Used after projecting a partition to a finer level (projection cannot
/// break balance, but initial partitions of odd coarse graphs can be
/// overweight) and after greedy initial assignment.
pub fn rebalance<R: Rng>(
    graph: &Graph,
    assignment: &mut [u32],
    balance: &BalanceModel,
    pw: &mut [u64],
    fuel: &mut Fuel,
    rng: &mut R,
) {
    let nparts = balance.nparts();
    let ncon = graph.num_constraints();
    let n = graph.num_vertices();
    let mut ed = vec![0i64; nparts];
    // Bounded number of eviction rounds to guarantee termination.
    for _ in 0..n.max(8) {
        if !fuel.spend() {
            return;
        }
        // Find the most overweight (part, constraint).
        let mut worst: Option<(usize, f64)> = None;
        for p in 0..nparts {
            for c in 0..ncon {
                if balance.totals[c] == 0 {
                    continue;
                }
                if pw[p * ncon + c] > balance.limit(p, c) {
                    let over = pw[p * ncon + c] as f64 / balance.limit(p, c) as f64;
                    if worst.map(|(_, w)| over > w).unwrap_or(true) {
                        worst = Some((p, over));
                    }
                }
            }
        }
        let Some((from, _)) = worst else { return };
        // Choose the vertex in `from` whose best outgoing move loses the
        // least gain and fits somewhere.
        let mut candidates: Vec<u32> =
            (0..n as u32).filter(|&v| assignment[v as usize] as usize == from).collect();
        candidates.shuffle(rng);
        let mut best: Option<(u32, usize, i64)> = None;
        for &v in candidates.iter().take(256) {
            external_degrees_into(graph, assignment, v, &mut ed);
            let internal = ed[from];
            let vw = graph.vertex_weight(v);
            if vw.iter().all(|&w| w == 0) {
                continue; // moving weightless vertices cannot help balance
            }
            for to in 0..nparts {
                if to == from || !balance.fits(to, &pw[to * ncon..(to + 1) * ncon], vw) {
                    continue;
                }
                let gain = ed[to] - internal;
                if best.map(|(_, _, bg)| gain > bg).unwrap_or(true) {
                    best = Some((v, to, gain));
                }
            }
        }
        match best {
            Some((v, to, _)) => apply_move(graph, assignment, pw, v, to),
            None => return, // nothing can move; give up
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use mcpart_rng::rngs::SmallRng;
    use mcpart_rng::SeedableRng;

    /// Two 4-cliques joined by a single light edge: the natural
    /// bisection separates the cliques.
    fn two_cliques() -> Graph {
        let mut b = GraphBuilder::new(1);
        for _ in 0..8 {
            b.add_vertex(&[1]);
        }
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                b.add_edge(i, j, 10);
                b.add_edge(i + 4, j + 4, 10);
            }
        }
        b.add_edge(0, 4, 1);
        b.build()
    }

    #[test]
    fn refinement_finds_clique_cut() {
        let g = two_cliques();
        let balance = BalanceModel::uniform(&g, 2, 0.1);
        // Deliberately bad split: interleaved.
        let mut assignment: Vec<u32> = (0..8).map(|i| (i % 2) as u32).collect();
        let mut pw = g.part_weights(&assignment, 2);
        let mut rng = SmallRng::seed_from_u64(42);
        refine(&g, &mut assignment, &balance, &mut pw, 8, &mut Fuel::unlimited(), &mut rng);
        assert_eq!(g.edge_cut(&assignment), 1, "assignment: {assignment:?}");
        assert!(balance.is_balanced(&pw));
    }

    #[test]
    fn rebalance_fixes_overweight_part() {
        let g = two_cliques();
        let balance = BalanceModel::uniform(&g, 2, 0.1);
        let mut assignment = vec![0u32; 8];
        let mut pw = g.part_weights(&assignment, 2);
        assert!(!balance.is_balanced(&pw));
        let mut rng = SmallRng::seed_from_u64(3);
        rebalance(&g, &mut assignment, &balance, &mut pw, &mut Fuel::unlimited(), &mut rng);
        assert!(balance.is_balanced(&pw), "weights: {pw:?}");
        assert_eq!(pw, g.part_weights(&assignment, 2));
    }

    #[test]
    fn refine_keeps_part_weights_consistent() {
        let g = two_cliques();
        let balance = BalanceModel::uniform(&g, 2, 0.5);
        let mut assignment: Vec<u32> = (0..8).map(|i| (i / 4) as u32).collect();
        let mut pw = g.part_weights(&assignment, 2);
        let mut rng = SmallRng::seed_from_u64(5);
        refine(&g, &mut assignment, &balance, &mut pw, 4, &mut Fuel::unlimited(), &mut rng);
        assert_eq!(pw, g.part_weights(&assignment, 2));
    }
}
