//! Multilevel coarsening via deterministic sharded heavy-edge matching.
//!
//! Matching runs in two phases. Phase one is embarrassingly parallel:
//! every vertex independently picks its *preferred* partner — the
//! neighbor joined by the heaviest edge whose merged weight stays under
//! the cap, ties broken toward the lower-degree neighbor and then the
//! lowest vertex index. The preference vector is a pure function of the
//! graph, so sharding it over `mcpart-par` workers cannot change it.
//! Phase two walks vertices in ascending index order and greedily
//! commits matches (preferred partner first, heaviest still-free
//! neighbor as the fallback), which is sequential but O(edges).
//! Together the result is bit-identical for every `--jobs` value — the
//! PR 2 determinism contract — without any RNG in the coarsener.
//!
//! The low-degree tie-break matters at scale: GDP graphs contain a few
//! thousand object-group supernodes of enormous degree, and a pure
//! lowest-index rule steers every equal-weight tie toward those hubs —
//! which can each absorb only one partner per level, stalling the
//! matched fraction near zero. Preferring the lower-degree neighbor
//! pairs the long operation chains with each other and keeps the
//! coarsening geometric.

use crate::graph::{sort_merge_triples, Graph};

/// One level of the coarsening hierarchy: the coarse graph plus the
/// projection map from fine vertices to coarse vertices.
#[derive(Clone, Debug)]
pub struct CoarseLevel {
    /// The coarsened graph.
    pub graph: Graph,
    /// `map[fine] = coarse`.
    pub map: Vec<u32>,
}

/// Reusable scratch buffers for [`coarsen_once`], so a multilevel run
/// allocates its matching and edge-accumulation vectors once instead of
/// once per level.
#[derive(Debug, Default)]
pub struct CoarsenWorkspace {
    pref: Vec<u32>,
    partner: Vec<u32>,
    triples: Vec<(u32, u32, u64)>,
}

/// Vertices below this count match sequentially even when `jobs > 1`
/// (sharding overhead dominates on small graphs).
const MIN_PARALLEL_MATCH: usize = 4096;

/// Performs one round of heavy-edge matching (HEM) coarsening.
///
/// Each unmatched vertex matches the unmatched neighbor connected by
/// the heaviest edge, subject to the merged vertex staying under
/// `max_vwgt` in every constraint (this is METIS' guard against
/// unsplittable super-vertices); ties break to the lower-degree
/// neighbor, then the lowest index (see the module docs for why hubs
/// must lose ties). Unmatchable vertices survive alone. Matching is sharded
/// over `jobs` workers (`0` = all available cores) and is deterministic
/// for every `jobs` value.
///
/// Returns `None` when matching failed to shrink the graph enough to be
/// useful (coarse size > 95% of fine size), which signals the driver to
/// stop coarsening.
pub fn coarsen_once(
    graph: &Graph,
    max_vwgt: &[u64],
    jobs: usize,
    ws: &mut CoarsenWorkspace,
) -> Option<CoarseLevel> {
    let n = graph.num_vertices();
    if n < 2 {
        return None;
    }
    const NONE_V: u32 = u32::MAX;
    let CoarsenWorkspace { pref, partner, triples } = ws;

    let fits = |a: u32, b: u32| -> bool {
        let wa = graph.vertex_weight(a);
        let wb = graph.vertex_weight(b);
        wa.iter().zip(wb).zip(max_vwgt).all(|((&x, &y), &m)| x + y <= m)
    };

    // Phase 1: per-vertex preferred partner (pure function of the
    // graph; shard-safe).
    let pref_of = |v: u32| -> u32 {
        let mut best: Option<(u64, usize, u32)> = None;
        for (u, w) in graph.neighbors(v) {
            if u != v && fits(v, u) {
                let d = graph.degree(u);
                let better = match best {
                    None => true,
                    Some((bw, bd, bu)) => w > bw || (w == bw && (d < bd || (d == bd && u < bu))),
                };
                if better {
                    best = Some((w, d, u));
                }
            }
        }
        best.map_or(NONE_V, |(_, _, u)| u)
    };
    pref.clear();
    let jobs = mcpart_par::resolve_jobs(jobs);
    if jobs > 1 && n >= MIN_PARALLEL_MATCH {
        let shard = (n.div_ceil(jobs * 4)).max(1024);
        let ranges: Vec<(u32, u32)> =
            (0..n).step_by(shard).map(|lo| (lo as u32, (lo + shard).min(n) as u32)).collect();
        let parts = mcpart_par::parallel_map(jobs, &ranges, |_, &(lo, hi)| {
            (lo..hi).map(pref_of).collect::<Vec<u32>>()
        });
        for part in parts {
            pref.extend_from_slice(&part);
        }
    } else {
        pref.extend((0..n as u32).map(pref_of));
    }

    // Phase 2: sequential greedy commit in ascending vertex order.
    partner.clear();
    partner.resize(n, NONE_V);
    for v in 0..n as u32 {
        if partner[v as usize] != NONE_V {
            continue;
        }
        let p = pref[v as usize];
        let mate = if p != NONE_V && partner[p as usize] == NONE_V {
            Some(p)
        } else {
            // Preferred partner already taken: heaviest still-free
            // fitting neighbor, same tie-break as phase 1.
            let mut best: Option<(u64, usize, u32)> = None;
            for (u, w) in graph.neighbors(v) {
                if u != v && partner[u as usize] == NONE_V && fits(v, u) {
                    let d = graph.degree(u);
                    let better = match best {
                        None => true,
                        Some((bw, bd, bu)) => {
                            w > bw || (w == bw && (d < bd || (d == bd && u < bu)))
                        }
                    };
                    if better {
                        best = Some((w, d, u));
                    }
                }
            }
            best.map(|(_, _, u)| u)
        };
        match mate {
            Some(u) => {
                partner[v as usize] = u;
                partner[u as usize] = v;
            }
            None => partner[v as usize] = v,
        }
    }

    // Assign coarse ids: matched pairs collapse; deterministic in fine order.
    let mut map = vec![NONE_V; n];
    let mut next = 0u32;
    for v in 0..n as u32 {
        if map[v as usize] != NONE_V {
            continue;
        }
        let p = partner[v as usize];
        map[v as usize] = next;
        if p != v && p != NONE_V {
            map[p as usize] = next;
        }
        next += 1;
    }
    let coarse_n = next as usize;
    if coarse_n as f64 > n as f64 * 0.95 {
        return None;
    }

    // Coarse vertex weights, flat.
    let ncon = graph.num_constraints();
    let mut vwgt = vec![0u64; coarse_n * ncon];
    for v in 0..n as u32 {
        let cv = map[v as usize] as usize;
        for (c, &w) in graph.vertex_weight(v).iter().enumerate() {
            vwgt[cv * ncon + c] += w;
        }
    }

    // Coarse edges: project fine edges through the map into the reused
    // triple buffer, then sort-and-merge (summing parallel edges).
    triples.clear();
    triples.reserve(graph.num_edges());
    for v in 0..n as u32 {
        let cv = map[v as usize];
        for (u, w) in graph.neighbors(v) {
            if u > v {
                let cu = map[u as usize];
                if cu != cv {
                    triples.push((cv.min(cu), cv.max(cu), w));
                }
            }
        }
    }
    sort_merge_triples(jobs, triples, |a, b| a + b);
    let coarse = Graph::from_sorted_merged_triples(ncon, vwgt, coarse_n, triples);
    Some(CoarseLevel { graph: coarse, map })
}

/// Default per-constraint cap on merged vertex weight while coarsening
/// toward `coarsen_to` vertices.
pub fn default_max_vwgt(graph: &Graph, coarsen_to: usize) -> Vec<u64> {
    let totals = graph.total_weights();
    let maxv = graph.max_vertex_weights();
    totals
        .iter()
        .zip(&maxv)
        .map(|(&t, &m)| {
            let cap = (4 * t) / (3 * coarsen_to.max(1) as u64).max(1);
            cap.max(m).max(1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn ring(n: usize) -> Graph {
        let mut b = GraphBuilder::new(1);
        for _ in 0..n {
            b.add_vertex(&[1]);
        }
        for i in 0..n as u32 {
            b.add_edge(i, (i + 1) % n as u32, 1);
        }
        b.build()
    }

    #[test]
    fn coarsening_halves_a_ring() {
        let g = ring(16);
        let mut ws = CoarsenWorkspace::default();
        let lvl = coarsen_once(&g, &[100], 1, &mut ws).expect("should coarsen");
        assert!(lvl.graph.num_vertices() <= 12);
        assert!(lvl.graph.num_vertices() >= 8);
        // Weight is conserved.
        assert_eq!(lvl.graph.total_weights(), g.total_weights());
        // Map covers all fine vertices.
        assert_eq!(lvl.map.len(), 16);
        assert!(lvl.map.iter().all(|&c| (c as usize) < lvl.graph.num_vertices()));
    }

    #[test]
    fn max_vwgt_blocks_heavy_merges() {
        let mut b = GraphBuilder::new(1);
        b.add_vertex(&[10]);
        b.add_vertex(&[10]);
        b.add_edge(0, 1, 5);
        let g = b.build();
        // Cap 15 < 20 so the only possible match is forbidden.
        assert!(coarsen_once(&g, &[15], 1, &mut CoarsenWorkspace::default()).is_none());
    }

    #[test]
    fn weight_conservation_multiconstraint() {
        let mut b = GraphBuilder::new(2);
        for i in 0..8u32 {
            b.add_vertex(&[u64::from(i), 1]);
        }
        for i in 0..8u32 {
            for j in (i + 1)..8u32 {
                b.add_edge(i, j, 1);
            }
        }
        let g = b.build();
        let mut ws = CoarsenWorkspace::default();
        let lvl = coarsen_once(&g, &default_max_vwgt(&g, 2), 1, &mut ws).unwrap();
        assert_eq!(lvl.graph.total_weights(), g.total_weights());
    }

    #[test]
    fn default_cap_is_at_least_max_vertex() {
        let mut b = GraphBuilder::new(1);
        b.add_vertex(&[1000]);
        b.add_vertex(&[1]);
        let g = b.build();
        let cap = default_max_vwgt(&g, 10);
        assert!(cap[0] >= 1000);
    }

    #[test]
    fn heavy_edges_win_with_deterministic_ties() {
        // v0 has two neighbors: v1 (weight 5) and v2 (weight 9): the
        // heavy edge wins. v3 ties between v1 and v4 at weight 2 and
        // prefers the lower-degree v4, but the ascending commit pairs
        // v1 with the still-free v3 first — all deterministic.
        let mut b = GraphBuilder::new(1);
        for _ in 0..5 {
            b.add_vertex(&[1]);
        }
        b.add_edge(0, 1, 5);
        b.add_edge(0, 2, 9);
        b.add_edge(3, 1, 2);
        b.add_edge(3, 4, 2);
        let g = b.build();
        let mut ws = CoarsenWorkspace::default();
        let lvl = coarsen_once(&g, &[100], 1, &mut ws).expect("coarsens");
        assert_eq!(lvl.map[0], lvl.map[2]);
        assert_eq!(lvl.map[1], lvl.map[3]);
    }

    #[test]
    fn equal_weight_ties_avoid_high_degree_hubs() {
        // A hub (lowest index, degree 6) connects to a 6-vertex chain
        // with the same edge weight as the chain's own edges. A pure
        // lowest-index tie-break would point every chain vertex at the
        // hub; the low-degree preference pairs the chain with itself
        // so the level still shrinks geometrically.
        let mut b = GraphBuilder::new(1);
        for _ in 0..7 {
            b.add_vertex(&[1]);
        }
        for i in 1..7u32 {
            b.add_edge(0, i, 1);
        }
        for i in 1..6u32 {
            b.add_edge(i, i + 1, 1);
        }
        let g = b.build();
        let lvl = coarsen_once(&g, &[100], 1, &mut CoarsenWorkspace::default()).expect("coarsens");
        assert!(lvl.graph.num_vertices() <= 4, "got {}", lvl.graph.num_vertices());
    }

    #[test]
    fn sharded_matching_is_jobs_invariant() {
        // Big enough to cross MIN_PARALLEL_MATCH and the parallel-sort
        // threshold: every jobs count must produce the identical level.
        let n = 6000;
        let mut b = GraphBuilder::new(1);
        for i in 0..n as u32 {
            b.add_vertex(&[1 + u64::from(i % 3)]);
        }
        for i in 0..n as u32 {
            b.add_edge(i, (i + 1) % n as u32, 1 + u64::from(i % 5));
            b.add_edge(i, (i + 37) % n as u32, 1 + u64::from(i % 7));
        }
        let g = b.build();
        let cap = default_max_vwgt(&g, 8);
        let run = |jobs: usize| {
            let mut ws = CoarsenWorkspace::default();
            let lvl = coarsen_once(&g, &cap, jobs, &mut ws).expect("coarsens");
            (lvl.graph, lvl.map)
        };
        let seq = run(1);
        for jobs in [2, 4, 8] {
            assert_eq!(run(jobs), seq, "jobs={jobs}");
        }
    }

    #[test]
    fn workspace_is_reusable_across_levels() {
        let g = ring(64);
        let mut ws = CoarsenWorkspace::default();
        let l1 = coarsen_once(&g, &[100], 1, &mut ws).expect("level 1");
        let l2 = coarsen_once(&l1.graph, &[100], 1, &mut ws).expect("level 2");
        assert!(l2.graph.num_vertices() < l1.graph.num_vertices());
        assert_eq!(l2.graph.total_weights(), g.total_weights());
        // Reuse must not leak state: a fresh workspace gives the same.
        let fresh = coarsen_once(&l1.graph, &[100], 1, &mut CoarsenWorkspace::default())
            .expect("level 2 fresh");
        assert_eq!(fresh.graph, l2.graph);
        assert_eq!(fresh.map, l2.map);
    }
}
