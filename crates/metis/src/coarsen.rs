//! Multilevel coarsening via heavy-edge matching.

use crate::graph::{Graph, GraphBuilder};
use mcpart_rng::seq::SliceRandom;
use mcpart_rng::Rng;

/// One level of the coarsening hierarchy: the coarse graph plus the
/// projection map from fine vertices to coarse vertices.
#[derive(Clone, Debug)]
pub struct CoarseLevel {
    /// The coarsened graph.
    pub graph: Graph,
    /// `map[fine] = coarse`.
    pub map: Vec<u32>,
}

/// Performs one round of heavy-edge matching (HEM) coarsening.
///
/// Vertices are visited in random order; each unmatched vertex matches
/// its unmatched neighbor connected by the heaviest edge, subject to the
/// merged vertex staying under `max_vwgt` in every constraint (this is
/// METIS' guard against unsplittable super-vertices). Unmatchable
/// vertices survive alone.
///
/// Returns `None` when matching failed to shrink the graph enough to be
/// useful (coarse size > 95% of fine size), which signals the driver to
/// stop coarsening.
pub fn coarsen_once<R: Rng>(graph: &Graph, max_vwgt: &[u64], rng: &mut R) -> Option<CoarseLevel> {
    let n = graph.num_vertices();
    if n < 2 {
        return None;
    }
    const UNMATCHED: u32 = u32::MAX;
    let mut partner = vec![UNMATCHED; n];
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);

    let fits = |a: u32, b: u32| -> bool {
        let wa = graph.vertex_weight(a);
        let wb = graph.vertex_weight(b);
        wa.iter().zip(wb).zip(max_vwgt).all(|((&x, &y), &m)| x + y <= m)
    };

    for &v in &order {
        if partner[v as usize] != UNMATCHED {
            continue;
        }
        let mut best: Option<(u32, u64)> = None;
        for (u, w) in graph.neighbors(v) {
            if partner[u as usize] == UNMATCHED
                && u != v
                && fits(v, u)
                && best.map(|(_, bw)| w > bw).unwrap_or(true)
            {
                best = Some((u, w));
            }
        }
        match best {
            Some((u, _)) => {
                partner[v as usize] = u;
                partner[u as usize] = v;
            }
            None => partner[v as usize] = v,
        }
    }

    // Assign coarse ids: matched pairs collapse; deterministic in fine order.
    let mut map = vec![UNMATCHED; n];
    let mut next = 0u32;
    for v in 0..n as u32 {
        if map[v as usize] != UNMATCHED {
            continue;
        }
        let p = partner[v as usize];
        map[v as usize] = next;
        if p != v && p != UNMATCHED {
            map[p as usize] = next;
        }
        next += 1;
    }
    let coarse_n = next as usize;
    if coarse_n as f64 > n as f64 * 0.95 {
        return None;
    }

    let ncon = graph.num_constraints();
    let mut builder = GraphBuilder::new(ncon);
    let mut weights = vec![vec![0u64; ncon]; coarse_n];
    for v in 0..n as u32 {
        let cv = map[v as usize] as usize;
        for (c, w) in graph.vertex_weight(v).iter().enumerate() {
            weights[cv][c] += w;
        }
    }
    for w in &weights {
        builder.add_vertex(w);
    }
    for v in 0..n as u32 {
        for (u, w) in graph.neighbors(v) {
            if u > v {
                builder.add_edge(map[v as usize], map[u as usize], w);
            }
        }
    }
    Some(CoarseLevel { graph: builder.build(), map })
}

/// Default per-constraint cap on merged vertex weight while coarsening
/// toward `coarsen_to` vertices.
pub fn default_max_vwgt(graph: &Graph, coarsen_to: usize) -> Vec<u64> {
    let totals = graph.total_weights();
    let maxv = graph.max_vertex_weights();
    totals
        .iter()
        .zip(&maxv)
        .map(|(&t, &m)| {
            let cap = (4 * t) / (3 * coarsen_to.max(1) as u64).max(1);
            cap.max(m).max(1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use mcpart_rng::rngs::SmallRng;
    use mcpart_rng::SeedableRng;

    fn ring(n: usize) -> Graph {
        let mut b = GraphBuilder::new(1);
        for _ in 0..n {
            b.add_vertex(&[1]);
        }
        for i in 0..n as u32 {
            b.add_edge(i, (i + 1) % n as u32, 1);
        }
        b.build()
    }

    #[test]
    fn coarsening_halves_a_ring() {
        let g = ring(16);
        let mut rng = SmallRng::seed_from_u64(7);
        let lvl = coarsen_once(&g, &[100], &mut rng).expect("should coarsen");
        assert!(lvl.graph.num_vertices() <= 12);
        assert!(lvl.graph.num_vertices() >= 8);
        // Weight is conserved.
        assert_eq!(lvl.graph.total_weights(), g.total_weights());
        // Map covers all fine vertices.
        assert_eq!(lvl.map.len(), 16);
        assert!(lvl.map.iter().all(|&c| (c as usize) < lvl.graph.num_vertices()));
    }

    #[test]
    fn max_vwgt_blocks_heavy_merges() {
        let mut b = GraphBuilder::new(1);
        b.add_vertex(&[10]);
        b.add_vertex(&[10]);
        b.add_edge(0, 1, 5);
        let g = b.build();
        let mut rng = SmallRng::seed_from_u64(1);
        // Cap 15 < 20 so the only possible match is forbidden.
        assert!(coarsen_once(&g, &[15], &mut rng).is_none());
    }

    #[test]
    fn weight_conservation_multiconstraint() {
        let mut b = GraphBuilder::new(2);
        for i in 0..8u32 {
            b.add_vertex(&[u64::from(i), 1]);
        }
        for i in 0..8u32 {
            for j in (i + 1)..8u32 {
                b.add_edge(i, j, 1);
            }
        }
        let g = b.build();
        let mut rng = SmallRng::seed_from_u64(3);
        let lvl = coarsen_once(&g, &default_max_vwgt(&g, 2), &mut rng).unwrap();
        assert_eq!(lvl.graph.total_weights(), g.total_weights());
    }

    #[test]
    fn default_cap_is_at_least_max_vertex() {
        let mut b = GraphBuilder::new(1);
        b.add_vertex(&[1000]);
        b.add_vertex(&[1]);
        let g = b.build();
        let cap = default_max_vwgt(&g, 10);
        assert!(cap[0] >= 1000);
    }
}
