//! Multi-constraint balance bookkeeping.
//!
//! Part-weight matrices are flat `nparts * ncon` row-major buffers
//! (`pw[p * ncon + c]`), matching [`Graph::part_weights`]; the layout is
//! touched on every refinement-sweep evaluation, so there is no
//! per-part allocation anywhere on that path.

use crate::graph::Graph;

/// Balance targets and limits for a k-way partitioning with `ncon`
/// constraints.
///
/// Part `p` is *balanced* in constraint `c` when its weight does not
/// exceed `target[p] * total[c] * (1 + imbalance)`. Constraints whose
/// total weight is zero are trivially balanced.
#[derive(Clone, Debug)]
pub struct BalanceModel {
    nparts: usize,
    ncon: usize,
    /// Per-part target fractions (sum to 1).
    pub targets: Vec<f64>,
    /// Per-constraint total weights.
    pub totals: Vec<u64>,
    /// Flat `nparts * ncon` upper limits (`limits[p * ncon + c]`).
    pub limits: Vec<u64>,
}

impl BalanceModel {
    /// Builds a model for `graph` split into `nparts` parts with the
    /// given per-part target fractions and allowed imbalance `eps`.
    ///
    /// The limit is `ceil(target × total × (1 + eps))`, raised to the
    /// maximum single-vertex weight when an indivisible heavy vertex
    /// (e.g. a merged data object) could not otherwise be placed
    /// anywhere.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len() != nparts` or the fractions are not
    /// positive.
    pub fn new(graph: &Graph, nparts: usize, targets: &[f64], eps: f64) -> Self {
        assert_eq!(targets.len(), nparts, "one target fraction per part");
        assert!(targets.iter().all(|&t| t > 0.0), "target fractions must be positive");
        let sum: f64 = targets.iter().sum();
        let targets: Vec<f64> = targets.iter().map(|t| t / sum).collect();
        let totals = graph.total_weights();
        let maxv = graph.max_vertex_weights();
        let ncon = graph.num_constraints();
        let mut limits = Vec::with_capacity(nparts * ncon);
        for &target in targets.iter().take(nparts) {
            for c in 0..ncon {
                let ideal = target * totals[c] as f64;
                limits.push(((ideal * (1.0 + eps)).ceil() as u64).max(maxv[c]));
            }
        }
        BalanceModel { nparts, ncon, targets, totals, limits }
    }

    /// Uniform targets (`1/nparts` each).
    pub fn uniform(graph: &Graph, nparts: usize, eps: f64) -> Self {
        Self::new(graph, nparts, &vec![1.0; nparts], eps)
    }

    /// Number of parts.
    pub fn nparts(&self) -> usize {
        self.nparts
    }

    /// Number of balance constraints.
    pub fn ncon(&self) -> usize {
        self.ncon
    }

    /// The upper weight limit of part `p` in constraint `c`.
    pub fn limit(&self, p: usize, c: usize) -> u64 {
        self.limits[p * self.ncon + c]
    }

    /// Returns `true` if adding `vw` to part `p` (currently at the row
    /// `pw`, `ncon` entries) keeps every constraint under its limit.
    pub fn fits(&self, p: usize, pw: &[u64], vw: &[u64]) -> bool {
        (0..self.ncon).all(|c| pw[c] + vw[c] <= self.limits[p * self.ncon + c])
    }

    /// Maximum relative overweight of a flat part-weight buffer: the
    /// largest `pw[p*ncon+c] / (target[p] * total[c])` over all
    /// parts/constraints, ignoring zero-total constraints. 1.0 means
    /// perfectly at target.
    pub fn max_overweight(&self, pw: &[u64]) -> f64 {
        let mut worst: f64 = 0.0;
        for (p, row) in pw.chunks(self.ncon).enumerate() {
            for (c, &w) in row.iter().enumerate() {
                if self.totals[c] == 0 {
                    continue;
                }
                let ideal = self.targets[p] * self.totals[c] as f64;
                if ideal > 0.0 {
                    worst = worst.max(w as f64 / ideal);
                }
            }
        }
        worst
    }

    /// Relative overweight of a single part-weight row, judged against
    /// part 0's target (the greedy-growing spill comparator ranks
    /// candidate rows on a common scale).
    pub fn row_overweight(&self, row: &[u64]) -> f64 {
        let mut worst: f64 = 0.0;
        for (c, &w) in row.iter().enumerate().take(self.ncon) {
            if self.totals[c] == 0 {
                continue;
            }
            let ideal = self.targets[0] * self.totals[c] as f64;
            if ideal > 0.0 {
                worst = worst.max(w as f64 / ideal);
            }
        }
        worst
    }

    /// Returns `true` when every part is within its limits.
    pub fn is_balanced(&self, pw: &[u64]) -> bool {
        pw.iter().zip(&self.limits).all(|(w, limit)| w <= limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn graph4() -> Graph {
        let mut b = GraphBuilder::new(1);
        for _ in 0..4 {
            b.add_vertex(&[10]);
        }
        b.add_edge(0, 1, 1);
        b.build()
    }

    #[test]
    fn uniform_limits() {
        let g = graph4();
        let m = BalanceModel::uniform(&g, 2, 0.1);
        // total 40, target 20, eps 10% -> 22 (max vertex 10 is smaller).
        assert_eq!(m.limit(0, 0), 22);
        assert!(m.fits(0, &[10], &[10]));
        assert!(!m.fits(0, &[20], &[10]));
    }

    #[test]
    fn weighted_targets() {
        let g = graph4();
        let m = BalanceModel::new(&g, 2, &[3.0, 1.0], 0.0);
        assert!(m.limit(0, 0) > m.limit(1, 0));
    }

    #[test]
    fn overweight_metric() {
        let g = graph4();
        let m = BalanceModel::uniform(&g, 2, 0.1);
        let balanced = vec![20u64, 20];
        let skewed = vec![40u64, 0];
        assert!(m.max_overweight(&balanced) <= 1.0 + 1e-9);
        assert!((m.max_overweight(&skewed) - 2.0).abs() < 1e-9);
        assert!(m.is_balanced(&balanced));
        assert!(!m.is_balanced(&skewed));
    }

    #[test]
    fn row_overweight_matches_single_row_matrix() {
        let g = graph4();
        let m = BalanceModel::uniform(&g, 2, 0.1);
        assert_eq!(m.row_overweight(&[20]), m.max_overweight(&[20, 0]));
        assert!((m.row_overweight(&[40]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_total_constraint_is_trivially_balanced() {
        let mut b = GraphBuilder::new(2);
        b.add_vertex(&[5, 0]);
        b.add_vertex(&[5, 0]);
        let g = b.build();
        let m = BalanceModel::uniform(&g, 2, 0.1);
        let pw = vec![5, 0, 5, 0];
        assert!(m.is_balanced(&pw));
        assert!(m.max_overweight(&pw) > 0.0);
    }
}
