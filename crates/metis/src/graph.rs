//! Weighted undirected graphs in CSR form.

/// Sorts edge triples `(a, b, w)` by their `(a, b)` key and folds
/// duplicates together with `combine`. The sort is sharded over `jobs`
/// workers for large inputs; because `combine` must be commutative and
/// associative, the folded result is bit-identical for every `jobs`
/// value (the `--jobs` determinism contract).
pub(crate) fn sort_merge_triples(
    jobs: usize,
    triples: &mut Vec<(u32, u32, u64)>,
    combine: impl Fn(u64, u64) -> u64 + Copy + Sync,
) {
    par_sort_triples(jobs, triples);
    merge_sorted_duplicates(triples, combine);
}

/// Inputs below this length sort sequentially (sharding overhead wins).
const MIN_PARALLEL_SORT: usize = 1 << 15;

fn par_sort_triples(jobs: usize, triples: &mut Vec<(u32, u32, u64)>) {
    let key = |t: &(u32, u32, u64)| (t.0, t.1);
    let jobs = mcpart_par::resolve_jobs(jobs);
    if jobs <= 1 || triples.len() < MIN_PARALLEL_SORT {
        triples.sort_unstable_by_key(key);
        return;
    }
    let chunk = triples.len().div_ceil(jobs);
    let chunks: Vec<&[(u32, u32, u64)]> = triples.chunks(chunk).collect();
    let mut sorted: Vec<Vec<(u32, u32, u64)>> = mcpart_par::parallel_map(jobs, &chunks, |_, c| {
        let mut v = c.to_vec();
        v.sort_unstable_by_key(key);
        v
    });
    // Pairwise merges until one run remains. Equal keys may interleave
    // differently than a full sort would order them, but duplicates are
    // folded commutatively afterwards, so the final CSR is identical.
    while sorted.len() > 1 {
        let mut next = Vec::with_capacity(sorted.len().div_ceil(2));
        let mut it = sorted.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(merge_two(a, b)),
                None => next.push(a),
            }
        }
        sorted = next;
    }
    *triples = sorted.pop().unwrap_or_default();
}

fn merge_two(a: Vec<(u32, u32, u64)>, b: Vec<(u32, u32, u64)>) -> Vec<(u32, u32, u64)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut ai, mut bi) = (0, 0);
    while ai < a.len() && bi < b.len() {
        if (a[ai].0, a[ai].1) <= (b[bi].0, b[bi].1) {
            out.push(a[ai]);
            ai += 1;
        } else {
            out.push(b[bi]);
            bi += 1;
        }
    }
    out.extend_from_slice(&a[ai..]);
    out.extend_from_slice(&b[bi..]);
    out
}

/// Folds runs of equal `(a, b)` keys in a sorted triple vector.
fn merge_sorted_duplicates(triples: &mut Vec<(u32, u32, u64)>, combine: impl Fn(u64, u64) -> u64) {
    let mut out = 0usize;
    for i in 0..triples.len() {
        if out > 0 && (triples[out - 1].0, triples[out - 1].1) == (triples[i].0, triples[i].1) {
            triples[out - 1].2 = combine(triples[out - 1].2, triples[i].2);
        } else {
            triples[out] = triples[i];
            out += 1;
        }
    }
    triples.truncate(out);
}

/// Builder accumulating vertices and edges before freezing into a
/// [`Graph`].
///
/// Parallel edges are merged by summing their weights; self-loops are
/// dropped (they cannot be cut, so they are irrelevant to partitioning).
/// Edges accumulate in a flat triple vector and are deduplicated by
/// sort-and-merge at [`GraphBuilder::build`] time — no hashing on the
/// construction hot path.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    ncon: usize,
    vwgt: Vec<u64>,
    edges: Vec<(u32, u32, u64)>,
}

impl GraphBuilder {
    /// Creates a builder for vertices carrying `ncon` balance
    /// constraints each.
    ///
    /// # Panics
    ///
    /// Panics if `ncon` is zero.
    pub fn new(ncon: usize) -> Self {
        assert!(ncon > 0, "at least one balance constraint is required");
        GraphBuilder { ncon, vwgt: Vec::new(), edges: Vec::new() }
    }

    /// Pre-allocates room for `n` more edges.
    pub fn reserve_edges(&mut self, n: usize) {
        self.edges.reserve(n);
    }

    /// Adds a vertex with the given constraint weights, returning its
    /// index.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != ncon`.
    pub fn add_vertex(&mut self, weights: &[u64]) -> u32 {
        assert_eq!(weights.len(), self.ncon, "constraint arity mismatch");
        let id = (self.vwgt.len() / self.ncon) as u32;
        self.vwgt.extend_from_slice(weights);
        id
    }

    /// Number of vertices added so far.
    pub fn num_vertices(&self) -> usize {
        self.vwgt.len() / self.ncon
    }

    /// Adds (or strengthens) an undirected edge between `a` and `b`.
    /// Self-loops are ignored.
    pub fn add_edge(&mut self, a: u32, b: u32, weight: u64) {
        if a == b || weight == 0 {
            return;
        }
        self.edges.push((a.min(b), a.max(b), weight));
    }

    /// Freezes the builder into a CSR graph (sequential sort).
    pub fn build(self) -> Graph {
        self.build_with_jobs(1)
    }

    /// Freezes the builder into a CSR graph, sharding the edge sort over
    /// `jobs` workers (`0` = all available cores; never changes the
    /// result).
    pub fn build_with_jobs(self, jobs: usize) -> Graph {
        let n = self.num_vertices();
        let mut triples = self.edges;
        sort_merge_triples(jobs, &mut triples, |a, b| a + b);
        Graph::from_sorted_merged_triples(self.ncon, self.vwgt, n, &triples)
    }
}

/// An undirected vertex- and edge-weighted graph in compressed sparse
/// row form, the input to [`crate::partition`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Graph {
    pub(crate) ncon: usize,
    /// `nvtxs * ncon` row-major vertex weights.
    pub(crate) vwgt: Vec<u64>,
    pub(crate) xadj: Vec<usize>,
    pub(crate) adjncy: Vec<u32>,
    pub(crate) adjwgt: Vec<u64>,
}

impl Graph {
    /// Builds a CSR graph from a sorted, duplicate-free triple vector
    /// (`a < b` in every triple, strictly increasing `(a, b)` keys) and
    /// a flat `n * ncon` vertex-weight buffer.
    pub(crate) fn from_sorted_merged_triples(
        ncon: usize,
        vwgt: Vec<u64>,
        n: usize,
        triples: &[(u32, u32, u64)],
    ) -> Graph {
        debug_assert!(
            triples.windows(2).all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)),
            "edge triples must be strictly sorted and merged"
        );
        let mut degree = vec![0usize; n];
        for &(a, b, _) in triples {
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let mut xadj = Vec::with_capacity(n + 1);
        xadj.push(0usize);
        for d in &degree {
            let last = xadj.last().copied().unwrap_or(0);
            xadj.push(last + d);
        }
        let m2 = xadj[n];
        let mut adjncy = vec![0u32; m2];
        let mut adjwgt = vec![0u64; m2];
        let mut cursor = xadj[..n].to_vec();
        for &(a, b, w) in triples {
            adjncy[cursor[a as usize]] = b;
            adjwgt[cursor[a as usize]] = w;
            cursor[a as usize] += 1;
            adjncy[cursor[b as usize]] = a;
            adjwgt[cursor[b as usize]] = w;
            cursor[b as usize] += 1;
        }
        Graph { ncon, vwgt, xadj, adjncy, adjwgt }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// Number of balance constraints per vertex.
    pub fn num_constraints(&self) -> usize {
        self.ncon
    }

    /// Resident bytes of the CSR buffers (vertex weights, adjacency
    /// offsets, neighbor ids, edge weights) — the memory-model figure
    /// reported as `metis/peak_graph_bytes`.
    pub fn csr_bytes(&self) -> u64 {
        (self.vwgt.len() * 8 + self.xadj.len() * 8 + self.adjncy.len() * 4 + self.adjwgt.len() * 8)
            as u64
    }

    /// The weight vector of vertex `v`.
    pub fn vertex_weight(&self, v: u32) -> &[u64] {
        let i = v as usize * self.ncon;
        &self.vwgt[i..i + self.ncon]
    }

    /// Number of neighbors of `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.xadj[v as usize + 1] - self.xadj[v as usize]
    }

    /// Iterates over `(neighbor, edge_weight)` of `v`.
    pub fn neighbors(&self, v: u32) -> impl Iterator<Item = (u32, u64)> + '_ {
        let lo = self.xadj[v as usize];
        let hi = self.xadj[v as usize + 1];
        self.adjncy[lo..hi].iter().copied().zip(self.adjwgt[lo..hi].iter().copied())
    }

    /// Total weight per constraint over all vertices.
    pub fn total_weights(&self) -> Vec<u64> {
        let mut totals = vec![0u64; self.ncon];
        for v in 0..self.num_vertices() {
            for (c, t) in totals.iter_mut().enumerate() {
                *t += self.vwgt[v * self.ncon + c];
            }
        }
        totals
    }

    /// Largest single-vertex weight per constraint.
    pub fn max_vertex_weights(&self) -> Vec<u64> {
        let mut maxs = vec![0u64; self.ncon];
        for v in 0..self.num_vertices() {
            for (c, m) in maxs.iter_mut().enumerate() {
                *m = (*m).max(self.vwgt[v * self.ncon + c]);
            }
        }
        maxs
    }

    /// Edge-cut of an assignment: total weight of edges whose endpoints
    /// live in different parts.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len()` differs from the vertex count.
    #[allow(clippy::needless_range_loop)]
    pub fn edge_cut(&self, assignment: &[u32]) -> u64 {
        assert_eq!(assignment.len(), self.num_vertices());
        let mut cut = 0u64;
        for v in 0..self.num_vertices() as u32 {
            for (u, w) in self.neighbors(v) {
                if u > v && assignment[u as usize] != assignment[v as usize] {
                    cut += w;
                }
            }
        }
        cut
    }

    /// Per-part, per-constraint weight sums of an assignment, as a
    /// single `nparts * ncon` row-major buffer (`pw[p * ncon + c]`).
    pub fn part_weights(&self, assignment: &[u32], nparts: usize) -> Vec<u64> {
        let mut pw = vec![0u64; nparts * self.ncon];
        for (v, &p) in assignment.iter().enumerate() {
            let p = p as usize;
            for c in 0..self.ncon {
                pw[p * self.ncon + c] += self.vwgt[v * self.ncon + c];
            }
        }
        pw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Graph {
        let mut b = GraphBuilder::new(1);
        let v0 = b.add_vertex(&[1]);
        let v1 = b.add_vertex(&[2]);
        let v2 = b.add_vertex(&[3]);
        b.add_edge(v0, v1, 10);
        b.add_edge(v1, v2, 20);
        b.build()
    }

    #[test]
    fn csr_roundtrip() {
        let g = path3();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        let n1: Vec<_> = g.neighbors(1).collect();
        assert_eq!(n1.len(), 2);
        assert!(n1.contains(&(0, 10)));
        assert!(n1.contains(&(2, 20)));
    }

    #[test]
    fn parallel_edges_merge() {
        let mut b = GraphBuilder::new(1);
        let v0 = b.add_vertex(&[1]);
        let v1 = b.add_vertex(&[1]);
        b.add_edge(v0, v1, 3);
        b.add_edge(v1, v0, 4);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0).next(), Some((1, 7)));
    }

    #[test]
    fn self_loops_dropped() {
        let mut b = GraphBuilder::new(1);
        let v0 = b.add_vertex(&[1]);
        b.add_edge(v0, v0, 5);
        let g = b.build();
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn edge_cut_and_part_weights() {
        let g = path3();
        let cut = g.edge_cut(&[0, 0, 1]);
        assert_eq!(cut, 20);
        let pw = g.part_weights(&[0, 0, 1], 2);
        assert_eq!(pw, vec![3, 3]);
    }

    #[test]
    fn part_weights_are_ncon_strided() {
        let mut b = GraphBuilder::new(2);
        b.add_vertex(&[4, 1]);
        b.add_vertex(&[2, 8]);
        b.add_vertex(&[1, 1]);
        let g = b.build();
        let pw = g.part_weights(&[0, 1, 1], 2);
        assert_eq!(pw, vec![4, 1, 3, 9]);
    }

    #[test]
    fn totals_and_maxima() {
        let g = path3();
        assert_eq!(g.total_weights(), vec![6]);
        assert_eq!(g.max_vertex_weights(), vec![3]);
    }

    #[test]
    fn multi_constraint_weights() {
        let mut b = GraphBuilder::new(2);
        b.add_vertex(&[4, 1]);
        b.add_vertex(&[0, 2]);
        let g = b.build();
        assert_eq!(g.vertex_weight(0), &[4, 1]);
        assert_eq!(g.total_weights(), vec![4, 3]);
    }

    #[test]
    #[should_panic(expected = "constraint arity")]
    fn wrong_arity_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_vertex(&[1]);
    }

    #[test]
    fn parallel_build_matches_sequential() {
        // Enough duplicated edges to cross the parallel-sort threshold;
        // every jobs count must freeze to the identical CSR graph.
        let n = 512u32;
        let build = |jobs: usize| {
            let mut b = GraphBuilder::new(1);
            for _ in 0..n {
                b.add_vertex(&[1]);
            }
            let mut x = 0x9E3779B97F4A7C15u64;
            for _ in 0..(MIN_PARALLEL_SORT + 1000) {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let a = (x >> 17) as u32 % n;
                let c = (x >> 41) as u32 % n;
                b.add_edge(a, c, (x % 7) + 1);
            }
            b.build_with_jobs(jobs)
        };
        let seq = build(1);
        for jobs in [2, 4, 8] {
            assert_eq!(build(jobs), seq, "jobs={jobs}");
        }
    }

    #[test]
    fn csr_bytes_counts_buffers() {
        let g = path3();
        // vwgt 3*8 + xadj 4*8 + adjncy 4*4 + adjwgt 4*8 = 104.
        assert_eq!(g.csr_bytes(), 104);
    }
}
