//! Weighted undirected graphs in CSR form.

use std::collections::HashMap;

/// Builder accumulating vertices and edges before freezing into a
/// [`Graph`].
///
/// Parallel edges are merged by summing their weights; self-loops are
/// dropped (they cannot be cut, so they are irrelevant to partitioning).
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    ncon: usize,
    vwgt: Vec<u64>,
    edges: HashMap<(u32, u32), u64>,
}

impl GraphBuilder {
    /// Creates a builder for vertices carrying `ncon` balance
    /// constraints each.
    ///
    /// # Panics
    ///
    /// Panics if `ncon` is zero.
    pub fn new(ncon: usize) -> Self {
        assert!(ncon > 0, "at least one balance constraint is required");
        GraphBuilder { ncon, vwgt: Vec::new(), edges: HashMap::new() }
    }

    /// Adds a vertex with the given constraint weights, returning its
    /// index.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != ncon`.
    pub fn add_vertex(&mut self, weights: &[u64]) -> u32 {
        assert_eq!(weights.len(), self.ncon, "constraint arity mismatch");
        let id = (self.vwgt.len() / self.ncon) as u32;
        self.vwgt.extend_from_slice(weights);
        id
    }

    /// Number of vertices added so far.
    pub fn num_vertices(&self) -> usize {
        self.vwgt.len() / self.ncon
    }

    /// Adds (or strengthens) an undirected edge between `a` and `b`.
    /// Self-loops are ignored.
    pub fn add_edge(&mut self, a: u32, b: u32, weight: u64) {
        if a == b || weight == 0 {
            return;
        }
        let key = (a.min(b), a.max(b));
        *self.edges.entry(key).or_insert(0) += weight;
    }

    /// Freezes the builder into a CSR graph.
    pub fn build(self) -> Graph {
        let n = self.num_vertices();
        let mut degree = vec![0usize; n];
        for &(a, b) in self.edges.keys() {
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let mut xadj = Vec::with_capacity(n + 1);
        xadj.push(0usize);
        for d in &degree {
            let last = xadj.last().copied().unwrap_or(0);
            xadj.push(last + d);
        }
        let m2 = xadj[n];
        let mut adjncy = vec![0u32; m2];
        let mut adjwgt = vec![0u64; m2];
        let mut cursor = xadj[..n].to_vec();
        let mut entries: Vec<(&(u32, u32), &u64)> = self.edges.iter().collect();
        // Deterministic CSR regardless of hash order.
        entries.sort_by_key(|(k, _)| **k);
        for (&(a, b), &w) in entries {
            adjncy[cursor[a as usize]] = b;
            adjwgt[cursor[a as usize]] = w;
            cursor[a as usize] += 1;
            adjncy[cursor[b as usize]] = a;
            adjwgt[cursor[b as usize]] = w;
            cursor[b as usize] += 1;
        }
        Graph { ncon: self.ncon, vwgt: self.vwgt, xadj, adjncy, adjwgt }
    }
}

/// An undirected vertex- and edge-weighted graph in compressed sparse
/// row form, the input to [`crate::partition`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Graph {
    pub(crate) ncon: usize,
    /// `nvtxs * ncon` row-major vertex weights.
    pub(crate) vwgt: Vec<u64>,
    pub(crate) xadj: Vec<usize>,
    pub(crate) adjncy: Vec<u32>,
    pub(crate) adjwgt: Vec<u64>,
}

impl Graph {
    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// Number of balance constraints per vertex.
    pub fn num_constraints(&self) -> usize {
        self.ncon
    }

    /// The weight vector of vertex `v`.
    pub fn vertex_weight(&self, v: u32) -> &[u64] {
        let i = v as usize * self.ncon;
        &self.vwgt[i..i + self.ncon]
    }

    /// Iterates over `(neighbor, edge_weight)` of `v`.
    pub fn neighbors(&self, v: u32) -> impl Iterator<Item = (u32, u64)> + '_ {
        let lo = self.xadj[v as usize];
        let hi = self.xadj[v as usize + 1];
        self.adjncy[lo..hi].iter().copied().zip(self.adjwgt[lo..hi].iter().copied())
    }

    /// Total weight per constraint over all vertices.
    pub fn total_weights(&self) -> Vec<u64> {
        let mut totals = vec![0u64; self.ncon];
        for v in 0..self.num_vertices() {
            for (c, t) in totals.iter_mut().enumerate() {
                *t += self.vwgt[v * self.ncon + c];
            }
        }
        totals
    }

    /// Largest single-vertex weight per constraint.
    pub fn max_vertex_weights(&self) -> Vec<u64> {
        let mut maxs = vec![0u64; self.ncon];
        for v in 0..self.num_vertices() {
            for (c, m) in maxs.iter_mut().enumerate() {
                *m = (*m).max(self.vwgt[v * self.ncon + c]);
            }
        }
        maxs
    }

    /// Edge-cut of an assignment: total weight of edges whose endpoints
    /// live in different parts.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len()` differs from the vertex count.
    #[allow(clippy::needless_range_loop)]
    pub fn edge_cut(&self, assignment: &[u32]) -> u64 {
        assert_eq!(assignment.len(), self.num_vertices());
        let mut cut = 0u64;
        for v in 0..self.num_vertices() as u32 {
            for (u, w) in self.neighbors(v) {
                if u > v && assignment[u as usize] != assignment[v as usize] {
                    cut += w;
                }
            }
        }
        cut
    }

    /// Per-part, per-constraint weight sums of an assignment.
    #[allow(clippy::needless_range_loop)]
    pub fn part_weights(&self, assignment: &[u32], nparts: usize) -> Vec<Vec<u64>> {
        let mut pw = vec![vec![0u64; self.ncon]; nparts];
        for v in 0..self.num_vertices() {
            let p = assignment[v] as usize;
            for c in 0..self.ncon {
                pw[p][c] += self.vwgt[v * self.ncon + c];
            }
        }
        pw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Graph {
        let mut b = GraphBuilder::new(1);
        let v0 = b.add_vertex(&[1]);
        let v1 = b.add_vertex(&[2]);
        let v2 = b.add_vertex(&[3]);
        b.add_edge(v0, v1, 10);
        b.add_edge(v1, v2, 20);
        b.build()
    }

    #[test]
    fn csr_roundtrip() {
        let g = path3();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        let n1: Vec<_> = g.neighbors(1).collect();
        assert_eq!(n1.len(), 2);
        assert!(n1.contains(&(0, 10)));
        assert!(n1.contains(&(2, 20)));
    }

    #[test]
    fn parallel_edges_merge() {
        let mut b = GraphBuilder::new(1);
        let v0 = b.add_vertex(&[1]);
        let v1 = b.add_vertex(&[1]);
        b.add_edge(v0, v1, 3);
        b.add_edge(v1, v0, 4);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0).next(), Some((1, 7)));
    }

    #[test]
    fn self_loops_dropped() {
        let mut b = GraphBuilder::new(1);
        let v0 = b.add_vertex(&[1]);
        b.add_edge(v0, v0, 5);
        let g = b.build();
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn edge_cut_and_part_weights() {
        let g = path3();
        let cut = g.edge_cut(&[0, 0, 1]);
        assert_eq!(cut, 20);
        let pw = g.part_weights(&[0, 0, 1], 2);
        assert_eq!(pw[0], vec![3]);
        assert_eq!(pw[1], vec![3]);
    }

    #[test]
    fn totals_and_maxima() {
        let g = path3();
        assert_eq!(g.total_weights(), vec![6]);
        assert_eq!(g.max_vertex_weights(), vec![3]);
    }

    #[test]
    fn multi_constraint_weights() {
        let mut b = GraphBuilder::new(2);
        b.add_vertex(&[4, 1]);
        b.add_vertex(&[0, 2]);
        let g = b.build();
        assert_eq!(g.vertex_weight(0), &[4, 1]);
        assert_eq!(g.total_weights(), vec![4, 3]);
    }

    #[test]
    #[should_panic(expected = "constraint arity")]
    fn wrong_arity_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_vertex(&[1]);
    }
}
