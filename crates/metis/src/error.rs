//! Typed partitioner failures and the refinement fuel meter.

use std::error::Error;
use std::fmt;

/// A failure of the multilevel partitioner.
///
/// The partitioner never panics on bad input: configuration problems
/// and exhausted work budgets surface here so callers (the GDP data
/// partitioner, ultimately the whole pipeline) can degrade gracefully.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MetisError {
    /// The [`crate::PartitionConfig`] is unusable as given.
    InvalidConfig {
        /// What is wrong with it.
        message: String,
    },
    /// The refinement fuel budget ran out before the partitioner
    /// converged.
    BudgetExceeded {
        /// The configured fuel limit that was exhausted.
        limit: u64,
    },
}

impl fmt::Display for MetisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetisError::InvalidConfig { message } => {
                write!(f, "invalid partitioner configuration: {message}")
            }
            MetisError::BudgetExceeded { limit } => {
                write!(f, "partitioner fuel budget of {limit} refinement steps exhausted")
            }
        }
    }
}

impl Error for MetisError {}

/// A work budget threaded through refinement and rebalancing.
///
/// Each boundary-vertex evaluation in [`crate::refine`] and each
/// eviction round in [`crate::rebalance`] spends one unit. When the
/// meter runs dry the refinement loops stop early and
/// [`crate::partition`] reports [`MetisError::BudgetExceeded`] instead
/// of spinning — the guard that turns a potential hang into a typed
/// error.
#[derive(Clone, Debug)]
pub struct Fuel {
    limit: Option<u64>,
    spent: u64,
}

impl Fuel {
    /// A meter that never runs out.
    pub fn unlimited() -> Self {
        Fuel { limit: None, spent: 0 }
    }

    /// A meter with `limit` units of work.
    pub fn limited(limit: u64) -> Self {
        Fuel { limit: Some(limit), spent: 0 }
    }

    /// Builds a meter from an optional limit (`None` = unlimited).
    pub fn from_limit(limit: Option<u64>) -> Self {
        Fuel { limit, spent: 0 }
    }

    /// Spends one unit. Returns `false` when the budget is exhausted
    /// (callers must stop working).
    pub fn spend(&mut self) -> bool {
        self.spent = self.spent.saturating_add(1);
        !self.is_exhausted()
    }

    /// Bulk-spends `units` at once — absorbing work metered elsewhere,
    /// such as parallel restart tries that ran on their own unlimited
    /// meters. Returns `false` when the budget is exhausted.
    pub fn charge(&mut self, units: u64) -> bool {
        self.spent = self.spent.saturating_add(units);
        !self.is_exhausted()
    }

    /// Whether more work was requested than the budget allows.
    pub fn is_exhausted(&self) -> bool {
        match self.limit {
            Some(limit) => self.spent > limit,
            None => false,
        }
    }

    /// Units spent so far.
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// The configured limit, if any.
    pub fn limit(&self) -> Option<u64> {
        self.limit
    }
}

impl Default for Fuel {
    fn default() -> Self {
        Fuel::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let mut fuel = Fuel::unlimited();
        for _ in 0..10_000 {
            assert!(fuel.spend());
        }
        assert!(!fuel.is_exhausted());
    }

    #[test]
    fn limited_exhausts_at_limit() {
        let mut fuel = Fuel::limited(3);
        assert!(fuel.spend());
        assert!(fuel.spend());
        assert!(fuel.spend());
        assert!(!fuel.spend(), "fourth unit exceeds the budget");
        assert!(fuel.is_exhausted());
        assert_eq!(fuel.spent(), 4);
    }

    #[test]
    fn errors_display() {
        let e = MetisError::InvalidConfig { message: "nparts is zero".into() };
        assert!(e.to_string().contains("nparts"));
        let e = MetisError::BudgetExceeded { limit: 7 };
        assert!(e.to_string().contains('7'));
    }
}
