//! # mcpart-metis — multilevel k-way graph partitioning
//!
//! A from-scratch reimplementation of the multilevel graph-partitioning
//! scheme of METIS (Karypis & Kumar), which the paper's Global Data
//! Partitioning pass uses to split the coarsened program-level data-flow
//! graph across cluster memories:
//!
//! 1. **Coarsening** — heavy-edge matching collapses the graph while
//!    conserving vertex weights;
//! 2. **Initial partitioning** — greedy graph growing with restarts at
//!    the coarsest level;
//! 3. **Uncoarsening** — the partition is projected back level by level
//!    and polished with greedy Fiduccia–Mattheyses-style refinement.
//!
//! Vertices carry *multiple* balance constraints (the paper balances
//! data-object bytes while the example of Figure 5 also balances
//! per-block operation counts), and per-part target fractions model
//! clusters with unequal memory capacities.
//!
//! ```
//! use mcpart_metis::{GraphBuilder, PartitionConfig, partition};
//!
//! let mut b = GraphBuilder::new(1);
//! let v: Vec<u32> = (0..4).map(|_| b.add_vertex(&[1])).collect();
//! b.add_edge(v[0], v[1], 10);
//! b.add_edge(v[2], v[3], 10);
//! b.add_edge(v[1], v[2], 1); // light bridge: the natural cut
//! let graph = b.build();
//! let result = partition(&graph, &PartitionConfig::new(2)).expect("partitions");
//! assert_eq!(result.cut, 1);
//! assert_eq!(result.assignment[0], result.assignment[1]);
//! assert_eq!(result.assignment[2], result.assignment[3]);
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![warn(missing_docs)]

mod balance;
mod coarsen;
mod error;
mod graph;
mod initial;
mod kway;
mod refine;

pub use balance::BalanceModel;
pub use coarsen::{coarsen_once, default_max_vwgt, CoarseLevel, CoarsenWorkspace};
pub use error::{Fuel, MetisError};
pub use graph::{Graph, GraphBuilder};
pub use initial::initial_partition;
pub use kway::{partition, PartitionConfig, Partitioning};
pub use refine::{rebalance, refine};
