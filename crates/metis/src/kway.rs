//! The multilevel k-way driver.

use crate::balance::BalanceModel;
use crate::coarsen::{coarsen_once, default_max_vwgt, CoarseLevel, CoarsenWorkspace};
use crate::error::{Fuel, MetisError};
use crate::graph::Graph;
use crate::initial::initial_partition;
use crate::refine::{rebalance, refine};
use mcpart_rng::rngs::SmallRng;
use mcpart_rng::SeedableRng;

/// Configuration of a k-way partitioning run.
#[derive(Clone, Debug)]
pub struct PartitionConfig {
    /// Number of parts.
    pub nparts: usize,
    /// Allowed relative imbalance ε: a part may weigh up to
    /// `target × (1 + ε)` in each constraint. The paper's data
    /// partitioner defaults to 10%.
    pub imbalance: f64,
    /// Per-part target fractions. `None` means uniform. Used to model
    /// clusters with unequal memory capacities.
    pub target_fractions: Option<Vec<f64>>,
    /// RNG seed (the partitioner is fully deterministic given a seed).
    pub seed: u64,
    /// Stop coarsening at roughly this many vertices.
    pub coarsen_to: usize,
    /// Initial-partition restarts at the coarsest level.
    pub initial_tries: usize,
    /// Refinement passes per uncoarsening level.
    pub refine_passes: usize,
    /// Total refinement work budget (boundary-vertex evaluations plus
    /// rebalance rounds) across the whole run. `None` = unlimited.
    /// Exhausting it yields [`MetisError::BudgetExceeded`].
    pub fuel: Option<u64>,
    /// Worker threads for the initial-partition restarts: `1` =
    /// sequential, `0` = all available cores. Results are identical for
    /// every value (restarts run on independent derived RNG streams and
    /// reduce in try order); with a finite [`PartitionConfig::fuel`]
    /// the restarts stay sequential so the exhaustion point is exact.
    pub jobs: usize,
    /// Observability sink; the default records nothing.
    pub obs: mcpart_obs::Obs,
}

impl PartitionConfig {
    /// A sensible default for `nparts` parts: 10% imbalance, 4
    /// restarts, 8 refinement passes.
    pub fn new(nparts: usize) -> Self {
        PartitionConfig {
            nparts,
            imbalance: 0.10,
            target_fractions: None,
            seed: 0x5eed,
            coarsen_to: (nparts * 16).max(32),
            initial_tries: 4,
            refine_passes: 8,
            fuel: None,
            jobs: 1,
            obs: mcpart_obs::Obs::disabled(),
        }
    }

    /// Sets the imbalance tolerance.
    pub fn with_imbalance(mut self, eps: f64) -> Self {
        self.imbalance = eps;
        self
    }

    /// Sets per-part target fractions (they are normalized internally).
    pub fn with_target_fractions(mut self, fractions: Vec<f64>) -> Self {
        self.target_fractions = Some(fractions);
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the refinement fuel budget (`None` = unlimited).
    pub fn with_fuel(mut self, fuel: Option<u64>) -> Self {
        self.fuel = fuel;
        self
    }

    /// Sets the worker-thread count for initial-partition restarts
    /// (`0` = all available cores; never changes results).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Attaches an observability sink ([`partition`] records a span
    /// with coarsening/cut/fuel statistics into it).
    pub fn with_obs(mut self, obs: mcpart_obs::Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Checks the configuration against a concrete graph.
    fn validate(&self, graph: &Graph) -> Result<(), MetisError> {
        let invalid = |message: String| MetisError::InvalidConfig { message };
        if self.nparts == 0 {
            return Err(invalid("nparts must be positive".into()));
        }
        if !self.imbalance.is_finite() || self.imbalance < 0.0 {
            return Err(invalid(format!("imbalance {} must be finite and >= 0", self.imbalance)));
        }
        if let Some(fractions) = &self.target_fractions {
            if fractions.len() != self.nparts {
                return Err(invalid(format!(
                    "{} target fractions given for {} parts",
                    fractions.len(),
                    self.nparts
                )));
            }
            if fractions.iter().any(|f| !f.is_finite() || *f <= 0.0) {
                return Err(invalid("target fractions must be finite and positive".into()));
            }
        }
        let _ = graph;
        Ok(())
    }
}

/// The result of a partitioning run.
#[derive(Clone, PartialEq, Debug)]
pub struct Partitioning {
    /// Part of each vertex.
    pub assignment: Vec<u32>,
    /// Total weight of cut edges.
    pub cut: u64,
    /// Flat per-part, per-constraint weights
    /// (`part_weights[p * ncon + c]`).
    pub part_weights: Vec<u64>,
    /// Whether every part is within its balance limit.
    pub balanced: bool,
}

impl Partitioning {
    /// Maximum over parts/constraints of `weight / ideal` (1.0 =
    /// perfectly balanced). Useful for reporting.
    pub fn max_overweight(&self, graph: &Graph, config: &PartitionConfig) -> f64 {
        let balance = make_balance(graph, config);
        balance.max_overweight(&self.part_weights)
    }
}

fn make_balance(graph: &Graph, config: &PartitionConfig) -> BalanceModel {
    match &config.target_fractions {
        Some(f) => BalanceModel::new(graph, config.nparts, f, config.imbalance),
        None => BalanceModel::uniform(graph, config.nparts, config.imbalance),
    }
}

/// Partitions `graph` into `config.nparts` parts, minimizing edge cut
/// subject to multi-constraint balance — a reimplementation of the
/// multilevel k-way scheme of METIS used by the paper's data
/// partitioner.
///
/// # Errors
///
/// Returns [`MetisError::InvalidConfig`] for an unusable configuration
/// (zero parts, malformed target fractions, non-finite imbalance) and
/// [`MetisError::BudgetExceeded`] when `config.fuel` ran out before
/// refinement converged.
pub fn partition(graph: &Graph, config: &PartitionConfig) -> Result<Partitioning, MetisError> {
    config.validate(graph)?;
    let clock = std::time::Instant::now();
    let n = graph.num_vertices();
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut fuel = Fuel::from_limit(config.fuel);

    if config.nparts == 1 || n <= 1 {
        let assignment = vec![0u32; n];
        let result = finish(graph, config, assignment);
        record_partition(config, clock, n, 0, n, 0, &result);
        return Ok(result);
    }

    // Coarsening phase. The finest graph is borrowed, never cloned:
    // each level owns its coarse graph and the driver looks at
    // `levels.last()` for the current finest-so-far.
    let mut levels: Vec<CoarseLevel> = Vec::new();
    let mut ws = CoarsenWorkspace::default();
    loop {
        let current = levels.last().map_or(graph, |l| &l.graph);
        if current.num_vertices() <= config.coarsen_to {
            break;
        }
        let cap = default_max_vwgt(current, config.nparts.max(2) * 4);
        match coarsen_once(current, &cap, config.jobs, &mut ws) {
            Some(level) => levels.push(level),
            None => break,
        }
    }
    record_coarsening(config, graph, &levels);

    // Initial partition at the coarsest level.
    let coarsest_graph = levels.last().map_or(graph, |l| &l.graph);
    let coarse_balance = make_balance(coarsest_graph, config);
    let mut assignment = initial_partition(
        coarsest_graph,
        &coarse_balance,
        config.initial_tries,
        config.jobs,
        &mut fuel,
        &mut rng,
    );

    // Uncoarsening with refinement. Level `idx` refines on the graph one
    // step finer: the original graph for the first stored level,
    // otherwise the previous level's coarse graph.
    for idx in (0..levels.len()).rev() {
        let fine_graph = if idx == 0 { graph } else { &levels[idx - 1].graph };
        let mut fine_assignment = vec![0u32; fine_graph.num_vertices()];
        for (fine_v, &coarse_v) in levels[idx].map.iter().enumerate() {
            fine_assignment[fine_v] = assignment[coarse_v as usize];
        }
        let balance = make_balance(fine_graph, config);
        let mut pw = fine_graph.part_weights(&fine_assignment, config.nparts);
        rebalance(fine_graph, &mut fine_assignment, &balance, &mut pw, &mut fuel, &mut rng);
        refine(
            fine_graph,
            &mut fine_assignment,
            &balance,
            &mut pw,
            config.refine_passes,
            &mut fuel,
            &mut rng,
        );
        assignment = fine_assignment;
    }

    // Final polish on the original graph (also covers the no-coarsening
    // path).
    let balance = make_balance(graph, config);
    let mut pw = graph.part_weights(&assignment, config.nparts);
    rebalance(graph, &mut assignment, &balance, &mut pw, &mut fuel, &mut rng);
    refine(graph, &mut assignment, &balance, &mut pw, config.refine_passes, &mut fuel, &mut rng);
    if fuel.is_exhausted() {
        return Err(MetisError::BudgetExceeded { limit: config.fuel.unwrap_or(0) });
    }
    let coarsest = levels.last().map_or(n, |l| l.graph.num_vertices());
    let result = finish(graph, config, assignment);
    record_partition(config, clock, n, levels.len(), coarsest, fuel.spent(), &result);
    Ok(result)
}

/// Records the coarsening trajectory: level count, matched fraction
/// per level (in thousandths), and the peak resident graph bytes (the
/// original CSR plus every coarse level, since all levels stay live
/// through uncoarsening).
fn record_coarsening(config: &PartitionConfig, graph: &Graph, levels: &[CoarseLevel]) {
    if !config.obs.is_enabled() {
        return;
    }
    config.obs.counter("metis", "coarsen_levels", levels.len() as i64);
    let mut fine_n = graph.num_vertices();
    let mut peak = graph.csr_bytes();
    for (i, level) in levels.iter().enumerate() {
        let coarse_n = level.graph.num_vertices();
        let matched = 2 * fine_n.saturating_sub(coarse_n);
        config.obs.counter_args(
            "metis",
            "matched_frac_x1000",
            (matched * 1000 / fine_n.max(1)) as i64,
            &[("level", i as i64)],
        );
        peak += level.graph.csr_bytes();
        fine_n = coarse_n;
    }
    config.obs.counter("metis", "peak_graph_bytes", peak as i64);
}

/// Records the whole run as one `metis/partition` span: coarsening
/// shape, final cut and balance, fuel consumed.
fn record_partition(
    config: &PartitionConfig,
    clock: std::time::Instant,
    vertices: usize,
    levels: usize,
    coarsest: usize,
    fuel_spent: u64,
    result: &Partitioning,
) {
    config.obs.span_args(
        "metis",
        "partition",
        clock,
        &[
            ("vertices", vertices as i64),
            ("levels", levels as i64),
            ("coarsest_vertices", coarsest as i64),
            ("cut", result.cut as i64),
            ("balanced", result.balanced as i64),
            ("fuel_spent", fuel_spent as i64),
        ],
    );
}

fn finish(graph: &Graph, config: &PartitionConfig, assignment: Vec<u32>) -> Partitioning {
    let balance = make_balance(graph, config);
    let part_weights = graph.part_weights(&assignment, config.nparts);
    let cut = graph.edge_cut(&assignment);
    let balanced = balance.is_balanced(&part_weights);
    Partitioning { assignment, cut, part_weights, balanced }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn grid(w: usize, h: usize) -> Graph {
        let mut b = GraphBuilder::new(1);
        for _ in 0..w * h {
            b.add_vertex(&[1]);
        }
        for y in 0..h {
            for x in 0..w {
                let v = (y * w + x) as u32;
                if x + 1 < w {
                    b.add_edge(v, v + 1, 1);
                }
                if y + 1 < h {
                    b.add_edge(v, v + w as u32, 1);
                }
            }
        }
        b.build()
    }

    #[test]
    fn partition_records_an_obs_span() {
        let g = grid(8, 8);
        let obs = mcpart_obs::Obs::enabled();
        let cfg = PartitionConfig::new(2).with_obs(obs.clone());
        let result = partition(&g, &cfg).expect("partitions");
        let events = obs.events();
        let e = events
            .iter()
            .find(|e| e.cat == "metis" && e.name == "partition")
            .expect("one span for the whole run");
        let arg = |k: &str| e.args.iter().find(|(n, _)| n == k).map(|&(_, v)| v);
        assert_eq!(arg("vertices"), Some(64));
        assert_eq!(arg("cut"), Some(result.cut as i64));
        assert_eq!(arg("balanced"), Some(result.balanced as i64));
        // The coarsening trajectory counters ride along.
        let levels = obs.last_counter("metis", "coarsen_levels").expect("levels counter");
        assert!(levels >= 1, "levels = {levels}");
        let peak = obs.last_counter("metis", "peak_graph_bytes").expect("peak counter");
        assert!(peak >= g.csr_bytes() as i64, "peak = {peak}");
        let frac = obs.last_counter("metis", "matched_frac_x1000").expect("matched fraction");
        assert!((0..=1000).contains(&frac), "frac = {frac}");
    }

    #[test]
    fn bisects_large_grid_well() {
        let g = grid(16, 16);
        let result = partition(&g, &PartitionConfig::new(2)).expect("partitions");
        assert!(result.balanced, "{:?}", result.part_weights);
        // Optimal bisection of a 16x16 grid cuts 16 edges.
        assert!(result.cut <= 24, "cut = {}", result.cut);
        assert_eq!(result.assignment.len(), 256);
    }

    #[test]
    fn four_way_partition_of_grid() {
        let g = grid(16, 16);
        let result = partition(&g, &PartitionConfig::new(4)).expect("partitions");
        assert!(result.balanced, "{:?}", result.part_weights);
        assert!(result.cut <= 56, "cut = {}", result.cut);
        for p in 0..4u32 {
            assert!(result.assignment.contains(&p));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = grid(10, 10);
        let cfg = PartitionConfig::new(2).with_seed(99);
        let a = partition(&g, &cfg).expect("partitions");
        let b = partition(&g, &cfg).expect("partitions");
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.cut, b.cut);
    }

    #[test]
    fn zero_parts_is_typed_error() {
        let g = grid(3, 3);
        let e = partition(&g, &PartitionConfig::new(0)).unwrap_err();
        assert!(matches!(e, MetisError::InvalidConfig { .. }), "{e}");
    }

    #[test]
    fn bad_target_fractions_are_typed_errors() {
        let g = grid(3, 3);
        let cfg = PartitionConfig::new(2).with_target_fractions(vec![1.0]);
        assert!(matches!(partition(&g, &cfg).unwrap_err(), MetisError::InvalidConfig { .. }));
        let cfg = PartitionConfig::new(2).with_target_fractions(vec![1.0, -2.0]);
        assert!(matches!(partition(&g, &cfg).unwrap_err(), MetisError::InvalidConfig { .. }));
        let cfg = PartitionConfig::new(2).with_imbalance(f64::NAN);
        assert!(matches!(partition(&g, &cfg).unwrap_err(), MetisError::InvalidConfig { .. }));
    }

    #[test]
    fn tiny_fuel_budget_is_typed_error() {
        let g = grid(16, 16);
        let cfg = PartitionConfig::new(2).with_fuel(Some(3));
        let e = partition(&g, &cfg).unwrap_err();
        assert!(matches!(e, MetisError::BudgetExceeded { limit: 3 }), "{e}");
    }

    #[test]
    fn generous_fuel_budget_succeeds() {
        let g = grid(8, 8);
        let cfg = PartitionConfig::new(2).with_fuel(Some(1_000_000));
        let result = partition(&g, &cfg).expect("enough fuel");
        assert!(result.balanced);
    }

    #[test]
    fn single_part_trivial() {
        let g = grid(3, 3);
        let result = partition(&g, &PartitionConfig::new(1)).expect("partitions");
        assert_eq!(result.cut, 0);
        assert!(result.assignment.iter().all(|&p| p == 0));
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(1).build();
        let result = partition(&g, &PartitionConfig::new(2)).expect("partitions");
        assert!(result.assignment.is_empty());
        assert_eq!(result.cut, 0);
    }

    #[test]
    fn weighted_targets_shift_weight() {
        let g = grid(8, 8);
        let cfg =
            PartitionConfig::new(2).with_target_fractions(vec![3.0, 1.0]).with_imbalance(0.05);
        let result = partition(&g, &cfg).expect("partitions");
        let w0 = result.part_weights[0];
        let w1 = result.part_weights[1];
        assert!(w0 > w1 * 2, "w0={w0} w1={w1}");
    }

    #[test]
    fn weighted_fractions_and_multiconstraint_combine() {
        // Constraint 0 heavy on a few vertices, constraint 1 uniform,
        // 2:1 target fractions: both constraints respect the skew.
        let mut b = GraphBuilder::new(2);
        for i in 0..30u32 {
            let heavy = if i % 5 == 0 { 60 } else { 0 };
            b.add_vertex(&[heavy, 1]);
        }
        for i in 0..29u32 {
            b.add_edge(i, i + 1, 2);
        }
        let g = b.build();
        let cfg =
            PartitionConfig::new(2).with_target_fractions(vec![2.0, 1.0]).with_imbalance(0.25);
        let result = partition(&g, &cfg).expect("partitions");
        assert!(result.balanced, "{:?}", result.part_weights);
        // Part 0 should carry roughly twice of each constraint
        // (ncon = 2: constraint 1 of part p lives at `p * 2 + 1`).
        assert!(result.part_weights[1] > result.part_weights[3]);
    }

    #[test]
    fn zero_weight_vertices_follow_the_cut() {
        // Vertices with zero weight in all constraints are placed purely
        // by cut minimization.
        let mut b = GraphBuilder::new(1);
        let a = b.add_vertex(&[10]);
        let c = b.add_vertex(&[10]);
        let free = b.add_vertex(&[0]);
        b.add_edge(a, free, 100); // free wants to sit with a
        b.add_edge(free, c, 1);
        let g = b.build();
        let result = partition(&g, &PartitionConfig::new(2)).expect("partitions");
        assert_eq!(
            result.assignment[a as usize], result.assignment[free as usize],
            "zero-weight vertex should follow its heavy edge"
        );
        assert_ne!(result.assignment[a as usize], result.assignment[c as usize]);
    }

    #[test]
    fn respects_multi_constraint_balance() {
        // Constraint 0: only a few heavy vertices carry it (data size);
        // constraint 1: uniform (op count).
        let mut b = GraphBuilder::new(2);
        for i in 0..32u32 {
            let data = if i % 8 == 0 { 100 } else { 0 };
            b.add_vertex(&[data, 1]);
        }
        for i in 0..31u32 {
            b.add_edge(i, i + 1, 1);
        }
        let g = b.build();
        let result =
            partition(&g, &PartitionConfig::new(2).with_imbalance(0.3)).expect("partitions");
        assert!(result.balanced, "{:?}", result.part_weights);
        // Both heavy-data parts get some of the 4 heavy vertices
        // (ncon = 2: constraint 0 of part p lives at `p * 2`).
        assert!(result.part_weights[0] > 0);
        assert!(result.part_weights[2] > 0);
    }
}
