//! Initial partitioning of the coarsest graph.

use crate::balance::BalanceModel;
use crate::error::Fuel;
use crate::graph::Graph;
use crate::refine::{rebalance, refine};
use mcpart_rng::rngs::SmallRng;
use mcpart_rng::seq::SliceRandom;
use mcpart_rng::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Greedy graph growing: grows each part from a random seed by
/// repeatedly absorbing the unassigned vertex most connected to it,
/// respecting balance limits when possible.
///
/// Connectivity is maintained incrementally: `conn[p][v]` is updated
/// when a neighbor of `v` joins part `p`, and a per-part lazy max-heap
/// orders candidates by `(connectivity, lowest index)` — the same
/// vertex a full rescan would select, found in O(log n) instead of
/// O(n · degree). The previous rescan-per-grown-vertex implementation
/// was quadratic and dominated million-op partitioning runs.
fn grow<R: Rng>(graph: &Graph, balance: &BalanceModel, rng: &mut R) -> Vec<u32> {
    let n = graph.num_vertices();
    let nparts = balance.nparts();
    let ncon = graph.num_constraints();
    const UNASSIGNED: u32 = u32::MAX;
    let mut assignment = vec![UNASSIGNED; n];
    let mut pw = vec![0u64; nparts * ncon];
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    let mut cursor = 0usize;
    let mut conn: Vec<Vec<i64>> = vec![vec![0i64; n]; nparts];
    // Heap entries are (connectivity, Reverse(vertex)): stale entries
    // (assigned vertex, superseded connectivity) are discarded on peek.
    let mut heaps: Vec<BinaryHeap<(i64, Reverse<u32>)>> = vec![BinaryHeap::new(); nparts];
    let mut remaining = n;

    // Target fill fraction per part; grow parts round-robin.
    'outer: for round in 0..n * nparts {
        let p = round % nparts;
        if remaining == 0 {
            break;
        }
        // Is part p already at its fair share? Use the most binding
        // constraint.
        let over = (0..ncon).any(|c| {
            balance.totals[c] > 0
                && pw[p * ncon + c] as f64 >= balance.targets[p] * balance.totals[c] as f64
        });
        if over && round < n * (nparts - 1).max(1) {
            continue;
        }
        // Pick the unassigned vertex most connected to part p (or the
        // next unassigned vertex if p has no boundary yet).
        let mut best: Option<u32> = None;
        while let Some(&(c, Reverse(v))) = heaps[p].peek() {
            if assignment[v as usize] != UNASSIGNED || conn[p][v as usize] != c {
                heaps[p].pop();
                continue;
            }
            if c > 0 {
                best = Some(v);
            }
            break;
        }
        let v = match best {
            Some(v) => v,
            None => {
                // Seed: next unassigned vertex in random order.
                loop {
                    if cursor >= order.len() {
                        break 'outer;
                    }
                    let v = order[cursor];
                    cursor += 1;
                    if assignment[v as usize] == UNASSIGNED {
                        break v;
                    }
                }
            }
        };
        let vw = graph.vertex_weight(v);
        let row = |q: usize| q * ncon..(q + 1) * ncon;
        let target = if balance.fits(p, &pw[row(p)], vw) {
            p
        } else {
            // Spill to the emptiest feasible part (by overweight), or the
            // lightest part overall if none fit.
            (0..nparts)
                .filter(|&q| balance.fits(q, &pw[row(q)], vw))
                .min_by(|&a, &b| {
                    let oa = balance.row_overweight(&pw[row(a)]);
                    let ob = balance.row_overweight(&pw[row(b)]);
                    oa.total_cmp(&ob)
                })
                .unwrap_or_else(|| {
                    (0..nparts).min_by_key(|&q| pw[row(q)].iter().sum::<u64>()).unwrap_or(0)
                })
        };
        for (c, &w) in vw.iter().enumerate() {
            pw[target * ncon + c] += w;
        }
        assignment[v as usize] = target as u32;
        remaining -= 1;
        for (u, w) in graph.neighbors(v) {
            if assignment[u as usize] == UNASSIGNED {
                conn[target][u as usize] += w as i64;
                heaps[target].push((conn[target][u as usize], Reverse(u)));
            }
        }
    }
    // Any stragglers go to the lightest part.
    #[allow(clippy::needless_range_loop)]
    for v in 0..n {
        if assignment[v] == UNASSIGNED {
            let p = (0..nparts)
                .min_by_key(|&q| pw[q * ncon..(q + 1) * ncon].iter().sum::<u64>())
                .unwrap_or(0);
            for (c, &w) in graph.vertex_weight(v as u32).iter().enumerate() {
                pw[p * ncon + c] += w;
            }
            assignment[v] = p as u32;
        }
    }
    assignment
}

/// Produces an initial partition of the (coarsest) graph: several
/// greedy-growing attempts, each polished by refinement, keeping the
/// best balanced result (falling back to the lowest-cut unbalanced one).
///
/// Each try runs on its own RNG stream seeded from `rng` up front, so
/// the caller's stream advances by exactly `tries` draws and the tries
/// are order-independent. With unlimited `fuel` the tries fan out over
/// `jobs` workers ([`mcpart_par::parallel_map`]) and reduce in try
/// order (first best wins) — the result is identical for every `jobs`
/// value. With a finite budget the tries stay sequential so the
/// exhaustion point is deterministic; the shared meter is charged for
/// parallel tries' work afterwards either way.
pub fn initial_partition<R: Rng>(
    graph: &Graph,
    balance: &BalanceModel,
    tries: usize,
    jobs: usize,
    fuel: &mut Fuel,
    rng: &mut R,
) -> Vec<u32> {
    let tries = tries.max(1);
    let seeds: Vec<u64> = (0..tries).map(|_| rng.next_u64()).collect();
    let run_try = |seed: u64, fuel: &mut Fuel| -> (Vec<u32>, bool, u64) {
        let mut trng = SmallRng::seed_from_u64(seed);
        let mut assignment = grow(graph, balance, &mut trng);
        let mut pw = graph.part_weights(&assignment, balance.nparts());
        rebalance(graph, &mut assignment, balance, &mut pw, fuel, &mut trng);
        refine(graph, &mut assignment, balance, &mut pw, 4, fuel, &mut trng);
        let balanced = balance.is_balanced(&pw);
        let cut = graph.edge_cut(&assignment);
        (assignment, balanced, cut)
    };
    let results: Vec<(Vec<u32>, bool, u64)> = if fuel.limit().is_none() && jobs != 1 {
        let outs = mcpart_par::parallel_map(jobs, &seeds, |_, &seed| {
            let mut local = Fuel::unlimited();
            let result = run_try(seed, &mut local);
            (result, local.spent())
        });
        let mut total = 0u64;
        let results = outs
            .into_iter()
            .map(|(result, spent)| {
                total += spent;
                result
            })
            .collect();
        fuel.charge(total);
        results
    } else {
        seeds.iter().map(|&seed| run_try(seed, fuel)).collect()
    };
    let mut best: Option<(Vec<u32>, bool, u64)> = None;
    for (assignment, balanced, cut) in results {
        let better = match &best {
            None => true,
            Some((_, bbal, bcut)) => match (balanced, *bbal) {
                (true, false) => true,
                (false, true) => false,
                _ => cut < *bcut,
            },
        };
        if better {
            best = Some((assignment, balanced, cut));
        }
    }
    match best {
        Some((assignment, _, _)) => assignment,
        // Unreachable in practice (the loop runs at least once), but a
        // quiet fallback beats a panic on the partitioning hot path.
        None => vec![0u32; graph.num_vertices()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use mcpart_rng::rngs::SmallRng;
    use mcpart_rng::SeedableRng;

    fn grid(w: usize, h: usize) -> Graph {
        let mut b = GraphBuilder::new(1);
        for _ in 0..w * h {
            b.add_vertex(&[1]);
        }
        for y in 0..h {
            for x in 0..w {
                let v = (y * w + x) as u32;
                if x + 1 < w {
                    b.add_edge(v, v + 1, 1);
                }
                if y + 1 < h {
                    b.add_edge(v, v + w as u32, 1);
                }
            }
        }
        b.build()
    }

    #[test]
    fn bisection_of_grid_is_balanced() {
        let g = grid(6, 4);
        let balance = BalanceModel::uniform(&g, 2, 0.1);
        let mut rng = SmallRng::seed_from_u64(11);
        let assignment = initial_partition(&g, &balance, 4, 1, &mut Fuel::unlimited(), &mut rng);
        let pw = g.part_weights(&assignment, 2);
        assert!(balance.is_balanced(&pw), "{pw:?}");
        // A 6x4 grid has a 4-edge bisection; allow some slack.
        assert!(g.edge_cut(&assignment) <= 8, "cut = {}", g.edge_cut(&assignment));
    }

    #[test]
    fn four_way_partition_covers_all_parts() {
        let g = grid(8, 8);
        let balance = BalanceModel::uniform(&g, 4, 0.1);
        let mut rng = SmallRng::seed_from_u64(2);
        let assignment = initial_partition(&g, &balance, 4, 1, &mut Fuel::unlimited(), &mut rng);
        for p in 0..4u32 {
            assert!(assignment.contains(&p), "part {p} empty");
        }
        let pw = g.part_weights(&assignment, 4);
        assert!(balance.is_balanced(&pw), "{pw:?}");
    }

    #[test]
    fn single_vertex_graph() {
        let mut b = GraphBuilder::new(1);
        b.add_vertex(&[5]);
        let g = b.build();
        let balance = BalanceModel::uniform(&g, 2, 0.1);
        let mut rng = SmallRng::seed_from_u64(2);
        let assignment = initial_partition(&g, &balance, 2, 1, &mut Fuel::unlimited(), &mut rng);
        assert_eq!(assignment.len(), 1);
    }

    #[test]
    fn parallel_restarts_match_sequential() {
        let g = grid(8, 8);
        let balance = BalanceModel::uniform(&g, 2, 0.1);
        let run = |jobs: usize| {
            let mut rng = SmallRng::seed_from_u64(17);
            let mut fuel = Fuel::unlimited();
            let assignment = initial_partition(&g, &balance, 6, jobs, &mut fuel, &mut rng);
            // The caller's stream must advance identically too.
            (assignment, fuel.spent(), rng.next_u64())
        };
        let seq = run(1);
        for jobs in [2, 4, 8] {
            assert_eq!(run(jobs), seq, "jobs={jobs}");
        }
    }
}
