//! Runtime values of the functional interpreter.

use mcpart_ir::ObjectId;
use std::fmt;

/// A dynamic value: integer, float, or a pointer into a data object.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Value {
    /// A 64-bit signed integer.
    Int(i64),
    /// A double-precision float.
    Float(f64),
    /// A pointer: base object plus byte offset.
    Ptr {
        /// The object pointed into.
        obj: ObjectId,
        /// Byte offset from the object base.
        offset: i64,
    },
}

impl Value {
    /// The integer content.
    ///
    /// # Errors
    ///
    /// Returns a type description when the value is not an integer.
    pub fn as_int(self) -> Result<i64, &'static str> {
        match self {
            Value::Int(v) => Ok(v),
            Value::Float(_) => Err("expected int, found float"),
            Value::Ptr { .. } => Err("expected int, found pointer"),
        }
    }

    /// The float content.
    ///
    /// # Errors
    ///
    /// Returns a type description when the value is not a float.
    pub fn as_float(self) -> Result<f64, &'static str> {
        match self {
            Value::Float(v) => Ok(v),
            Value::Int(_) => Err("expected float, found int"),
            Value::Ptr { .. } => Err("expected float, found pointer"),
        }
    }

    /// Truthiness for branches: nonzero integer, nonzero float, or any
    /// pointer.
    pub fn is_truthy(self) -> bool {
        match self {
            Value::Int(v) => v != 0,
            Value::Float(v) => v != 0.0,
            Value::Ptr { .. } => true,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Ptr { obj, offset } => write!(f, "&{obj}+{offset}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64).as_int().unwrap(), 3);
        assert_eq!(Value::from(2.5f64).as_float().unwrap(), 2.5);
        assert!(Value::Float(1.0).as_int().is_err());
        assert!(Value::Int(1).as_float().is_err());
    }

    #[test]
    fn truthiness() {
        assert!(Value::Int(5).is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(!Value::Float(0.0).is_truthy());
        assert!(Value::Ptr { obj: ObjectId(0), offset: 0 }.is_truthy());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Ptr { obj: ObjectId(2), offset: 8 }.to_string(), "&obj2+8");
    }
}
