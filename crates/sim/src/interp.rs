//! The functional IR interpreter.
//!
//! Executes a [`Program`] on concrete inputs, producing the return
//! value, a memory snapshot (for semantic comparison between program
//! variants), and an execution [`Profile`] (block frequencies and heap
//! allocation sizes) — the profile the paper's analyses consume.

use crate::memory::{MemError, Memory};
use crate::value::Value;
use mcpart_ir::{
    Cmp, EntityMap, FloatBinOp, FuncId, IntBinOp, Opcode, Profile, Program, Terminator,
};

/// Interpreter limits.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExecConfig {
    /// Maximum executed operations before aborting.
    pub step_limit: u64,
    /// Maximum call depth.
    pub max_call_depth: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig { step_limit: 200_000_000, max_call_depth: 256 }
    }
}

/// An execution failure.
#[derive(Clone, PartialEq, Debug)]
pub enum ExecError {
    /// A memory access failed.
    Mem(MemError),
    /// An operand had the wrong runtime type.
    Type(&'static str),
    /// Integer division by zero.
    DivByZero,
    /// The step limit was exceeded (runaway loop).
    StepLimit,
    /// The call-depth limit was exceeded.
    CallDepth,
    /// A register was read before any write.
    UndefinedRead,
    /// A call expected at most one result register.
    MultiResultCall,
    /// The function's argument count did not match its parameters.
    ArgCount,
    /// A block had no terminator (the program was never verified).
    MissingTerminator,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Mem(e) => write!(f, "memory error: {e}"),
            ExecError::Type(m) => write!(f, "type error: {m}"),
            ExecError::DivByZero => f.write_str("integer division by zero"),
            ExecError::StepLimit => f.write_str("step limit exceeded"),
            ExecError::CallDepth => f.write_str("call depth exceeded"),
            ExecError::UndefinedRead => f.write_str("read of undefined register"),
            ExecError::MultiResultCall => f.write_str("calls may define at most one register"),
            ExecError::ArgCount => f.write_str("argument count mismatch"),
            ExecError::MissingTerminator => {
                f.write_str("block has no terminator (unverified program)")
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl From<MemError> for ExecError {
    fn from(e: MemError) -> Self {
        ExecError::Mem(e)
    }
}

/// Dynamic operation counts gathered during a run, for observability
/// (`sim/*` counters) and workload characterization.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ExecStats {
    /// Dynamic loads executed.
    pub loads: u64,
    /// Dynamic stores executed.
    pub stores: u64,
    /// Dynamic `malloc`s executed.
    pub mallocs: u64,
    /// Function calls executed (the entry call excluded).
    pub calls: u64,
}

/// The outcome of a program run.
#[derive(Clone, PartialEq, Debug)]
pub struct ExecResult {
    /// Value returned by the entry function.
    pub return_value: Option<Value>,
    /// Final byte image of every data object (globals and heap arenas),
    /// for semantic equivalence checks.
    pub memory: Vec<Vec<u8>>,
    /// Operations executed.
    pub steps: u64,
    /// Dynamic operation-mix counters.
    pub stats: ExecStats,
    /// The gathered execution profile.
    pub profile: Profile,
}

struct Interp<'a> {
    program: &'a Program,
    mem: Memory,
    config: ExecConfig,
    steps: u64,
    stats: ExecStats,
    block_counts: EntityMap<FuncId, EntityMap<mcpart_ir::BlockId, u64>>,
}

impl<'a> Interp<'a> {
    fn step(&mut self) -> Result<(), ExecError> {
        self.steps += 1;
        if self.steps > self.config.step_limit {
            return Err(ExecError::StepLimit);
        }
        Ok(())
    }

    fn exec_function(
        &mut self,
        func: FuncId,
        args: &[Value],
        depth: usize,
    ) -> Result<Option<Value>, ExecError> {
        if depth > self.config.max_call_depth {
            return Err(ExecError::CallDepth);
        }
        let f = &self.program.functions[func];
        if args.len() != f.params.len() {
            return Err(ExecError::ArgCount);
        }
        let mut regs: Vec<Option<Value>> = vec![None; f.num_vregs];
        for (&p, &v) in f.params.iter().zip(args) {
            regs[p.0 as usize] = Some(v);
        }
        let mut block = f.entry;
        loop {
            self.block_counts[func][block] += 1;
            for &op_id in &f.blocks[block].ops {
                self.step()?;
                let op = &f.ops[op_id];
                let read = |regs: &[Option<Value>], i: usize| -> Result<Value, ExecError> {
                    regs[op.srcs[i].0 as usize].ok_or(ExecError::UndefinedRead)
                };
                let result: Option<Value> = match op.opcode {
                    Opcode::ConstInt(v) => Some(Value::Int(v)),
                    Opcode::ConstFloat(bits) => Some(Value::Float(f64::from_bits(bits))),
                    Opcode::AddrOf(obj) => Some(Value::Ptr { obj, offset: 0 }),
                    Opcode::IntBin(kind) => {
                        let a = read(&regs, 0)?;
                        let b = read(&regs, 1)?;
                        Some(int_bin(kind, a, b)?)
                    }
                    Opcode::IntCmp(cmp) => {
                        let a = read(&regs, 0)?;
                        let b = read(&regs, 1)?;
                        Some(Value::Int(compare(cmp, a, b)? as i64))
                    }
                    Opcode::Select => {
                        let c = read(&regs, 0)?;
                        Some(if c.is_truthy() { read(&regs, 1)? } else { read(&regs, 2)? })
                    }
                    Opcode::FloatBin(kind) => {
                        let a = read(&regs, 0)?.as_float().map_err(ExecError::Type)?;
                        let b = read(&regs, 1)?.as_float().map_err(ExecError::Type)?;
                        Some(Value::Float(match kind {
                            FloatBinOp::Add => a + b,
                            FloatBinOp::Sub => a - b,
                            FloatBinOp::Mul => a * b,
                            FloatBinOp::Div => a / b,
                        }))
                    }
                    Opcode::FloatCmp(cmp) => {
                        let a = read(&regs, 0)?.as_float().map_err(ExecError::Type)?;
                        let b = read(&regs, 1)?.as_float().map_err(ExecError::Type)?;
                        let r = match cmp {
                            Cmp::Eq => a == b,
                            Cmp::Ne => a != b,
                            Cmp::Lt => a < b,
                            Cmp::Le => a <= b,
                            Cmp::Gt => a > b,
                            Cmp::Ge => a >= b,
                        };
                        Some(Value::Int(r as i64))
                    }
                    Opcode::IntToFloat => {
                        let v = read(&regs, 0)?.as_int().map_err(ExecError::Type)?;
                        Some(Value::Float(v as f64))
                    }
                    Opcode::FloatToInt => {
                        let v = read(&regs, 0)?.as_float().map_err(ExecError::Type)?;
                        Some(Value::Int(v as i64))
                    }
                    Opcode::Load(width) => {
                        let addr = read(&regs, 0)?;
                        let Value::Ptr { obj, offset } = addr else {
                            return Err(ExecError::Type("load address is not a pointer"));
                        };
                        self.stats.loads += 1;
                        Some(self.mem.load(obj, offset, width)?)
                    }
                    Opcode::Store(width) => {
                        let addr = read(&regs, 0)?;
                        let value = read(&regs, 1)?;
                        let Value::Ptr { obj, offset } = addr else {
                            return Err(ExecError::Type("store address is not a pointer"));
                        };
                        self.stats.stores += 1;
                        self.mem.store(obj, offset, width, value)?;
                        None
                    }
                    Opcode::Malloc(site) => {
                        let size = read(&regs, 0)?.as_int().map_err(ExecError::Type)?;
                        self.stats.mallocs += 1;
                        let offset = self.mem.malloc(site, size.max(0) as u64);
                        Some(Value::Ptr { obj: site, offset })
                    }
                    Opcode::Move => Some(read(&regs, 0)?),
                    Opcode::BranchCond | Opcode::Jump | Opcode::Ret => None,
                    Opcode::Call(callee) => {
                        if op.dsts.len() > 1 {
                            return Err(ExecError::MultiResultCall);
                        }
                        let mut call_args = Vec::with_capacity(op.srcs.len());
                        for i in 0..op.srcs.len() {
                            call_args.push(read(&regs, i)?);
                        }
                        self.stats.calls += 1;
                        let ret = self.exec_function(callee, &call_args, depth + 1)?;
                        match (op.dsts.first(), ret) {
                            (Some(_), Some(v)) => Some(v),
                            (Some(_), None) => {
                                return Err(ExecError::Type("void call used as value"))
                            }
                            _ => None,
                        }
                    }
                };
                if let (Some(&dst), Some(v)) = (op.dsts.first(), result) {
                    regs[dst.0 as usize] = Some(v);
                }
            }
            match f.blocks[block].term.as_ref().ok_or(ExecError::MissingTerminator)? {
                Terminator::Jump(t) => block = *t,
                Terminator::Branch { cond, then_block, else_block } => {
                    let c = regs[cond.0 as usize].ok_or(ExecError::UndefinedRead)?;
                    block = if c.is_truthy() { *then_block } else { *else_block };
                }
                Terminator::Return(v) => {
                    return Ok(match v {
                        Some(v) => Some(regs[v.0 as usize].ok_or(ExecError::UndefinedRead)?),
                        None => None,
                    });
                }
            }
        }
    }
}

fn int_bin(kind: IntBinOp, a: Value, b: Value) -> Result<Value, ExecError> {
    use IntBinOp::*;
    // Pointer arithmetic: Add/Sub keep the base object.
    match (kind, a, b) {
        (Add, Value::Ptr { obj, offset }, Value::Int(v))
        | (Add, Value::Int(v), Value::Ptr { obj, offset }) => {
            return Ok(Value::Ptr { obj, offset: offset.wrapping_add(v) });
        }
        (Sub, Value::Ptr { obj, offset }, Value::Int(v)) => {
            return Ok(Value::Ptr { obj, offset: offset.wrapping_sub(v) });
        }
        (Sub, Value::Ptr { obj: oa, offset: a }, Value::Ptr { obj: ob, offset: b }) => {
            if oa == ob {
                return Ok(Value::Int(a.wrapping_sub(b)));
            }
            return Err(ExecError::Type("pointer difference across objects"));
        }
        _ => {}
    }
    let a = a.as_int().map_err(ExecError::Type)?;
    let b = b.as_int().map_err(ExecError::Type)?;
    let r = match kind {
        Add => a.wrapping_add(b),
        Sub => a.wrapping_sub(b),
        Mul => a.wrapping_mul(b),
        Div => {
            if b == 0 {
                return Err(ExecError::DivByZero);
            }
            a.wrapping_div(b)
        }
        Rem => {
            if b == 0 {
                return Err(ExecError::DivByZero);
            }
            a.wrapping_rem(b)
        }
        And => a & b,
        Or => a | b,
        Xor => a ^ b,
        Shl => a.wrapping_shl(b as u32 & 63),
        Shr => a.wrapping_shr(b as u32 & 63),
        Min => a.min(b),
        Max => a.max(b),
    };
    Ok(Value::Int(r))
}

fn compare(cmp: Cmp, a: Value, b: Value) -> Result<bool, ExecError> {
    let ord = match (a, b) {
        (Value::Int(a), Value::Int(b)) => a.cmp(&b),
        (Value::Ptr { obj: oa, offset: a }, Value::Ptr { obj: ob, offset: b }) => {
            (oa, a).cmp(&(ob, b))
        }
        _ => return Err(ExecError::Type("integer comparison of mixed types")),
    };
    Ok(match cmp {
        Cmp::Eq => ord.is_eq(),
        Cmp::Ne => ord.is_ne(),
        Cmp::Lt => ord.is_lt(),
        Cmp::Le => ord.is_le(),
        Cmp::Gt => ord.is_gt(),
        Cmp::Ge => ord.is_ge(),
    })
}

/// Runs `program` from its entry function with the given arguments.
///
/// # Errors
///
/// Propagates any [`ExecError`] raised during execution (bad memory
/// access, runaway loop, type confusion, ...).
pub fn run(program: &Program, args: &[Value], config: ExecConfig) -> Result<ExecResult, ExecError> {
    let mut interp = Interp {
        program,
        mem: Memory::new(program),
        config,
        steps: 0,
        stats: ExecStats::default(),
        block_counts: program
            .functions
            .values()
            .map(|f| EntityMap::with_default(f.blocks.len(), 0u64))
            .collect(),
    };
    let return_value = interp.exec_function(program.entry, args, 0)?;
    let profile = Profile {
        funcs: interp
            .block_counts
            .values()
            .map(|counts| mcpart_ir::FuncProfile { block_freq: counts.clone() })
            .collect(),
        heap_bytes: interp.mem.heap_bytes.clone(),
    };
    Ok(ExecResult {
        return_value,
        memory: interp.mem.snapshot(),
        steps: interp.steps,
        stats: interp.stats,
        profile,
    })
}

/// Runs a program and returns only its profile — the "profiling run" of
/// the paper's methodology (block frequencies + per-site heap bytes).
///
/// # Errors
///
/// Propagates execution errors.
pub fn profile_run(
    program: &Program,
    args: &[Value],
    config: ExecConfig,
) -> Result<Profile, ExecError> {
    run(program, args, config).map(|r| r.profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpart_ir::{Cmp, DataObject, FunctionBuilder, MemWidth};

    #[test]
    fn arithmetic_and_return() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let x = b.iconst(6);
        let y = b.iconst(7);
        let z = b.mul(x, y);
        b.ret(Some(z));
        let r = run(&p, &[], ExecConfig::default()).unwrap();
        assert_eq!(r.return_value, Some(Value::Int(42)));
        assert_eq!(r.steps, 4);
    }

    #[test]
    fn loop_sums_array() {
        let mut p = Program::new("t");
        let arr = p.add_object(DataObject::global("arr", 40));
        let mut b = FunctionBuilder::entry(&mut p);
        // Initialize arr[i] = i, then sum it.
        let base = b.addrof(arr);
        let i = b.iconst(0);
        let sum = b.iconst(0);
        let four = b.iconst(4);
        let ten = b.iconst(10);
        let one = b.iconst(1);
        let head = b.block("head");
        let body = b.block("body");
        let exit = b.block("exit");
        b.jump(head);
        b.switch_to(head);
        let c = b.icmp(Cmp::Lt, i, ten);
        b.branch(c, body, exit);
        b.switch_to(body);
        let off = b.mul(i, four);
        let addr = b.add(base, off);
        b.store(MemWidth::B4, addr, i);
        let v = b.load(MemWidth::B4, addr);
        let s2 = b.add(sum, v);
        b.mov_to(sum, s2);
        let i2 = b.add(i, one);
        b.mov_to(i, i2);
        b.jump(head);
        b.switch_to(exit);
        b.ret(Some(sum));
        mcpart_ir::verify_program(&p).unwrap();
        let r = run(&p, &[], ExecConfig::default()).unwrap();
        assert_eq!(r.return_value, Some(Value::Int(45)));
        // Profile: body executed 10 times, head 11.
        let prof = &r.profile;
        let f = p.entry;
        assert_eq!(prof.funcs[f].block_freq[body], 10);
        assert_eq!(prof.funcs[f].block_freq[head], 11);
    }

    #[test]
    fn malloc_profile_recorded() {
        let mut p = Program::new("t");
        let site = p.add_object(DataObject::heap_site("buf"));
        let mut b = FunctionBuilder::entry(&mut p);
        let n = b.iconst(64);
        let ptr = b.malloc(site, n);
        let v = b.iconst(5);
        b.store(MemWidth::B4, ptr, v);
        let w = b.load(MemWidth::B4, ptr);
        b.ret(Some(w));
        let r = run(&p, &[], ExecConfig::default()).unwrap();
        assert_eq!(r.return_value, Some(Value::Int(5)));
        assert_eq!(r.profile.heap_bytes[site], 64);
        assert_eq!(r.stats, ExecStats { loads: 1, stores: 1, mallocs: 1, calls: 0 });
    }

    #[test]
    fn exec_stats_count_dynamic_operations() {
        let mut p = Program::new("t");
        let callee = {
            let mut cb = FunctionBuilder::new_function(&mut p, "id");
            let a = cb.param();
            cb.ret(Some(a));
            cb.func_id()
        };
        let g = p.add_object(DataObject::global("g", 8));
        let mut b = FunctionBuilder::entry(&mut p);
        let a = b.addrof(g);
        let v = b.iconst(3);
        b.store(MemWidth::B4, a, v);
        let w = b.load(MemWidth::B4, a);
        let r = b.call(callee, vec![w], 1);
        b.ret(Some(r[0]));
        let out = run(&p, &[], ExecConfig::default()).unwrap();
        assert_eq!(out.return_value, Some(Value::Int(3)));
        assert_eq!(out.stats, ExecStats { loads: 1, stores: 1, mallocs: 0, calls: 1 });
    }

    #[test]
    fn call_and_return_value() {
        let mut p = Program::new("t");
        let callee = {
            let mut cb = FunctionBuilder::new_function(&mut p, "twice");
            let a = cb.param();
            let r = cb.add(a, a);
            cb.ret(Some(r));
            cb.func_id()
        };
        let mut b = FunctionBuilder::entry(&mut p);
        let x = b.iconst(21);
        let r = b.call(callee, vec![x], 1);
        b.ret(Some(r[0]));
        let result = run(&p, &[], ExecConfig::default()).unwrap();
        assert_eq!(result.return_value, Some(Value::Int(42)));
    }

    #[test]
    fn step_limit_catches_infinite_loop() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let head = b.block("head");
        b.jump(head);
        b.switch_to(head);
        b.jump(head);
        let e = run(&p, &[], ExecConfig { step_limit: 1000, max_call_depth: 8 }).unwrap_err();
        assert_eq!(e, ExecError::StepLimit);
    }

    #[test]
    fn div_by_zero_reported() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let x = b.iconst(1);
        let z = b.iconst(0);
        let d = b.ibin(mcpart_ir::IntBinOp::Div, x, z);
        b.ret(Some(d));
        let e = run(&p, &[], ExecConfig::default()).unwrap_err();
        assert_eq!(e, ExecError::DivByZero);
    }

    #[test]
    fn float_pipeline() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let x = b.iconst(3);
        let xf = b.itof(x);
        let h = b.fconst(0.5);
        let y = b.fmul(xf, h);
        let z = b.ftoi(y);
        b.ret(Some(z));
        let r = run(&p, &[], ExecConfig::default()).unwrap();
        assert_eq!(r.return_value, Some(Value::Int(1)));
    }

    #[test]
    fn select_behaviour() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let cond = b.param();
        let a = b.iconst(10);
        let c = b.iconst(20);
        let s = b.select(cond, a, c);
        b.ret(Some(s));
        let r1 = run(&p, &[Value::Int(1)], ExecConfig::default()).unwrap();
        assert_eq!(r1.return_value, Some(Value::Int(10)));
        let r0 = run(&p, &[Value::Int(0)], ExecConfig::default()).unwrap();
        assert_eq!(r0.return_value, Some(Value::Int(20)));
    }

    #[test]
    fn recursion_hits_call_depth_limit() {
        let mut p = Program::new("t");
        // fn1 calls itself unconditionally.
        let f1 = {
            let mut cb = FunctionBuilder::new_function(&mut p, "inf");
            let id = cb.func_id();
            let r = cb.call(id, vec![], 1);
            cb.ret(Some(r[0]));
            id
        };
        let mut b = FunctionBuilder::entry(&mut p);
        let r = b.call(f1, vec![], 1);
        b.ret(Some(r[0]));
        let e = run(&p, &[], ExecConfig { step_limit: 1_000_000, max_call_depth: 16 }).unwrap_err();
        assert_eq!(e, ExecError::CallDepth);
    }

    #[test]
    fn argument_count_mismatch_detected() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        b.param();
        b.ret(None);
        let e = run(&p, &[], ExecConfig::default()).unwrap_err();
        assert_eq!(e, ExecError::ArgCount);
        let ok = run(&p, &[Value::Int(3)], ExecConfig::default());
        assert!(ok.is_ok());
    }

    #[test]
    fn load_through_integer_is_a_type_error() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let x = b.iconst(64);
        let v = b.load(MemWidth::B4, x);
        b.ret(Some(v));
        let e = run(&p, &[], ExecConfig::default()).unwrap_err();
        assert!(matches!(e, ExecError::Type(_)), "{e:?}");
    }

    #[test]
    fn heap_access_before_malloc_is_out_of_bounds() {
        let mut p = Program::new("t");
        let site = p.add_object(DataObject::heap_site("buf"));
        let mut b = FunctionBuilder::entry(&mut p);
        // Forge a pointer to the (still empty) heap arena via malloc(0).
        let zero = b.iconst(0);
        let ptr = b.malloc(site, zero);
        let v = b.load(MemWidth::B4, ptr);
        b.ret(Some(v));
        let e = run(&p, &[], ExecConfig::default()).unwrap_err();
        assert!(matches!(e, ExecError::Mem(_)), "{e:?}");
    }

    #[test]
    fn pointer_comparison_and_arithmetic() {
        let mut p = Program::new("t");
        let g = p.add_object(DataObject::global("g", 16));
        let mut b = FunctionBuilder::entry(&mut p);
        let a = b.addrof(g);
        let four = b.iconst(4);
        let a4 = b.add(a, four);
        let diff = b.sub(a4, a); // pointer difference
        let same = b.icmp(Cmp::Lt, a, a4); // pointer compare
        let sum = b.add(diff, same);
        b.ret(Some(sum));
        let r = run(&p, &[], ExecConfig::default()).unwrap();
        assert_eq!(r.return_value, Some(Value::Int(5))); // 4 + 1
    }

    #[test]
    fn memory_snapshot_captures_stores() {
        let mut p = Program::new("t");
        let g = p.add_object(DataObject::global("g", 4));
        let mut b = FunctionBuilder::entry(&mut p);
        let a = b.addrof(g);
        let v = b.iconst(0x0403_0201);
        b.store(MemWidth::B4, a, v);
        b.ret(None);
        let r = run(&p, &[], ExecConfig::default()).unwrap();
        assert_eq!(r.memory[g.0 as usize], vec![1, 2, 3, 4]);
    }
}
