//! # mcpart-sim — functional simulation and validation
//!
//! A concrete interpreter for `mcpart-ir` programs. It plays three
//! roles in the reproduction:
//!
//! * **Profiling** — [`profile_run`] executes a program and returns the
//!   block-frequency and heap-allocation [`mcpart_ir::Profile`] that the
//!   paper's analyses consume (§3.2 uses a profile for heap sizes and
//!   dynamic access frequencies);
//! * **Validation** — [`semantically_equivalent`] checks that
//!   partitioning plus intercluster move insertion did not change
//!   program behaviour (same return value, same final memory image);
//! * **Dynamic counting** — [`dynamic_move_count`] counts executed
//!   intercluster moves, the metric of the paper's Figure 10.
//!
//! ```
//! use mcpart_ir::{Program, FunctionBuilder};
//! use mcpart_sim::{run, ExecConfig, Value};
//!
//! let mut program = Program::new("answer");
//! let mut b = FunctionBuilder::entry(&mut program);
//! let x = b.iconst(21);
//! let y = b.add(x, x);
//! b.ret(Some(y));
//! let result = run(&program, &[], ExecConfig::default())?;
//! assert_eq!(result.return_value, Some(Value::Int(42)));
//! # Ok::<(), mcpart_sim::ExecError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod check;
mod interp;
mod memory;
mod value;

pub use check::{dynamic_move_count, fault, semantically_equivalent};
pub use interp::{profile_run, run, ExecConfig, ExecError, ExecResult, ExecStats};
pub use memory::{MemError, Memory};
pub use value::Value;
