//! Cross-variant validation: semantic equivalence and dynamic
//! intercluster-move accounting.

use crate::interp::{run, ExecConfig, ExecError};
use crate::value::Value;
use mcpart_ir::{Profile, Program};
use mcpart_sched::{intercluster_moves_per_block, Placement};

/// Runs two program variants on the same inputs and checks that they
/// return the same value and leave identical memory images.
///
/// Used to validate that partitioning + intercluster move insertion
/// preserve program semantics.
///
/// # Errors
///
/// Propagates execution errors from either variant.
pub fn semantically_equivalent(
    original: &Program,
    transformed: &Program,
    args: &[Value],
    config: ExecConfig,
) -> Result<bool, ExecError> {
    let a = run(original, args, config)?;
    let b = run(transformed, args, config)?;
    Ok(a.return_value == b.return_value && a.memory == b.memory)
}

/// Dynamic intercluster move count of a placed program under a profile:
/// `Σ_blocks exec_freq(block) × static_moves(block)`.
///
/// This matches what a cycle simulator would count, because every
/// intercluster move in a block executes once per block execution.
pub fn dynamic_move_count(program: &Program, placement: &Placement, profile: &Profile) -> u64 {
    let mut total = 0u64;
    for fid in program.functions.keys() {
        let per_block = intercluster_moves_per_block(program, fid, placement);
        for (bid, &count) in per_block.iter() {
            total += count as u64 * profile.block_freq(fid, bid);
        }
    }
    total
}

/// Fault-injection utilities: systematic, deterministic corruptions of
/// programs, profiles, and placements.
///
/// These drive the robustness test harness (`tests/fault_injection.rs`
/// in the workspace root): every corruption models a realistic failure
/// of an upstream producer — a frontend that emitted a block without a
/// terminator, a stale profile from a different build, a partitioner
/// bug that invented a cluster — and every pipeline entry point is
/// expected to reject the result with a typed error rather than panic
/// or hang.
pub mod fault {
    use mcpart_ir::{ClusterId, EntityId, FuncId, ObjectId, Opcode, Profile, Program, Terminator};
    use mcpart_sched::Placement;

    /// Removes the terminator of the entry function's entry block,
    /// modeling a truncated/partially-emitted IR stream. The program no
    /// longer verifies; interpreters must report a missing terminator
    /// instead of walking off the block.
    pub fn truncate_entry_block(program: &mut Program) {
        let f = program.entry;
        let eb = program.functions[f].entry;
        program.functions[f].blocks[eb].term = None;
    }

    /// Rewrites the first `addrof`/`malloc` operation to reference an
    /// object id beyond the object table. Returns `false` when the
    /// program has no such operation to corrupt.
    pub fn dangle_object_id(program: &mut Program) -> bool {
        let bad = ObjectId::new(program.objects.len() + 7);
        for func in program.functions.values_mut() {
            for op in func.ops.values_mut() {
                if matches!(op.opcode, Opcode::AddrOf(_) | Opcode::Malloc(_)) {
                    op.opcode = Opcode::AddrOf(bad);
                    return true;
                }
            }
        }
        false
    }

    /// Shrinks every data object to zero bytes — a degenerate but
    /// structurally valid program that stresses size-driven balance
    /// logic (divisions by total bytes, per-cluster capacity math).
    pub fn zero_object_sizes(program: &mut Program) {
        for obj in program.objects.values_mut() {
            obj.size = 0;
        }
    }

    /// Redirects every `return` in the entry function back to its entry
    /// block, closing the CFG into a cycle with no exit. Execution must
    /// be stopped by the interpreter's step budget, never by wall-clock
    /// patience.
    pub fn make_cyclic(program: &mut Program) {
        let f = program.entry;
        let entry = program.functions[f].entry;
        for block in program.functions[f].blocks.values_mut() {
            if matches!(block.term, Some(Terminator::Return(_))) {
                block.term = Some(Terminator::Jump(entry));
            }
        }
    }

    /// Grows the first function's block-frequency table past its block
    /// count, modeling a profile collected from a different build of the
    /// program. Profile validation must reject the shape mismatch.
    pub fn corrupt_profile(profile: &mut Profile) {
        if !profile.funcs.is_empty() {
            profile.funcs[FuncId::new(0)].block_freq.push(999);
        }
    }

    /// Sends the first operation to a cluster that does not exist on
    /// any machine under test. Returns `false` for an empty placement.
    pub fn misplace_op(placement: &mut Placement) -> bool {
        for per_func in placement.op_cluster.values_mut() {
            if let Some(c) = per_func.values_mut().next() {
                *c = ClusterId::new(999);
                return true;
            }
        }
        false
    }

    /// Sends the first homed object to a cluster that does not exist.
    /// Returns `false` when no object has a home (unified memory).
    pub fn misplace_object(placement: &mut Placement) -> bool {
        for home in placement.object_home.values_mut() {
            if home.is_some() {
                *home = Some(ClusterId::new(999));
                return true;
            }
        }
        false
    }

    /// A battery of hostile `.mcir` inputs, each with a label. Every
    /// one must produce a parse or verification error — never a panic —
    /// from `parse_program` and from the `mcpart exec` CLI path.
    pub fn hostile_mcir() -> Vec<(&'static str, &'static str)> {
        vec![
            ("empty", ""),
            ("not-a-program", "#!/bin/sh\nrm -rf /\n"),
            ("header-only", "program ghost\n"),
            ("bad-entry", "program x\nentry banana\n"),
            ("entry-out-of-range", "program x\nentry fn9\n"),
            (
                "unknown-opcode",
                "program x\nentry fn0\nfunc main() {\nbb0 (entry):\n  op0: v0 = summon v1\n  -> return\n}\n",
            ),
            (
                "sparse-op-ids",
                "program x\nentry fn0\nfunc main() {\nbb0 (entry):\n  op8: v0 = iconst 1\n  -> return v0\n}\n",
            ),
            (
                "unterminated-function",
                "program x\nentry fn0\nfunc main() {\nbb0 (entry):\n  op0: v0 = iconst 1\n",
            ),
            (
                "statement-outside-block",
                "program x\nentry fn0\nfunc main() {\n  op0: v0 = iconst 1\n}\n",
            ),
            (
                "dangling-object",
                "program x\nentry fn0\nfunc main() {\nbb0 (entry):\n  op0: v0 = addrof obj3\n  -> return\n}\n",
            ),
            (
                "giant-object-size",
                "program x\nentry fn0\n  obj0: global g (999999999999999999999 bytes)\nfunc main() {\nbb0 (entry):\n  -> return\n}\n",
            ),
            (
                "undefined-register",
                "program x\nentry fn0\nfunc main() {\nbb0 (entry):\n  op0: v1 = add v7, v7\n  -> return v1\n}\n",
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpart_ir::{ClusterId, FunctionBuilder};
    use mcpart_machine::Machine;
    use mcpart_sched::insert_moves;

    #[test]
    fn move_insertion_preserves_semantics() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let x = b.iconst(4);
        let y = b.add(x, x);
        let z = b.mul(y, x);
        b.ret(Some(z));
        let f = p.entry;
        let ops = p.entry_function().blocks[p.entry_function().entry].ops.clone();
        let mut pl = Placement::all_on_cluster0(&p);
        pl.set_cluster(f, ops[1], ClusterId::new(1));
        let m = Machine::paper_2cluster(5);
        let (np, npl, stats) = insert_moves(&p, &pl, &m);
        assert!(stats.moves_inserted > 0);
        assert!(semantically_equivalent(&p, &np, &[], ExecConfig::default()).unwrap());
        let _ = npl;
    }

    #[test]
    fn dynamic_moves_use_profile() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let x = b.iconst(1);
        let y = b.mov(x);
        let z = b.add(y, y);
        b.ret(Some(z));
        let f = p.entry;
        let entry = p.entry_function().entry;
        let ops = p.entry_function().blocks[entry].ops.clone();
        let mut pl = Placement::all_on_cluster0(&p);
        pl.set_cluster(f, ops[1], ClusterId::new(1));
        pl.set_cluster(f, ops[2], ClusterId::new(1));
        let mut profile = Profile::uniform(&p, 1);
        profile.funcs[f].block_freq[entry] = 33;
        assert_eq!(dynamic_move_count(&p, &pl, &profile), 33);
    }
}
