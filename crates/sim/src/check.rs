//! Cross-variant validation: semantic equivalence and dynamic
//! intercluster-move accounting.

use crate::interp::{run, ExecConfig, ExecError};
use crate::value::Value;
use mcpart_ir::{Profile, Program};
use mcpart_sched::{intercluster_moves_per_block, Placement};

/// Runs two program variants on the same inputs and checks that they
/// return the same value and leave identical memory images.
///
/// Used to validate that partitioning + intercluster move insertion
/// preserve program semantics.
///
/// # Errors
///
/// Propagates execution errors from either variant.
pub fn semantically_equivalent(
    original: &Program,
    transformed: &Program,
    args: &[Value],
    config: ExecConfig,
) -> Result<bool, ExecError> {
    let a = run(original, args, config)?;
    let b = run(transformed, args, config)?;
    Ok(a.return_value == b.return_value && a.memory == b.memory)
}

/// Dynamic intercluster move count of a placed program under a profile:
/// `Σ_blocks exec_freq(block) × static_moves(block)`.
///
/// This matches what a cycle simulator would count, because every
/// intercluster move in a block executes once per block execution.
pub fn dynamic_move_count(program: &Program, placement: &Placement, profile: &Profile) -> u64 {
    let mut total = 0u64;
    for fid in program.functions.keys() {
        let per_block = intercluster_moves_per_block(program, fid, placement);
        for (bid, &count) in per_block.iter() {
            total += count as u64 * profile.block_freq(fid, bid);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpart_ir::{ClusterId, FunctionBuilder};
    use mcpart_machine::Machine;
    use mcpart_sched::insert_moves;

    #[test]
    fn move_insertion_preserves_semantics() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let x = b.iconst(4);
        let y = b.add(x, x);
        let z = b.mul(y, x);
        b.ret(Some(z));
        let f = p.entry;
        let ops = p.entry_function().blocks[p.entry_function().entry].ops.clone();
        let mut pl = Placement::all_on_cluster0(&p);
        pl.set_cluster(f, ops[1], ClusterId::new(1));
        let m = Machine::paper_2cluster(5);
        let (np, npl, stats) = insert_moves(&p, &pl, &m);
        assert!(stats.moves_inserted > 0);
        assert!(semantically_equivalent(&p, &np, &[], ExecConfig::default()).unwrap());
        let _ = npl;
    }

    #[test]
    fn dynamic_moves_use_profile() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let x = b.iconst(1);
        let y = b.mov(x);
        let z = b.add(y, y);
        b.ret(Some(z));
        let f = p.entry;
        let entry = p.entry_function().entry;
        let ops = p.entry_function().blocks[entry].ops.clone();
        let mut pl = Placement::all_on_cluster0(&p);
        pl.set_cluster(f, ops[1], ClusterId::new(1));
        pl.set_cluster(f, ops[2], ClusterId::new(1));
        let mut profile = Profile::uniform(&p, 1);
        profile.funcs[f].block_freq[entry] = 33;
        assert_eq!(dynamic_move_count(&p, &pl, &profile), 33);
    }
}
