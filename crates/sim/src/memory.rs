//! The simulated data memory: one byte arena per data object.

use crate::value::Value;
use mcpart_ir::{EntityMap, MemWidth, ObjectId, ObjectKind, Program};

/// An error raised by a memory access.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MemError {
    /// Access beyond the object's bounds.
    OutOfBounds {
        /// Object accessed.
        obj: ObjectId,
        /// Offending offset.
        offset: i64,
        /// Access width in bytes.
        width: u64,
        /// Object size in bytes.
        size: usize,
    },
    /// Negative offset.
    NegativeOffset(ObjectId, i64),
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::OutOfBounds { obj, offset, width, size } => write!(
                f,
                "out-of-bounds access to {obj}: offset {offset} width {width} of {size} bytes"
            ),
            MemError::NegativeOffset(obj, off) => {
                write!(f, "negative offset {off} into {obj}")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// Per-object byte storage. Globals are fixed-size and zero-initialized;
/// heap sites grow as their `malloc` executes.
///
/// Pointer values stored to memory are kept in a word-granular overlay
/// (the byte image records zeros), so pointers round-trip through memory
/// without an address encoding.
#[derive(Clone, PartialEq, Debug)]
pub struct Memory {
    arenas: EntityMap<ObjectId, Vec<u8>>,
    ptr_overlay: EntityMap<ObjectId, std::collections::HashMap<i64, Value>>,
    /// Bytes allocated per heap site during execution.
    pub heap_bytes: EntityMap<ObjectId, u64>,
}

impl Memory {
    /// Creates the memory image for `program`: every global gets a
    /// zeroed arena of its declared size, heap sites start empty.
    pub fn new(program: &Program) -> Self {
        let arenas = program
            .objects
            .values()
            .map(|o| match o.kind {
                ObjectKind::Global => vec![0u8; o.size as usize],
                ObjectKind::HeapSite => Vec::new(),
            })
            .collect();
        Memory {
            arenas,
            ptr_overlay: EntityMap::with_default(
                program.objects.len(),
                std::collections::HashMap::new(),
            ),
            heap_bytes: EntityMap::with_default(program.objects.len(), 0),
        }
    }

    /// Allocates `size` bytes in the arena of heap site `site`,
    /// returning the offset of the fresh block.
    pub fn malloc(&mut self, site: ObjectId, size: u64) -> i64 {
        let offset = self.arenas[site].len() as i64;
        self.arenas[site].extend(std::iter::repeat_n(0u8, size as usize));
        self.heap_bytes[site] += size;
        offset
    }

    fn check(&self, obj: ObjectId, offset: i64, width: u64) -> Result<usize, MemError> {
        if offset < 0 {
            return Err(MemError::NegativeOffset(obj, offset));
        }
        let size = self.arenas[obj].len();
        let end = offset as u64 + width;
        if end > size as u64 {
            return Err(MemError::OutOfBounds { obj, offset, width, size });
        }
        Ok(offset as usize)
    }

    /// Loads a value of `width` from `obj` at `offset`.
    ///
    /// # Errors
    ///
    /// Fails when the access leaves the object bounds.
    pub fn load(&self, obj: ObjectId, offset: i64, width: MemWidth) -> Result<Value, MemError> {
        let start = self.check(obj, offset, width.bytes())?;
        if width == MemWidth::B8 {
            if let Some(v) = self.ptr_overlay[obj].get(&offset) {
                return Ok(*v);
            }
        }
        let bytes = &self.arenas[obj][start..start + width.bytes() as usize];
        let mut raw = [0u8; 8];
        raw[..bytes.len()].copy_from_slice(bytes);
        let unsigned = u64::from_le_bytes(raw);
        // Sign-extend to the access width.
        let shift = 64 - 8 * width.bytes() as u32;
        let signed = ((unsigned << shift) as i64) >> shift;
        Ok(Value::Int(signed))
    }

    /// Stores `value` of `width` to `obj` at `offset`.
    ///
    /// # Errors
    ///
    /// Fails when the access leaves the object bounds.
    pub fn store(
        &mut self,
        obj: ObjectId,
        offset: i64,
        width: MemWidth,
        value: Value,
    ) -> Result<(), MemError> {
        let start = self.check(obj, offset, width.bytes())?;
        let raw: u64 = match value {
            Value::Int(v) => v as u64,
            Value::Float(v) => v.to_bits(),
            Value::Ptr { .. } => 0,
        };
        let bytes = raw.to_le_bytes();
        self.arenas[obj][start..start + width.bytes() as usize]
            .copy_from_slice(&bytes[..width.bytes() as usize]);
        // Any overlay entry whose 8-byte extent overlaps the written
        // range is dead: even a 1-byte store into the middle of a
        // stored pointer must drop it, or a later B8 load at the old
        // offset would resurrect the pointer over the mutated bytes.
        let end = offset + width.bytes() as i64;
        self.ptr_overlay[obj].retain(|&k, _| k + 8 <= offset || k >= end);
        if matches!(value, Value::Ptr { .. } | Value::Float(_)) && width == MemWidth::B8 {
            self.ptr_overlay[obj].insert(offset, value);
        }
        Ok(())
    }

    /// A snapshot of all byte arenas, for semantic comparison between
    /// program variants.
    pub fn snapshot(&self) -> Vec<Vec<u8>> {
        self.arenas.values().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpart_ir::DataObject;

    fn program_with_global(size: u64) -> (Program, ObjectId) {
        let mut p = Program::new("t");
        let o = p.add_object(DataObject::global("g", size));
        (p, o)
    }

    #[test]
    fn store_load_roundtrip() {
        let (p, o) = program_with_global(16);
        let mut m = Memory::new(&p);
        m.store(o, 4, MemWidth::B4, Value::Int(-123)).unwrap();
        assert_eq!(m.load(o, 4, MemWidth::B4).unwrap(), Value::Int(-123));
    }

    #[test]
    fn sign_extension_by_width() {
        let (p, o) = program_with_global(8);
        let mut m = Memory::new(&p);
        m.store(o, 0, MemWidth::B1, Value::Int(0xFF)).unwrap();
        assert_eq!(m.load(o, 0, MemWidth::B1).unwrap(), Value::Int(-1));
        m.store(o, 2, MemWidth::B2, Value::Int(0x7FFF)).unwrap();
        assert_eq!(m.load(o, 2, MemWidth::B2).unwrap(), Value::Int(0x7FFF));
    }

    #[test]
    fn bounds_are_enforced() {
        let (p, o) = program_with_global(4);
        let mut m = Memory::new(&p);
        assert!(m.load(o, 4, MemWidth::B4).is_err());
        assert!(m.load(o, 1, MemWidth::B4).is_err());
        assert!(m.store(o, -1, MemWidth::B1, Value::Int(0)).is_err());
        assert!(m.load(o, 0, MemWidth::B4).is_ok());
    }

    #[test]
    fn malloc_grows_heap_site() {
        let mut p = Program::new("t");
        let site = p.add_object(DataObject::heap_site("buf"));
        let mut m = Memory::new(&p);
        let off1 = m.malloc(site, 8);
        let off2 = m.malloc(site, 8);
        assert_eq!(off1, 0);
        assert_eq!(off2, 8);
        assert_eq!(m.heap_bytes[site], 16);
        m.store(site, off2, MemWidth::B8, Value::Int(99)).unwrap();
        assert_eq!(m.load(site, off2, MemWidth::B8).unwrap(), Value::Int(99));
    }

    #[test]
    fn floats_roundtrip_through_overlay() {
        let (p, o) = program_with_global(8);
        let mut m = Memory::new(&p);
        m.store(o, 0, MemWidth::B8, Value::Float(3.5)).unwrap();
        assert_eq!(m.load(o, 0, MemWidth::B8).unwrap(), Value::Float(3.5));
        // Narrow stores do not use the overlay.
        m.store(o, 0, MemWidth::B4, Value::Int(1)).unwrap();
        assert_eq!(m.load(o, 0, MemWidth::B4).unwrap(), Value::Int(1));
    }

    #[test]
    fn pointers_roundtrip_through_overlay() {
        let (p, o) = program_with_global(8);
        let mut m = Memory::new(&p);
        let ptr = Value::Ptr { obj: o, offset: 4 };
        m.store(o, 0, MemWidth::B8, ptr).unwrap();
        assert_eq!(m.load(o, 0, MemWidth::B8).unwrap(), ptr);
        // Overwriting with an int clears the overlay.
        m.store(o, 0, MemWidth::B8, Value::Int(1)).unwrap();
        assert_eq!(m.load(o, 0, MemWidth::B8).unwrap(), Value::Int(1));
    }

    #[test]
    fn narrow_store_invalidates_overlapping_overlay_entry() {
        // Regression: a narrow store that partially overwrites a stored
        // pointer must kill the overlay entry, not just the entry at its
        // own offset — otherwise a later B8 load resurrects the dead
        // pointer over the mutated bytes.
        let (p, o) = program_with_global(16);
        let mut m = Memory::new(&p);
        let ptr = Value::Ptr { obj: o, offset: 8 };
        m.store(o, 0, MemWidth::B8, ptr).unwrap();
        // Clobber one byte in the middle of the pointer's extent.
        m.store(o, 3, MemWidth::B1, Value::Int(0x5A)).unwrap();
        let reloaded = m.load(o, 0, MemWidth::B8).unwrap();
        assert_ne!(reloaded, ptr, "stale pointer resurrected after partial overwrite");
        // The reload is the raw byte image: zeros (the pointer's byte
        // encoding) with 0x5A at byte 3.
        assert_eq!(reloaded, Value::Int(0x5A << 24));
    }

    #[test]
    fn narrow_store_before_pointer_start_invalidates_tail_overlap() {
        // A 4-byte store at offset 6 overlaps bytes 6..10, clipping the
        // tail of a pointer stored at 4 (bytes 4..12) and the head of
        // nothing else; the entry at 4 must die while one at 12 lives.
        let (p, o) = program_with_global(24);
        let mut m = Memory::new(&p);
        m.store(o, 4, MemWidth::B8, Value::Float(1.5)).unwrap();
        m.store(o, 12, MemWidth::B8, Value::Float(2.5)).unwrap();
        m.store(o, 6, MemWidth::B4, Value::Int(7)).unwrap();
        // The entry at 4 is dead: the reload is the raw byte image
        // (float bits with 7 spliced into bytes 6..10), not the float.
        let reloaded = m.load(o, 4, MemWidth::B8).unwrap();
        assert!(matches!(reloaded, Value::Int(_)), "got {reloaded:?}");
        assert_eq!(m.load(o, 12, MemWidth::B8).unwrap(), Value::Float(2.5));
    }

    #[test]
    fn overlapping_wide_stores_keep_only_the_newest_entry() {
        // Two misaligned B8 pointer stores overlap; the older entry
        // must be invalidated, and the adjacent (non-overlapping)
        // neighbour entries must survive.
        let (p, o) = program_with_global(32);
        let mut m = Memory::new(&p);
        m.store(o, 0, MemWidth::B8, Value::Float(1.0)).unwrap();
        m.store(o, 8, MemWidth::B8, Value::Float(2.0)).unwrap();
        m.store(o, 16, MemWidth::B8, Value::Float(3.0)).unwrap();
        // Bytes 12..20: kills the entries at 8 and 16, leaves 0 alone.
        m.store(o, 12, MemWidth::B8, Value::Float(9.0)).unwrap();
        assert_eq!(m.load(o, 0, MemWidth::B8).unwrap(), Value::Float(1.0));
        assert_eq!(m.load(o, 12, MemWidth::B8).unwrap(), Value::Float(9.0));
        assert_ne!(m.load(o, 8, MemWidth::B8).unwrap(), Value::Float(2.0));
        assert_ne!(m.load(o, 16, MemWidth::B8).unwrap(), Value::Float(3.0));
    }
}
