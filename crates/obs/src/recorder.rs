//! The serve-mode flight recorder: a crash-safe, append-only log of
//! metrics snapshots under `<spool>/telemetry/`.
//!
//! Each snapshot is one JSON line with checkpoint-style framing:
//!
//! ```text
//! {"mcpart_telemetry":1,"run":R,"seq":S,"counters":{...},"metrics":{...},"sum":"<fnv64 hex>"}
//! ```
//!
//! The `sum` footer is an FNV-1a 64 checksum over every byte of the
//! record **before** `,"sum"`. Records are appended and fsynced one at
//! a time, so a `kill -9` can corrupt at most the final line; the
//! reader verifies each line's checksum and strict-parses the JSON,
//! keeps the valid prefix, and counts (never misparses) corrupt or
//! truncated records. Snapshots are cumulative within a `run` (one
//! serve invocation); a restart scans the log and opens the next run
//! id, so a daemon's whole history is reconstructable after a crash by
//! merging each run's last valid snapshot.
//!
//! The most recent snapshot is additionally published to
//! `latest.json` in the same directory via the spool's tmp+sync+rename
//! idiom — a convenience mirror for humans; the `.jsonl` log is the
//! durable record.

use crate::json::{self, JsonValue};
use crate::metrics::MetricsRegistry;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// File name of the append-only snapshot log inside the telemetry
/// directory.
pub const TELEMETRY_LOG: &str = "telemetry.jsonl";

/// File name of the tmp+sync+rename mirror of the newest snapshot.
pub const TELEMETRY_LATEST: &str = "latest.json";

/// Framing version stamped into every record.
pub const TELEMETRY_VERSION: i64 = 1;

/// FNV-1a 64-bit over raw bytes — the same checksum the checkpoint
/// and cache footers use (reimplemented here so `mcpart-obs` stays a
/// leaf crate).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// An open, appendable flight-recorder log.
#[derive(Debug)]
pub struct FlightRecorder {
    dir: PathBuf,
    file: File,
    run: u64,
    seq: u64,
}

impl FlightRecorder {
    /// Opens (creating if needed) the telemetry log in `dir` and
    /// starts a new run numbered after the highest run already on
    /// disk. Corrupt records in the existing log are ignored here —
    /// they only cost history, never startup.
    pub fn open(dir: &Path) -> io::Result<FlightRecorder> {
        fs::create_dir_all(dir)?;
        let path = dir.join(TELEMETRY_LOG);
        let prior = match fs::read_to_string(&path) {
            Ok(text) => parse_telemetry(&text).snapshots.iter().map(|s| s.run).max().unwrap_or(0),
            Err(e) if e.kind() == io::ErrorKind::NotFound => 0,
            Err(e) => return Err(e),
        };
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(FlightRecorder { dir: dir.to_path_buf(), file, run: prior + 1, seq: 0 })
    }

    /// The run id this recorder stamps into its snapshots.
    pub fn run(&self) -> u64 {
        self.run
    }

    /// Appends one snapshot record (cumulative for this run) and
    /// fsyncs it, then republishes `latest.json` atomically.
    pub fn record(
        &mut self,
        counters: &[(&str, i64)],
        metrics: &MetricsRegistry,
    ) -> io::Result<()> {
        let mut body = format!(
            "{{\"mcpart_telemetry\":{TELEMETRY_VERSION},\"run\":{},\"seq\":{},\"counters\":{{",
            self.run, self.seq
        );
        for (i, (k, v)) in counters.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&format!("\"{}\":{v}", json::escape(k)));
        }
        body.push_str("},\"metrics\":");
        body.push_str(&metrics.to_json());
        let line = seal_record(&body);
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()?;
        self.seq += 1;
        // Best-effort mirror; the jsonl log is the durable record.
        let latest = self.dir.join(TELEMETRY_LATEST);
        let tmp = self.dir.join(format!("{TELEMETRY_LATEST}.tmp"));
        fs::write(&tmp, &line)?;
        if let Ok(f) = File::open(&tmp) {
            let _ = f.sync_data();
        }
        fs::rename(&tmp, &latest)?;
        Ok(())
    }
}

/// Closes a record body with its checksum footer and newline. The
/// checksum covers every byte of `body` (which must end just after the
/// `metrics` value, before the footer comma).
pub fn seal_record(body: &str) -> String {
    format!("{body},\"sum\":\"{:016x}\"}}\n", fnv1a(body.as_bytes()))
}

/// One decoded snapshot record.
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetrySnapshot {
    /// Serve invocation ordinal (1-based, monotonic across restarts).
    pub run: u64,
    /// Snapshot ordinal within the run (0-based).
    pub seq: u64,
    /// Cumulative scalar counters at snapshot time, in record order.
    pub counters: Vec<(String, i64)>,
    /// Cumulative histogram registry at snapshot time.
    pub metrics: MetricsRegistry,
}

/// A decoded telemetry log: the valid snapshots plus how many records
/// were detected as corrupt/truncated and skipped.
#[derive(Clone, Debug, Default)]
pub struct TelemetryLog {
    /// Every record that passed checksum + strict parse, in file order.
    pub snapshots: Vec<TelemetrySnapshot>,
    /// Records that failed framing, checksum, or parse.
    pub skipped: usize,
}

impl TelemetryLog {
    /// Merges the log into one registry and counter set: snapshots are
    /// cumulative within a run, so this takes each run's last valid
    /// snapshot and folds runs together (counters sum; histograms
    /// merge bucket-wise).
    pub fn merged(&self) -> (MetricsRegistry, Vec<(String, i64)>) {
        let mut registry = MetricsRegistry::new();
        let mut counters: Vec<(String, i64)> = Vec::new();
        let mut runs: Vec<&TelemetrySnapshot> = Vec::new();
        for snap in &self.snapshots {
            match runs.iter_mut().find(|s| s.run == snap.run) {
                Some(slot) if snap.seq >= slot.seq => *slot = snap,
                Some(_) => {}
                None => runs.push(snap),
            }
        }
        for snap in runs {
            registry.merge(&snap.metrics);
            for (k, v) in &snap.counters {
                match counters.iter_mut().find(|(name, _)| name == k) {
                    Some((_, total)) => *total += v,
                    None => counters.push((k.clone(), *v)),
                }
            }
        }
        (registry, counters)
    }
}

fn decode_record(line: &str) -> Result<TelemetrySnapshot, String> {
    let footer_at = line.rfind(",\"sum\":\"").ok_or("missing checksum footer")?;
    let body = &line[..footer_at];
    let want = format!("{:016x}", fnv1a(body.as_bytes()));
    let footer = &line[footer_at..];
    if footer != format!(",\"sum\":\"{want}\"}}") {
        return Err("checksum mismatch".to_string());
    }
    let doc = json::parse(line)?;
    let version = doc.get("mcpart_telemetry").and_then(JsonValue::as_num);
    if version != Some(TELEMETRY_VERSION as f64) {
        return Err("bad telemetry version".to_string());
    }
    let int = |key: &str| -> Result<u64, String> {
        let n = doc.get(key).and_then(JsonValue::as_num).ok_or(format!("missing {key}"))?;
        if n < 0.0 || n.fract() != 0.0 {
            return Err(format!("bad {key}"));
        }
        Ok(n as u64)
    };
    let run = int("run")?;
    let seq = int("seq")?;
    let mut counters = Vec::new();
    if let Some(JsonValue::Obj(fields)) = doc.get("counters") {
        for (k, v) in fields {
            let n = v.as_num().ok_or(format!("counter '{k}' is not a number"))?;
            counters.push((k.clone(), n as i64));
        }
    } else {
        return Err("missing counters object".to_string());
    }
    let metrics = doc.get("metrics").ok_or("missing metrics object")?;
    let metrics = MetricsRegistry::from_json(metrics)?;
    Ok(TelemetrySnapshot { run, seq, counters, metrics })
}

/// Decodes a telemetry log's text. Corrupt or truncated records are
/// detected (checksum + strict parse) and skipped, never misparsed;
/// an unterminated final line — the expected artifact of a crash
/// mid-append — is likewise tolerated.
pub fn parse_telemetry(text: &str) -> TelemetryLog {
    let mut log = TelemetryLog::default();
    let mut rest = text;
    while !rest.is_empty() {
        let (line, tail, terminated) = match rest.find('\n') {
            Some(at) => (&rest[..at], &rest[at + 1..], true),
            None => (rest, "", false),
        };
        rest = tail;
        if line.is_empty() {
            continue;
        }
        match decode_record(line) {
            Ok(snap) => log.snapshots.push(snap),
            Err(_) => log.skipped += 1,
        }
        let _ = terminated; // both cases count as skipped when invalid
    }
    log
}

/// Reads and decodes `<dir>/telemetry.jsonl`. `dir` may be the
/// telemetry directory itself, a spool root containing `telemetry/`,
/// or the `telemetry.jsonl` file directly.
pub fn read_telemetry_dir(dir: &Path) -> Result<TelemetryLog, String> {
    let direct = dir.join(TELEMETRY_LOG);
    let nested = dir.join("telemetry").join(TELEMETRY_LOG);
    let path = if dir.is_file() {
        dir.to_path_buf()
    } else if direct.is_file() {
        direct
    } else if nested.is_file() {
        nested
    } else {
        return Err(format!("no {TELEMETRY_LOG} under {}", dir.display()));
    };
    let text = fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    Ok(parse_telemetry(&text))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry(base: i64) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.observe("gdp/cut", base);
        reg.observe("rhop/function.estimator_calls", base * 3);
        reg.observe_wall("serve/batch", 1500);
        reg
    }

    #[test]
    fn record_roundtrips_through_parse() {
        let dir = std::env::temp_dir().join(format!("mcpart-rec-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut rec = FlightRecorder::open(&dir).expect("open");
        assert_eq!(rec.run(), 1);
        rec.record(&[("admitted", 2)], &sample_registry(10)).expect("record");
        rec.record(&[("admitted", 5)], &sample_registry(20)).expect("record");
        let log = read_telemetry_dir(&dir).expect("read");
        assert_eq!(log.skipped, 0);
        assert_eq!(log.snapshots.len(), 2);
        assert_eq!(log.snapshots[1].seq, 1);
        assert_eq!(log.snapshots[1].counters, vec![("admitted".to_string(), 5)]);
        assert!(dir.join(TELEMETRY_LATEST).is_file());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_starts_a_new_run_and_merge_folds_runs() {
        let dir = std::env::temp_dir().join(format!("mcpart-rec2-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut rec = FlightRecorder::open(&dir).expect("open");
        rec.record(&[("admitted", 3)], &sample_registry(10)).expect("record");
        drop(rec);
        let mut rec2 = FlightRecorder::open(&dir).expect("reopen");
        assert_eq!(rec2.run(), 2);
        rec2.record(&[("admitted", 1)], &sample_registry(40)).expect("record");
        rec2.record(&[("admitted", 4)], &sample_registry(50)).expect("record");
        let log = read_telemetry_dir(&dir).expect("read");
        let (reg, counters) = log.merged();
        // Last snapshot of each run: run1 admitted=3, run2 admitted=4.
        assert_eq!(counters, vec![("admitted".to_string(), 7)]);
        let cut = reg.get("gdp/cut").expect("gdp/cut merged");
        assert_eq!(cut.count(), 2);
        assert_eq!(cut.sum(), 60);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_tail_is_tolerated_and_valid_prefix_replayed() {
        let mut rec_body = String::new();
        let reg = sample_registry(10);
        rec_body.push_str(&seal_record(&format!(
            "{{\"mcpart_telemetry\":1,\"run\":1,\"seq\":0,\"counters\":{{\"admitted\":1}},\"metrics\":{}",
            reg.to_json()
        )));
        let full = rec_body.clone();
        // Truncation sweep: every strict prefix is detected and
        // skipped, never misparsed. (Losing only the trailing newline
        // leaves a complete, checksum-valid record — that one prefix
        // legitimately decodes.)
        for cut in 0..full.len() - 1 {
            let log = parse_telemetry(&full[..cut]);
            if !log.snapshots.is_empty() {
                panic!("truncated record at {cut} must not decode");
            }
        }
        assert_eq!(parse_telemetry(&full[..full.len() - 1]).snapshots.len(), 1);
        let log = parse_telemetry(&full);
        assert_eq!((log.snapshots.len(), log.skipped), (1, 0));
        // A valid record followed by a torn half-record keeps the prefix.
        let torn = format!("{full}{}", &full[..full.len() / 2]);
        let log = parse_telemetry(&torn);
        assert_eq!(log.snapshots.len(), 1);
        assert_eq!(log.skipped, 1);
    }

    #[test]
    fn bit_flips_are_detected_by_the_checksum() {
        let reg = sample_registry(7);
        let line = seal_record(&format!(
            "{{\"mcpart_telemetry\":1,\"run\":1,\"seq\":0,\"counters\":{{\"admitted\":1}},\"metrics\":{}",
            reg.to_json()
        ));
        let mut flipped = 0;
        for i in 0..line.len() - 1 {
            let mut bytes = line.clone().into_bytes();
            bytes[i] ^= 0x04;
            let Ok(text) = String::from_utf8(bytes) else { continue };
            let log = parse_telemetry(&text);
            if log.snapshots.is_empty() {
                flipped += 1;
            } else {
                // A flip that survives must decode to different data or
                // be in a semantically dead byte; checksum coverage of
                // the body makes this impossible before the footer.
                panic!("bit flip at {i} went undetected");
            }
        }
        assert!(flipped > 0);
    }
}
