//! Histogram metrics over the event log.
//!
//! [`Histogram`] is a fixed-layout log2 histogram: bucket 0 counts the
//! value 0 and bucket `i` (1..=64) counts values whose bit length is
//! `i`, i.e. the range `[2^(i-1), 2^i)`. The layout is declared once
//! and never adapts to the data, so two histograms built from the same
//! samples are byte-identical regardless of arrival order, worker
//! count, or host — the same determinism contract the event log keeps
//! with its pinned/non-pinned field split.
//!
//! [`MetricsRegistry`] holds labelled histograms in two classes:
//!
//! * **pinned** — work-denominated quantities (fuel, estimator calls,
//!   cut size, cluster bytes, stall/transfer cycles). Built from
//!   pinned event fields only; [`MetricsRegistry::pinned_json`] must be
//!   byte-identical at every `--jobs` count and across resume/replay.
//! * **wall** — wall-clock durations in microseconds (span `dur_us`,
//!   serve batch latency). Honest measurements, explicitly excluded
//!   from the pinned payload.

use crate::json::{self, JsonValue};
use crate::{Event, EventKind};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of buckets in the fixed log2 layout: bucket 0 for the value
/// 0, buckets 1..=64 for each possible bit length of a `u64`.
pub const HIST_BUCKETS: usize = 65;

/// Whether a histogram counts pinned (work-denominated) samples or
/// non-pinned wall-clock microseconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HistClass {
    /// Deterministic, work-denominated samples (pinned fields).
    Pinned,
    /// Wall-clock microseconds (non-pinned fields).
    Wall,
}

/// A fixed-layout log2 histogram with exact count/sum/min/max.
///
/// Sample values are `u64`; negative counter samples are clamped to 0
/// on entry (every pipeline counter is non-negative by construction,
/// so the clamp only defends against corrupt input).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { counts: vec![0; HIST_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

/// The bucket a value falls into: 0 for 0, else the bit length.
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The largest value a bucket can hold (the representative reported
/// for quantiles, before clamping to the observed min/max).
pub fn bucket_upper(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one (same fixed layout, so
    /// merging is plain bucket addition).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `pct`-th percentile (0..=100), estimated deterministically
    /// from the bucket layout: the upper bound of the bucket holding
    /// the rank, clamped to the observed `[min, max]`. Exact for the
    /// 0th/100th percentiles; within one power of two otherwise.
    pub fn percentile(&self, pct: u32) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (u128::from(self.count) * u128::from(pct.min(100))).div_ceil(100).max(1) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Renders as a JSON object (sparse bucket list, deterministic).
    pub fn to_json(&self, pinned: bool) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"pinned\":{pinned},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
            self.count,
            self.sum,
            self.min(),
            self.max
        );
        let mut first = true;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "[{i},{c}]");
            }
        }
        out.push_str("]}");
        out
    }

    /// Parses a histogram rendered by [`Histogram::to_json`]; returns
    /// the histogram and its pinned flag.
    pub fn from_json(value: &JsonValue) -> Result<(Histogram, bool), String> {
        let pinned =
            value.get("pinned").and_then(JsonValue::as_bool).ok_or("histogram: missing pinned")?;
        let num = |key: &str| -> Result<u64, String> {
            let n = value
                .get(key)
                .and_then(JsonValue::as_num)
                .ok_or(format!("histogram: bad {key}"))?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(format!("histogram: {key} is not a non-negative integer"));
            }
            Ok(n as u64)
        };
        let mut hist = Histogram {
            counts: vec![0; HIST_BUCKETS],
            count: num("count")?,
            sum: num("sum")?,
            min: num("min")?,
            max: num("max")?,
        };
        if hist.count == 0 {
            hist.min = u64::MAX;
        }
        let buckets =
            value.get("buckets").and_then(JsonValue::as_arr).ok_or("histogram: missing buckets")?;
        let mut total = 0u64;
        for b in buckets {
            let pair = b.as_arr().ok_or("histogram: bucket is not a pair")?;
            let (Some(i), Some(c)) =
                (pair.first().and_then(JsonValue::as_num), pair.get(1).and_then(JsonValue::as_num))
            else {
                return Err("histogram: bucket is not a pair of numbers".to_string());
            };
            let idx = i as usize;
            if i < 0.0 || i.fract() != 0.0 || idx >= HIST_BUCKETS {
                return Err(format!("histogram: bucket index {i} out of range"));
            }
            if c < 0.0 || c.fract() != 0.0 {
                return Err(format!("histogram: bucket count {c} invalid"));
            }
            hist.counts[idx] = c as u64;
            total += c as u64;
        }
        if total != hist.count {
            return Err(format!(
                "histogram: bucket counts sum to {total} but count is {}",
                hist.count
            ));
        }
        Ok((hist, pinned))
    }
}

/// A set of labelled histograms with a deterministic snapshot API.
///
/// Labels follow the event log's `cat/name` convention; per-arg
/// distributions get a `cat/name.arg` label. The registry is plain
/// data — serve builds one on its single-threaded commit path and the
/// CLI builds them offline from traces, so no locking is needed.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    entries: BTreeMap<String, (HistClass, Histogram)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Records a pinned (work-denominated) sample. Negative samples
    /// clamp to 0.
    pub fn observe(&mut self, label: &str, value: i64) {
        self.observe_class(label, HistClass::Pinned, value.max(0) as u64);
    }

    /// Records a non-pinned wall-clock sample in microseconds.
    pub fn observe_wall(&mut self, label: &str, micros: u64) {
        self.observe_class(label, HistClass::Wall, micros);
    }

    fn observe_class(&mut self, label: &str, class: HistClass, value: u64) {
        let entry =
            self.entries.entry(label.to_string()).or_insert_with(|| (class, Histogram::new()));
        entry.1.observe(value);
    }

    /// Ingests one event: a counter feeds a pinned `cat/name`
    /// histogram, a span feeds a wall `cat/name` histogram from its
    /// duration plus one pinned `cat/name.arg` histogram per pinned
    /// integer argument (how per-function estimator effort and METIS
    /// fuel become distributions).
    pub fn observe_event(&mut self, event: &Event) {
        let label = format!("{}/{}", event.cat, event.name);
        match event.kind {
            EventKind::Counter(v) => self.observe(&label, v),
            EventKind::Span => {
                self.observe_wall(&label, event.dur_us);
                for (k, v) in &event.args {
                    self.observe(&format!("{label}.{k}"), *v);
                }
            }
        }
    }

    /// Builds a registry from an event log.
    pub fn from_events(events: &[Event]) -> Self {
        let mut reg = MetricsRegistry::new();
        for e in events {
            reg.observe_event(e);
        }
        reg
    }

    /// Builds a registry from an exported Chrome trace document:
    /// `"X"` spans feed wall histograms (duration) plus pinned arg
    /// histograms (the synthetic `seq` arg is skipped); `"C"` counters
    /// feed pinned histograms from the value keyed under the counter's
    /// own name, with extra args as pinned `label.arg` histograms.
    pub fn from_trace(text: &str) -> Result<MetricsRegistry, String> {
        let doc = json::parse(text)?;
        let events = doc
            .get("traceEvents")
            .and_then(JsonValue::as_arr)
            .ok_or("missing 'traceEvents' array")?;
        let mut reg = MetricsRegistry::new();
        for (i, e) in events.iter().enumerate() {
            let name = e
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or(format!("event {i}: missing name"))?;
            let cat = e
                .get("cat")
                .and_then(JsonValue::as_str)
                .ok_or(format!("event {i}: missing cat"))?;
            let label = format!("{cat}/{name}");
            let args: &[(String, JsonValue)] = match e.get("args") {
                Some(JsonValue::Obj(fields)) => fields,
                _ => &[],
            };
            match e.get("ph").and_then(JsonValue::as_str) {
                Some("X") => {
                    let dur = e
                        .get("dur")
                        .and_then(JsonValue::as_num)
                        .ok_or(format!("event {i}: span missing dur"))?;
                    reg.observe_wall(&label, dur.max(0.0) as u64);
                    for (k, v) in args {
                        if k == "seq" {
                            continue;
                        }
                        if let Some(n) = v.as_num() {
                            reg.observe(&format!("{label}.{k}"), n as i64);
                        }
                    }
                }
                Some("C") => {
                    for (k, v) in args {
                        let Some(n) = v.as_num() else { continue };
                        if k == name {
                            reg.observe(&label, n as i64);
                        } else {
                            reg.observe(&format!("{label}.{k}"), n as i64);
                        }
                    }
                }
                Some(other) => return Err(format!("event {i}: unknown phase '{other}'")),
                None => return Err(format!("event {i}: missing ph")),
            }
        }
        Ok(reg)
    }

    /// Whether the registry holds no histograms.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a histogram by label.
    pub fn get(&self, label: &str) -> Option<&Histogram> {
        self.entries.get(label).map(|(_, h)| h)
    }

    /// Iterates `(label, class, histogram)` in sorted label order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, HistClass, &Histogram)> {
        self.entries.iter().map(|(label, (class, hist))| (label.as_str(), *class, hist))
    }

    /// Folds another registry into this one.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (label, (class, hist)) in &other.entries {
            let entry =
                self.entries.entry(label.clone()).or_insert_with(|| (*class, Histogram::new()));
            entry.1.merge(hist);
        }
    }

    /// Snapshot as a JSON object, labels sorted: the flight-recorder
    /// payload. Includes both pinned and wall histograms.
    pub fn to_json(&self) -> String {
        self.render_json(false)
    }

    /// Snapshot of **only** the pinned histograms: the payload the
    /// determinism contract covers. Byte-identical at every `--jobs`
    /// count and across resume/replay.
    pub fn pinned_json(&self) -> String {
        self.render_json(true)
    }

    fn render_json(&self, pinned_only: bool) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for (label, class, hist) in self.iter() {
            if pinned_only && class != HistClass::Pinned {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\"{}\":{}",
                json::escape(label),
                hist.to_json(class == HistClass::Pinned)
            );
        }
        out.push('}');
        out
    }

    /// Parses a registry rendered by [`MetricsRegistry::to_json`].
    pub fn from_json(value: &JsonValue) -> Result<MetricsRegistry, String> {
        let JsonValue::Obj(fields) = value else {
            return Err("metrics: expected an object".to_string());
        };
        let mut reg = MetricsRegistry::new();
        for (label, v) in fields {
            let (hist, pinned) =
                Histogram::from_json(v).map_err(|e| format!("metrics '{label}': {e}"))?;
            let class = if pinned { HistClass::Pinned } else { HistClass::Wall };
            reg.entries.insert(label.clone(), (class, hist));
        }
        Ok(reg)
    }

    /// Renders the percentile tables: wall-clock latencies first (in
    /// microseconds), then pinned work distributions. Columns are
    /// count, min, p50, p90, p99, max.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        for (title, class) in [
            ("latency percentiles (wall-clock, us)", HistClass::Wall),
            ("work distributions (pinned)", HistClass::Pinned),
        ] {
            let rows: Vec<_> = self.iter().filter(|(_, c, _)| *c == class).collect();
            if rows.is_empty() {
                continue;
            }
            let _ = writeln!(out, "== {title} ==");
            let _ = writeln!(
                out,
                "{:<38} {:>7} {:>12} {:>12} {:>12} {:>12} {:>12}",
                "label", "count", "min", "p50", "p90", "p99", "max"
            );
            for (label, _, h) in rows {
                let _ = writeln!(
                    out,
                    "{:<38} {:>7} {:>12} {:>12} {:>12} {:>12} {:>12}",
                    label,
                    h.count(),
                    h.min(),
                    h.percentile(50),
                    h.percentile(90),
                    h.percentile(99),
                    h.max()
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn histogram_tracks_exact_extremes() {
        let mut h = Histogram::new();
        assert_eq!((h.count(), h.min(), h.max(), h.sum()), (0, 0, 0, 0));
        for v in [7, 0, 900, 17] {
            h.observe(v);
        }
        assert_eq!((h.count(), h.min(), h.max(), h.sum()), (4, 0, 900, 924));
    }

    #[test]
    fn percentiles_are_deterministic_and_clamped() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.observe(v);
        }
        assert_eq!(h.percentile(0), 1);
        assert_eq!(h.percentile(100), 100);
        // p50 lands in bucket [32,64): upper bound 63.
        assert_eq!(h.percentile(50), 63);
        // Percentiles never exceed the observed max.
        let mut one = Histogram::new();
        one.observe(5);
        assert_eq!(one.percentile(99), 5);
    }

    #[test]
    fn observation_order_does_not_matter() {
        let samples = [3u64, 99, 0, 7, 7, 1_000_000, 42];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in samples {
            a.observe(v);
        }
        for v in samples.iter().rev() {
            b.observe(*v);
        }
        assert_eq!(a, b);
        assert_eq!(a.to_json(true), b.to_json(true));
    }

    #[test]
    fn merge_equals_combined_observation() {
        let mut all = Histogram::new();
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for v in [1u64, 2, 3] {
            all.observe(v);
            left.observe(v);
        }
        for v in [10u64, 0, 500] {
            all.observe(v);
            right.observe(v);
        }
        left.merge(&right);
        assert_eq!(left, all);
    }

    #[test]
    fn histogram_json_roundtrips() {
        let mut h = Histogram::new();
        for v in [0u64, 5, 5, 1 << 40] {
            h.observe(v);
        }
        let text = h.to_json(true);
        let parsed = json::parse(&text).expect("valid json");
        let (back, pinned) = Histogram::from_json(&parsed).expect("roundtrip");
        assert!(pinned);
        assert_eq!(back, h);
        let empty_text = Histogram::new().to_json(false);
        let (empty, pinned) =
            Histogram::from_json(&json::parse(&empty_text).unwrap()).expect("empty roundtrip");
        assert!(!pinned);
        assert_eq!(empty, Histogram::new());
    }

    #[test]
    fn histogram_json_rejects_inconsistent_counts() {
        let bad = r#"{"pinned":true,"count":3,"sum":1,"min":0,"max":1,"buckets":[[1,1]]}"#;
        let err = Histogram::from_json(&json::parse(bad).unwrap()).unwrap_err();
        assert!(err.contains("sum to 1"), "{err}");
        let oob = r#"{"pinned":true,"count":1,"sum":1,"min":1,"max":1,"buckets":[[99,1]]}"#;
        assert!(Histogram::from_json(&json::parse(oob).unwrap()).is_err());
    }

    #[test]
    fn registry_splits_pinned_from_wall() {
        let mut reg = MetricsRegistry::new();
        reg.observe("gdp/cut", 42);
        reg.observe_wall("pipeline/analysis", 1500);
        let pinned = reg.pinned_json();
        assert!(pinned.contains("gdp/cut"), "{pinned}");
        assert!(!pinned.contains("pipeline/analysis"), "{pinned}");
        let full = reg.to_json();
        assert!(full.contains("pipeline/analysis"), "{full}");
        let table = reg.render_table();
        assert!(table.contains("latency percentiles"), "{table}");
        assert!(table.contains("work distributions"), "{table}");
    }

    #[test]
    fn registry_ingests_events() {
        use std::time::Instant;
        let obs = crate::Obs::enabled();
        obs.counter("gdp", "cut", 10);
        obs.counter("gdp", "cut", 30);
        obs.span_args("rhop", "function", Instant::now(), &[("estimator_calls", 77)]);
        let reg = MetricsRegistry::from_events(&obs.events());
        assert_eq!(reg.get("gdp/cut").map(Histogram::count), Some(2));
        assert_eq!(reg.get("rhop/function.estimator_calls").map(Histogram::sum), Some(77));
        assert_eq!(reg.get("rhop/function").map(Histogram::count), Some(1));
        // The pinned payload must not depend on the span's duration.
        let replayed = crate::Obs::enabled();
        for e in obs.events() {
            replayed.replay(crate::intern_cat(e.cat), &e.name, e.kind, e.args.clone());
        }
        let reg2 = MetricsRegistry::from_events(&replayed.events());
        assert_eq!(reg.pinned_json(), reg2.pinned_json());
    }

    #[test]
    fn registry_ingests_chrome_traces() {
        let obs = crate::Obs::enabled();
        obs.counter_args("serve", "cache_hits", 3, &[("batch", 2)]);
        obs.span_args("pipeline", "sim", std::time::Instant::now(), &[("cycles", 123)]);
        let reg = MetricsRegistry::from_trace(&obs.chrome_trace()).expect("trace parses");
        assert_eq!(reg.get("serve/cache_hits").map(Histogram::sum), Some(3));
        assert_eq!(reg.get("serve/cache_hits.batch").map(Histogram::sum), Some(2));
        assert_eq!(reg.get("pipeline/sim.cycles").map(Histogram::sum), Some(123));
        // The synthetic per-span "seq" arg is not a metric.
        assert!(reg.get("pipeline/sim.seq").is_none());
        assert!(MetricsRegistry::from_trace("{}").is_err());
    }

    #[test]
    fn registry_json_roundtrips_and_merges() {
        let mut a = MetricsRegistry::new();
        a.observe("sim/stall_cycles", 100);
        a.observe_wall("serve/batch", 2000);
        let text = a.to_json();
        let back = MetricsRegistry::from_json(&json::parse(&text).unwrap()).expect("roundtrip");
        assert_eq!(back, a);
        let mut b = MetricsRegistry::new();
        b.observe("sim/stall_cycles", 50);
        a.merge(&b);
        assert_eq!(a.get("sim/stall_cycles").map(Histogram::count), Some(2));
        assert_eq!(a.get("sim/stall_cycles").map(Histogram::sum), Some(150));
    }
}
