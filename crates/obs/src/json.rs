//! A minimal strict JSON parser, just enough to validate exported
//! traces without a serde dependency, plus [`validate_trace`] — the
//! structural check used by tests, the CLI `trace-check` command and
//! `scripts/check.sh`.

use std::collections::{BTreeMap, BTreeSet};

/// Maximum container nesting the parser accepts. Our exporters emit
/// depth ≤ 4; the limit exists so adversarial input (a few kilobytes
/// of `[`) exhausts an error path instead of the stack.
pub const MAX_DEPTH: usize = 128;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an
/// error, as is any syntax deviation (this parser is strict on
/// purpose — it is the round-trip check for our own exporters).
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", want as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {}", *pos));
    }
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos, depth),
        Some(b'[') => parse_arr(bytes, pos, depth),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", JsonValue::Null),
        Some(b) if b.is_ascii_digit() || *b == b'-' => parse_num(bytes, pos),
        Some(b) => Err(format!("unexpected byte '{}' at {}", *b as char, *pos)),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while bytes.get(*pos).is_some_and(|b| b.is_ascii_digit()) {
        *pos += 1;
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        while bytes.get(*pos).is_some_and(|b| b.is_ascii_digit()) {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        while bytes.get(*pos).is_some_and(|b| b.is_ascii_digit()) {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    let num = text.parse::<f64>().map_err(|_| format!("bad number '{text}' at byte {start}"))?;
    // Rust's f64 parser follows IEEE semantics: overflow yields an
    // infinity (and underflow rounds to zero). JSON has no infinity,
    // so an overflowing literal is a hard error, not a silent inf.
    if !num.is_finite() {
        return Err(format!("number '{text}' overflows f64 at byte {start}"));
    }
    Ok(JsonValue::Num(num))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("truncated \\u escape at byte {}", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape '{hex}' at byte {}", *pos))?;
                        // Surrogates are not paired up; our exporters
                        // never emit them, so reject rather than mangle.
                        let ch = char::from_u32(code).ok_or_else(|| {
                            format!("unpaired surrogate \\u{hex} at byte {}", *pos)
                        })?;
                        out.push(ch);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => return Err(format!("raw control byte in string at {}", *pos)),
            Some(_) => {
                // Copy one UTF-8 scalar. The input is a &str, so byte
                // boundaries are already valid.
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid utf-8".to_string())?;
                let ch = rest.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
            None => return Err("unterminated string".to_string()),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos, depth + 1)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

/// Escapes a string for embedding in a JSON document (used by the
/// Chrome trace exporter).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Extracts the byte offset embedded in this module's parse-error
/// messages ("... at byte N" / "... at N"), if present.
pub fn error_byte(message: &str) -> Option<usize> {
    let digits: String = message
        .rsplit(|c: char| !c.is_ascii_digit())
        .next()
        .map(str::to_string)
        .unwrap_or_default();
    if message.ends_with(&digits) && !digits.is_empty() {
        digits.parse().ok()
    } else {
        None
    }
}

/// Converts a byte offset into 1-based `(line, column)` coordinates
/// for diagnostics (column counts bytes, matching the parser).
pub fn line_col(text: &str, byte: usize) -> (usize, usize) {
    let byte = byte.min(text.len());
    let prefix = &text.as_bytes()[..byte];
    let line = prefix.iter().filter(|&&b| b == b'\n').count() + 1;
    let col = byte - prefix.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1) + 1;
    (line, col)
}

/// Structural statistics of a validated Chrome trace.
#[derive(Clone, Debug, Default)]
pub struct TraceStats {
    /// Total events in `traceEvents`.
    pub events: usize,
    /// `"ph": "X"` complete (span) events.
    pub spans: usize,
    /// `"ph": "C"` counter events.
    pub counters: usize,
    /// `cat/name` labels of every counter event.
    pub counter_names: BTreeSet<String>,
    /// The **last** sample of each counter, by `cat/name` label (our
    /// counters are cumulative totals, so the last sample is the
    /// final value).
    pub counter_last: BTreeMap<String, i64>,
    /// Labels of counters that carried a nonzero sample at least once
    /// (`trace-check --forbid` asserts a label is absent from here:
    /// an all-zero counter still counts as a clean run).
    pub counter_nonzero: BTreeSet<String>,
    /// Non-fatal structural oddities (unknown top-level keys): the
    /// trace is usable, but a tool should surface these.
    pub warnings: Vec<String>,
}

impl TraceStats {
    /// Whether a counter with the given `cat/name` label was present.
    pub fn has_counter(&self, label: &str) -> bool {
        self.counter_names.contains(label)
    }

    /// The final (last-sampled) value of a counter, if present.
    pub fn counter_value(&self, label: &str) -> Option<i64> {
        self.counter_last.get(label).copied()
    }
}

/// Parses `text` as a Chrome `trace_event` JSON document and checks
/// its structure: a top-level object with a `traceEvents` array whose
/// entries all carry `name`, `cat`, `ph`, and numeric `ts`. Returns
/// counts by phase on success.
pub fn validate_trace(text: &str) -> Result<TraceStats, String> {
    let doc = parse(text)?;
    let events =
        doc.get("traceEvents").and_then(JsonValue::as_arr).ok_or("missing 'traceEvents' array")?;
    let mut stats = TraceStats { events: events.len(), ..TraceStats::default() };
    // The Chrome trace format tolerates extra metadata keys; unknown
    // ones are worth a warning (typos, version skew) but not an error.
    const KNOWN_TOP: &[&str] =
        &["traceEvents", "displayTimeUnit", "otherData", "metadata", "systemTraceEvents"];
    if let JsonValue::Obj(fields) = &doc {
        for (key, _) in fields {
            if !KNOWN_TOP.contains(&key.as_str()) {
                stats.warnings.push(format!("unknown top-level key '{key}'"));
            }
        }
    }
    for (i, e) in events.iter().enumerate() {
        let name =
            e.get("name").and_then(JsonValue::as_str).ok_or(format!("event {i}: missing name"))?;
        let cat =
            e.get("cat").and_then(JsonValue::as_str).ok_or(format!("event {i}: missing cat"))?;
        e.get("ts").and_then(JsonValue::as_num).ok_or(format!("event {i}: missing ts"))?;
        match e.get("ph").and_then(JsonValue::as_str) {
            Some("X") => {
                e.get("dur")
                    .and_then(JsonValue::as_num)
                    .ok_or(format!("event {i}: span missing dur"))?;
                stats.spans += 1;
            }
            Some("C") => {
                stats.counters += 1;
                let label = format!("{cat}/{name}");
                // The exporter writes the sample under the counter's
                // own name inside `args`; tolerate its absence (other
                // producers), recording presence only.
                if let Some(v) = e.get("args").and_then(|a| a.get(name)).and_then(JsonValue::as_num)
                {
                    let v = v as i64;
                    stats.counter_last.insert(label.clone(), v);
                    if v != 0 {
                        stats.counter_nonzero.insert(label.clone());
                    }
                }
                stats.counter_names.insert(label);
            }
            Some(other) => return Err(format!("event {i}: unknown phase '{other}'")),
            None => return Err(format!("event {i}: missing ph")),
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" false ").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), JsonValue::Num(-1250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), JsonValue::Str("a\nb".to_string()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(r#"{"a": [1, {"b": "c"}], "d": null}"#).unwrap();
        assert_eq!(doc.get("d"), Some(&JsonValue::Null));
        let arr = doc.get("a").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(arr[0].as_num(), Some(1.0));
        assert_eq!(arr[1].get("b").and_then(JsonValue::as_str), Some("c"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated", "{\"a\" 1}"] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn unicode_escapes_roundtrip() {
        assert_eq!(parse("\"\\u0041\\u00e9\"").unwrap(), JsonValue::Str("Aé".to_string()));
        assert!(parse("\"\\ud800\"").is_err(), "lone surrogate is rejected");
    }

    #[test]
    fn deep_nesting_hits_the_depth_limit_not_the_stack() {
        // Just inside the limit parses...
        let ok = format!("{}0{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&ok).is_ok());
        // ...one deeper is a clean error, even for pathological input.
        let too_deep = format!("{}0{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1));
        let err = parse(&too_deep).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        let bomb = "[".repeat(100_000);
        assert!(parse(&bomb).is_err(), "array bomb must not overflow the stack");
        let obj_bomb = "{\"k\":".repeat(100_000);
        assert!(parse(&obj_bomb).is_err(), "object bomb must not overflow the stack");
    }

    #[test]
    fn number_overflow_and_underflow_edges() {
        // Overflow to infinity is a hard error, positive and negative.
        for bad in ["1e999", "-1e999", "1e308999", "123456789e9999999"] {
            let err = parse(bad).unwrap_err();
            assert!(err.contains("overflow"), "{bad}: {err}");
        }
        // Underflow follows IEEE round-to-zero: accepted, tiny or zero.
        assert_eq!(parse("1e-999").unwrap(), JsonValue::Num(0.0));
        let denormal = parse("5e-324").unwrap().as_num().unwrap();
        assert!(denormal > 0.0 && denormal < f64::MIN_POSITIVE);
        // Extreme-but-finite magnitudes still parse.
        assert_eq!(parse("1.7976931348623157e308").unwrap(), JsonValue::Num(f64::MAX));
        // Malformed exponents/digits are rejected outright.
        for bad in ["1e", "1e+", "--1", "+1", ".5"] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn string_escape_edges_are_rejected() {
        // Lone surrogates in every position, both halves.
        for bad in ["\"\\ud800\"", "\"\\udfff\"", "\"a\\ud923b\"", "\"\\ud800\\ud800\""] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
        // Invalid escape letters and truncated \u escapes.
        for bad in ["\"\\x41\"", "\"\\ \"", "\"\\u12\"", "\"\\u12g4\"", "\"\\u\"", "\"\\\""] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
        // Raw control bytes are rejected; escaped ones are fine.
        assert!(parse("\"a\u{1}b\"").is_err());
        assert_eq!(parse("\"a\\u0001b\"").unwrap(), JsonValue::Str("a\u{1}b".to_string()));
    }

    #[test]
    fn escape_makes_strings_safe() {
        let nasty = "a\"b\\c\nd\te\u{1}";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap(), JsonValue::Str(nasty.to_string()));
    }

    #[test]
    fn validate_trace_happy_path() {
        let text = r#"{"traceEvents":[
            {"name":"s","cat":"p","ph":"X","ts":1,"dur":5,"pid":1,"tid":1},
            {"name":"c","cat":"g","ph":"C","ts":2,"args":{"c":3}}
        ]}"#;
        let stats = validate_trace(text).unwrap();
        assert_eq!((stats.events, stats.spans, stats.counters), (2, 1, 1));
        assert!(stats.has_counter("g/c"));
        assert!(!stats.has_counter("g/missing"));
        assert_eq!(stats.counter_value("g/c"), Some(3));
        assert_eq!(stats.counter_value("g/missing"), None);
    }

    #[test]
    fn counter_values_track_last_sample_and_nonzero_history() {
        let text = r#"{"traceEvents":[
            {"name":"retries","cat":"s","ph":"C","ts":1,"args":{"retries":2}},
            {"name":"retries","cat":"s","ph":"C","ts":2,"args":{"retries":0}},
            {"name":"quarantined","cat":"s","ph":"C","ts":3,"args":{"quarantined":0}}
        ]}"#;
        let stats = validate_trace(text).unwrap();
        // Last sample wins for the value...
        assert_eq!(stats.counter_value("s/retries"), Some(0));
        // ...but nonzero history is remembered for --forbid.
        assert!(stats.counter_nonzero.contains("s/retries"));
        assert!(!stats.counter_nonzero.contains("s/quarantined"));
    }

    #[test]
    fn unknown_top_level_keys_warn_but_pass() {
        let text = r#"{"traceEvents":[],"frobs":1,"displayTimeUnit":"ms"}"#;
        let stats = validate_trace(text).unwrap();
        assert_eq!(stats.warnings.len(), 1, "{:?}", stats.warnings);
        assert!(stats.warnings[0].contains("frobs"), "{:?}", stats.warnings);
        let clean = validate_trace(r#"{"traceEvents":[]}"#).unwrap();
        assert!(clean.warnings.is_empty());
    }

    #[test]
    fn error_byte_and_line_col_locate_failures() {
        let text = "{\"ok\": 1}\n{\"bad\": }";
        let err = parse(&text[10..]).unwrap_err();
        let byte = error_byte(&err).expect("offset in message");
        assert_eq!(byte, 8, "{err}");
        assert_eq!(line_col(text, 10 + byte), (2, 9));
        assert_eq!(line_col(text, 0), (1, 1));
        assert_eq!(line_col(text, 1_000_000), (2, 10), "clamped to end");
        assert_eq!(error_byte("no offset here"), None);
    }

    #[test]
    fn validate_trace_rejects_structural_problems() {
        assert!(validate_trace("[]").is_err(), "top level must be an object");
        assert!(validate_trace(r#"{"traceEvents": 3}"#).is_err());
        let no_ph = r#"{"traceEvents":[{"name":"s","cat":"p","ts":1}]}"#;
        assert!(validate_trace(no_ph).is_err());
        let span_no_dur = r#"{"traceEvents":[{"name":"s","cat":"p","ph":"X","ts":1}]}"#;
        assert!(validate_trace(span_no_dur).is_err());
    }
}
