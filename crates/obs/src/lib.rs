//! # mcpart-obs — observability for the partitioning pipeline
//!
//! A tiny, dependency-free tracing and metrics layer: stages record
//! **spans** (a labelled interval with wall-clock duration) and
//! **counters** (a labelled integer sample) into a shared, thread-safe
//! sink, and the sink exports them as a Chrome `trace_event` JSON file
//! ([`Obs::chrome_trace`]), a human-readable end-of-run summary table
//! ([`Obs::summary`]) or a deterministic pinned log
//! ([`Obs::pinned_log`]). The [`metrics`] module aggregates the log
//! into fixed-layout log2 histograms with a snapshot API, and the
//! [`recorder`] module appends those snapshots to a crash-safe
//! flight-recorder log (serve mode's `<spool>/telemetry/`).
//!
//! ## The determinism contract
//!
//! The pipeline parallelizes with `mcpart-par`, whose contract is
//! input-order reduction of per-item results. Observability composes
//! with that contract by splitting every event into **pinned** fields
//! (sequence number, category, name, kind, integer args) and
//! **non-pinned** fields (the wall-clock timestamp and duration).
//! Workers never write to the sink directly: each worker records into a
//! private [`EventBuf`], and the caller appends the buffers **in input
//! order** ([`Obs::append`]) during the same ordered reduction it
//! already performs for results. Sequence numbers are assigned at
//! append time, so the pinned projection of the event log — what
//! [`Obs::pinned_log`] renders — is byte-identical for every `--jobs`
//! value, while timestamps remain honest wall-clock measurements.
//!
//! ## Disabled is free-ish
//!
//! [`Obs::disabled`] (also [`Obs::default`]) carries no sink at all;
//! every recording call is a cheap branch on an `Option`. Cloning an
//! enabled `Obs` shares the sink (it is an `Arc`), which is how one
//! sink observes every rung of the pipeline's degradation ladder.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod json;
pub mod metrics;
pub mod recorder;

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// What an [`Event`] measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A labelled interval: `dur_us` is meaningful.
    Span,
    /// A labelled integer sample.
    Counter(i64),
}

/// One recorded observation.
///
/// `seq`, `cat`, `name`, `kind` and `args` are **pinned**: they must be
/// identical across worker counts. `ts_us`/`dur_us` are **non-pinned**
/// wall-clock measurements and are excluded from [`Obs::pinned_log`].
#[derive(Clone, Debug)]
pub struct Event {
    /// Position in the flushed log (assigned at append time).
    pub seq: u64,
    /// Coarse source category (`"pipeline"`, `"gdp"`, `"metis"`, ...).
    pub cat: &'static str,
    /// Event name within the category.
    pub name: String,
    /// Span or counter.
    pub kind: EventKind,
    /// Pinned integer attributes (`("nodes", 120)`, ...).
    pub args: Vec<(String, i64)>,
    /// Microseconds since the sink was created (non-pinned).
    pub ts_us: u64,
    /// Span duration in microseconds (non-pinned; 0 for counters).
    pub dur_us: u64,
}

#[derive(Debug)]
struct Sink {
    zero: Instant,
    events: Mutex<Vec<Event>>,
}

/// A cloneable handle on a shared event sink (or on nothing at all:
/// the default handle is disabled and records nothing).
#[derive(Clone, Debug, Default)]
pub struct Obs {
    inner: Option<Arc<Sink>>,
}

/// A private, single-threaded event buffer for one `mcpart-par` work
/// item. Workers record here and the caller flushes the buffers in
/// input order with [`Obs::append`]; see the crate docs for why.
#[derive(Debug, Default)]
pub struct EventBuf {
    zero: Option<Instant>,
    events: Vec<Event>,
}

impl EventBuf {
    /// Whether the parent handle was enabled (a disabled buffer drops
    /// everything recorded into it).
    pub fn is_enabled(&self) -> bool {
        self.zero.is_some()
    }

    fn push(
        &mut self,
        cat: &'static str,
        name: &str,
        kind: EventKind,
        args: &[(&str, i64)],
        started: Option<Instant>,
    ) {
        let Some(zero) = self.zero else { return };
        let (ts_us, dur_us) = stamp(zero, started);
        self.events.push(Event {
            seq: 0, // assigned at append time
            cat,
            name: name.to_string(),
            kind,
            args: args.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
            ts_us,
            dur_us,
        });
    }

    /// Records a counter sample into the buffer.
    pub fn counter(&mut self, cat: &'static str, name: &str, value: i64) {
        self.push(cat, name, EventKind::Counter(value), &[], None);
    }

    /// Records a span that began at `started` and ends now.
    pub fn span_since(&mut self, cat: &'static str, name: &str, started: Instant) {
        self.push(cat, name, EventKind::Span, &[], Some(started));
    }

    /// Records a span with pinned integer attributes.
    pub fn span_args(
        &mut self,
        cat: &'static str,
        name: &str,
        started: Instant,
        args: &[(&str, i64)],
    ) {
        self.push(cat, name, EventKind::Span, args, Some(started));
    }
}

/// Maps a category string (e.g. parsed back out of a checkpoint file)
/// onto the `&'static str` that [`Event::cat`] requires. The known
/// pipeline categories are returned without allocation; unknown ones
/// are leaked once — categories are a small closed set in practice, so
/// the leak is bounded and keeps `Event` allocation-free on the hot
/// recording path.
pub fn intern_cat(cat: &str) -> &'static str {
    const KNOWN: &[&str] = &[
        "pipeline",
        "gdp",
        "metis",
        "rhop",
        "sched",
        "sim",
        "exec",
        "supervise",
        "checkpoint",
        "serve",
        "repartition",
        "bench",
    ];
    if let Some(k) = KNOWN.iter().find(|&&k| k == cat) {
        return k;
    }
    Box::leak(cat.to_string().into_boxed_str())
}

fn stamp(zero: Instant, started: Option<Instant>) -> (u64, u64) {
    match started {
        Some(start) => {
            let ts = start.saturating_duration_since(zero).as_micros() as u64;
            let dur = start.elapsed().as_micros() as u64;
            (ts, dur)
        }
        None => (zero.elapsed().as_micros() as u64, 0),
    }
}

impl Obs {
    /// A live handle with a fresh, empty sink.
    pub fn enabled() -> Self {
        Obs { inner: Some(Arc::new(Sink { zero: Instant::now(), events: Mutex::new(Vec::new()) })) }
    }

    /// A handle that records nothing (the default).
    pub fn disabled() -> Self {
        Obs::default()
    }

    /// Whether this handle carries a sink.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn record(
        &self,
        cat: &'static str,
        name: &str,
        kind: EventKind,
        args: &[(&str, i64)],
        started: Option<Instant>,
    ) {
        let Some(sink) = &self.inner else { return };
        let (ts_us, dur_us) = stamp(sink.zero, started);
        let mut events = sink.events.lock().expect("obs sink poisoned");
        let seq = events.len() as u64;
        events.push(Event {
            seq,
            cat,
            name: name.to_string(),
            kind,
            args: args.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
            ts_us,
            dur_us,
        });
    }

    /// Records a counter sample.
    pub fn counter(&self, cat: &'static str, name: &str, value: i64) {
        self.record(cat, name, EventKind::Counter(value), &[], None);
    }

    /// Records a counter sample with pinned integer attributes.
    pub fn counter_args(&self, cat: &'static str, name: &str, value: i64, args: &[(&str, i64)]) {
        self.record(cat, name, EventKind::Counter(value), args, None);
    }

    /// Records a span that began at `started` and ends now.
    pub fn span_since(&self, cat: &'static str, name: &str, started: Instant) {
        self.record(cat, name, EventKind::Span, &[], Some(started));
    }

    /// Records a span with pinned integer attributes.
    pub fn span_args(&self, cat: &'static str, name: &str, started: Instant, args: &[(&str, i64)]) {
        self.record(cat, name, EventKind::Span, args, Some(started));
    }

    /// Re-records the pinned fields of a previously exported event —
    /// the checkpoint-resume path, which replays a completed unit's
    /// events so a resumed run's [`Obs::pinned_log`] is byte-identical
    /// to an uninterrupted one. The sequence number is reassigned at
    /// record time; the timestamp is "now" and the duration 0 (both
    /// non-pinned).
    pub fn replay(&self, cat: &'static str, name: &str, kind: EventKind, args: Vec<(String, i64)>) {
        let Some(sink) = &self.inner else { return };
        let (ts_us, dur_us) = stamp(sink.zero, None);
        let mut events = sink.events.lock().expect("obs sink poisoned");
        let seq = events.len() as u64;
        events.push(Event { seq, cat, name: name.to_string(), kind, args, ts_us, dur_us });
    }

    /// A private buffer for one parallel work item. The buffer shares
    /// this handle's time base so exported timestamps stay coherent;
    /// a disabled handle yields a buffer that drops everything.
    pub fn buffer(&self) -> EventBuf {
        EventBuf { zero: self.inner.as_ref().map(|s| s.zero), events: Vec::new() }
    }

    /// Flushes a worker buffer into the sink, assigning sequence
    /// numbers. Call in **input order** from the ordered reduction —
    /// that is the whole determinism contract.
    pub fn append(&self, buf: EventBuf) {
        let Some(sink) = &self.inner else { return };
        let mut events = sink.events.lock().expect("obs sink poisoned");
        for mut e in buf.events {
            e.seq = events.len() as u64;
            events.push(e);
        }
    }

    /// A snapshot of every event recorded so far, in sequence order.
    pub fn events(&self) -> Vec<Event> {
        match &self.inner {
            Some(sink) => sink.events.lock().expect("obs sink poisoned").clone(),
            None => Vec::new(),
        }
    }

    /// The latest sample of a counter, if any was recorded.
    pub fn last_counter(&self, cat: &str, name: &str) -> Option<i64> {
        self.events().iter().rev().find_map(|e| match e.kind {
            EventKind::Counter(v) if e.cat == cat && e.name == name => Some(v),
            _ => None,
        })
    }

    /// The deterministic projection of the event log: one line per
    /// event with every pinned field and no timestamps. Byte-identical
    /// across worker counts when recording follows the crate contract.
    pub fn pinned_log(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            let kind = match e.kind {
                EventKind::Span => "span".to_string(),
                EventKind::Counter(v) => format!("counter={v}"),
            };
            let _ = write!(out, "{:>5} {}/{} {}", e.seq, e.cat, e.name, kind);
            for (k, v) in &e.args {
                let _ = write!(out, " {k}={v}");
            }
            out.push('\n');
        }
        out
    }

    /// Renders the log as a Chrome `trace_event` JSON document (load
    /// it at `chrome://tracing` or in Perfetto). Spans become `"X"`
    /// complete events, counters become `"C"` counter events.
    pub fn chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, e) in self.events().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n{");
            let _ = write!(
                out,
                "\"name\":\"{}\",\"cat\":\"{}\",\"pid\":1,\"tid\":1,\"ts\":{}",
                json::escape(&e.name),
                json::escape(e.cat),
                e.ts_us
            );
            match e.kind {
                EventKind::Span => {
                    let _ = write!(out, ",\"ph\":\"X\",\"dur\":{}", e.dur_us);
                    out.push_str(",\"args\":{");
                    let _ = write!(out, "\"seq\":{}", e.seq);
                    for (k, v) in &e.args {
                        let _ = write!(out, ",\"{}\":{}", json::escape(k), v);
                    }
                    out.push('}');
                }
                EventKind::Counter(v) => {
                    let _ =
                        write!(out, ",\"ph\":\"C\",\"args\":{{\"{}\":{}", json::escape(&e.name), v);
                    for (k, a) in &e.args {
                        let _ = write!(out, ",\"{}\":{}", json::escape(k), a);
                    }
                    out.push('}');
                }
            }
            out.push('}');
        }
        out.push_str("\n]}\n");
        out
    }

    /// A human-readable end-of-run summary: spans aggregated by
    /// `cat/name` (count + total milliseconds, in first-seen order),
    /// then counters (count + last + sum).
    pub fn summary(&self) -> String {
        struct SpanAgg {
            label: String,
            count: u64,
            total_us: u64,
        }
        struct CtrAgg {
            label: String,
            count: u64,
            last: i64,
            sum: i64,
        }
        let mut spans: Vec<SpanAgg> = Vec::new();
        let mut ctrs: Vec<CtrAgg> = Vec::new();
        for e in self.events() {
            let label = format!("{}/{}", e.cat, e.name);
            match e.kind {
                EventKind::Span => match spans.iter_mut().find(|s| s.label == label) {
                    Some(s) => {
                        s.count += 1;
                        s.total_us += e.dur_us;
                    }
                    None => spans.push(SpanAgg { label, count: 1, total_us: e.dur_us }),
                },
                EventKind::Counter(v) => match ctrs.iter_mut().find(|c| c.label == label) {
                    Some(c) => {
                        c.count += 1;
                        c.last = v;
                        c.sum += v;
                    }
                    None => ctrs.push(CtrAgg { label, count: 1, last: v, sum: v }),
                },
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== observability summary ==");
        if !spans.is_empty() {
            let _ = writeln!(out, "{:<34} {:>6} {:>12}", "span", "count", "total ms");
            for s in &spans {
                let _ = writeln!(
                    out,
                    "{:<34} {:>6} {:>12.3}",
                    s.label,
                    s.count,
                    s.total_us as f64 / 1000.0
                );
            }
        }
        if !ctrs.is_empty() {
            let _ = writeln!(out, "{:<34} {:>6} {:>12} {:>12}", "counter", "count", "last", "sum");
            for c in &ctrs {
                let _ =
                    writeln!(out, "{:<34} {:>6} {:>12} {:>12}", c.label, c.count, c.last, c.sum);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        obs.counter("t", "c", 1);
        obs.span_since("t", "s", Instant::now());
        let mut buf = obs.buffer();
        buf.counter("t", "c", 2);
        obs.append(buf);
        assert!(obs.events().is_empty());
        assert!(obs.pinned_log().is_empty());
    }

    #[test]
    fn events_are_sequenced_in_record_order() {
        let obs = Obs::enabled();
        obs.counter("a", "x", 1);
        obs.span_since("b", "y", Instant::now());
        obs.counter_args("a", "z", 3, &[("k", 9)]);
        let events = obs.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(events[2].args, vec![("k".to_string(), 9)]);
    }

    #[test]
    fn buffers_flush_in_append_order_with_fresh_seqs() {
        let obs = Obs::enabled();
        obs.counter("main", "head", 0);
        let mut b1 = obs.buffer();
        let mut b2 = obs.buffer();
        // Record "out of order" on purpose: append order wins.
        b2.counter("w", "second", 2);
        b1.counter("w", "first", 1);
        b1.span_since("w", "work", Instant::now());
        obs.append(b1);
        obs.append(b2);
        let log = obs.pinned_log();
        let lines: Vec<&str> = log.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].contains("w/first counter=1"), "{log}");
        assert!(lines[2].contains("w/work span"), "{log}");
        assert!(lines[3].contains("w/second counter=2"), "{log}");
    }

    #[test]
    fn pinned_log_excludes_timestamps() {
        let obs = Obs::enabled();
        let start = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        obs.span_args("p", "stage", start, &[("n", 7)]);
        let log = obs.pinned_log();
        assert_eq!(log, "    0 p/stage span n=7\n");
        let e = &obs.events()[0];
        assert!(e.dur_us >= 1000, "span must still carry a real duration, got {}", e.dur_us);
    }

    #[test]
    fn last_counter_returns_latest_sample() {
        let obs = Obs::enabled();
        assert_eq!(obs.last_counter("c", "v"), None);
        obs.counter("c", "v", 1);
        obs.counter("c", "v", 5);
        obs.counter("c", "other", 9);
        assert_eq!(obs.last_counter("c", "v"), Some(5));
    }

    #[test]
    fn chrome_trace_is_valid_and_complete() {
        let obs = Obs::enabled();
        obs.span_args("pipeline", "analysis", Instant::now(), &[("ops", 10)]);
        obs.counter("gdp", "cut", 42);
        let trace = obs.chrome_trace();
        let stats = json::validate_trace(&trace).expect("trace parses");
        assert_eq!(stats.spans, 1);
        assert_eq!(stats.counters, 1);
        assert!(stats.has_counter("gdp/cut"), "{:?}", stats.counter_names);
    }

    #[test]
    fn chrome_trace_escapes_names() {
        let obs = Obs::enabled();
        obs.counter("c", "we\"ird\\name", 1);
        let trace = obs.chrome_trace();
        json::validate_trace(&trace).expect("escaped trace parses");
    }

    #[test]
    fn summary_aggregates_by_label() {
        let obs = Obs::enabled();
        obs.span_since("p", "stage", Instant::now());
        obs.span_since("p", "stage", Instant::now());
        obs.counter("c", "v", 2);
        obs.counter("c", "v", 3);
        let s = obs.summary();
        assert!(s.contains("p/stage"), "{s}");
        assert!(s.contains("c/v"), "{s}");
        // count column for the repeated span and counter
        assert!(s.lines().any(|l| l.contains("p/stage") && l.contains(" 2 ")), "{s}");
        assert!(s.lines().any(|l| l.contains("c/v") && l.contains(" 5")), "{s}");
    }

    #[test]
    fn replay_reproduces_the_pinned_projection() {
        let live = Obs::enabled();
        live.counter_args("rhop", "estimator_calls", 7, &[("func", 2)]);
        live.span_args("pipeline", "sim", Instant::now(), &[("cycles", 123)]);
        // Replaying the pinned fields into a fresh sink (the resume
        // path) must reproduce the pinned log byte for byte.
        let resumed = Obs::enabled();
        for e in live.events() {
            resumed.replay(intern_cat(e.cat), &e.name, e.kind, e.args.clone());
        }
        assert_eq!(live.pinned_log(), resumed.pinned_log());
    }

    #[test]
    fn intern_cat_is_stable() {
        assert_eq!(intern_cat("rhop"), "rhop");
        assert_eq!(intern_cat("supervise"), "supervise");
        let leaked = intern_cat("custom-cat");
        assert_eq!(leaked, "custom-cat");
    }

    #[test]
    fn shared_sink_across_clones() {
        let obs = Obs::enabled();
        let clone = obs.clone();
        clone.counter("c", "v", 1);
        assert_eq!(obs.events().len(), 1);
    }
}
