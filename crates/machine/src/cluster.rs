//! Per-cluster resources.

use mcpart_ir::FuKind;
use std::fmt;

/// The function-unit mix of a cluster: how many units of each
/// [`FuKind`] it provisions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FuMix {
    counts: [u8; 4],
}

impl FuMix {
    /// Creates a mix with the given unit counts.
    pub fn new(int: u8, float: u8, mem: u8, branch: u8) -> Self {
        FuMix { counts: [int, float, mem, branch] }
    }

    /// The paper's per-cluster mix: 2 integer, 1 float, 1 memory,
    /// 1 branch unit.
    pub fn paper() -> Self {
        FuMix::new(2, 1, 1, 1)
    }

    /// Number of units of `kind`.
    pub fn count(&self, kind: FuKind) -> usize {
        self.counts[kind.index()] as usize
    }

    /// Total number of units (the cluster's issue width).
    pub fn issue_width(&self) -> usize {
        self.counts.iter().map(|&c| c as usize).sum()
    }

    /// Parses a mix written as `int/float/mem/branch` counts, with or
    /// without the `Display` letter suffixes: `2/1/1/1` and
    /// `2I/1F/1M/1B` both parse to [`FuMix::paper`]'s mix.
    pub fn parse(s: &str) -> Result<FuMix, String> {
        let parts: Vec<&str> = s.split('/').collect();
        if parts.len() != 4 {
            return Err(format!("expected 4 `/`-separated unit counts, got {}", parts.len()));
        }
        let mut counts = [0u8; 4];
        for (i, (part, suffix)) in parts.iter().zip(["I", "F", "M", "B"]).enumerate() {
            let digits = part.strip_suffix(suffix).unwrap_or(part);
            counts[i] = digits.parse::<u8>().map_err(|_| {
                format!("bad unit count `{part}` (expected e.g. `2` or `2{suffix}`)")
            })?;
        }
        Ok(FuMix { counts: [counts[0], counts[1], counts[2], counts[3]] })
    }
}

impl fmt::Display for FuMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}I/{}F/{}M/{}B", self.counts[0], self.counts[1], self.counts[2], self.counts[3])
    }
}

/// A single cluster: a register file plus a set of function units, and
/// optionally a private data memory.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cluster {
    /// Human-readable name.
    pub name: String,
    /// Function-unit provision.
    pub fu: FuMix,
    /// Relative capacity weight of this cluster's data memory. The data
    /// partitioner balances total object bytes proportionally to this
    /// weight (all 1 for homogeneous machines; the paper notes the
    /// balance "is parameterized in the case where the memory within one
    /// cluster is significantly larger than the other").
    pub memory_weight: u32,
    /// Register-file capacity. Clustering exists to keep register files
    /// small (the paper's motivation); the optional pressure model
    /// charges spill traffic when a block needs more live registers
    /// than this on one cluster.
    pub regfile_size: u32,
}

impl Cluster {
    /// Creates a cluster with unit memory weight and a 64-entry
    /// register file.
    pub fn new(name: impl Into<String>, fu: FuMix) -> Self {
        Cluster { name: name.into(), fu, memory_weight: 1, regfile_size: 64 }
    }

    /// Sets the register-file capacity.
    pub fn with_regfile_size(mut self, regs: u32) -> Self {
        self.regfile_size = regs;
        self
    }

    /// Sets the relative memory capacity weight.
    pub fn with_memory_weight(mut self, weight: u32) -> Self {
        self.memory_weight = weight;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mix_counts() {
        let m = FuMix::paper();
        assert_eq!(m.count(FuKind::Int), 2);
        assert_eq!(m.count(FuKind::Float), 1);
        assert_eq!(m.count(FuKind::Mem), 1);
        assert_eq!(m.count(FuKind::Branch), 1);
        assert_eq!(m.issue_width(), 5);
        assert_eq!(m.to_string(), "2I/1F/1M/1B");
    }

    #[test]
    fn mix_parse_roundtrips() {
        assert_eq!(FuMix::parse("2/1/1/1"), Ok(FuMix::paper()));
        assert_eq!(FuMix::parse("2I/1F/1M/1B"), Ok(FuMix::paper()));
        assert_eq!(FuMix::parse(&FuMix::new(4, 0, 2, 1).to_string()), Ok(FuMix::new(4, 0, 2, 1)));
        assert!(FuMix::parse("2/1/1").is_err());
        assert!(FuMix::parse("2/x/1/1").is_err());
    }

    #[test]
    fn memory_weight_builder() {
        let c = Cluster::new("c0", FuMix::paper()).with_memory_weight(3);
        assert_eq!(c.memory_weight, 3);
        assert_eq!(c.regfile_size, 64);
        let c = c.with_regfile_size(16);
        assert_eq!(c.regfile_size, 16);
    }
}
