//! The intercluster communication network.

use std::fmt;

/// Physical arrangement of the intercluster network. The paper assumes
/// a single shared bus; the sweep matrix additionally exercises ring,
/// mesh and crossbar arrangements, which scale the per-move latency by
/// the hop distance between the communicating clusters.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Topology {
    /// One shared medium: every pair of clusters is one hop apart and
    /// all moves contend for the same per-cycle bandwidth. The paper's
    /// model and the default.
    #[default]
    Bus,
    /// Clusters on a ring; hop distance is the shorter way around.
    Ring,
    /// Clusters on a near-square 2-D mesh (row-major layout); hop
    /// distance is the Manhattan distance.
    Mesh,
    /// A full crossbar: every pair is directly connected (one hop), at
    /// the cost the hardware people will tell you about later.
    Crossbar,
}

impl Topology {
    /// All topologies, in the order the sweep matrix enumerates them.
    pub const ALL: [Topology; 4] =
        [Topology::Bus, Topology::Ring, Topology::Mesh, Topology::Crossbar];

    /// Hop distance between clusters `a` and `b` on an `n`-cluster
    /// machine. Same-cluster "moves" are 0 hops (they never occur as
    /// intercluster moves); distinct clusters are at least 1 hop apart.
    pub fn hops(self, a: usize, b: usize, n: usize) -> u32 {
        if a == b || n < 2 {
            return 0;
        }
        match self {
            Topology::Bus | Topology::Crossbar => 1,
            Topology::Ring => {
                let d = a.abs_diff(b);
                d.min(n - d) as u32
            }
            Topology::Mesh => {
                // Near-square grid, row-major: side = ceil(sqrt(n)).
                let mut side = 1usize;
                while side * side < n {
                    side += 1;
                }
                let (ax, ay) = (a % side, a / side);
                let (bx, by) = (b % side, b / side);
                (ax.abs_diff(bx) + ay.abs_diff(by)) as u32
            }
        }
    }

    /// The canonical lower-case name (`bus`, `ring`, `mesh`,
    /// `crossbar`), matching [`Topology::parse`].
    pub fn slug(self) -> &'static str {
        match self {
            Topology::Bus => "bus",
            Topology::Ring => "ring",
            Topology::Mesh => "mesh",
            Topology::Crossbar => "crossbar",
        }
    }

    /// Parses a topology name as written in sweep files.
    pub fn parse(s: &str) -> Result<Topology, String> {
        match s {
            "bus" => Ok(Topology::Bus),
            "ring" => Ok(Topology::Ring),
            "mesh" => Ok(Topology::Mesh),
            "crossbar" => Ok(Topology::Crossbar),
            other => Err(format!("unknown topology `{other}` (bus, ring, mesh or crossbar)")),
        }
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

/// Configuration of the network connecting clusters.
///
/// The paper assumes a shared intercluster bus with fixed bandwidth:
/// "the intercluster network bandwidth allows for 1 move per cycle with
/// latencies of 1, 5 or 10 cycles (5 cycle is default)". The sweep
/// matrix generalizes this with a [`Topology`], under which a move
/// between clusters `a` and `b` takes `move_latency × hops(a, b)`
/// cycles; on the default bus every pair is one hop, so all existing
/// configurations behave exactly as before.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interconnect {
    /// Cycles from a move's issue to its value being readable in the
    /// destination register file, per hop.
    pub move_latency: u32,
    /// Number of intercluster moves that may be initiated per cycle,
    /// machine-wide.
    pub moves_per_cycle: u32,
    /// Physical arrangement; scales per-move latency by hop distance.
    pub topology: Topology,
}

impl Interconnect {
    /// The paper's bus with the given latency (1, 5 or 10 in the
    /// evaluation) and 1 move per cycle.
    pub fn bus(move_latency: u32) -> Self {
        Interconnect { move_latency, moves_per_cycle: 1, topology: Topology::Bus }
    }

    /// Sets the per-cycle bandwidth.
    pub fn with_bandwidth(mut self, moves_per_cycle: u32) -> Self {
        self.moves_per_cycle = moves_per_cycle;
        self
    }

    /// Sets the topology.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Latency of one move from cluster `a` to cluster `b` on an
    /// `n`-cluster machine: `move_latency × hops`, and never less than
    /// `move_latency` for distinct clusters (hop counts are ≥ 1 there).
    pub fn latency_between(&self, a: usize, b: usize, n: usize) -> u32 {
        self.move_latency.saturating_mul(self.topology.hops(a, b, n))
    }
}

impl Default for Interconnect {
    /// The paper's default: 5-cycle latency, 1 move per cycle, bus.
    fn default() -> Self {
        Interconnect::bus(5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_five_cycle_bus() {
        let n = Interconnect::default();
        assert_eq!(n.move_latency, 5);
        assert_eq!(n.moves_per_cycle, 1);
        assert_eq!(n.topology, Topology::Bus);
    }

    #[test]
    fn bandwidth_builder() {
        let n = Interconnect::bus(1).with_bandwidth(2);
        assert_eq!(n.moves_per_cycle, 2);
    }

    #[test]
    fn bus_and_crossbar_are_single_hop() {
        for t in [Topology::Bus, Topology::Crossbar] {
            assert_eq!(t.hops(0, 7, 8), 1);
            assert_eq!(t.hops(3, 3, 8), 0);
        }
        let n = Interconnect::bus(5);
        assert_eq!(n.latency_between(0, 1, 8), 5);
        assert_eq!(n.latency_between(2, 2, 8), 0);
    }

    #[test]
    fn ring_takes_shorter_way_around() {
        assert_eq!(Topology::Ring.hops(0, 1, 8), 1);
        assert_eq!(Topology::Ring.hops(0, 7, 8), 1);
        assert_eq!(Topology::Ring.hops(0, 4, 8), 4);
        assert_eq!(Topology::Ring.hops(1, 6, 8), 3);
        let n = Interconnect::bus(5).with_topology(Topology::Ring);
        assert_eq!(n.latency_between(0, 4, 8), 20);
    }

    #[test]
    fn mesh_is_manhattan_on_a_near_square() {
        // n=8 -> side 3: coords 0..8 laid out row-major.
        assert_eq!(Topology::Mesh.hops(0, 1, 8), 1);
        assert_eq!(Topology::Mesh.hops(0, 4, 8), 2); // (0,0)->(1,1)
        assert_eq!(Topology::Mesh.hops(0, 7, 8), 3); // (0,0)->(1,2)
                                                     // n=4 -> side 2, corner to corner = 2 hops.
        assert_eq!(Topology::Mesh.hops(0, 3, 4), 2);
    }

    #[test]
    fn two_cluster_machines_match_the_paper_under_every_topology() {
        for t in Topology::ALL {
            assert_eq!(t.hops(0, 1, 2), 1, "{t}");
        }
    }

    #[test]
    fn topology_parse_roundtrips() {
        for t in Topology::ALL {
            assert_eq!(Topology::parse(t.slug()), Ok(t));
        }
        assert!(Topology::parse("torus").is_err());
    }
}
