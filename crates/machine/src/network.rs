//! The intercluster communication network.

/// Configuration of the bus connecting clusters.
///
/// The paper assumes a shared intercluster bus with fixed bandwidth:
/// "the intercluster network bandwidth allows for 1 move per cycle with
/// latencies of 1, 5 or 10 cycles (5 cycle is default)".
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interconnect {
    /// Cycles from a move's issue to its value being readable in the
    /// destination register file.
    pub move_latency: u32,
    /// Number of intercluster moves that may be initiated per cycle,
    /// machine-wide.
    pub moves_per_cycle: u32,
}

impl Interconnect {
    /// The paper's bus with the given latency (1, 5 or 10 in the
    /// evaluation) and 1 move per cycle.
    pub fn bus(move_latency: u32) -> Self {
        Interconnect { move_latency, moves_per_cycle: 1 }
    }

    /// Sets the per-cycle bandwidth.
    pub fn with_bandwidth(mut self, moves_per_cycle: u32) -> Self {
        self.moves_per_cycle = moves_per_cycle;
        self
    }
}

impl Default for Interconnect {
    /// The paper's default: 5-cycle latency, 1 move per cycle.
    fn default() -> Self {
        Interconnect::bus(5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_five_cycle_bus() {
        let n = Interconnect::default();
        assert_eq!(n.move_latency, 5);
        assert_eq!(n.moves_per_cycle, 1);
    }

    #[test]
    fn bandwidth_builder() {
        let n = Interconnect::bus(1).with_bandwidth(2);
        assert_eq!(n.moves_per_cycle, 2);
    }
}
