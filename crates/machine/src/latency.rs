//! Operation latencies.

use mcpart_ir::{FloatBinOp, IntBinOp, Opcode};

/// Operation latency table.
///
/// Latencies are "similar to the Itanium" per the paper's methodology:
/// single-cycle integer ALU, 2-cycle loads (the constant access latency
/// the paper quotes for its unified-memory upper bound), multi-cycle
/// multiplies/divides and 4-cycle floating point.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LatencyTable {
    /// Integer ALU operations (add/sub/logic/compare/select/move).
    pub int_alu: u32,
    /// Integer multiply.
    pub int_mul: u32,
    /// Integer divide/remainder.
    pub int_div: u32,
    /// Float add/sub/mul and conversions.
    pub float: u32,
    /// Float divide.
    pub float_div: u32,
    /// Load (address to value).
    pub load: u32,
    /// Store (commit).
    pub store: u32,
    /// Malloc call overhead (modeled as a memory operation).
    pub malloc: u32,
    /// Branch-unit operations.
    pub branch: u32,
}

impl LatencyTable {
    /// The Itanium-like table used throughout the paper's evaluation.
    pub fn itanium_like() -> Self {
        LatencyTable {
            int_alu: 1,
            int_mul: 3,
            int_div: 8,
            float: 4,
            float_div: 12,
            load: 2,
            store: 1,
            malloc: 2,
            branch: 1,
        }
    }

    /// Latency of `opcode` in cycles (register-file write visibility).
    pub fn of(&self, opcode: Opcode) -> u32 {
        match opcode {
            Opcode::ConstInt(_) | Opcode::AddrOf(_) | Opcode::Move => self.int_alu,
            Opcode::IntBin(op) => match op {
                IntBinOp::Mul => self.int_mul,
                IntBinOp::Div | IntBinOp::Rem => self.int_div,
                _ => self.int_alu,
            },
            Opcode::IntCmp(_) | Opcode::Select => self.int_alu,
            Opcode::ConstFloat(_) => self.int_alu,
            Opcode::FloatBin(op) => match op {
                FloatBinOp::Div => self.float_div,
                _ => self.float,
            },
            Opcode::FloatCmp(_) | Opcode::IntToFloat | Opcode::FloatToInt => self.float,
            Opcode::Load(_) => self.load,
            Opcode::Store(_) => self.store,
            Opcode::Malloc(_) => self.malloc,
            Opcode::BranchCond | Opcode::Jump | Opcode::Call(_) | Opcode::Ret => self.branch,
        }
    }
}

impl Default for LatencyTable {
    fn default() -> Self {
        Self::itanium_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpart_ir::MemWidth;

    #[test]
    fn itanium_like_latencies() {
        let t = LatencyTable::itanium_like();
        assert_eq!(t.of(Opcode::IntBin(IntBinOp::Add)), 1);
        assert_eq!(t.of(Opcode::IntBin(IntBinOp::Mul)), 3);
        assert_eq!(t.of(Opcode::IntBin(IntBinOp::Div)), 8);
        assert_eq!(t.of(Opcode::FloatBin(FloatBinOp::Mul)), 4);
        assert_eq!(t.of(Opcode::FloatBin(FloatBinOp::Div)), 12);
        assert_eq!(t.of(Opcode::Load(MemWidth::B4)), 2);
        assert_eq!(t.of(Opcode::Store(MemWidth::B4)), 1);
        assert_eq!(t.of(Opcode::Jump), 1);
    }

    #[test]
    fn default_is_itanium_like() {
        assert_eq!(LatencyTable::default(), LatencyTable::itanium_like());
    }
}
