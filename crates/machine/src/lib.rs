//! # mcpart-machine — clustered VLIW machine model
//!
//! Describes the multicluster processors targeted by the partitioners:
//! a set of clusters, each with its own register file, function units and
//! (optionally) its own data memory, connected by an intercluster
//! communication network with fixed bandwidth and latency.
//!
//! The default configuration, [`Machine::paper_2cluster`], matches the
//! evaluation machine of Chu & Mahlke (CGO 2006): a 2-cluster VLIW with
//! 2 integer, 1 float, 1 memory and 1 branch unit per cluster,
//! Itanium-like operation latencies, fully partitioned single-ported
//! memories with a 100% hit rate, and an intercluster network carrying
//! one move per cycle with a latency of 1, 5 or 10 cycles.
//!
//! ```
//! use mcpart_machine::Machine;
//!
//! let machine = Machine::paper_2cluster(5);
//! assert_eq!(machine.num_clusters(), 2);
//! assert_eq!(machine.interconnect.move_latency, 5);
//! assert!(machine.memory.is_partitioned());
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![warn(missing_docs)]

mod cluster;
mod error;
mod latency;
mod model;
mod network;
mod sweep;

pub use cluster::{Cluster, FuMix};
pub use error::MachineError;
pub use latency::LatencyTable;
pub use model::{Machine, MemoryModel};
pub use network::{Interconnect, Topology};
pub use sweep::{
    memory_slug, parse_memory, SweepError, SweepMatrix, SweepPoint, DEFAULT_SWEEP,
    MAX_SWEEP_CLUSTERS,
};
