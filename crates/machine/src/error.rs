//! Typed validation failures of a machine description.

use mcpart_ir::FuKind;
use std::fmt;

/// Why a [`crate::Machine`] is unusable.
///
/// Construction stays infallible (builders compose freely, sweep
/// generators may enumerate nonsense), but every entry point that is
/// about to *run* something on a machine calls
/// [`crate::Machine::validate`] first and surfaces one of these instead
/// of panicking or underflowing deep inside a partitioner or scheduler.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MachineError {
    /// The machine has no clusters at all (`homogeneous(0)`, an empty
    /// `clusters` vec): there is nowhere to place an operation.
    NoClusters,
    /// A cluster provisions zero units of a kind every program needs.
    /// Integer, memory and branch units are mandatory (every block ends
    /// in a branch, every function has integer ops, memory operations
    /// are pinned to their object's home cluster); float units may be
    /// zero — a legal degenerate mix for integer-only codes.
    MissingUnits {
        /// Index of the offending cluster.
        cluster: usize,
        /// The unit kind with zero provision.
        kind: FuKind,
    },
    /// A cluster has a zero-entry register file: no value could ever be
    /// produced there.
    NoRegisters {
        /// Index of the offending cluster.
        cluster: usize,
    },
    /// Every cluster has memory weight 0 under partitioned memory: the
    /// data partitioner's balance targets would divide by zero.
    NoMemoryCapacity,
    /// The interconnect admits zero moves per cycle on a multicluster
    /// machine: any placement needing one transfer deadlocks the
    /// scheduler.
    NoBandwidth,
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::NoClusters => f.write_str("machine has no clusters"),
            MachineError::MissingUnits { cluster, kind } => {
                let k = match kind {
                    FuKind::Int => "integer",
                    FuKind::Float => "float",
                    FuKind::Mem => "memory",
                    FuKind::Branch => "branch",
                };
                write!(f, "cluster {cluster} has no {k} units")
            }
            MachineError::NoRegisters { cluster } => {
                write!(f, "cluster {cluster} has a zero-entry register file")
            }
            MachineError::NoMemoryCapacity => {
                f.write_str("all clusters have memory weight 0 under partitioned memory")
            }
            MachineError::NoBandwidth => {
                f.write_str("interconnect admits 0 moves per cycle on a multicluster machine")
            }
        }
    }
}

impl std::error::Error for MachineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render() {
        let e = MachineError::MissingUnits { cluster: 3, kind: FuKind::Branch };
        assert_eq!(e.to_string(), "cluster 3 has no branch units");
        assert!(MachineError::NoClusters.to_string().contains("no clusters"));
        assert!(MachineError::NoBandwidth.to_string().contains("0 moves"));
    }
}
