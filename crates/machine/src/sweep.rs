//! The k-cluster machine sweep matrix.
//!
//! One TOML-ish file describes a cartesian sweep over machine axes —
//! cluster count, intercluster move latency, network [`Topology`],
//! function-unit [`FuMix`] and memory model:
//!
//! ```text
//! # axes may appear in any order; missing axes default to the paper
//! # machine's value for that axis.
//! clusters = [1, 2, 4, 8]
//! latency  = [1, 5, 10]
//! topology = ["bus", "ring", "mesh", "crossbar"]
//! mix      = ["2/1/1/1", "1/0/1/1"]
//! memory   = ["partitioned", "unified", "coherent:5"]
//! ```
//!
//! [`SweepMatrix::parse`] rejects malformed files with a line- and
//! column-carrying [`SweepError`], and rejects axis values that could
//! never validate (a mix with no memory units, cluster counts outside
//! 1..=8) so that every machine of [`SweepMatrix::expand`] passes
//! [`Machine::validate`]. Expansion order is deterministic (clusters,
//! then latency, topology, mix, memory — each in file order), which the
//! chaos harness relies on to keep scenario sampling reproducible.

use crate::cluster::{Cluster, FuMix};
use crate::error::MachineError;
use crate::latency::LatencyTable;
use crate::model::{Machine, MemoryModel};
use crate::network::{Interconnect, Topology};
use mcpart_ir::FuKind;
use std::fmt;

/// Largest cluster count the sweep matrix admits (the ROADMAP's
/// "k-cluster" item calls for 1..8).
pub const MAX_SWEEP_CLUSTERS: usize = 8;

/// A malformed sweep file: where (1-based line and column) and why.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SweepError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column of the offending token.
    pub column: usize,
    /// What is wrong with it.
    pub message: String,
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sweep line {}, column {}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for SweepError {}

/// One cell of the sweep matrix: a complete machine configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SweepPoint {
    /// Number of (homogeneous) clusters.
    pub clusters: usize,
    /// Per-hop intercluster move latency.
    pub latency: u32,
    /// Network topology.
    pub topology: Topology,
    /// Function-unit mix, identical on every cluster.
    pub mix: FuMix,
    /// Memory organization.
    pub memory: MemoryModel,
}

impl SweepPoint {
    /// The paper's default configuration (2 clusters, 5-cycle bus,
    /// paper mix, partitioned memory).
    pub fn paper() -> Self {
        SweepPoint {
            clusters: 2,
            latency: 5,
            topology: Topology::Bus,
            mix: FuMix::paper(),
            memory: MemoryModel::Partitioned,
        }
    }

    /// Builds the machine this point describes.
    pub fn machine(&self) -> Machine {
        let clusters =
            (0..self.clusters).map(|i| Cluster::new(format!("c{i}"), self.mix)).collect();
        Machine {
            clusters,
            interconnect: Interconnect::bus(self.latency).with_topology(self.topology),
            memory: self.memory,
            latency: LatencyTable::itanium_like(),
        }
    }

    /// Parses the `Display` rendering back into a point (the chaos
    /// repro-file grammar). Missing keys default to [`SweepPoint::paper`].
    pub fn parse(s: &str) -> Result<SweepPoint, String> {
        let mut point = SweepPoint::paper();
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) =
                part.split_once('=').ok_or_else(|| format!("expected key=value, got `{part}`"))?;
            match key.trim() {
                "clusters" => {
                    point.clusters =
                        value.trim().parse().map_err(|_| format!("bad cluster count `{value}`"))?;
                }
                "latency" => {
                    point.latency =
                        value.trim().parse().map_err(|_| format!("bad latency `{value}`"))?;
                }
                "topology" => point.topology = Topology::parse(value.trim())?,
                "mix" => point.mix = FuMix::parse(value.trim())?,
                "memory" => point.memory = parse_memory(value.trim())?,
                other => return Err(format!("unknown machine key `{other}`")),
            }
        }
        validate_point(&point)?;
        Ok(point)
    }
}

impl fmt::Display for SweepPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "clusters={},latency={},topology={},mix={},memory={}",
            self.clusters,
            self.latency,
            self.topology,
            self.mix,
            memory_slug(self.memory)
        )
    }
}

/// Renders a memory model in the sweep grammar (`partitioned`,
/// `unified`, `coherent:<penalty>`).
pub fn memory_slug(m: MemoryModel) -> String {
    match m {
        MemoryModel::Partitioned => "partitioned".to_string(),
        MemoryModel::Unified => "unified".to_string(),
        MemoryModel::CoherentCache { remote_penalty } => format!("coherent:{remote_penalty}"),
    }
}

/// Parses a memory model written in the sweep grammar.
pub fn parse_memory(s: &str) -> Result<MemoryModel, String> {
    match s {
        "partitioned" => Ok(MemoryModel::Partitioned),
        "unified" => Ok(MemoryModel::Unified),
        other => match other.strip_prefix("coherent:") {
            Some(digits) => digits
                .parse::<u32>()
                .map(|remote_penalty| MemoryModel::CoherentCache { remote_penalty })
                .map_err(|_| format!("bad coherence penalty `{digits}`")),
            None => {
                Err(format!("unknown memory model `{other}` (partitioned, unified, coherent:N)"))
            }
        },
    }
}

/// Rejects points whose machine could never validate, so every expanded
/// machine passes [`Machine::validate`] by construction.
fn validate_point(p: &SweepPoint) -> Result<(), String> {
    if p.clusters == 0 || p.clusters > MAX_SWEEP_CLUSTERS {
        return Err(format!(
            "cluster count {} outside the sweep range 1..={MAX_SWEEP_CLUSTERS}",
            p.clusters
        ));
    }
    if p.latency == 0 {
        return Err("move latency must be at least 1".to_string());
    }
    for kind in [FuKind::Int, FuKind::Mem, FuKind::Branch] {
        if p.mix.count(kind) == 0 {
            let m = p.machine();
            let e = m.validate().expect_err("a mix missing mandatory units cannot validate");
            return Err(format!("unusable mix {}: {e}", p.mix));
        }
    }
    debug_assert_eq!(p.machine().validate(), Ok(()));
    Ok(())
}

/// A parsed sweep matrix: one list of values per machine axis.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SweepMatrix {
    /// Cluster counts to sweep (1..=8).
    pub clusters: Vec<usize>,
    /// Per-hop move latencies to sweep.
    pub latency: Vec<u32>,
    /// Topologies to sweep.
    pub topology: Vec<Topology>,
    /// Function-unit mixes to sweep.
    pub mix: Vec<FuMix>,
    /// Memory models to sweep.
    pub memory: Vec<MemoryModel>,
}

/// The built-in sweep matrix: cluster counts across 1..=8, the paper's
/// three bus latencies, all four topologies, degenerate and rich unit
/// mixes, and all three memory models — 540 machines.
pub const DEFAULT_SWEEP: &str = "\
# mcpart built-in machine sweep matrix
clusters = [1, 2, 3, 4, 8]
latency  = [1, 5, 10]
topology = [\"bus\", \"ring\", \"mesh\", \"crossbar\"]
mix      = [\"2/1/1/1\", \"1/0/1/1\", \"4/2/2/2\"]
memory   = [\"partitioned\", \"unified\", \"coherent:5\"]
";

impl SweepMatrix {
    /// The built-in matrix ([`DEFAULT_SWEEP`]).
    pub fn builtin() -> SweepMatrix {
        match SweepMatrix::parse(DEFAULT_SWEEP) {
            Ok(m) => m,
            Err(e) => unreachable!("built-in sweep matrix must parse: {e}"),
        }
    }

    /// Parses a sweep file. Unknown keys, malformed lists, out-of-range
    /// values and unusable mixes are rejected with the 1-based line and
    /// column of the offending token.
    pub fn parse(text: &str) -> Result<SweepMatrix, SweepError> {
        let paper = SweepPoint::paper();
        let mut matrix = SweepMatrix {
            clusters: vec![paper.clusters],
            latency: vec![paper.latency],
            topology: vec![paper.topology],
            mix: vec![paper.mix],
            memory: vec![paper.memory],
        };
        let mut seen: Vec<String> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = lineno + 1;
            let content = strip_comment(raw);
            if content.trim().is_empty() {
                continue;
            }
            let eq = match content.find('=') {
                Some(i) => i,
                None => {
                    return Err(err(line, 1, "expected `key = [values]`"));
                }
            };
            let key = content[..eq].trim();
            let key_col = 1 + content[..eq].len() - content[..eq].trim_start().len();
            if key.is_empty() {
                return Err(err(line, 1, "missing key before `=`"));
            }
            if seen.iter().any(|k| k == key) {
                return Err(err(line, key_col, &format!("duplicate key `{key}`")));
            }
            let items = parse_list(&content[eq + 1..], line, eq + 2)?;
            if items.is_empty() {
                let col = eq + 2 + trailing_ws(&content[eq + 1..]);
                return Err(err(line, col, &format!("axis `{key}` has no values")));
            }
            match key {
                "clusters" => {
                    matrix.clusters = items
                        .iter()
                        .map(|it| it.integer(line).and_then(|v| cluster_count(v, it, line)))
                        .collect::<Result<_, _>>()?;
                }
                "latency" => {
                    matrix.latency = items
                        .iter()
                        .map(|it| {
                            let v = it.integer(line)?;
                            if v == 0 || v > 1_000_000 {
                                return Err(err(
                                    line,
                                    it.column,
                                    &format!("latency {v} outside 1..=1000000"),
                                ));
                            }
                            Ok(v as u32)
                        })
                        .collect::<Result<_, _>>()?;
                }
                "topology" => {
                    matrix.topology = items
                        .iter()
                        .map(|it| {
                            Topology::parse(it.string(line)?).map_err(|m| err(line, it.column, &m))
                        })
                        .collect::<Result<_, _>>()?;
                }
                "mix" => {
                    matrix.mix = items
                        .iter()
                        .map(|it| {
                            let mix = FuMix::parse(it.string(line)?)
                                .map_err(|m| err(line, it.column, &m))?;
                            for kind in [FuKind::Int, FuKind::Mem, FuKind::Branch] {
                                if mix.count(kind) == 0 {
                                    let p = SweepPoint { mix, ..SweepPoint::paper() };
                                    let reason = validate_point(&p)
                                        .expect_err("mix missing mandatory units");
                                    return Err(err(line, it.column, &reason));
                                }
                            }
                            Ok(mix)
                        })
                        .collect::<Result<_, _>>()?;
                }
                "memory" => {
                    matrix.memory = items
                        .iter()
                        .map(|it| {
                            parse_memory(it.string(line)?).map_err(|m| err(line, it.column, &m))
                        })
                        .collect::<Result<_, _>>()?;
                }
                other => {
                    return Err(err(
                        line,
                        key_col,
                        &format!(
                            "unknown axis `{other}` (clusters, latency, topology, mix, memory)"
                        ),
                    ));
                }
            }
            seen.push(key.to_string());
        }
        Ok(matrix)
    }

    /// Every machine configuration of the sweep, in deterministic
    /// nested order (clusters outermost, memory innermost). Each point
    /// builds a machine that passes [`Machine::validate`].
    pub fn expand(&self) -> Vec<SweepPoint> {
        let mut points = Vec::with_capacity(
            self.clusters.len()
                * self.latency.len()
                * self.topology.len()
                * self.mix.len()
                * self.memory.len(),
        );
        for &clusters in &self.clusters {
            for &latency in &self.latency {
                for &topology in &self.topology {
                    for &mix in &self.mix {
                        for &memory in &self.memory {
                            points.push(SweepPoint { clusters, latency, topology, mix, memory });
                        }
                    }
                }
            }
        }
        points
    }

    /// Sanity hook for entry points: validates every expanded machine,
    /// returning the first failure (cannot happen for matrices built by
    /// [`SweepMatrix::parse`]; useful for hand-assembled ones).
    pub fn validate(&self) -> Result<(), MachineError> {
        for p in self.expand() {
            p.machine().validate()?;
        }
        Ok(())
    }
}

impl Default for SweepMatrix {
    fn default() -> Self {
        SweepMatrix::builtin()
    }
}

fn err(line: usize, column: usize, message: &str) -> SweepError {
    SweepError { line, column, message: message.to_string() }
}

fn cluster_count(v: u64, it: &Item<'_>, line: usize) -> Result<usize, SweepError> {
    if v == 0 || v as usize > MAX_SWEEP_CLUSTERS {
        return Err(err(
            line,
            it.column,
            &format!("cluster count {v} outside the sweep range 1..={MAX_SWEEP_CLUSTERS}"),
        ));
    }
    Ok(v as usize)
}

/// Strips a `#` comment (quotes-aware) without changing byte offsets
/// before the comment.
fn strip_comment(line: &str) -> &str {
    let mut in_quotes = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_quotes = !in_quotes,
            '#' if !in_quotes => return &line[..i],
            _ => {}
        }
    }
    line
}

fn trailing_ws(s: &str) -> usize {
    s.len() - s.trim_start().len()
}

/// One list item with the 1-based column it starts at.
struct Item<'a> {
    text: &'a str,
    quoted: bool,
    column: usize,
}

impl Item<'_> {
    fn integer(&self, line: usize) -> Result<u64, SweepError> {
        if self.quoted {
            return Err(err(line, self.column, "expected a bare integer, got a string"));
        }
        self.text
            .parse::<u64>()
            .map_err(|_| err(line, self.column, &format!("bad integer `{}`", self.text)))
    }

    fn string(&self, line: usize) -> Result<&str, SweepError> {
        if !self.quoted {
            return Err(err(
                line,
                self.column,
                &format!("expected a quoted string, got `{}`", self.text),
            ));
        }
        Ok(self.text)
    }
}

/// Parses `[a, b, c]` after the `=`. `base_col` is the 1-based column
/// of `rest`'s first byte within the line.
fn parse_list(rest: &str, line: usize, base_col: usize) -> Result<Vec<Item<'_>>, SweepError> {
    let open_off = trailing_ws(rest);
    let after_ws = &rest[open_off..];
    if !after_ws.starts_with('[') {
        return Err(err(line, base_col + open_off, "expected `[` starting the value list"));
    }
    let close_off = match after_ws.rfind(']') {
        Some(i) => open_off + i,
        None => return Err(err(line, base_col + open_off, "unclosed `[` in value list")),
    };
    if !rest[close_off + 1..].trim().is_empty() {
        return Err(err(line, base_col + close_off + 1, "trailing text after `]`"));
    }
    let inner = &rest[open_off + 1..close_off];
    let mut items = Vec::new();
    let mut offset = 0usize;
    for piece in inner.split(',') {
        let lead = trailing_ws(piece);
        let text = piece.trim();
        let column = base_col + open_off + 1 + offset + lead;
        offset += piece.len() + 1;
        if text.is_empty() {
            if inner.trim().is_empty() && items.is_empty() {
                break; // `[]`: reported as an empty axis by the caller.
            }
            return Err(err(line, column, "empty list item"));
        }
        if let Some(stripped) = text.strip_prefix('"') {
            match stripped.strip_suffix('"') {
                Some(s) if !s.contains('"') => {
                    items.push(Item { text: s, quoted: true, column });
                }
                _ => return Err(err(line, column, "unterminated string")),
            }
        } else if text.contains('"') {
            return Err(err(line, column, "stray `\"` in bare item"));
        } else {
            items.push(Item { text, quoted: false, column });
        }
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_matrix_expands_and_validates() {
        let m = SweepMatrix::builtin();
        let points = m.expand();
        assert_eq!(points.len(), 5 * 3 * 4 * 3 * 3);
        assert_eq!(m.validate(), Ok(()));
        for p in &points {
            assert_eq!(p.machine().validate(), Ok(()), "{p}");
        }
        // Deterministic order: first point is the outermost-first combo.
        assert_eq!(points[0].clusters, 1);
        assert_eq!(points[0].latency, 1);
        assert_eq!(points[0].topology, Topology::Bus);
    }

    #[test]
    fn missing_axes_default_to_the_paper_machine() {
        let m = SweepMatrix::parse("clusters = [4]\n").expect("parse");
        let points = m.expand();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0], SweepPoint { clusters: 4, ..SweepPoint::paper() });
    }

    #[test]
    fn point_display_roundtrips() {
        for p in SweepMatrix::builtin().expand() {
            assert_eq!(SweepPoint::parse(&p.to_string()), Ok(p), "{p}");
        }
        assert!(SweepPoint::parse("clusters=0").is_err());
        assert!(SweepPoint::parse("mix=0/1/1/1").is_err());
        assert!(SweepPoint::parse("warp=9").is_err());
    }

    #[test]
    fn parse_errors_carry_line_and_column() {
        let e = SweepMatrix::parse("clusters = [1, 9]\n").expect_err("out of range");
        assert_eq!((e.line, e.column), (1, 16));
        assert!(e.to_string().contains("line 1, column 16"), "{e}");

        let e = SweepMatrix::parse("\nwarp = [1]\n").expect_err("unknown key");
        assert_eq!((e.line, e.column), (2, 1));

        let e = SweepMatrix::parse("topology = [\"bus\", \"torus\"]\n").expect_err("bad topo");
        assert_eq!(e.line, 1);
        assert_eq!(e.column, 20);
        assert!(e.message.contains("torus"));

        let e = SweepMatrix::parse("latency = 5\n").expect_err("not a list");
        assert!(e.message.contains('['));

        let e = SweepMatrix::parse("mix = [\"1/1/0/1\"]\n").expect_err("no mem units");
        assert!(e.message.contains("memory units"), "{}", e.message);

        let e = SweepMatrix::parse("clusters = []\n").expect_err("empty axis");
        assert!(e.message.contains("no values"));

        let e = SweepMatrix::parse("clusters = [1]\nclusters = [2]\n").expect_err("dup");
        assert_eq!(e.line, 2);
        assert!(e.message.contains("duplicate"));

        let e = SweepMatrix::parse("latency = [1] extra\n").expect_err("trailing");
        assert!(e.message.contains("trailing"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header\n\nclusters = [2] # two of them\nlatency = [1, 10]\n";
        let m = SweepMatrix::parse(text).expect("parse");
        assert_eq!(m.clusters, vec![2]);
        assert_eq!(m.latency, vec![1, 10]);
        assert_eq!(m.expand().len(), 2);
    }

    #[test]
    fn quoted_items_keep_hashes_and_reject_strays() {
        assert!(SweepMatrix::parse("topology = [bus]\n")
            .expect_err("unquoted string")
            .message
            .contains("quoted"));
        assert!(SweepMatrix::parse("clusters = [\"2\"]\n")
            .expect_err("quoted integer")
            .message
            .contains("bare integer"));
    }
}
