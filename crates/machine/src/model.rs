//! The complete machine description.

use crate::cluster::{Cluster, FuMix};
use crate::error::MachineError;
use crate::latency::LatencyTable;
use crate::network::Interconnect;
use mcpart_ir::{ClusterId, FuKind};

/// How data memory is organized across clusters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemoryModel {
    /// A single multiported memory reachable from every cluster at the
    /// ordinary load latency, with no intercluster transfer required for
    /// data. This is the paper's upper-bound configuration.
    Unified,
    /// Fully partitioned per-cluster memories (scratchpad-like, 100% hit
    /// rate). Every data object has exactly one home cluster; accesses
    /// must execute on the home cluster's memory unit.
    Partitioned,
    /// The paper's "middle ground" (§2) and future-work direction:
    /// coherent per-cluster caches. Objects still have a home cluster,
    /// but any cluster may access any object — a remote access simply
    /// pays `remote_penalty` extra cycles (coherence transfer) and is
    /// counted as coherence traffic.
    CoherentCache {
        /// Extra cycles for accessing an object homed on another
        /// cluster.
        remote_penalty: u32,
    },
}

impl MemoryModel {
    /// Returns `true` for the partitioned model.
    pub fn is_partitioned(self) -> bool {
        matches!(self, MemoryModel::Partitioned)
    }

    /// The remote-access penalty of the coherent-cache model, if this
    /// is one.
    pub fn coherence_penalty(self) -> Option<u32> {
        match self {
            MemoryModel::CoherentCache { remote_penalty } => Some(remote_penalty),
            _ => None,
        }
    }
}

/// A multicluster VLIW machine description.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Machine {
    /// The clusters.
    pub clusters: Vec<Cluster>,
    /// Intercluster network.
    pub interconnect: Interconnect,
    /// Memory organization.
    pub memory: MemoryModel,
    /// Operation latencies.
    pub latency: LatencyTable,
}

impl Machine {
    /// The paper's evaluation machine: two homogeneous clusters with
    /// 2 integer / 1 float / 1 memory / 1 branch unit each, partitioned
    /// memories, Itanium-like latencies, and an intercluster bus of the
    /// given move latency (1, 5 or 10 in the paper; 5 is the default).
    pub fn paper_2cluster(move_latency: u32) -> Self {
        Machine {
            clusters: vec![Cluster::new("c0", FuMix::paper()), Cluster::new("c1", FuMix::paper())],
            interconnect: Interconnect::bus(move_latency),
            memory: MemoryModel::Partitioned,
            latency: LatencyTable::itanium_like(),
        }
    }

    /// A homogeneous machine with `n` paper-mix clusters.
    pub fn homogeneous(n: usize, move_latency: u32) -> Self {
        Machine {
            clusters: (0..n).map(|i| Cluster::new(format!("c{i}"), FuMix::paper())).collect(),
            interconnect: Interconnect::bus(move_latency),
            memory: MemoryModel::Partitioned,
            latency: LatencyTable::itanium_like(),
        }
    }

    /// Switches this machine to the unified (single multiported memory)
    /// model.
    pub fn with_unified_memory(mut self) -> Self {
        self.memory = MemoryModel::Unified;
        self
    }

    /// Switches this machine to partitioned per-cluster memories.
    pub fn with_partitioned_memory(mut self) -> Self {
        self.memory = MemoryModel::Partitioned;
        self
    }

    /// Switches this machine to coherent per-cluster caches with the
    /// given remote-access penalty.
    pub fn with_coherent_cache(mut self, remote_penalty: u32) -> Self {
        self.memory = MemoryModel::CoherentCache { remote_penalty };
        self
    }

    /// Replaces the interconnect.
    pub fn with_interconnect(mut self, interconnect: Interconnect) -> Self {
        self.interconnect = interconnect;
        self
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Iterates over cluster ids.
    pub fn cluster_ids(&self) -> impl Iterator<Item = ClusterId> {
        (0..self.clusters.len()).map(ClusterId::new)
    }

    /// Function-unit count of `kind` on `cluster`.
    pub fn fu_count(&self, cluster: ClusterId, kind: FuKind) -> usize {
        self.clusters[cluster.index()].fu.count(kind)
    }

    /// Relative memory capacity weights per cluster, used as balance
    /// targets by the data partitioner.
    pub fn memory_weights(&self) -> Vec<u32> {
        self.clusters.iter().map(|c| c.memory_weight).collect()
    }

    /// Intercluster move latency in cycles (one hop; the paper's bus
    /// makes every pair one hop apart).
    pub fn move_latency(&self) -> u32 {
        self.interconnect.move_latency
    }

    /// Intercluster move latency between two specific clusters under
    /// this machine's topology: `move_latency × hops(a, b)`. Equals
    /// [`Machine::move_latency`] for distinct clusters on a bus or
    /// crossbar.
    pub fn move_latency_between(&self, a: ClusterId, b: ClusterId) -> u32 {
        self.interconnect.latency_between(a.index(), b.index(), self.num_clusters())
    }

    /// Checks that this machine can execute *any* program, returning a
    /// typed [`MachineError`] for degenerate descriptions that would
    /// otherwise surface as panics or underflow deep inside the
    /// partitioners or the scheduler. Construction stays infallible so
    /// builders and sweep generators compose freely; every CLI and
    /// config entry point calls this before running.
    ///
    /// Float units may legitimately be zero (integer-only machines);
    /// integer, memory and branch units are mandatory on every cluster.
    pub fn validate(&self) -> Result<(), MachineError> {
        if self.clusters.is_empty() {
            return Err(MachineError::NoClusters);
        }
        for (i, c) in self.clusters.iter().enumerate() {
            for kind in [FuKind::Int, FuKind::Mem, FuKind::Branch] {
                if c.fu.count(kind) == 0 {
                    return Err(MachineError::MissingUnits { cluster: i, kind });
                }
            }
            if c.regfile_size == 0 {
                return Err(MachineError::NoRegisters { cluster: i });
            }
        }
        if self.memory.is_partitioned() && self.clusters.iter().all(|c| c.memory_weight == 0) {
            return Err(MachineError::NoMemoryCapacity);
        }
        if self.clusters.len() > 1 && self.interconnect.moves_per_cycle == 0 {
            return Err(MachineError::NoBandwidth);
        }
        Ok(())
    }
}

impl Default for Machine {
    /// The paper's default machine (2 clusters, 5-cycle moves).
    fn default() -> Self {
        Machine::paper_2cluster(5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_shape() {
        let m = Machine::paper_2cluster(5);
        assert_eq!(m.num_clusters(), 2);
        assert_eq!(m.fu_count(ClusterId::new(0), FuKind::Int), 2);
        assert_eq!(m.fu_count(ClusterId::new(1), FuKind::Mem), 1);
        assert!(m.memory.is_partitioned());
        assert_eq!(m.move_latency(), 5);
    }

    #[test]
    fn unified_switch() {
        let m = Machine::paper_2cluster(1).with_unified_memory();
        assert!(!m.memory.is_partitioned());
        let m = m.with_partitioned_memory();
        assert!(m.memory.is_partitioned());
    }

    #[test]
    fn coherent_cache_penalty() {
        let m = Machine::paper_2cluster(5).with_coherent_cache(7);
        assert!(!m.memory.is_partitioned());
        assert_eq!(m.memory.coherence_penalty(), Some(7));
        assert_eq!(MemoryModel::Unified.coherence_penalty(), None);
    }

    #[test]
    fn validate_accepts_the_paper_machines() {
        assert_eq!(Machine::paper_2cluster(5).validate(), Ok(()));
        assert_eq!(Machine::homogeneous(8, 1).validate(), Ok(()));
        // Degenerate-but-legal: no float units.
        let mut m = Machine::homogeneous(2, 5);
        m.clusters[1].fu = FuMix::new(1, 0, 1, 1);
        assert_eq!(m.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_degenerate_machines() {
        assert_eq!(Machine::homogeneous(0, 5).validate(), Err(MachineError::NoClusters));
        let mut m = Machine::homogeneous(2, 5);
        m.clusters[1].fu = FuMix::new(1, 1, 0, 1);
        assert_eq!(m.validate(), Err(MachineError::MissingUnits { cluster: 1, kind: FuKind::Mem }));
        let mut m = Machine::homogeneous(2, 5);
        m.clusters[0].fu = FuMix::new(0, 1, 1, 1);
        assert_eq!(m.validate(), Err(MachineError::MissingUnits { cluster: 0, kind: FuKind::Int }));
        let mut m = Machine::homogeneous(1, 5);
        m.clusters[0].regfile_size = 0;
        assert_eq!(m.validate(), Err(MachineError::NoRegisters { cluster: 0 }));
        let mut m = Machine::homogeneous(2, 5);
        for c in &mut m.clusters {
            c.memory_weight = 0;
        }
        assert_eq!(m.validate(), Err(MachineError::NoMemoryCapacity));
        // Weight 0 is fine under unified memory (no balance targets).
        assert_eq!(m.clone().with_unified_memory().validate(), Ok(()));
        let m =
            Machine::homogeneous(2, 5).with_interconnect(Interconnect::bus(5).with_bandwidth(0));
        assert_eq!(m.validate(), Err(MachineError::NoBandwidth));
        // A single cluster never moves, so bandwidth 0 is harmless.
        let m =
            Machine::homogeneous(1, 5).with_interconnect(Interconnect::bus(5).with_bandwidth(0));
        assert_eq!(m.validate(), Ok(()));
    }

    #[test]
    fn topology_latency_reaches_the_machine_api() {
        use crate::network::Topology;
        let m = Machine::homogeneous(8, 5)
            .with_interconnect(Interconnect::bus(5).with_topology(Topology::Ring));
        assert_eq!(m.move_latency_between(ClusterId::new(0), ClusterId::new(4)), 20);
        assert_eq!(m.move_latency_between(ClusterId::new(0), ClusterId::new(7)), 5);
        let bus = Machine::homogeneous(8, 5);
        assert_eq!(bus.move_latency_between(ClusterId::new(0), ClusterId::new(4)), 5);
    }

    #[test]
    fn homogeneous_scales() {
        let m = Machine::homogeneous(4, 10);
        assert_eq!(m.num_clusters(), 4);
        assert_eq!(m.cluster_ids().count(), 4);
        assert_eq!(m.memory_weights(), vec![1, 1, 1, 1]);
    }
}
