//! Cross-benchmark structural tests: the workload suite must retain the
//! properties that make the paper's evaluation meaningful.

use crate::{all, by_name, Suite};

#[test]
fn suite_composition_matches_paper() {
    let ws = all();
    assert_eq!(ws.len(), 22);
    let mediabench = ws.iter().filter(|w| w.suite == Suite::Mediabench).count();
    let dsp = ws.iter().filter(|w| w.suite == Suite::Dsp).count();
    assert_eq!(mediabench, 13);
    assert_eq!(dsp, 9);
}

#[test]
fn every_workload_has_partitionable_data() {
    // The paper omitted benchmarks "that did not have enough data
    // objects where making a partitioning choice about the memory was
    // important" — ours must all qualify.
    for w in all() {
        assert!(w.num_objects() >= 4, "{}: only {} objects", w.name, w.num_objects());
        let sized =
            w.profile.apply_heap_sizes(&w.program).objects.values().filter(|o| o.size > 0).count();
        assert!(sized >= 3, "{}: only {sized} sized objects", w.name);
    }
}

#[test]
fn kernels_dominate_profiles() {
    // Initialization must not dominate the profile (real benchmarks
    // read inputs from files; our generators synthesize them, so the
    // main kernels must outweigh the init loops).
    for w in all() {
        let program = &w.program;
        let mut weights: Vec<u64> = Vec::new();
        for (fid, f) in program.functions.iter() {
            for (bid, block) in f.blocks.iter() {
                weights.push(w.profile.block_freq(fid, bid) * block.ops.len() as u64);
            }
        }
        weights.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = weights.iter().sum();
        assert!(
            weights[0] * 5 >= total,
            "{}: no dominant kernel block ({} of {total})",
            w.name,
            weights[0]
        );
    }
}

#[test]
fn object_names_mirror_real_benchmarks() {
    let expectations = [
        ("rawcaudio", "stepsizeTable"),
        ("rawdaudio", "indexTable"),
        ("g721encode", "qtab_721"),
        ("gsmencode", "state.dp0"),
        ("mpeg2enc", "intra_quantizer_matrix"),
        ("cjpeg", "std_luminance_quant_tbl"),
        ("epic", "lo_filter"),
        ("pegwit", "gf_reduction_tbl"),
        ("fir", "delayLine"),
    ];
    for (bench, object) in expectations {
        let w = by_name(bench).unwrap_or_else(|| panic!("missing {bench}"));
        assert!(
            w.program.objects.values().any(|o| o.name == object),
            "{bench}: object `{object}` missing"
        );
    }
}

#[test]
fn encode_decode_pairs_share_table_shapes() {
    for (enc, dec) in [
        ("rawcaudio", "rawdaudio"),
        ("g721encode", "g721decode"),
        ("gsmencode", "gsmdecode"),
        ("mpeg2enc", "mpeg2dec"),
        ("cjpeg", "djpeg"),
        ("epic", "unepic"),
    ] {
        let we = by_name(enc).unwrap();
        let wd = by_name(dec).unwrap();
        assert_eq!(
            we.num_objects(),
            wd.num_objects(),
            "{enc}/{dec} should share an object inventory"
        );
    }
}

#[test]
fn profiles_are_reproducible() {
    // Workload construction executes the program; rebuilding must give
    // the identical profile (generators are deterministic).
    let a = by_name("fsed").unwrap();
    let b = by_name("fsed").unwrap();
    assert_eq!(a.profile, b.profile);
    assert_eq!(a.program, b.program);
}
