//! Shared scaffolding for workload generators.

use mcpart_ir::{
    BlockId, Cmp, FuncId, FunctionBuilder, MemWidth, ObjectId, Profile, Program, VReg,
};
use mcpart_sim::{profile_run, ExecConfig};
use std::fmt;

/// Which benchmark suite a workload belongs to (the paper evaluates
/// Mediabench plus a set of DSP kernels).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Suite {
    /// Mediabench-style media applications.
    Mediabench,
    /// DSP kernels.
    Dsp,
    /// Parameterized synthetic scale programs ([`SynthSpec`]).
    Synthetic,
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Suite::Mediabench => f.write_str("mediabench"),
            Suite::Dsp => f.write_str("dsp"),
            Suite::Synthetic => f.write_str("synthetic"),
        }
    }
}

/// Why a candidate workload could not be constructed. The named
/// generators in this crate are trusted (a failure is a bug and the
/// panicking constructors are appropriate); spec-driven synthetic
/// generation flows through the `try_` constructors so a bad input
/// surfaces as a diagnostic instead of a crash.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkloadError {
    /// The program failed IR verification.
    Verification {
        /// Workload name.
        name: String,
        /// Verifier diagnostic.
        detail: String,
    },
    /// The profiling execution failed.
    Execution {
        /// Workload name.
        name: String,
        /// Simulator diagnostic.
        detail: String,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Verification { name, detail } => {
                write!(f, "workload {name} fails verification: {detail}")
            }
            WorkloadError::Execution { name, detail } => {
                write!(f, "workload {name} fails execution: {detail}")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

/// A benchmark: a verified program plus the execution profile gathered
/// by actually running it in the functional simulator (so block
/// frequencies and heap sizes are exact, as with the paper's profiling
/// runs).
#[derive(Clone, Debug)]
pub struct Workload {
    /// Benchmark name (mirrors the paper's benchmark names).
    pub name: String,
    /// Suite membership.
    pub suite: Suite,
    /// The program.
    pub program: Program,
    /// Profile from a real execution.
    pub profile: Profile,
}

impl Workload {
    /// Verifies `program`, executes it once to gather the profile, and
    /// wraps the result.
    ///
    /// # Panics
    ///
    /// Panics if the program fails verification or execution — workload
    /// generators are expected to produce correct programs.
    pub fn from_program(name: impl Into<String>, suite: Suite, program: Program) -> Self {
        Workload::try_from_program(name, suite, program).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Workload::from_program`]: verifies and
    /// profiles `program`, returning a typed error instead of
    /// panicking. Use this for programs built from untrusted input
    /// (spec strings, service job files).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] when verification or the profiling
    /// execution fails.
    pub fn try_from_program(
        name: impl Into<String>,
        suite: Suite,
        program: Program,
    ) -> Result<Self, WorkloadError> {
        let name = name.into();
        mcpart_ir::verify_program(&program).map_err(|e| WorkloadError::Verification {
            name: name.clone(),
            detail: e.to_string(),
        })?;
        let profile = profile_run(&program, &[], ExecConfig::default())
            .map_err(|e| WorkloadError::Execution { name: name.clone(), detail: e.to_string() })?;
        Ok(Workload { name, suite, program, profile })
    }

    /// Wraps an already-profiled program: verification only, no
    /// simulator run. Used by the synthetic generator, whose analytic
    /// profile makes executing a million-op program unnecessary.
    ///
    /// # Panics
    ///
    /// Panics if the program fails verification.
    pub fn from_parts(
        name: impl Into<String>,
        suite: Suite,
        program: Program,
        profile: Profile,
    ) -> Self {
        Workload::try_from_parts(name, suite, program, profile).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Workload::from_parts`].
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Verification`] when the program fails
    /// verification.
    pub fn try_from_parts(
        name: impl Into<String>,
        suite: Suite,
        program: Program,
        profile: Profile,
    ) -> Result<Self, WorkloadError> {
        let name = name.into();
        mcpart_ir::verify_program(&program).map_err(|e| WorkloadError::Verification {
            name: name.clone(),
            detail: e.to_string(),
        })?;
        Ok(Workload { name, suite, program, profile })
    }

    /// Number of data objects.
    pub fn num_objects(&self) -> usize {
        self.program.objects.len()
    }

    /// Total operation count.
    pub fn num_ops(&self) -> usize {
        self.program.num_ops()
    }
}

/// The blocks created by [`counted_loop`].
#[derive(Clone, Copy, Debug)]
pub struct Loop {
    /// Condition-check block (executes `trips + 1` times).
    pub header: BlockId,
    /// First body block.
    pub body: BlockId,
    /// Block holding the induction increment and back-edge.
    pub latch: BlockId,
    /// Block control falls into after the loop.
    pub exit: BlockId,
    /// The induction variable (0, 1, ..., trips-1 inside the body).
    pub ivar: VReg,
}

/// Emits a counted loop `for i in 0..trips { body }` at the builder's
/// current position, leaving the builder in the exit block.
///
/// The body closure receives the induction variable; it may create
/// additional blocks but must leave the builder in a block that falls
/// through to the latch (i.e. not terminated).
pub fn counted_loop(
    b: &mut FunctionBuilder<'_>,
    trips: i64,
    body_fn: impl FnOnce(&mut FunctionBuilder<'_>, VReg),
) -> Loop {
    let i = b.iconst(0);
    let n = b.iconst(trips);
    let header = b.block("loop.header");
    let body = b.block("loop.body");
    let exit = b.block("loop.exit");
    b.jump(header);
    b.switch_to(header);
    let c = b.icmp(Cmp::Lt, i, n);
    b.branch(c, body, exit);
    b.switch_to(body);
    body_fn(b, i);
    let latch = b.current_block();
    let one = b.iconst(1);
    let next = b.add(i, one);
    b.mov_to(i, next);
    b.jump(header);
    b.switch_to(exit);
    Loop { header, body, latch, exit, ivar: i }
}

/// Emits a counted loop over `0..trips` whose body is replicated
/// `unroll` times per iteration (`idx = i*unroll + u`), exposing
/// instruction-level parallelism the way the paper's hyperblock-forming
/// compiler does. `trips` must be divisible by `unroll`.
///
/// # Panics
///
/// Panics if `trips % unroll != 0` or `unroll == 0`.
pub fn unrolled_loop(
    b: &mut FunctionBuilder<'_>,
    trips: i64,
    unroll: i64,
    mut body_fn: impl FnMut(&mut FunctionBuilder<'_>, VReg),
) -> Loop {
    assert!(unroll > 0 && trips % unroll == 0, "trips must divide by unroll");
    counted_loop(b, trips / unroll, |b, i| {
        let u = b.iconst(unroll);
        let base = b.mul(i, u);
        for k in 0..unroll {
            let kc = b.iconst(k);
            let idx = b.add(base, kc);
            body_fn(b, idx);
        }
    })
}

/// Loads `table[index]` of 4-byte elements.
pub fn load_elem4(b: &mut FunctionBuilder<'_>, table: ObjectId, index: VReg) -> VReg {
    let base = b.addrof(table);
    let four = b.iconst(4);
    let off = b.mul(index, four);
    let addr = b.add(base, off);
    b.load(MemWidth::B4, addr)
}

/// Stores a 4-byte `value` to `table[index]`.
pub fn store_elem4(b: &mut FunctionBuilder<'_>, table: ObjectId, index: VReg, value: VReg) {
    let base = b.addrof(table);
    let four = b.iconst(4);
    let off = b.mul(index, four);
    let addr = b.add(base, off);
    b.store(MemWidth::B4, addr, value);
}

/// Loads `buf[index]` of 4-byte elements from a pointer register.
pub fn load_ptr4(b: &mut FunctionBuilder<'_>, base: VReg, index: VReg) -> VReg {
    let four = b.iconst(4);
    let off = b.mul(index, four);
    let addr = b.add(base, off);
    b.load(MemWidth::B4, addr)
}

/// Stores a 4-byte `value` to `buf[index]` through a pointer register.
pub fn store_ptr4(b: &mut FunctionBuilder<'_>, base: VReg, index: VReg, value: VReg) {
    let four = b.iconst(4);
    let off = b.mul(index, four);
    let addr = b.add(base, off);
    b.store(MemWidth::B4, addr, value);
}

/// Emits `min(max(v, lo), hi)` with constants.
pub fn clamp_const(b: &mut FunctionBuilder<'_>, v: VReg, lo: i64, hi: i64) -> VReg {
    let lo = b.iconst(lo);
    let hi = b.iconst(hi);
    let t = b.ibin(mcpart_ir::IntBinOp::Max, v, lo);
    b.ibin(mcpart_ir::IntBinOp::Min, t, hi)
}

/// Fills a 4-byte-element table with a deterministic pseudo-random-ish
/// pattern `value(i) = ((i * mul + add) >> shr) & mask` in an init loop,
/// so loads observe varied data and data-dependent branches exercise
/// both sides.
pub fn init_table4(
    b: &mut FunctionBuilder<'_>,
    table: ObjectId,
    elems: i64,
    mul: i64,
    add: i64,
    mask: i64,
) -> Loop {
    counted_loop(b, elems, |b, i| {
        let m = b.iconst(mul);
        let a = b.iconst(add);
        let mk = b.iconst(mask);
        let v0 = b.mul(i, m);
        let v1 = b.add(v0, a);
        let v2 = b.and(v1, mk);
        store_elem4(b, table, i, v2);
    })
}

/// Parameter set for the synthetic scale generator: a seeded,
/// layer-structured program whose size is controlled precisely enough
/// to hit a target static operation count (10⁴ … 10⁶ and beyond).
///
/// The generated program is a call *tree*: `funcs` functions arranged
/// in `depth` layers, every function invoked exactly once, each running
/// one counted loop of `trips` iterations whose body is ~`region_ops`
/// operations of masked table loads/compute/stores over a subset of
/// `objects` global tables (`sharing` tables per function, overlapping
/// across functions so data partitioning has real cross-function
/// conflicts). Because every function runs exactly once and every loop
/// is counted, the execution profile is *analytic* — block frequencies
/// are written down instead of simulated, so million-op programs need
/// no simulator run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SynthSpec {
    /// Total function count (≥ 1; clamped up to `depth`).
    pub funcs: usize,
    /// Call-graph depth in layers (entry is layer 0).
    pub depth: usize,
    /// Approximate operations per loop-body region.
    pub region_ops: usize,
    /// Global table count.
    pub objects: usize,
    /// Tables accessed per function (sharing across functions rises
    /// with `funcs * sharing / objects`).
    pub sharing: usize,
    /// Loop trip count per function (≥ 1); sets the hot-block
    /// frequency in the analytic profile.
    pub trips: i64,
    /// Seed varying table sizes and per-function access mixes.
    pub seed: u64,
}

/// A malformed synthetic-spec string: what went wrong and where.
///
/// `column` is the 1-based byte offset of the offending key or value
/// inside the spec string, so a shell user can count from the start of
/// the argument (`spec column 15: ...`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SynthSpecError {
    /// 1-based byte offset of the offending token in the spec string.
    pub column: usize,
    /// What was wrong with it.
    pub message: String,
}

impl SynthSpecError {
    fn at(column: usize, message: impl Into<String>) -> Self {
        SynthSpecError { column, message: message.into() }
    }
}

impl fmt::Display for SynthSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec column {}: {}", self.column, self.message)
    }
}

impl std::error::Error for SynthSpecError {}

/// Ops in one load/compute/store body unit (2 mask, 5 load, 1 add,
/// 5 store).
const UNIT_OPS: usize = 13;
/// Fixed per-function op overhead (loop scaffolding, call-argument
/// seed, return chaining).
const FUNC_OVERHEAD_OPS: usize = 8;

impl Default for SynthSpec {
    fn default() -> Self {
        SynthSpec {
            funcs: 16,
            depth: 4,
            region_ops: 96,
            objects: 16,
            sharing: 2,
            trips: 64,
            seed: 0x5eed,
        }
    }
}

impl SynthSpec {
    /// A spec sized to produce roughly `ops` static operations, with
    /// default region size, depth, trips, and seed. Object count scales
    /// with the function count.
    pub fn with_target_ops(ops: usize) -> Self {
        let mut spec = SynthSpec::default();
        spec.set_target_ops(ops);
        spec
    }

    fn set_target_ops(&mut self, ops: usize) {
        let units = self.region_ops.div_ceil(UNIT_OPS).max(1);
        let per_func = units * UNIT_OPS + FUNC_OVERHEAD_OPS;
        self.funcs = (ops / per_func).max(self.depth).max(1);
        self.objects = (self.funcs / 4).clamp(8, 1 << 16);
    }

    /// Parses a spec string: either a preset name (`synth_10k`,
    /// `synth_100k`, `synth_1m`) or a comma-separated `key=value` list
    /// with keys `ops`, `funcs`, `depth`, `region`, `objects`,
    /// `sharing`, `trips`, `seed` (e.g.
    /// `ops=100000,trips=32,seed=7`). Unknown keys are errors, and
    /// every value is range-checked before it is narrowed — a trip
    /// count that would have wrapped the internal `i64` is rejected
    /// with a diagnostic instead of silently becoming 1.
    ///
    /// # Errors
    ///
    /// Returns a [`SynthSpecError`] locating the offending key or
    /// value by column.
    pub fn parse(spec: &str) -> Result<SynthSpec, SynthSpecError> {
        match spec {
            "synth_10k" => return Ok(SynthSpec::with_target_ops(10_000)),
            "synth_100k" => return Ok(SynthSpec::with_target_ops(100_000)),
            "synth_1m" => return Ok(SynthSpec::with_target_ops(1_000_000)),
            _ => {}
        }
        let mut out = SynthSpec::default();
        let mut target_ops = None;
        let mut offset = 0usize; // byte offset of the current pair
        for pair in spec.split(',') {
            let key_col = offset + 1;
            offset += pair.len() + 1;
            if pair.is_empty() {
                continue;
            }
            let (key, value) = pair.split_once('=').ok_or_else(|| {
                SynthSpecError::at(key_col, format!("expected key=value, got `{pair}`"))
            })?;
            let value_col = key_col + key.len() + 1;
            let num: u64 = value.parse().map_err(|_| {
                SynthSpecError::at(value_col, format!("`{key}` needs a number, got `{value}`"))
            })?;
            // Every value is bounded before narrowing, so the `as`
            // casts below cannot truncate or wrap on any target.
            let capped = |hi: u64| -> Result<u64, SynthSpecError> {
                if (1..=hi).contains(&num) {
                    Ok(num)
                } else {
                    Err(SynthSpecError::at(
                        value_col,
                        format!("`{key}` must be between 1 and {hi}, got {num}"),
                    ))
                }
            };
            match key {
                "ops" => target_ops = Some(capped(100_000_000)? as usize),
                "funcs" => out.funcs = capped(1_000_000)? as usize,
                "depth" => out.depth = capped(64)? as usize,
                "region" => out.region_ops = capped(65_536)? as usize,
                "objects" => out.objects = capped(1_000_000)? as usize,
                "sharing" => out.sharing = capped(4_096)? as usize,
                "trips" => out.trips = capped(1_000_000_000)? as i64,
                "seed" => out.seed = num,
                _ => {
                    return Err(SynthSpecError::at(key_col, format!("unknown spec key `{key}`")));
                }
            }
        }
        if let Some(ops) = target_ops {
            out.set_target_ops(ops);
        }
        Ok(out)
    }

    /// The analytic profile is exact, so generation is pure IR
    /// construction plus verification — no simulator run. See
    /// [`SynthSpec`] for the program shape.
    ///
    /// # Panics
    ///
    /// Panics if the generated program fails verification (a generator
    /// bug, not an input error — every parsed spec generates a valid
    /// program). Untrusted paths use [`SynthSpec::try_generate`].
    pub fn generate(&self, name: impl Into<String>) -> Workload {
        self.try_generate(name).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`SynthSpec::generate`].
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Verification`] if the generated
    /// program fails verification.
    pub fn try_generate(&self, name: impl Into<String>) -> Result<Workload, WorkloadError> {
        let funcs = self.funcs.max(self.depth).max(1);
        let depth = self.depth.min(funcs).max(1);
        let trips = self.trips.max(1);
        let units = self.region_ops.div_ceil(UNIT_OPS).max(1);
        let mut rng = self.seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            rng >> 33
        };

        let mut program = Program::new("synth");
        // Tables: power-of-two element counts so an `and` mask keeps
        // every access in bounds.
        let tables: Vec<(ObjectId, i64)> = (0..self.objects.max(1))
            .map(|k| {
                let elems = 64i64 << (next() % 4); // 64..512 elements
                let obj = program
                    .add_object(mcpart_ir::DataObject::global(format!("tbl{k}"), elems as u64 * 4));
                (obj, elems - 1)
            })
            .collect();
        let table_of = |f: usize, j: usize, salt: u64| -> (ObjectId, i64) {
            // Fold the salt modularly in u64 *before* narrowing: the
            // index is unchanged mod `tables.len()`, and the sum can
            // no longer truncate or overflow on 32-bit targets.
            let salt = (salt % tables.len() as u64) as usize;
            tables[(f * self.sharing.max(1) + j + salt) % tables.len()]
        };

        // Layer sizes: entry alone in layer 0, the rest spread evenly.
        let mut layer_sizes = vec![1usize];
        let rest = funcs - 1;
        let lower = depth - 1;
        for d in 0..lower {
            layer_sizes.push(rest / lower.max(1) + usize::from(d < rest % lower.max(1)));
        }
        layer_sizes.retain(|&s| s > 0);

        // Build deepest layer first so callee ids exist; every function
        // in layer d+1 is called by exactly one function in layer d
        // (round-robin), so each function runs exactly once.
        let mut func_meta: Vec<(FuncId, Loop)> = Vec::new();
        let mut children: Vec<FuncId> = Vec::new();
        for d in (1..layer_sizes.len()).rev() {
            let size = layer_sizes[d];
            let mut ids = Vec::with_capacity(size);
            for s in 0..size {
                let mut b = FunctionBuilder::new_function(&mut program, format!("f{d}_{s}"));
                let param = b.param();
                let my_children: Vec<FuncId> = children
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % size == s)
                    .map(|(_, &c)| c)
                    .collect();
                let salt = next();
                let lp = counted_loop(&mut b, trips, |b, i| {
                    for u in 0..units {
                        let (t, mask) = table_of(d * 131 + s, u, salt);
                        let mkc = b.iconst(mask);
                        let idx = b.and(i, mkc);
                        let v = load_elem4(b, t, idx);
                        let x = b.add(v, param);
                        store_elem4(b, t, idx, x);
                    }
                });
                let mut acc = param;
                for &child in &my_children {
                    let r = b.call(child, vec![acc], 1);
                    acc = r[0];
                }
                b.ret(Some(acc));
                ids.push(b.func_id());
                func_meta.push((b.func_id(), lp));
            }
            children = ids;
        }
        // Entry (layer 0) calls every layer-1 function.
        let mut b = FunctionBuilder::entry(&mut program);
        let salt = next();
        let seed_v = b.iconst((self.seed & 0xFFFF) as i64);
        let lp = counted_loop(&mut b, trips, |b, i| {
            for u in 0..units {
                let (t, mask) = table_of(0, u, salt);
                let mkc = b.iconst(mask);
                let idx = b.and(i, mkc);
                let v = load_elem4(b, t, idx);
                let x = b.add(v, seed_v);
                store_elem4(b, t, idx, x);
            }
        });
        let mut acc = seed_v;
        for &child in &children {
            let r = b.call(child, vec![acc], 1);
            acc = r[0];
        }
        b.ret(Some(acc));
        func_meta.push((b.func_id(), lp));

        // Analytic profile: every function runs once, so every block
        // executes once except the loop header (`trips + 1`) and body
        // (`trips`).
        let mut profile = Profile::uniform(&program, 1);
        for &(fid, lp) in &func_meta {
            profile.funcs[fid].block_freq[lp.header] = (trips + 1) as u64;
            profile.funcs[fid].block_freq[lp.body] = trips as u64;
        }
        Workload::try_from_parts(name, Suite::Synthetic, program, profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpart_ir::DataObject;

    #[test]
    fn counted_loop_runs_expected_trips() {
        let mut p = Program::new("t");
        let acc_obj = p.add_object(DataObject::global("acc", 4));
        let mut b = FunctionBuilder::entry(&mut p);
        let lp = counted_loop(&mut b, 10, |b, i| {
            let base = b.addrof(acc_obj);
            let cur = b.load(MemWidth::B4, base);
            let next = b.add(cur, i);
            b.store(MemWidth::B4, base, next);
        });
        let base = b.addrof(acc_obj);
        let v = b.load(MemWidth::B4, base);
        b.ret(Some(v));
        let w = Workload::from_program("loop10", Suite::Dsp, p);
        // Sum 0..10 = 45.
        let r = mcpart_sim::run(&w.program, &[], ExecConfig::default()).unwrap();
        assert_eq!(r.return_value, Some(mcpart_sim::Value::Int(45)));
        assert_eq!(w.profile.block_freq(w.program.entry, lp.body), 10);
        assert_eq!(w.profile.block_freq(w.program.entry, lp.header), 11);
    }

    #[test]
    fn init_table_fills_values() {
        let mut p = Program::new("t");
        let table = p.add_object(DataObject::global("tbl", 32));
        let mut b = FunctionBuilder::entry(&mut p);
        init_table4(&mut b, table, 8, 3, 1, 0xFF);
        let idx = b.iconst(5);
        let v = load_elem4(&mut b, table, idx);
        b.ret(Some(v));
        let r = mcpart_sim::run(&p, &[], ExecConfig::default()).unwrap();
        assert_eq!(r.return_value, Some(mcpart_sim::Value::Int((5 * 3 + 1) & 0xFF)));
    }

    #[test]
    fn unrolled_loop_matches_rolled_semantics() {
        use mcpart_ir::DataObject;
        let build = |unroll: i64| {
            let mut p = Program::new("t");
            let acc_obj = p.add_object(DataObject::global("acc", 4));
            let mut b = FunctionBuilder::entry(&mut p);
            unrolled_loop(&mut b, 12, unroll, |b, i| {
                let base = b.addrof(acc_obj);
                let cur = b.load(MemWidth::B4, base);
                let next = b.add(cur, i);
                b.store(MemWidth::B4, base, next);
            });
            let base = b.addrof(acc_obj);
            let v = b.load(MemWidth::B4, base);
            b.ret(Some(v));
            mcpart_sim::run(&p, &[], ExecConfig::default()).unwrap().return_value
        };
        // Sum 0..12 regardless of the unroll factor.
        assert_eq!(build(1), build(4));
        assert_eq!(build(2), build(3));
        assert_eq!(build(1), Some(mcpart_sim::Value::Int(66)));
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn unrolled_loop_rejects_non_divisible() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        unrolled_loop(&mut b, 10, 3, |_b, _i| {});
    }

    #[test]
    fn synth_analytic_profile_matches_simulation() {
        // At small scale the generated program is cheap to actually run:
        // the analytic profile must agree exactly with the simulator's.
        let spec = SynthSpec::parse("funcs=9,depth=3,region=40,objects=6,trips=8,seed=11")
            .expect("valid spec");
        let w = spec.generate("synth_test");
        let actual = profile_run(&w.program, &[], ExecConfig::default()).expect("runs");
        assert_eq!(w.profile, actual);
    }

    #[test]
    fn synth_is_deterministic_and_seed_sensitive() {
        let spec = SynthSpec::parse("ops=2000,seed=5").expect("valid");
        let a = spec.generate("a");
        let b = spec.generate("b");
        assert_eq!(a.program, b.program);
        assert_eq!(a.profile, b.profile);
        let other = SynthSpec::parse("ops=2000,seed=6").expect("valid");
        assert_ne!(other.generate("c").program, a.program, "seed must matter");
    }

    #[test]
    fn synth_scales_to_target_ops() {
        for (target, lo, hi) in [(10_000usize, 8_000, 14_000), (50_000, 40_000, 65_000)] {
            let w = SynthSpec::with_target_ops(target).generate("t");
            let ops = w.num_ops();
            assert!((lo..hi).contains(&ops), "target {target}: ops = {ops}");
            assert!(w.program.functions.len() > 4);
            assert!(w.num_objects() >= 8);
        }
    }

    #[test]
    fn synth_spec_parse_rejects_garbage() {
        assert!(SynthSpec::parse("nope").is_err());
        assert!(SynthSpec::parse("trips=abc").is_err());
        assert!(SynthSpec::parse("widgets=3").is_err());
        assert_eq!(SynthSpec::parse("synth_1m").expect("preset").region_ops, 96);
    }

    #[test]
    fn synth_spec_errors_carry_a_column() {
        // `abc` starts at byte 14 → 1-based column 15.
        let e = SynthSpec::parse("funcs=4,trips=abc").expect_err("bad value");
        assert_eq!(e.column, 15);
        assert!(e.to_string().contains("spec column 15"), "{e}");
        // The unknown key itself is located, not its value.
        let e = SynthSpec::parse("seed=1,widgets=3").expect_err("bad key");
        assert_eq!(e.column, 8);
        // A bare token with no `=` is located too.
        let e = SynthSpec::parse("trips=4,nope").expect_err("bare token");
        assert_eq!(e.column, 9);
    }

    #[test]
    fn synth_spec_parse_range_checks_before_narrowing() {
        // Regression: 2^63 used to wrap `num as i64` negative and then
        // silently clamp to 1 trip. It must be rejected out loud.
        let e = SynthSpec::parse("trips=9223372036854775808").expect_err("wrapping trips");
        assert!(e.to_string().contains("between 1 and"), "{e}");
        // Zero and over-cap values are diagnosed for every sized key.
        for bad in [
            "ops=0",
            "ops=999999999999",
            "funcs=0",
            "funcs=10000000",
            "depth=65",
            "region=65537",
            "objects=0",
            "sharing=4097",
            "trips=0",
        ] {
            assert!(SynthSpec::parse(bad).is_err(), "{bad} must be rejected");
        }
        // Boundary values are accepted; seed takes any u64.
        assert!(SynthSpec::parse("depth=64,sharing=4096,trips=1000000000").is_ok());
        assert_eq!(SynthSpec::parse("seed=18446744073709551615").expect("valid").seed, u64::MAX);
    }

    #[test]
    fn table_salt_indexing_stays_in_bounds_at_extremes() {
        // A single table folds every salted index to 0; maximum
        // sharing over few tables exercises the modular wrap. The
        // generated programs verify, so an out-of-bounds table index
        // would fail generation rather than pass silently.
        let one = SynthSpec::parse("funcs=6,depth=3,region=26,objects=1,sharing=4096,trips=2")
            .expect("valid")
            .try_generate("one_table")
            .expect("generates");
        assert_eq!(one.num_objects(), 1);
        let wrap = SynthSpec::parse("funcs=33,depth=4,region=40,objects=3,sharing=4095,trips=2")
            .expect("valid")
            .try_generate("wrap")
            .expect("generates");
        assert_eq!(wrap.num_objects(), 3);
    }

    #[test]
    fn table_salt_spreads_accesses_across_tables() {
        // With tables to spare, the salted round-robin must not
        // collapse onto one table: every table should be touched by
        // some function. `addrof` is the only way the generator takes
        // a table's address, and the tables are the program's only
        // objects, so table k renders as `addrof objk`.
        let w = SynthSpec::parse("funcs=12,depth=3,region=26,objects=8,sharing=2,trips=2,seed=7")
            .expect("valid")
            .generate("spread");
        let text: String =
            w.program.functions.values().map(mcpart_ir::function_to_string).collect();
        for k in 0..8 {
            assert!(text.contains(&format!("addrof obj{k}")), "table {k} never accessed");
        }
    }

    #[test]
    fn clamp_behaviour() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let v = b.iconst(99);
        let c = clamp_const(&mut b, v, 0, 88);
        b.ret(Some(c));
        let r = mcpart_sim::run(&p, &[], ExecConfig::default()).unwrap();
        assert_eq!(r.return_value, Some(mcpart_sim::Value::Int(88)));
    }
}
