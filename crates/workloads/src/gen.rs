//! Shared scaffolding for workload generators.

use mcpart_ir::{BlockId, Cmp, FunctionBuilder, MemWidth, ObjectId, Profile, Program, VReg};
use mcpart_sim::{profile_run, ExecConfig};
use std::fmt;

/// Which benchmark suite a workload belongs to (the paper evaluates
/// Mediabench plus a set of DSP kernels).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Suite {
    /// Mediabench-style media applications.
    Mediabench,
    /// DSP kernels.
    Dsp,
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Suite::Mediabench => f.write_str("mediabench"),
            Suite::Dsp => f.write_str("dsp"),
        }
    }
}

/// A benchmark: a verified program plus the execution profile gathered
/// by actually running it in the functional simulator (so block
/// frequencies and heap sizes are exact, as with the paper's profiling
/// runs).
#[derive(Clone, Debug)]
pub struct Workload {
    /// Benchmark name (mirrors the paper's benchmark names).
    pub name: &'static str,
    /// Suite membership.
    pub suite: Suite,
    /// The program.
    pub program: Program,
    /// Profile from a real execution.
    pub profile: Profile,
}

impl Workload {
    /// Verifies `program`, executes it once to gather the profile, and
    /// wraps the result.
    ///
    /// # Panics
    ///
    /// Panics if the program fails verification or execution — workload
    /// generators are expected to produce correct programs.
    pub fn from_program(name: &'static str, suite: Suite, program: Program) -> Self {
        mcpart_ir::verify_program(&program)
            .unwrap_or_else(|e| panic!("workload {name} fails verification: {e}"));
        let profile = profile_run(&program, &[], ExecConfig::default())
            .unwrap_or_else(|e| panic!("workload {name} fails execution: {e}"));
        Workload { name, suite, program, profile }
    }

    /// Number of data objects.
    pub fn num_objects(&self) -> usize {
        self.program.objects.len()
    }

    /// Total operation count.
    pub fn num_ops(&self) -> usize {
        self.program.num_ops()
    }
}

/// The blocks created by [`counted_loop`].
#[derive(Clone, Copy, Debug)]
pub struct Loop {
    /// Condition-check block (executes `trips + 1` times).
    pub header: BlockId,
    /// First body block.
    pub body: BlockId,
    /// Block holding the induction increment and back-edge.
    pub latch: BlockId,
    /// Block control falls into after the loop.
    pub exit: BlockId,
    /// The induction variable (0, 1, ..., trips-1 inside the body).
    pub ivar: VReg,
}

/// Emits a counted loop `for i in 0..trips { body }` at the builder's
/// current position, leaving the builder in the exit block.
///
/// The body closure receives the induction variable; it may create
/// additional blocks but must leave the builder in a block that falls
/// through to the latch (i.e. not terminated).
pub fn counted_loop(
    b: &mut FunctionBuilder<'_>,
    trips: i64,
    body_fn: impl FnOnce(&mut FunctionBuilder<'_>, VReg),
) -> Loop {
    let i = b.iconst(0);
    let n = b.iconst(trips);
    let header = b.block("loop.header");
    let body = b.block("loop.body");
    let exit = b.block("loop.exit");
    b.jump(header);
    b.switch_to(header);
    let c = b.icmp(Cmp::Lt, i, n);
    b.branch(c, body, exit);
    b.switch_to(body);
    body_fn(b, i);
    let latch = b.current_block();
    let one = b.iconst(1);
    let next = b.add(i, one);
    b.mov_to(i, next);
    b.jump(header);
    b.switch_to(exit);
    Loop { header, body, latch, exit, ivar: i }
}

/// Emits a counted loop over `0..trips` whose body is replicated
/// `unroll` times per iteration (`idx = i*unroll + u`), exposing
/// instruction-level parallelism the way the paper's hyperblock-forming
/// compiler does. `trips` must be divisible by `unroll`.
///
/// # Panics
///
/// Panics if `trips % unroll != 0` or `unroll == 0`.
pub fn unrolled_loop(
    b: &mut FunctionBuilder<'_>,
    trips: i64,
    unroll: i64,
    mut body_fn: impl FnMut(&mut FunctionBuilder<'_>, VReg),
) -> Loop {
    assert!(unroll > 0 && trips % unroll == 0, "trips must divide by unroll");
    counted_loop(b, trips / unroll, |b, i| {
        let u = b.iconst(unroll);
        let base = b.mul(i, u);
        for k in 0..unroll {
            let kc = b.iconst(k);
            let idx = b.add(base, kc);
            body_fn(b, idx);
        }
    })
}

/// Loads `table[index]` of 4-byte elements.
pub fn load_elem4(b: &mut FunctionBuilder<'_>, table: ObjectId, index: VReg) -> VReg {
    let base = b.addrof(table);
    let four = b.iconst(4);
    let off = b.mul(index, four);
    let addr = b.add(base, off);
    b.load(MemWidth::B4, addr)
}

/// Stores a 4-byte `value` to `table[index]`.
pub fn store_elem4(b: &mut FunctionBuilder<'_>, table: ObjectId, index: VReg, value: VReg) {
    let base = b.addrof(table);
    let four = b.iconst(4);
    let off = b.mul(index, four);
    let addr = b.add(base, off);
    b.store(MemWidth::B4, addr, value);
}

/// Loads `buf[index]` of 4-byte elements from a pointer register.
pub fn load_ptr4(b: &mut FunctionBuilder<'_>, base: VReg, index: VReg) -> VReg {
    let four = b.iconst(4);
    let off = b.mul(index, four);
    let addr = b.add(base, off);
    b.load(MemWidth::B4, addr)
}

/// Stores a 4-byte `value` to `buf[index]` through a pointer register.
pub fn store_ptr4(b: &mut FunctionBuilder<'_>, base: VReg, index: VReg, value: VReg) {
    let four = b.iconst(4);
    let off = b.mul(index, four);
    let addr = b.add(base, off);
    b.store(MemWidth::B4, addr, value);
}

/// Emits `min(max(v, lo), hi)` with constants.
pub fn clamp_const(b: &mut FunctionBuilder<'_>, v: VReg, lo: i64, hi: i64) -> VReg {
    let lo = b.iconst(lo);
    let hi = b.iconst(hi);
    let t = b.ibin(mcpart_ir::IntBinOp::Max, v, lo);
    b.ibin(mcpart_ir::IntBinOp::Min, t, hi)
}

/// Fills a 4-byte-element table with a deterministic pseudo-random-ish
/// pattern `value(i) = ((i * mul + add) >> shr) & mask` in an init loop,
/// so loads observe varied data and data-dependent branches exercise
/// both sides.
pub fn init_table4(
    b: &mut FunctionBuilder<'_>,
    table: ObjectId,
    elems: i64,
    mul: i64,
    add: i64,
    mask: i64,
) -> Loop {
    counted_loop(b, elems, |b, i| {
        let m = b.iconst(mul);
        let a = b.iconst(add);
        let mk = b.iconst(mask);
        let v0 = b.mul(i, m);
        let v1 = b.add(v0, a);
        let v2 = b.and(v1, mk);
        store_elem4(b, table, i, v2);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpart_ir::DataObject;

    #[test]
    fn counted_loop_runs_expected_trips() {
        let mut p = Program::new("t");
        let acc_obj = p.add_object(DataObject::global("acc", 4));
        let mut b = FunctionBuilder::entry(&mut p);
        let lp = counted_loop(&mut b, 10, |b, i| {
            let base = b.addrof(acc_obj);
            let cur = b.load(MemWidth::B4, base);
            let next = b.add(cur, i);
            b.store(MemWidth::B4, base, next);
        });
        let base = b.addrof(acc_obj);
        let v = b.load(MemWidth::B4, base);
        b.ret(Some(v));
        let w = Workload::from_program("loop10", Suite::Dsp, p);
        // Sum 0..10 = 45.
        let r = mcpart_sim::run(&w.program, &[], ExecConfig::default()).unwrap();
        assert_eq!(r.return_value, Some(mcpart_sim::Value::Int(45)));
        assert_eq!(w.profile.block_freq(w.program.entry, lp.body), 10);
        assert_eq!(w.profile.block_freq(w.program.entry, lp.header), 11);
    }

    #[test]
    fn init_table_fills_values() {
        let mut p = Program::new("t");
        let table = p.add_object(DataObject::global("tbl", 32));
        let mut b = FunctionBuilder::entry(&mut p);
        init_table4(&mut b, table, 8, 3, 1, 0xFF);
        let idx = b.iconst(5);
        let v = load_elem4(&mut b, table, idx);
        b.ret(Some(v));
        let r = mcpart_sim::run(&p, &[], ExecConfig::default()).unwrap();
        assert_eq!(r.return_value, Some(mcpart_sim::Value::Int((5 * 3 + 1) & 0xFF)));
    }

    #[test]
    fn unrolled_loop_matches_rolled_semantics() {
        use mcpart_ir::DataObject;
        let build = |unroll: i64| {
            let mut p = Program::new("t");
            let acc_obj = p.add_object(DataObject::global("acc", 4));
            let mut b = FunctionBuilder::entry(&mut p);
            unrolled_loop(&mut b, 12, unroll, |b, i| {
                let base = b.addrof(acc_obj);
                let cur = b.load(MemWidth::B4, base);
                let next = b.add(cur, i);
                b.store(MemWidth::B4, base, next);
            });
            let base = b.addrof(acc_obj);
            let v = b.load(MemWidth::B4, base);
            b.ret(Some(v));
            mcpart_sim::run(&p, &[], ExecConfig::default()).unwrap().return_value
        };
        // Sum 0..12 regardless of the unroll factor.
        assert_eq!(build(1), build(4));
        assert_eq!(build(2), build(3));
        assert_eq!(build(1), Some(mcpart_sim::Value::Int(66)));
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn unrolled_loop_rejects_non_divisible() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        unrolled_loop(&mut b, 10, 3, |_b, _i| {});
    }

    #[test]
    fn clamp_behaviour() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let v = b.iconst(99);
        let c = clamp_const(&mut b, v, 0, 88);
        b.ret(Some(c));
        let r = mcpart_sim::run(&p, &[], ExecConfig::default()).unwrap();
        assert_eq!(r.return_value, Some(mcpart_sim::Value::Int(88)));
    }
}
