//! Additional DSP kernels: `viterbi`, `autcor`, `histogram`.

use crate::gen::{
    clamp_const, counted_loop, load_elem4, load_ptr4, store_elem4, store_ptr4, unrolled_loop,
    Suite, Workload,
};
use mcpart_ir::{Cmp, DataObject, FunctionBuilder, IntBinOp, MemWidth, Program};

/// Viterbi decoder kernel: a 16-state trellis walked over a symbol
/// stream, with branch-metric tables and double-buffered path metrics.
pub fn viterbi() -> Workload {
    const STATES: i64 = 16;
    const SYMBOLS: i64 = 128;
    let mut p = Program::new("viterbi");
    let metric0 = p.add_object(DataObject::global("pathMetricA", (STATES * 4) as u64));
    let metric1 = p.add_object(DataObject::global("pathMetricB", (STATES * 4) as u64));
    let branch_tbl = p.add_object(DataObject::global("branchMetric", (STATES * 2 * 4) as u64));
    let trace = p.add_object(DataObject::heap_site("traceback"));
    let input = p.add_object(DataObject::heap_site("symbols"));
    let best_state = p.add_object(DataObject::global("bestState", 4));
    let mut b = FunctionBuilder::entry(&mut p);
    // Branch metrics: per (state, bit) cost table.
    counted_loop(&mut b, STATES * 2, |b, i| {
        let k = b.iconst(23);
        let v0 = b.mul(i, k);
        let m = b.iconst(0x3F);
        let v = b.and(v0, m);
        store_elem4(b, branch_tbl, i, v);
    });
    let sz = b.iconst(SYMBOLS * 4);
    let inp = b.malloc(input, sz);
    let sz2 = b.iconst(SYMBOLS * 4);
    let tb = b.malloc(trace, sz2);
    counted_loop(&mut b, SYMBOLS, |b, i| {
        let k = b.iconst(45);
        let v0 = b.mul(i, k);
        let one = b.iconst(1);
        let v = b.and(v0, one);
        store_ptr4(b, inp, i, v);
    });
    // Trellis: for each symbol, update all states from their two
    // predecessors (add-compare-select), writing the winner and its
    // decision bit.
    counted_loop(&mut b, SYMBOLS, |b, t| {
        let sym = load_ptr4(b, inp, t);
        let decisions0 = b.iconst(0);
        let decisions = b.mov(decisions0);
        unrolled_loop(b, STATES, 4, |b, s| {
            // Predecessors: (s*2) % STATES and (s*2+1) % STATES.
            let two = b.iconst(2);
            let p0r = b.mul(s, two);
            let mask = b.iconst(STATES - 1);
            let p0 = b.and(p0r, mask);
            let one = b.iconst(1);
            let p1r = b.add(p0r, one);
            let p1 = b.and(p1r, mask);
            // Alternate metric buffers by symbol parity.
            let parity = b.and(t, one);
            let m0a = load_elem4(b, metric0, p0);
            let m0b = load_elem4(b, metric1, p0);
            let m0 = b.select(parity, m0b, m0a);
            let m1a = load_elem4(b, metric0, p1);
            let m1b = load_elem4(b, metric1, p1);
            let m1 = b.select(parity, m1b, m1a);
            // Branch costs keyed by (state, received symbol).
            let bi0 = b.mul(s, two);
            let bi = b.add(bi0, sym);
            let cost = load_elem4(b, branch_tbl, bi);
            let c0 = b.add(m0, cost);
            let c1 = b.add(m1, cost);
            let take1 = b.icmp(Cmp::Lt, c1, c0);
            let best = b.select(take1, c1, c0);
            let capped = clamp_const(b, best, 0, 1 << 20);
            // Write into the other buffer.
            let winner_a = b.select(parity, capped, capped);
            store_elem4(b, metric1, s, winner_a);
            store_elem4(b, metric0, s, capped);
            // Fold the decision bit into this symbol's word.
            let shifted = b.shl(take1, s);
            let acc = b.or(decisions, shifted);
            b.mov_to(decisions, acc);
        });
        store_ptr4(b, tb, t, decisions);
    });
    // Pick the best final state.
    let besti0 = b.iconst(0);
    let besti = b.mov(besti0);
    let bestm0 = b.iconst(1 << 20);
    let bestm = b.mov(bestm0);
    counted_loop(&mut b, STATES, |b, s| {
        let m = load_elem4(b, metric0, s);
        let better = b.icmp(Cmp::Lt, m, bestm);
        let nm = b.select(better, m, bestm);
        b.mov_to(bestm, nm);
        let ns = b.select(better, s, besti);
        b.mov_to(besti, ns);
    });
    let ba = b.addrof(best_state);
    b.store(MemWidth::B4, ba, besti);
    b.ret(Some(besti));
    Workload::from_program("viterbi", Suite::Dsp, p)
}

/// Autocorrelation kernel (`autcor`, after the EEMBC telecom kernel):
/// `r[k] = Σ_i x[i]·x[i+k]` for a handful of lags.
pub fn autcor() -> Workload {
    const N: i64 = 256;
    const LAGS: i64 = 16;
    let mut p = Program::new("autcor");
    let result = p.add_object(DataObject::global("autocorr", (LAGS * 4) as u64));
    let window = p.add_object(DataObject::global("windowTable", 16 * 4));
    let energy = p.add_object(DataObject::global("energy", 4));
    let input = p.add_object(DataObject::heap_site("samples"));
    let mut b = FunctionBuilder::entry(&mut p);
    // Triangular window coefficients.
    counted_loop(&mut b, 16, |b, i| {
        let eight = b.iconst(8);
        let d = b.sub(i, eight);
        let zero = b.iconst(0);
        let nd = b.sub(zero, d);
        let mag = b.ibin(IntBinOp::Max, d, nd);
        let w = b.sub(eight, mag);
        let two = b.iconst(2);
        let w2 = b.add(w, two);
        store_elem4(b, window, i, w2);
    });
    let sz = b.iconst(N * 4);
    let inp = b.malloc(input, sz);
    counted_loop(&mut b, N, |b, i| {
        let k = b.iconst(37);
        let v0 = b.mul(i, k);
        let m = b.iconst(0xFF);
        let v1 = b.and(v0, m);
        let h = b.iconst(128);
        let raw = b.sub(v1, h);
        let fifteen = b.iconst(15);
        let wi = b.and(i, fifteen);
        let w = load_elem4(b, window, wi);
        let scaled = b.mul(raw, w);
        let three = b.iconst(3);
        let v = b.shr(scaled, three);
        store_ptr4(b, inp, i, v);
    });
    counted_loop(&mut b, LAGS, |b, lag| {
        let acc0 = b.iconst(0);
        let acc = b.mov(acc0);
        unrolled_loop(b, N - LAGS, 4, |b, i| {
            let x = load_ptr4(b, inp, i);
            let ik = b.add(i, lag);
            let y = load_ptr4(b, inp, ik);
            let prod = b.mul(x, y);
            let eight = b.iconst(8);
            let scaled = b.shr(prod, eight);
            let sum = b.add(acc, scaled);
            b.mov_to(acc, sum);
        });
        store_elem4(b, result, lag, acc);
        let ea = b.addrof(energy);
        let e = b.load(MemWidth::B4, ea);
        let zero = b.iconst(0);
        let nacc = b.sub(zero, acc);
        let mag = b.ibin(IntBinOp::Max, acc, nacc);
        let e1 = b.add(e, mag);
        b.store(MemWidth::B4, ea, e1);
    });
    let zero = b.iconst(0);
    let r0 = load_elem4(&mut b, result, zero);
    b.ret(Some(r0));
    Workload::from_program("autcor", Suite::Dsp, p)
}

/// Histogram kernel: data-dependent scatter increments into a bin
/// table — the access pattern the paper's object-granularity placement
/// handles well (one hot indivisible table).
pub fn histogram() -> Workload {
    const N: i64 = 1024;
    const BINS: i64 = 64;
    let mut p = Program::new("histogram");
    let bins = p.add_object(DataObject::global("bins", (BINS * 4) as u64));
    let cdf = p.add_object(DataObject::global("cdf", (BINS * 4) as u64));
    let stats = p.add_object(DataObject::global("stats", 8));
    let input = p.add_object(DataObject::heap_site("pixels"));
    let mut b = FunctionBuilder::entry(&mut p);
    let sz = b.iconst(N * 4);
    let inp = b.malloc(input, sz);
    counted_loop(&mut b, N, |b, i| {
        let k = b.iconst(97);
        let v0 = b.mul(i, k);
        let m = b.iconst(0xFF);
        let v = b.and(v0, m);
        store_ptr4(b, inp, i, v);
    });
    // Binning: bins[pixel >> 2] += 1.
    unrolled_loop(&mut b, N, 4, |b, i| {
        let v = load_ptr4(b, inp, i);
        let two = b.iconst(2);
        let bin = b.shr(v, two);
        let cur = load_elem4(b, bins, bin);
        let one = b.iconst(1);
        let next = b.add(cur, one);
        store_elem4(b, bins, bin, next);
    });
    // Prefix sum into the CDF, tracking the max bin.
    let run0 = b.iconst(0);
    let run = b.mov(run0);
    let maxv0 = b.iconst(0);
    let maxv = b.mov(maxv0);
    counted_loop(&mut b, BINS, |b, i| {
        let c = load_elem4(b, bins, i);
        let acc = b.add(run, c);
        b.mov_to(run, acc);
        store_elem4(b, cdf, i, acc);
        let nm = b.ibin(IntBinOp::Max, maxv, c);
        b.mov_to(maxv, nm);
    });
    let sa = b.addrof(stats);
    b.store(MemWidth::B4, sa, maxv);
    let four = b.iconst(4);
    let sa2 = b.add(sa, four);
    b.store(MemWidth::B4, sa2, run);
    b.ret(Some(run));
    Workload::from_program("histogram", Suite::Dsp, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extra_kernels_build_and_run() {
        for w in [viterbi(), autcor(), histogram()] {
            assert!(w.num_ops() > 60, "{}: {} ops", w.name, w.num_ops());
            assert!(w.num_objects() >= 4, "{}", w.name);
        }
    }

    #[test]
    fn histogram_counts_all_samples() {
        let w = histogram();
        let r = mcpart_sim::run(&w.program, &[], mcpart_sim::ExecConfig::default()).unwrap();
        // The CDF total equals the sample count.
        assert_eq!(r.return_value, Some(mcpart_sim::Value::Int(1024)));
    }

    #[test]
    fn viterbi_returns_a_state() {
        let w = viterbi();
        let r = mcpart_sim::run(&w.program, &[], mcpart_sim::ExecConfig::default()).unwrap();
        match r.return_value {
            Some(mcpart_sim::Value::Int(s)) => assert!((0..16).contains(&s), "{s}"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
