//! EPIC image compression kernels: `epic` (pyramid encode) and
//! `unepic` (decode), modeled on the Mediabench EPIC benchmark.
//!
//! EPIC builds a Laplacian pyramid with separable biorthogonal filters,
//! then quantizes and run-length/Huffman codes the subbands. Objects:
//! the low/high-pass filter taps, the quantizer bin sizes per level, a
//! run-length state, and heap image/pyramid/stream buffers.

use crate::gen::{
    clamp_const, counted_loop, load_elem4, load_ptr4, store_elem4, store_ptr4, unrolled_loop,
    Suite, Workload,
};
use mcpart_ir::{Cmp, DataObject, FunctionBuilder, IntBinOp, MemWidth, ObjectId, Program};

const N: i64 = 1024; // 1-D signal length (EPIC is separable; we model rows)
const LEVELS: i64 = 4;

struct EpicObjects {
    lo_filter: ObjectId,
    hi_filter: ObjectId,
    bin_size: ObjectId,
    run_state: ObjectId,
    symbol_count: ObjectId,
}

fn add_objects(p: &mut Program) -> EpicObjects {
    EpicObjects {
        lo_filter: p.add_object(DataObject::global("lo_filter", 9 * 4)),
        hi_filter: p.add_object(DataObject::global("hi_filter", 9 * 4)),
        bin_size: p.add_object(DataObject::global("bin_size", (LEVELS * 4) as u64)),
        run_state: p.add_object(DataObject::global("run_state", 4)),
        symbol_count: p.add_object(DataObject::global("symbol_count", 4)),
    }
}

fn init_tables(b: &mut FunctionBuilder<'_>, o: &EpicObjects) {
    // Symmetric 9-tap filters (fixed-point): lo is a smoother, hi a
    // differencer.
    for (i, v) in [2i64, -8, -10, 70, 148, 70, -10, -8, 2].into_iter().enumerate() {
        let idx = b.iconst(i as i64);
        let val = b.iconst(v);
        store_elem4(b, o.lo_filter, idx, val);
    }
    for (i, v) in [-1i64, 4, 5, -35, 74, -35, 5, 4, -1].into_iter().enumerate() {
        let idx = b.iconst(i as i64);
        let val = b.iconst(v);
        store_elem4(b, o.hi_filter, idx, val);
    }
    counted_loop(b, LEVELS, |b, l| {
        let eight = b.iconst(8);
        let one = b.iconst(1);
        let lp = b.add(l, one);
        let v = b.mul(lp, eight);
        store_elem4(b, o.bin_size, l, v);
    });
}

fn build(name: &'static str, decode: bool) -> Workload {
    let mut p = Program::new(name);
    let o = add_objects(&mut p);
    let signal = p.add_object(DataObject::heap_site("image"));
    let pyramid = p.add_object(DataObject::heap_site("pyramid"));
    let stream = p.add_object(DataObject::heap_site("codedStream"));
    let mut b = FunctionBuilder::entry(&mut p);
    init_tables(&mut b, &o);
    let sz = b.iconst(N * 4);
    let sig = b.malloc(signal, sz);
    let sz2 = b.iconst(2 * N * 4);
    let pyr = b.malloc(pyramid, sz2);
    let sz3 = b.iconst(2 * N * 4);
    let strm = b.malloc(stream, sz3);
    counted_loop(&mut b, N, |b, i| {
        let k = b.iconst(if decode { 21 } else { 33 });
        let v0 = b.mul(i, k);
        let m = b.iconst(0x1FF);
        let v1 = b.and(v0, m);
        let h = b.iconst(256);
        let v = b.sub(v1, h);
        store_ptr4(b, sig, i, v);
    });
    // Pyramid: at each level filter the band into lo (first half) and
    // hi (second half), then quantize hi into the stream.
    counted_loop(&mut b, LEVELS, |b, level| {
        let len0 = b.iconst(N);
        let len = b.shr(len0, level); // band shrinks per level
        let bin = load_elem4(b, o.bin_size, level);
        counted_loop(b, N / 2, |b, i| {
            let two = b.iconst(2);
            let center = b.mul(i, two);
            let inband = b.icmp(Cmp::Lt, center, len);
            let acc_lo0 = b.iconst(0);
            let acc_lo = b.mov(acc_lo0);
            let acc_hi0 = b.iconst(0);
            let acc_hi = b.mov(acc_hi0);
            unrolled_loop(b, 9, 3, |b, t| {
                let four = b.iconst(4);
                let off = b.sub(t, four);
                let pos0 = b.add(center, off);
                let nmask = b.iconst(N - 1);
                let pos = b.and(pos0, nmask); // circular boundary
                let x = load_ptr4(b, sig, pos);
                let lo = load_elem4(b, o.lo_filter, t);
                let hi = load_elem4(b, o.hi_filter, t);
                let pl = b.mul(x, lo);
                let ph = b.mul(x, hi);
                let nl = b.add(acc_lo, pl);
                b.mov_to(acc_lo, nl);
                let nh = b.add(acc_hi, ph);
                b.mov_to(acc_hi, nh);
            });
            let eight = b.iconst(8);
            let lo_v = b.shr(acc_lo, eight);
            let hi_v = b.shr(acc_hi, eight);
            let zero = b.iconst(0);
            let lo_kept = b.select(inband, lo_v, zero);
            let hi_kept = b.select(inband, hi_v, zero);
            store_ptr4(b, pyr, i, lo_kept);
            let nhalf = b.iconst(N / 2);
            let hi_idx = b.add(i, nhalf);
            store_ptr4(b, pyr, hi_idx, hi_kept);
            // Quantize and run-length count zeros into the stream.
            let q = if decode {
                let r = b.mul(hi_kept, bin);
                let three = b.iconst(3);
                b.shr(r, three)
            } else {
                let safe_bin = clamp_const(b, bin, 1, 1 << 20);
                b.ibin(IntBinOp::Div, hi_kept, safe_bin)
            };
            let is_zero = b.icmp(Cmp::Eq, q, zero);
            let ra = b.addrof(o.run_state);
            let run = b.load(MemWidth::B4, ra);
            let one = b.iconst(1);
            let run1 = b.add(run, one);
            let newrun = b.select(is_zero, run1, zero);
            b.store(MemWidth::B4, ra, newrun);
            let sa = b.addrof(o.symbol_count);
            let syms = b.load(MemWidth::B4, sa);
            let syms1 = b.add(syms, one);
            let newsyms = b.select(is_zero, syms, syms1);
            b.store(MemWidth::B4, sa, newsyms);
            let lvl_n = b.iconst(N / 2);
            let base = b.mul(level, lvl_n);
            let dst0 = b.add(base, i);
            let smask = b.iconst(2 * N - 1);
            let dst = b.and(dst0, smask);
            store_ptr4(b, strm, dst, q);
        });
        // The lo band becomes the next level's signal.
        unrolled_loop(b, N / 2, 4, |b, i| {
            let v = load_ptr4(b, pyr, i);
            store_ptr4(b, sig, i, v);
        });
    });
    let sa = b.addrof(o.symbol_count);
    let syms = b.load(MemWidth::B4, sa);
    b.ret(Some(syms));
    Workload::from_program(name, Suite::Mediabench, p)
}

/// Builds the `epic` workload.
pub fn epic() -> Workload {
    build("epic", false)
}

/// Builds the `unepic` workload.
pub fn unepic() -> Workload {
    build("unepic", true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epic_pair_builds() {
        let e = epic();
        let u = unepic();
        assert!(e.num_objects() >= 8);
        let r = mcpart_sim::run(&e.program, &[], mcpart_sim::ExecConfig::default()).unwrap();
        match r.return_value {
            Some(mcpart_sim::Value::Int(syms)) => assert!(syms > 0, "no symbols coded"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(u.num_ops() > 120);
    }
}
