//! DSP kernels: `fir`, `fft`, `fsed`, `sobel`, `latnrm`, `matmul`.

use crate::gen::{
    clamp_const, counted_loop, load_elem4, load_ptr4, store_elem4, store_ptr4, unrolled_loop,
    Suite, Workload,
};
use mcpart_ir::{Cmp, DataObject, FunctionBuilder, IntBinOp, MemWidth, Program};

/// FIR filter: 16 coefficients over 512 samples, with a circular delay
/// line held in a global array.
pub fn fir() -> Workload {
    const TAPS: i64 = 16;
    const N: i64 = 128;
    const PASSES: i64 = 8;
    let mut p = Program::new("fir");
    let coefs = p.add_object(DataObject::global("coefs", (TAPS * 4) as u64));
    let delay = p.add_object(DataObject::global("delayLine", (TAPS * 4) as u64));
    let energy = p.add_object(DataObject::global("energy", 4));
    let input = p.add_object(DataObject::heap_site("input"));
    let output = p.add_object(DataObject::heap_site("output"));
    let mut b = FunctionBuilder::entry(&mut p);
    counted_loop(&mut b, TAPS, |b, i| {
        let k = b.iconst(13);
        let c0 = b.mul(i, k);
        let m = b.iconst(0x3F);
        let c1 = b.and(c0, m);
        let off = b.iconst(-31);
        let c = b.add(c1, off);
        store_elem4(b, coefs, i, c);
    });
    let sz = b.iconst(N * 4);
    let inp = b.malloc(input, sz);
    let sz2 = b.iconst(N * 4);
    let outp = b.malloc(output, sz2);
    counted_loop(&mut b, N, |b, i| {
        let k = b.iconst(29);
        let v0 = b.mul(i, k);
        let m = b.iconst(0xFF);
        let v1 = b.and(v0, m);
        let h = b.iconst(128);
        let v = b.sub(v1, h);
        store_ptr4(b, inp, i, v);
    });
    counted_loop(&mut b, PASSES, |b, _pass| {
        counted_loop(b, N, |b, i| {
            // Shift the delay line and insert the new sample.
            let x = load_ptr4(b, inp, i);
            counted_loop(b, TAPS - 1, |b, j| {
                let taps1 = b.iconst(TAPS - 2);
                let rev = b.sub(taps1, j); // TAPS-2 .. 0
                let v = load_elem4(b, delay, rev);
                let one = b.iconst(1);
                let dst = b.add(rev, one);
                store_elem4(b, delay, dst, v);
            });
            let zero = b.iconst(0);
            store_elem4(b, delay, zero, x);
            // Convolution.
            let acc_init = b.iconst(0);
            let acc = b.mov(acc_init);
            unrolled_loop(b, TAPS, 4, |b, j| {
                let c = load_elem4(b, coefs, j);
                let d = load_elem4(b, delay, j);
                let prod = b.mul(c, d);
                let sum = b.add(acc, prod);
                b.mov_to(acc, sum);
            });
            let five = b.iconst(5);
            let y = b.shr(acc, five);
            store_ptr4(b, outp, i, y);
            let ea = b.addrof(energy);
            let e = b.load(MemWidth::B4, ea);
            let z = b.iconst(0);
            let ny = b.sub(z, y);
            let ay = b.ibin(IntBinOp::Max, y, ny);
            let e1 = b.add(e, ay);
            b.store(MemWidth::B4, ea, e1);
        });
    });
    let ea = b.addrof(energy);
    let e = b.load(MemWidth::B4, ea);
    b.ret(Some(e));
    Workload::from_program("fir", Suite::Dsp, p)
}

/// Integer FFT-like kernel: log2(N) stages of butterflies over separate
/// real/imaginary arrays with a twiddle table.
pub fn fft() -> Workload {
    const N: i64 = 256;
    const STAGES: i64 = 8;
    let mut p = Program::new("fft");
    let re = p.add_object(DataObject::global("re", (N * 4) as u64));
    let im = p.add_object(DataObject::global("im", (N * 4) as u64));
    let tw_re = p.add_object(DataObject::global("twiddleRe", (N / 2 * 4) as u64));
    let tw_im = p.add_object(DataObject::global("twiddleIm", (N / 2 * 4) as u64));
    let check = p.add_object(DataObject::global("checksum", 4));
    let mut b = FunctionBuilder::entry(&mut p);
    for (obj, mul, mask) in [(re, 17, 0x1FF), (im, 23, 0x1FF), (tw_re, 7, 0xFF), (tw_im, 5, 0xFF)] {
        let elems = if obj == re || obj == im { N } else { N / 2 };
        counted_loop(&mut b, elems, |b, i| {
            let k = b.iconst(mul);
            let v0 = b.mul(i, k);
            let m = b.iconst(mask);
            let v1 = b.and(v0, m);
            let h = b.iconst(mask / 2 + 1);
            let v = b.sub(v1, h);
            store_elem4(b, obj, i, v);
        });
    }
    counted_loop(&mut b, STAGES, |b, s| {
        unrolled_loop(b, N / 2, 2, |b, k| {
            // Butterfly indices: i = (k << 1) stage-skewed, j = i + span.
            let one = b.iconst(1);
            let span = b.shl(one, s);
            let nm = b.iconst(N - 1);
            let i0 = b.shl(k, one);
            let i = b.and(i0, nm);
            let j0 = b.add(i, span);
            let j = b.and(j0, nm);
            let half = b.iconst(N / 2 - 1);
            let tidx = b.and(k, half);
            let wr = load_elem4(b, tw_re, tidx);
            let wi = load_elem4(b, tw_im, tidx);
            let ar = load_elem4(b, re, i);
            let ai = load_elem4(b, im, i);
            let br = load_elem4(b, re, j);
            let bi = load_elem4(b, im, j);
            // t = w * b (complex, fixed point >> 8)
            let t1 = b.mul(wr, br);
            let t2 = b.mul(wi, bi);
            let t3 = b.mul(wr, bi);
            let t4 = b.mul(wi, br);
            let eight = b.iconst(8);
            let trd = b.sub(t1, t2);
            let tr = b.shr(trd, eight);
            let tid = b.add(t3, t4);
            let ti = b.shr(tid, eight);
            let or_ = b.add(ar, tr);
            let oi = b.add(ai, ti);
            let pr = b.sub(ar, tr);
            let pi = b.sub(ai, ti);
            store_elem4(b, re, i, or_);
            store_elem4(b, im, i, oi);
            store_elem4(b, re, j, pr);
            store_elem4(b, im, j, pi);
        });
    });
    // Checksum over the spectrum.
    counted_loop(&mut b, N, |b, i| {
        let r = load_elem4(b, re, i);
        let im_v = load_elem4(b, im, i);
        let x = b.ibin(IntBinOp::Xor, r, im_v);
        let ca = b.addrof(check);
        let c = b.load(MemWidth::B4, ca);
        let c1 = b.add(c, x);
        b.store(MemWidth::B4, ca, c1);
    });
    let ca = b.addrof(check);
    let c = b.load(MemWidth::B4, ca);
    b.ret(Some(c));
    Workload::from_program("fft", Suite::Dsp, p)
}

/// Floyd–Steinberg error diffusion over a small grayscale image — the
/// kernel the paper singles out for the largest intercluster-move
/// increase.
pub fn fsed() -> Workload {
    const W: i64 = 64;
    const H: i64 = 48;
    let mut p = Program::new("fsed");
    let image = p.add_object(DataObject::heap_site("image"));
    let out = p.add_object(DataObject::heap_site("halftone"));
    let err_cur = p.add_object(DataObject::global("errCur", (W * 4) as u64 + 8));
    let err_next = p.add_object(DataObject::global("errNext", (W * 4) as u64 + 8));
    let thresh = p.add_object(DataObject::global("threshold", 4));
    let ink = p.add_object(DataObject::global("inkCount", 4));
    let mut b = FunctionBuilder::entry(&mut p);
    let sz = b.iconst(W * H * 4);
    let img = b.malloc(image, sz);
    let sz2 = b.iconst(W * H * 4);
    let outp = b.malloc(out, sz2);
    let ta = b.addrof(thresh);
    let t128 = b.iconst(128);
    b.store(MemWidth::B4, ta, t128);
    counted_loop(&mut b, W * H, |b, i| {
        let k = b.iconst(41);
        let v0 = b.mul(i, k);
        let m = b.iconst(0xFF);
        let v = b.and(v0, m);
        store_ptr4(b, img, i, v);
    });
    counted_loop(&mut b, H, |b, y| {
        counted_loop(b, W, |b, x| {
            let wc = b.iconst(W);
            let row = b.mul(y, wc);
            let idx = b.add(row, x);
            let pix = load_ptr4(b, img, idx);
            let e = load_elem4(b, err_cur, x);
            let four = b.iconst(4);
            let eq = b.shr(e, four);
            let v = b.add(pix, eq);
            let ta = b.addrof(thresh);
            let t = b.load(MemWidth::B4, ta);
            let is_ink = b.icmp(Cmp::Ge, v, t);
            // Data-dependent branch: ink vs no ink.
            let then_b = b.block("ink");
            let else_b = b.block("white");
            let merge = b.block("diffuse");
            b.branch(is_ink, then_b, else_b);
            b.switch_to(then_b);
            let one = b.iconst(1);
            store_ptr4(b, outp, idx, one);
            let ia = b.addrof(ink);
            let ic = b.load(MemWidth::B4, ia);
            let ic1 = b.add(ic, one);
            b.store(MemWidth::B4, ia, ic1);
            b.jump(merge);
            b.switch_to(else_b);
            let zero = b.iconst(0);
            store_ptr4(b, outp, idx, zero);
            b.jump(merge);
            b.switch_to(merge);
            // Quantization error diffusion: 7/16 right, 9/16 next row.
            let z = b.iconst(0);
            let full = b.iconst(255);
            let target = b.select(is_ink, full, z);
            let qerr = b.sub(v, target);
            let seven = b.iconst(7);
            let er = b.mul(qerr, seven);
            let onec = b.iconst(1);
            let xr = b.add(x, onec);
            let ecur = load_elem4(b, err_cur, xr);
            let ecur1 = b.add(ecur, er);
            store_elem4(b, err_cur, xr, ecur1);
            let nine = b.iconst(9);
            let ed = b.mul(qerr, nine);
            let enext = load_elem4(b, err_next, x);
            let enext1 = b.add(enext, ed);
            store_elem4(b, err_next, x, enext1);
        });
        // Swap rows: copy next into cur, clear next.
        counted_loop(b, W, |b, x| {
            let e = load_elem4(b, err_next, x);
            store_elem4(b, err_cur, x, e);
            let z = b.iconst(0);
            store_elem4(b, err_next, x, z);
        });
    });
    let ia = b.addrof(ink);
    let total = b.load(MemWidth::B4, ia);
    b.ret(Some(total));
    Workload::from_program("fsed", Suite::Dsp, p)
}

/// Sobel edge detection over a small image with 3x3 kernel tables.
pub fn sobel() -> Workload {
    const W: i64 = 64;
    const H: i64 = 48;
    let mut p = Program::new("sobel");
    let image = p.add_object(DataObject::heap_site("image"));
    let edges = p.add_object(DataObject::heap_site("edges"));
    let gx = p.add_object(DataObject::global("kernelGx", 9 * 4));
    let gy = p.add_object(DataObject::global("kernelGy", 9 * 4));
    let maxg = p.add_object(DataObject::global("maxGradient", 4));
    let mut b = FunctionBuilder::entry(&mut p);
    // Gx = [-1 0 1; -2 0 2; -1 0 1], Gy = transpose.
    for (obj, vals) in
        [(gx, [-1i64, 0, 1, -2, 0, 2, -1, 0, 1]), (gy, [-1, -2, -1, 0, 0, 0, 1, 2, 1])]
    {
        for (i, v) in vals.into_iter().enumerate() {
            let idx = b.iconst(i as i64);
            let val = b.iconst(v);
            store_elem4(&mut b, obj, idx, val);
        }
    }
    let sz = b.iconst(W * H * 4);
    let img = b.malloc(image, sz);
    let sz2 = b.iconst(W * H * 4);
    let out = b.malloc(edges, sz2);
    counted_loop(&mut b, W * H, |b, i| {
        let k = b.iconst(57);
        let v0 = b.mul(i, k);
        let m = b.iconst(0xFF);
        let v = b.and(v0, m);
        store_ptr4(b, img, i, v);
    });
    counted_loop(&mut b, H - 2, |b, y| {
        counted_loop(b, W - 2, |b, x| {
            let accx0 = b.iconst(0);
            let accx = b.mov(accx0);
            let accy0 = b.iconst(0);
            let accy = b.mov(accy0);
            counted_loop(b, 3, |b, ky| {
                unrolled_loop(b, 3, 3, |b, kx| {
                    let wc = b.iconst(W);
                    let yy = b.add(y, ky);
                    let xx = b.add(x, kx);
                    let row = b.mul(yy, wc);
                    let idx = b.add(row, xx);
                    let pix = load_ptr4(b, img, idx);
                    let three = b.iconst(3);
                    let krow = b.mul(ky, three);
                    let kidx = b.add(krow, kx);
                    let wx = load_elem4(b, gx, kidx);
                    let wy = load_elem4(b, gy, kidx);
                    let px = b.mul(pix, wx);
                    let py = b.mul(pix, wy);
                    let nx = b.add(accx, px);
                    b.mov_to(accx, nx);
                    let ny = b.add(accy, py);
                    b.mov_to(accy, ny);
                });
            });
            // |gx| + |gy|, clamped to 255.
            let z = b.iconst(0);
            let nx = b.sub(z, accx);
            let ax = b.ibin(IntBinOp::Max, accx, nx);
            let ny = b.sub(z, accy);
            let ay = b.ibin(IntBinOp::Max, accy, ny);
            let g0 = b.add(ax, ay);
            let g = clamp_const(b, g0, 0, 255);
            let wc = b.iconst(W);
            let one = b.iconst(1);
            let yy = b.add(y, one);
            let xx = b.add(x, one);
            let row = b.mul(yy, wc);
            let idx = b.add(row, xx);
            store_ptr4(b, out, idx, g);
            let ma = b.addrof(maxg);
            let cur = b.load(MemWidth::B4, ma);
            let mx = b.ibin(IntBinOp::Max, cur, g);
            b.store(MemWidth::B4, ma, mx);
        });
    });
    let ma = b.addrof(maxg);
    let m = b.load(MemWidth::B4, ma);
    b.ret(Some(m));
    Workload::from_program("sobel", Suite::Dsp, p)
}

/// Normalized lattice filter (`latnrm`): reflection-coefficient and
/// state arrays updated per sample.
pub fn latnrm() -> Workload {
    const ORDER: i64 = 8;
    const N: i64 = 512;
    let mut p = Program::new("latnrm");
    let kcoef = p.add_object(DataObject::global("reflection", (ORDER * 4) as u64));
    let state = p.add_object(DataObject::global("latticeState", (ORDER * 4) as u64));
    let gain = p.add_object(DataObject::global("gain", 4));
    let input = p.add_object(DataObject::heap_site("samples"));
    let output = p.add_object(DataObject::heap_site("filtered"));
    let mut b = FunctionBuilder::entry(&mut p);
    counted_loop(&mut b, ORDER, |b, i| {
        let k = b.iconst(19);
        let v0 = b.mul(i, k);
        let m = b.iconst(0x7F);
        let v1 = b.and(v0, m);
        let h = b.iconst(64);
        let v = b.sub(v1, h);
        store_elem4(b, kcoef, i, v);
    });
    let ga = b.addrof(gain);
    let g4 = b.iconst(4);
    b.store(MemWidth::B4, ga, g4);
    let sz = b.iconst(N * 4);
    let inp = b.malloc(input, sz);
    let sz2 = b.iconst(N * 4);
    let outp = b.malloc(output, sz2);
    counted_loop(&mut b, N, |b, i| {
        let k = b.iconst(31);
        let v0 = b.mul(i, k);
        let m = b.iconst(0x1FF);
        let v1 = b.and(v0, m);
        let h = b.iconst(256);
        let v = b.sub(v1, h);
        store_ptr4(b, inp, i, v);
    });
    counted_loop(&mut b, N, |b, i| {
        let x = load_ptr4(b, inp, i);
        let f0 = b.mov(x);
        counted_loop(b, ORDER, |b, j| {
            let kj = load_elem4(b, kcoef, j);
            let sj = load_elem4(b, state, j);
            let t1 = b.mul(kj, sj);
            let seven = b.iconst(7);
            let t1s = b.shr(t1, seven);
            let fnew = b.sub(f0, t1s);
            let t2 = b.mul(kj, fnew);
            let t2s = b.shr(t2, seven);
            let snew = b.add(sj, t2s);
            store_elem4(b, state, j, snew);
            b.mov_to(f0, fnew);
        });
        let ga = b.addrof(gain);
        let g = b.load(MemWidth::B4, ga);
        let scaled = b.mul(f0, g);
        let two = b.iconst(2);
        let y = b.shr(scaled, two);
        store_ptr4(b, outp, i, y);
    });
    let last = b.iconst(N - 1);
    let y = load_ptr4(&mut b, outp, last);
    b.ret(Some(y));
    Workload::from_program("latnrm", Suite::Dsp, p)
}

/// Blocked integer matrix multiply (`matmul`): `C = A × B` for 24×24
/// matrices.
pub fn matmul() -> Workload {
    const N: i64 = 24;
    let mut p = Program::new("matmul");
    let a = p.add_object(DataObject::global("A", (N * N * 4) as u64));
    let b_m = p.add_object(DataObject::global("B", (N * N * 4) as u64));
    let c_m = p.add_object(DataObject::global("C", (N * N * 4) as u64));
    let trace = p.add_object(DataObject::global("trace", 4));
    let mut b = FunctionBuilder::entry(&mut p);
    for (obj, mul) in [(a, 13), (b_m, 7)] {
        counted_loop(&mut b, N * N, |b, i| {
            let k = b.iconst(mul);
            let v0 = b.mul(i, k);
            let m = b.iconst(0x3F);
            let v1 = b.and(v0, m);
            let h = b.iconst(32);
            let v = b.sub(v1, h);
            store_elem4(b, obj, i, v);
        });
    }
    counted_loop(&mut b, N, |b, i| {
        counted_loop(b, N, |b, j| {
            let acc0 = b.iconst(0);
            let acc = b.mov(acc0);
            unrolled_loop(b, N, 4, |b, k| {
                let nc = b.iconst(N);
                let arow = b.mul(i, nc);
                let aidx = b.add(arow, k);
                let av = load_elem4(b, a, aidx);
                let brow = b.mul(k, nc);
                let bidx = b.add(brow, j);
                let bv = load_elem4(b, b_m, bidx);
                let prod = b.mul(av, bv);
                let sum = b.add(acc, prod);
                b.mov_to(acc, sum);
            });
            let nc = b.iconst(N);
            let crow = b.mul(i, nc);
            let cidx = b.add(crow, j);
            store_elem4(b, c_m, cidx, acc);
        });
        // Accumulate the trace as the checksum.
        let nc = b.iconst(N);
        let row = b.mul(i, nc);
        let diag = b.add(row, i);
        let cv = load_elem4(b, c_m, diag);
        let ta = b.addrof(trace);
        let t = b.load(MemWidth::B4, ta);
        let t1 = b.add(t, cv);
        b.store(MemWidth::B4, ta, t1);
    });
    let ta = b.addrof(trace);
    let t = b.load(MemWidth::B4, ta);
    b.ret(Some(t));
    Workload::from_program("matmul", Suite::Dsp, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_build_and_run() {
        for w in [fir(), fft(), fsed(), sobel(), latnrm(), matmul()] {
            assert!(w.num_ops() > 40, "{} too small: {} ops", w.name, w.num_ops());
            assert!(w.num_objects() >= 4, "{}", w.name);
            assert_eq!(w.suite, Suite::Dsp);
        }
    }

    #[test]
    fn fsed_branches_both_ways() {
        let w = fsed();
        // The ink/white blocks must both execute (data-dependent branch).
        let f = w.program.entry;
        let func = w.program.entry_function();
        let mut ink_freq = 0;
        let mut white_freq = 0;
        for (bid, block) in func.blocks.iter() {
            if block.label == "ink" {
                ink_freq = w.profile.block_freq(f, bid);
            }
            if block.label == "white" {
                white_freq = w.profile.block_freq(f, bid);
            }
        }
        assert!(ink_freq > 0, "no ink pixels");
        assert!(white_freq > 0, "no white pixels");
    }

    #[test]
    fn matmul_trace_is_stable() {
        let a = matmul();
        let b = matmul();
        let ra = mcpart_sim::run(&a.program, &[], mcpart_sim::ExecConfig::default()).unwrap();
        let rb = mcpart_sim::run(&b.program, &[], mcpart_sim::ExecConfig::default()).unwrap();
        assert_eq!(ra.return_value, rb.return_value);
    }
}
