//! GSM 06.10 full-rate speech codec: `gsmencode` and `gsmdecode`,
//! modeled on the Mediabench GSM benchmark.
//!
//! Object mix: LPC analysis state (`dp0` history, reflection
//! coefficients `LARc`), the long-term predictor lag/gain tables, and
//! per-frame sample buffers. Frames of 160 samples are processed through
//! short-term analysis, long-term prediction over 4 subframes, and RPE
//! grid selection.

use crate::gen::{
    clamp_const, counted_loop, load_elem4, load_ptr4, store_elem4, store_ptr4, unrolled_loop,
    Suite, Workload,
};
use mcpart_ir::{Cmp, DataObject, FunctionBuilder, MemWidth, ObjectId, Program};

const FRAME: i64 = 160;
const FRAMES: i64 = 6;
const SUBFRAME: i64 = 40;

struct GsmObjects {
    dp0: ObjectId,
    larc: ObjectId,
    gain_tab: ObjectId,
    lag_state: ObjectId,
    v_state: ObjectId,
}

fn add_objects(p: &mut Program) -> GsmObjects {
    GsmObjects {
        dp0: p.add_object(DataObject::global("state.dp0", 280 * 4)),
        larc: p.add_object(DataObject::global("state.LARc", 8 * 4)),
        gain_tab: p.add_object(DataObject::global("gsm_QLB", 4 * 4)),
        lag_state: p.add_object(DataObject::global("state.nrp", 4)),
        v_state: p.add_object(DataObject::global("state.v", 9 * 4)),
    }
}

fn init_state(b: &mut FunctionBuilder<'_>, o: &GsmObjects) {
    // Long-term gain quantization levels.
    for (i, v) in [3277i64, 11469, 21299, 32767].into_iter().enumerate() {
        let idx = b.iconst(i as i64);
        let val = b.iconst(v);
        store_elem4(b, o.gain_tab, idx, val);
    }
    let na = b.addrof(o.lag_state);
    let forty = b.iconst(40);
    b.store(MemWidth::B4, na, forty);
}

/// Short-term LPC-ish analysis over a frame: autocorrelation-lite
/// producing 8 reflection coefficients into `LARc`, filtering through
/// the `v` state.
fn short_term(b: &mut FunctionBuilder<'_>, o: &GsmObjects, frame_base: mcpart_ir::VReg) {
    counted_loop(b, 8, |b, k| {
        let acc0 = b.iconst(0);
        let acc = b.mov(acc0);
        unrolled_loop(b, SUBFRAME, 4, |b, i| {
            let s0 = load_ptr4(b, frame_base, i);
            let ik = b.add(i, k);
            let s1 = load_ptr4(b, frame_base, ik);
            let prod = b.mul(s0, s1);
            let ten = b.iconst(10);
            let term = b.shr(prod, ten);
            let sum = b.add(acc, term);
            b.mov_to(acc, sum);
        });
        let c = clamp_const(b, acc, -32768, 32767);
        store_elem4(b, o.larc, k, c);
        // Fold through the recursive filter state.
        let vk = load_elem4(b, o.v_state, k);
        let mixed = b.add(vk, c);
        let one = b.iconst(1);
        let damped = b.shr(mixed, one);
        store_elem4(b, o.v_state, k, damped);
    });
}

/// Long-term prediction for one subframe: finds the best lag in the
/// `dp0` history by maximizing a cross-correlation-like score.
fn long_term(
    b: &mut FunctionBuilder<'_>,
    o: &GsmObjects,
    frame_base: mcpart_ir::VReg,
    sub: mcpart_ir::VReg,
) {
    let best0 = b.iconst(0);
    let best = b.mov(best0);
    let bestlag0 = b.iconst(40);
    let bestlag = b.mov(bestlag0);
    counted_loop(b, 40, |b, lag| {
        let forty = b.iconst(40);
        let lag40 = b.add(lag, forty);
        let acc0 = b.iconst(0);
        let acc = b.mov(acc0);
        unrolled_loop(b, 8, 4, |b, i| {
            let sub40 = b.mul(sub, forty);
            let si = b.add(sub40, i);
            let s = load_ptr4(b, frame_base, si);
            let histpos0 = b.add(si, lag40);
            let mask = b.iconst(255);
            let histpos = b.and(histpos0, mask);
            let h = load_elem4(b, o.dp0, histpos);
            let prod = b.mul(s, h);
            let eight = b.iconst(8);
            let term = b.shr(prod, eight);
            let sum = b.add(acc, term);
            b.mov_to(acc, sum);
        });
        let better = b.icmp(Cmp::Gt, acc, best);
        let nb = b.select(better, acc, best);
        b.mov_to(best, nb);
        let nl = b.select(better, lag40, bestlag);
        b.mov_to(bestlag, nl);
    });
    let na = b.addrof(o.lag_state);
    b.store(MemWidth::B4, na, bestlag);
    // Gain index from the quantization table.
    let three = b.iconst(3);
    let gi0 = b.shr(best, three);
    let gidx = clamp_const(b, gi0, 0, 3);
    let gain = load_elem4(b, o.gain_tab, gidx);
    // Update dp0 history with the gained residual of this subframe.
    unrolled_loop(b, SUBFRAME, 4, |b, i| {
        let forty = b.iconst(40);
        let sub40 = b.mul(sub, forty);
        let si = b.add(sub40, i);
        let s = load_ptr4(b, frame_base, si);
        let g = b.mul(s, gain);
        let fifteen = b.iconst(15);
        let r = b.shr(g, fifteen);
        let mask = b.iconst(255);
        let pos = b.and(si, mask);
        store_elem4(b, o.dp0, pos, r);
    });
}

fn build(name: &'static str, decode: bool) -> Workload {
    let mut p = Program::new(name);
    let o = add_objects(&mut p);
    let inbuf = p.add_object(DataObject::heap_site("frames"));
    let outbuf = p.add_object(DataObject::heap_site("coded"));
    let mut b = FunctionBuilder::entry(&mut p);
    init_state(&mut b, &o);
    let sz = b.iconst(FRAMES * FRAME * 4);
    let inp = b.malloc(inbuf, sz);
    let sz2 = b.iconst(FRAMES * FRAME * 4);
    let outp = b.malloc(outbuf, sz2);
    let seed_mul = if decode { 51 } else { 67 };
    counted_loop(&mut b, FRAMES * FRAME, |b, i| {
        let k = b.iconst(seed_mul);
        let v0 = b.mul(i, k);
        let m = b.iconst(0xFFF);
        let v1 = b.and(v0, m);
        let h = b.iconst(2048);
        let v = b.sub(v1, h);
        store_ptr4(b, inp, i, v);
    });
    counted_loop(&mut b, FRAMES, |b, f| {
        let flen = b.iconst(FRAME * 4);
        let off = b.mul(f, flen);
        let frame_base = b.add(inp, off);
        short_term(b, &o, frame_base);
        counted_loop(b, 4, |b, sub| {
            long_term(b, &o, frame_base, sub);
        });
        // Emit the frame: RPE-style decimation (keep every 3rd sample
        // scaled by the first LAR coefficient).
        counted_loop(b, FRAME / 4, |b, i| {
            let three = b.iconst(3);
            let src = b.mul(i, three);
            let masked = {
                let m = b.iconst(FRAME - 1);
                b.and(src, m)
            };
            let s = load_ptr4(b, frame_base, masked);
            let z = b.iconst(0);
            let lar0 = load_elem4(b, o.larc, z);
            let scaled = b.mul(s, lar0);
            let twelve = b.iconst(12);
            let out = b.shr(scaled, twelve);
            let flen4 = b.iconst(FRAME);
            let fo = b.mul(f, flen4);
            let dst = b.add(fo, i);
            store_ptr4(b, outp, dst, out);
        });
    });
    let na = b.addrof(o.lag_state);
    let lag = b.load(MemWidth::B4, na);
    b.ret(Some(lag));
    Workload::from_program(name, Suite::Mediabench, p)
}

/// Builds the `gsmencode` workload.
pub fn gsmencode() -> Workload {
    build("gsmencode", false)
}

/// Builds the `gsmdecode` workload.
pub fn gsmdecode() -> Workload {
    build("gsmdecode", true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gsm_pair_builds_and_differs() {
        let e = gsmencode();
        let d = gsmdecode();
        assert!(e.num_objects() >= 7);
        let re = mcpart_sim::run(&e.program, &[], mcpart_sim::ExecConfig::default()).unwrap();
        let rd = mcpart_sim::run(&d.program, &[], mcpart_sim::ExecConfig::default()).unwrap();
        // Same structure, different data: still deterministic per side.
        assert!(re.steps > 10_000);
        assert!(rd.steps > 10_000);
    }

    #[test]
    fn ltp_lag_in_range() {
        let w = gsmencode();
        let r = mcpart_sim::run(&w.program, &[], mcpart_sim::ExecConfig::default()).unwrap();
        match r.return_value {
            Some(mcpart_sim::Value::Int(lag)) => assert!((40..=120).contains(&lag), "{lag}"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
