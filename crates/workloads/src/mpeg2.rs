//! MPEG-2 video codec kernels: `mpeg2enc` and `mpeg2dec`, modeled on
//! the Mediabench MPEG-2 benchmark.
//!
//! Object mix: intra/non-intra quantization matrices, the zig-zag scan
//! table, an 8×8 block workspace, frame buffers on the heap, and
//! rate-control scalars. The encoder runs forward DCT + quantization +
//! zig-zag over every macroblock; the decoder runs the inverse chain.
//! The DCT is factored into a callee function, exercising the
//! interprocedural paths of the analyses.

use crate::gen::{
    clamp_const, counted_loop, load_elem4, load_ptr4, store_elem4, store_ptr4, unrolled_loop,
    Suite, Workload,
};
use mcpart_ir::{DataObject, FuncId, FunctionBuilder, MemWidth, ObjectId, Program};

const W: i64 = 64; // luma width in pixels (8 blocks)
const H: i64 = 32; // luma height (4 block rows)
const BLOCKS: i64 = (W / 8) * (H / 8);

struct Mpeg2Objects {
    intra_q: ObjectId,
    inter_q: ObjectId,
    zigzag: ObjectId,
    block: ObjectId,
    rc_quant: ObjectId,
    rc_bits: ObjectId,
}

fn add_objects(p: &mut Program) -> Mpeg2Objects {
    Mpeg2Objects {
        intra_q: p.add_object(DataObject::global("intra_quantizer_matrix", 64 * 4)),
        inter_q: p.add_object(DataObject::global("non_intra_quantizer_matrix", 64 * 4)),
        zigzag: p.add_object(DataObject::global("zig_zag_scan", 64 * 4)),
        block: p.add_object(DataObject::global("blockWorkspace", 64 * 4)),
        rc_quant: p.add_object(DataObject::global("rc.quant", 4)),
        rc_bits: p.add_object(DataObject::global("rc.bits", 4)),
    }
}

fn init_tables(b: &mut FunctionBuilder<'_>, o: &Mpeg2Objects) {
    // Default intra matrix rises from 8 toward 83; inter matrix flat 16.
    counted_loop(b, 64, |b, i| {
        let eight = b.iconst(8);
        let v = b.add(i, eight);
        store_elem4(b, o.intra_q, i, v);
        let sixteen = b.iconst(16);
        store_elem4(b, o.inter_q, i, sixteen);
        // Zig-zag permutation approximated by a bit-reversal-flavoured
        // bijection on 0..64: (i*37+11) & 63 — a fixed permutation for
        // our purposes (37 is odd, hence invertible mod 64).
        let k = b.iconst(37);
        let c = b.iconst(11);
        let z0 = b.mul(i, k);
        let z1 = b.add(z0, c);
        let m = b.iconst(63);
        let z = b.and(z1, m);
        store_elem4(b, o.zigzag, i, z);
    });
    let qa = b.addrof(o.rc_quant);
    let q8 = b.iconst(8);
    b.store(MemWidth::B4, qa, q8);
}

/// Builds the separable integer DCT-ish butterfly as a callee function
/// operating on the shared block workspace.
fn build_dct(p: &mut Program, block: ObjectId, inverse: bool) -> FuncId {
    let mut b = FunctionBuilder::new_function(p, if inverse { "idct" } else { "fdct" });
    // Row pass then column pass of add/sub butterflies with a rotation.
    for colpass in [false, true] {
        counted_loop(&mut b, 8, |b, r| {
            counted_loop(b, 4, |b, k| {
                let eight = b.iconst(8);
                let seven = b.iconst(7);
                let (i0, i1) = if colpass {
                    let a0 = b.mul(k, eight);
                    let i0 = b.add(a0, r);
                    let rk = b.sub(seven, k);
                    let a1 = b.mul(rk, eight);
                    let i1 = b.add(a1, r);
                    (i0, i1)
                } else {
                    let base = b.mul(r, eight);
                    let i0 = b.add(base, k);
                    let rk = b.sub(seven, k);
                    let i1 = b.add(base, rk);
                    (i0, i1)
                };
                let x = load_elem4(b, block, i0);
                let y = load_elem4(b, block, i1);
                let s = b.add(x, y);
                let d = b.sub(x, y);
                // Fixed-point rotation by a coefficient depending on k.
                let c0 = b.iconst(181);
                let ck = b.mul(k, c0);
                let cc = b.iconst(724);
                let coef = b.add(ck, cc);
                let rd = b.mul(d, coef);
                let ten = b.iconst(10);
                let rot = b.shr(rd, ten);
                if inverse {
                    let one = b.iconst(1);
                    let hs = b.shr(s, one);
                    store_elem4(b, block, i0, hs);
                    store_elem4(b, block, i1, rot);
                } else {
                    store_elem4(b, block, i0, s);
                    store_elem4(b, block, i1, rot);
                }
            });
        });
    }
    b.ret(None);
    b.func_id()
}

fn build(name: &'static str, decode: bool) -> Workload {
    let mut p = Program::new(name);
    let o = add_objects(&mut p);
    let frame = p.add_object(DataObject::heap_site("frameBuffer"));
    let coded = p.add_object(DataObject::heap_site("codedStream"));
    let dct = build_dct(&mut p, o.block, decode);
    let mut b = FunctionBuilder::entry(&mut p);
    init_tables(&mut b, &o);
    let sz = b.iconst(W * H * 4);
    let fb = b.malloc(frame, sz);
    let sz2 = b.iconst(W * H * 4);
    let cs = b.malloc(coded, sz2);
    counted_loop(&mut b, W * H, |b, i| {
        let k = b.iconst(if decode { 27 } else { 63 });
        let v0 = b.mul(i, k);
        let m = b.iconst(0xFF);
        let v1 = b.and(v0, m);
        let h = b.iconst(128);
        let v = b.sub(v1, h);
        store_ptr4(b, fb, i, v);
    });
    counted_loop(&mut b, BLOCKS, |b, blk| {
        // Gather the 8x8 block from the frame.
        unrolled_loop(b, 64, 4, |b, i| {
            let eight = b.iconst(8);
            let three = b.iconst(3);
            let row = b.shr(i, three);
            let seven = b.iconst(7);
            let col = b.and(i, seven);
            let bw = b.iconst(W / 8);
            let brow = b.ibin(mcpart_ir::IntBinOp::Div, blk, bw);
            let bcol = b.ibin(mcpart_ir::IntBinOp::Rem, blk, bw);
            let py0 = b.mul(brow, eight);
            let py = b.add(py0, row);
            let px0 = b.mul(bcol, eight);
            let px = b.add(px0, col);
            let wc = b.iconst(W);
            let fidx0 = b.mul(py, wc);
            let fidx = b.add(fidx0, px);
            let v = load_ptr4(b, fb, fidx);
            store_elem4(b, o.block, i, v);
        });
        b.call(dct, vec![], 0);
        // Quantize + zig-zag into the coded stream (or dequantize for
        // the decoder).
        let qa = b.addrof(o.rc_quant);
        let q = b.load(MemWidth::B4, qa);
        unrolled_loop(b, 64, 4, |b, i| {
            let zz = load_elem4(b, o.zigzag, i);
            let v = load_elem4(b, o.block, zz);
            let qm = if decode { load_elem4(b, o.inter_q, i) } else { load_elem4(b, o.intra_q, i) };
            let qs = b.mul(qm, q);
            let out = if decode {
                let r0 = b.mul(v, qs);
                let five = b.iconst(5);
                b.shr(r0, five)
            } else {
                let sat = clamp_const(b, qs, 1, i64::MAX);
                b.ibin(mcpart_ir::IntBinOp::Div, v, sat)
            };
            let c64 = b.iconst(64);
            let base = b.mul(blk, c64);
            let dst = b.add(base, i);
            store_ptr4(b, cs, dst, out);
            // Rate control: count "bits" as |out| folded into rc.bits.
            let z = b.iconst(0);
            let nout = b.sub(z, out);
            let mag = b.ibin(mcpart_ir::IntBinOp::Max, out, nout);
            let ra = b.addrof(o.rc_bits);
            let bits = b.load(MemWidth::B4, ra);
            let b1 = b.add(bits, mag);
            b.store(MemWidth::B4, ra, b1);
        });
        // Adapt the quantizer from the bit budget.
        let ra = b.addrof(o.rc_bits);
        let bits = b.load(MemWidth::B4, ra);
        let twelve = b.iconst(12);
        let over = b.shr(bits, twelve);
        let q1 = b.add(q, over);
        let q2 = clamp_const(b, q1, 2, 31);
        b.store(MemWidth::B4, qa, q2);
    });
    let ra = b.addrof(o.rc_bits);
    let bits = b.load(MemWidth::B4, ra);
    b.ret(Some(bits));
    Workload::from_program(name, Suite::Mediabench, p)
}

/// Builds the `mpeg2enc` workload.
pub fn mpeg2enc() -> Workload {
    build("mpeg2enc", false)
}

/// Builds the `mpeg2dec` workload.
pub fn mpeg2dec() -> Workload {
    build("mpeg2dec", true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpeg2_pair_builds() {
        let e = mpeg2enc();
        let d = mpeg2dec();
        assert!(e.num_objects() >= 8);
        assert_eq!(e.program.functions.len(), 2, "entry + dct callee");
        assert!(d.num_ops() > 150);
    }

    #[test]
    fn dct_callee_is_hot() {
        let w = mpeg2enc();
        // The DCT function's blocks execute once per macroblock.
        let dct_fid =
            w.program.functions.iter().find(|(_, f)| f.name == "fdct").map(|(id, _)| id).unwrap();
        let entry_block = w.program.functions[dct_fid].entry;
        assert_eq!(w.profile.block_freq(dct_fid, entry_block), BLOCKS as u64);
    }
}
