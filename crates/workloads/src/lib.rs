//! # mcpart-workloads — synthetic Mediabench / DSP-kernel workloads
//!
//! Deterministic IR generators modeled on the benchmarks of the paper's
//! evaluation (Mediabench applications plus DSP kernels). Each workload
//! is a runnable program — its [`mcpart_ir::Profile`] is gathered by
//! actually executing it in the functional simulator — with the data
//! object mix (lookup tables, state scalars, heap buffers) and access
//! structure that make data partitioning matter.
//!
//! ```
//! let w = mcpart_workloads::by_name("rawcaudio").expect("known benchmark");
//! assert!(w.num_objects() >= 5);
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![warn(missing_docs)]

mod adpcm;
mod epic;
mod g721;
mod gen;
mod gsm;
mod jpeg;
mod kernels;
mod kernels2;
mod mpeg2;
mod pegwit;
#[cfg(test)]
mod tests_structure;

pub use gen::{
    clamp_const, counted_loop, init_table4, load_elem4, load_ptr4, store_elem4, store_ptr4, Loop,
    Suite, SynthSpec, Workload,
};

/// All workloads, Mediabench first, then the DSP kernels.
pub fn all() -> Vec<Workload> {
    vec![
        jpeg::cjpeg(),
        jpeg::djpeg(),
        epic::epic(),
        epic::unepic(),
        g721::g721encode(),
        g721::g721decode(),
        gsm::gsmencode(),
        gsm::gsmdecode(),
        mpeg2::mpeg2dec(),
        mpeg2::mpeg2enc(),
        pegwit::pegwit(),
        adpcm::rawcaudio(),
        adpcm::rawdaudio(),
        kernels::fir(),
        kernels::fft(),
        kernels::fsed(),
        kernels::sobel(),
        kernels::latnrm(),
        kernels::matmul(),
        kernels2::viterbi(),
        kernels2::autcor(),
        kernels2::histogram(),
    ]
}

/// Looks up one workload by its benchmark name. Synthetic preset names
/// (`synth_10k`, `synth_100k`, `synth_1m`) resolve too; arbitrary
/// synthetic specs go through [`synth`].
pub fn by_name(name: &str) -> Option<Workload> {
    if name.starts_with("synth_") {
        return synth(name);
    }
    all().into_iter().find(|w| w.name == name)
}

/// Generates a synthetic workload from a preset name (`synth_10k`,
/// `synth_100k`, `synth_1m`) or a `key=value,...` spec string
/// ([`SynthSpec::parse`]). Returns `None` when the string parses as
/// neither.
pub fn synth(spec: &str) -> Option<Workload> {
    let parsed = SynthSpec::parse(spec).ok()?;
    Some(parsed.generate(spec))
}

/// The Mediabench subset.
pub fn mediabench() -> Vec<Workload> {
    all().into_iter().filter(|w| w.suite == Suite::Mediabench).collect()
}

/// The DSP kernel subset.
pub fn dsp_kernels() -> Vec<Workload> {
    all().into_iter().filter(|w| w.suite == Suite::Dsp).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_consistent() {
        let names: Vec<String> = all().iter().map(|w| w.name.clone()).collect();
        assert!(names.iter().any(|n| n == "rawcaudio"));
        assert!(names.iter().any(|n| n == "fsed"));
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "duplicate names");
        assert!(by_name("rawdaudio").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn synth_presets_resolve_through_by_name() {
        let w = by_name("synth_10k").expect("preset");
        assert_eq!(w.suite, Suite::Synthetic);
        assert_eq!(w.name, "synth_10k");
        // Sized to the target within a generous tolerance.
        let ops = w.num_ops();
        assert!((8_000..14_000).contains(&ops), "ops = {ops}");
        assert!(synth("ops=3000,trips=8,seed=3").is_some());
        assert!(synth("bogus=1").is_none());
    }
}
