//! # mcpart-workloads — synthetic Mediabench / DSP-kernel workloads
//!
//! Deterministic IR generators modeled on the benchmarks of the paper's
//! evaluation (Mediabench applications plus DSP kernels). Each workload
//! is a runnable program — its [`mcpart_ir::Profile`] is gathered by
//! actually executing it in the functional simulator — with the data
//! object mix (lookup tables, state scalars, heap buffers) and access
//! structure that make data partitioning matter.
//!
//! ```
//! let w = mcpart_workloads::by_name("rawcaudio").expect("known benchmark");
//! assert!(w.num_objects() >= 5);
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![warn(missing_docs)]

mod adpcm;
mod epic;
mod g721;
mod gen;
mod gsm;
mod jpeg;
mod kernels;
mod kernels2;
mod mpeg2;
mod pegwit;
#[cfg(test)]
mod tests_structure;

pub use gen::{
    clamp_const, counted_loop, init_table4, load_elem4, load_ptr4, store_elem4, store_ptr4, Loop,
    Suite, SynthSpec, SynthSpecError, Workload, WorkloadError,
};

/// All workloads, Mediabench first, then the DSP kernels.
pub fn all() -> Vec<Workload> {
    vec![
        jpeg::cjpeg(),
        jpeg::djpeg(),
        epic::epic(),
        epic::unepic(),
        g721::g721encode(),
        g721::g721decode(),
        gsm::gsmencode(),
        gsm::gsmdecode(),
        mpeg2::mpeg2dec(),
        mpeg2::mpeg2enc(),
        pegwit::pegwit(),
        adpcm::rawcaudio(),
        adpcm::rawdaudio(),
        kernels::fir(),
        kernels::fft(),
        kernels::fsed(),
        kernels::sobel(),
        kernels::latnrm(),
        kernels::matmul(),
        kernels2::viterbi(),
        kernels2::autcor(),
        kernels2::histogram(),
    ]
}

/// Looks up one workload by its benchmark name. Synthetic preset names
/// (`synth_10k`, `synth_100k`, `synth_1m`) resolve too; arbitrary
/// synthetic specs go through [`synth`].
pub fn by_name(name: &str) -> Option<Workload> {
    if name.starts_with("synth_") {
        return synth(name);
    }
    all().into_iter().find(|w| w.name == name)
}

/// Why [`synth_result`] failed: the spec string itself, or
/// (pathologically — a generator bug) the generated program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SynthError {
    /// The spec string failed to parse ([`SynthSpec::parse`]).
    Spec(SynthSpecError),
    /// The generated program failed workload construction.
    Workload(WorkloadError),
}

impl std::fmt::Display for SynthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthError::Spec(e) => e.fmt(f),
            SynthError::Workload(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for SynthError {}

/// Generates a synthetic workload from a preset name (`synth_10k`,
/// `synth_100k`, `synth_1m`) or a `key=value,...` spec string
/// ([`SynthSpec::parse`]). Returns `None` when the string parses as
/// neither; [`synth_result`] keeps the diagnostic.
pub fn synth(spec: &str) -> Option<Workload> {
    synth_result(spec).ok()
}

/// Like [`synth`], but surfaces *why* a spec was rejected — column
/// diagnostics from the parser, verifier output from generation.
///
/// # Errors
///
/// Returns [`SynthError`] when the spec fails to parse or the
/// generated program fails construction.
pub fn synth_result(spec: &str) -> Result<Workload, SynthError> {
    let parsed = SynthSpec::parse(spec).map_err(SynthError::Spec)?;
    parsed.try_generate(spec).map_err(SynthError::Workload)
}

/// The Mediabench subset.
pub fn mediabench() -> Vec<Workload> {
    all().into_iter().filter(|w| w.suite == Suite::Mediabench).collect()
}

/// The DSP kernel subset.
pub fn dsp_kernels() -> Vec<Workload> {
    all().into_iter().filter(|w| w.suite == Suite::Dsp).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_consistent() {
        let names: Vec<String> = all().iter().map(|w| w.name.clone()).collect();
        assert!(names.iter().any(|n| n == "rawcaudio"));
        assert!(names.iter().any(|n| n == "fsed"));
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "duplicate names");
        assert!(by_name("rawdaudio").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn synth_presets_resolve_through_by_name() {
        let w = by_name("synth_10k").expect("preset");
        assert_eq!(w.suite, Suite::Synthetic);
        assert_eq!(w.name, "synth_10k");
        // Sized to the target within a generous tolerance.
        let ops = w.num_ops();
        assert!((8_000..14_000).contains(&ops), "ops = {ops}");
        assert!(synth("ops=3000,trips=8,seed=3").is_some());
        assert!(synth("bogus=1").is_none());
    }

    #[test]
    fn synth_result_keeps_the_diagnostic() {
        let e = synth_result("trips=0").expect_err("rejected");
        assert!(e.to_string().contains("spec column"), "{e}");
        assert!(synth_result("ops=3000,trips=8,seed=3").is_ok());
    }
}
