//! G.721 ADPCM voice coder: `g721encode` and `g721decode`, modeled on
//! the Mediabench G.721 benchmark (CCITT 32 kbit/s ADPCM).
//!
//! The object mix mirrors the original `g72x.c`: the quantization
//! tables (`qtab_721`, `_dqlntab`, `_witab`, `_fitab`), and a predictor
//! state structure with adaptive coefficients (`a`, `b`), delayed
//! quantizer outputs (`dq`, `sr`, `pk`), and the adaptation speed
//! scalars (`ap`, `dms`, `dml`, `yl`, `yu`, `td`).

use crate::gen::{
    clamp_const, counted_loop, load_elem4, load_ptr4, store_elem4, store_ptr4, Suite, Workload,
};
use mcpart_ir::{Cmp, DataObject, FunctionBuilder, IntBinOp, MemWidth, ObjectId, Program};

const SAMPLES: i64 = 128;
const PASSES: i64 = 6;

struct G721Objects {
    qtab: ObjectId,
    dqlntab: ObjectId,
    witab: ObjectId,
    fitab: ObjectId,
    coef_a: ObjectId,
    coef_b: ObjectId,
    dq_hist: ObjectId,
    sr_hist: ObjectId,
    yl: ObjectId,
    yu: ObjectId,
    dms: ObjectId,
    dml: ObjectId,
    ap: ObjectId,
}

fn add_objects(p: &mut Program) -> G721Objects {
    G721Objects {
        qtab: p.add_object(DataObject::global("qtab_721", 7 * 4)),
        dqlntab: p.add_object(DataObject::global("_dqlntab", 16 * 4)),
        witab: p.add_object(DataObject::global("_witab", 16 * 4)),
        fitab: p.add_object(DataObject::global("_fitab", 16 * 4)),
        coef_a: p.add_object(DataObject::global("state.a", 2 * 4)),
        coef_b: p.add_object(DataObject::global("state.b", 6 * 4)),
        dq_hist: p.add_object(DataObject::global("state.dq", 6 * 4)),
        sr_hist: p.add_object(DataObject::global("state.sr", 2 * 4)),
        yl: p.add_object(DataObject::global("state.yl", 4)),
        yu: p.add_object(DataObject::global("state.yu", 4)),
        dms: p.add_object(DataObject::global("state.dms", 4)),
        dml: p.add_object(DataObject::global("state.dml", 4)),
        ap: p.add_object(DataObject::global("state.ap", 4)),
    }
}

fn init_tables(b: &mut FunctionBuilder<'_>, o: &G721Objects) {
    // Quantizer decision levels (monotone positive).
    counted_loop(b, 7, |b, i| {
        let k = b.iconst(100);
        let base = b.iconst(-124);
        let v0 = b.mul(i, k);
        let v = b.add(v0, base);
        store_elem4(b, o.qtab, i, v);
    });
    for (obj, mul, off) in [(o.dqlntab, 91, -2048), (o.witab, 37, -12), (o.fitab, 101, 0)] {
        counted_loop(b, 16, |b, i| {
            let k = b.iconst(mul);
            let c = b.iconst(off);
            let v0 = b.mul(i, k);
            let m = b.iconst(0xFFF);
            let v1 = b.and(v0, m);
            let v = b.add(v1, c);
            store_elem4(b, obj, i, v);
        });
    }
    // Predictor state starts mildly adapted.
    let ya = b.addrof(o.yl);
    let y0 = b.iconst(34816);
    b.store(MemWidth::B4, ya, y0);
    let yu_a = b.addrof(o.yu);
    let yu0 = b.iconst(544);
    b.store(MemWidth::B4, yu_a, yu0);
}

/// Shared predictor step: computes the signal estimate from the `a`/`b`
/// coefficient arrays and the `dq`/`sr` histories, then updates the
/// adaptation state. Returns the estimate.
fn predictor(b: &mut FunctionBuilder<'_>, o: &G721Objects) -> mcpart_ir::VReg {
    let acc0 = b.iconst(0);
    let acc = b.mov(acc0);
    counted_loop(b, 6, |b, j| {
        let bj = load_elem4(b, o.coef_b, j);
        let dqj = load_elem4(b, o.dq_hist, j);
        let prod = b.mul(bj, dqj);
        let fourteen = b.iconst(14);
        let term = b.shr(prod, fourteen);
        let sum = b.add(acc, term);
        b.mov_to(acc, sum);
    });
    counted_loop(b, 2, |b, j| {
        let aj = load_elem4(b, o.coef_a, j);
        let srj = load_elem4(b, o.sr_hist, j);
        let prod = b.mul(aj, srj);
        let fourteen = b.iconst(14);
        let term = b.shr(prod, fourteen);
        let sum = b.add(acc, term);
        b.mov_to(acc, sum);
    });
    acc
}

/// Quantizer-scale update shared by encoder and decoder: adapts yu/yl
/// from the table entry for `code` and rotates the histories.
fn update_state(
    b: &mut FunctionBuilder<'_>,
    o: &G721Objects,
    code: mcpart_ir::VReg,
    dq: mcpart_ir::VReg,
    sr: mcpart_ir::VReg,
) {
    let wi = load_elem4(b, o.witab, code);
    let fi = load_elem4(b, o.fitab, code);
    // yu = y + ((wi - y) >> 5), yl = yl + yu - (yl >> 6)
    let yua = b.addrof(o.yu);
    let yu = b.load(MemWidth::B4, yua);
    let d = b.sub(wi, yu);
    let five = b.iconst(5);
    let step = b.shr(d, five);
    let yu1 = b.add(yu, step);
    let yu2 = clamp_const(b, yu1, 544, 5120);
    b.store(MemWidth::B4, yua, yu2);
    let yla = b.addrof(o.yl);
    let yl = b.load(MemWidth::B4, yla);
    let six = b.iconst(6);
    let leak = b.shr(yl, six);
    let yl1 = b.sub(yl, leak);
    let yl2 = b.add(yl1, yu2);
    b.store(MemWidth::B4, yla, yl2);
    // Adaptation speed: dms/dml low-pass the table entry fi.
    for (obj, shift) in [(o.dms, 5i64), (o.dml, 7i64)] {
        let oa = b.addrof(obj);
        let v = b.load(MemWidth::B4, oa);
        let d = b.sub(fi, v);
        let s = b.iconst(shift);
        let adj = b.shr(d, s);
        let v1 = b.add(v, adj);
        b.store(MemWidth::B4, oa, v1);
    }
    let apa = b.addrof(o.ap);
    let ap = b.load(MemWidth::B4, apa);
    let dmsa = b.addrof(o.dms);
    let dms = b.load(MemWidth::B4, dmsa);
    let dmla = b.addrof(o.dml);
    let dml = b.load(MemWidth::B4, dmla);
    let dd = b.sub(dms, dml);
    let zero = b.iconst(0);
    let ndd = b.sub(zero, dd);
    let add = b.ibin(IntBinOp::Max, dd, ndd);
    let four = b.iconst(4);
    let fast = b.shr(add, four);
    let ap1 = b.add(ap, fast);
    let ap2 = clamp_const(b, ap1, 0, 256);
    b.store(MemWidth::B4, apa, ap2);
    // Rotate dq and sr histories; adapt coefficients toward the sign.
    counted_loop(b, 5, |b, j| {
        let four_c = b.iconst(4);
        let rev = b.sub(four_c, j); // 4..0
        let v = load_elem4(b, o.dq_hist, rev);
        let one = b.iconst(1);
        let dst = b.add(rev, one);
        store_elem4(b, o.dq_hist, dst, v);
        let bj = load_elem4(b, o.coef_b, dst);
        let seven = b.iconst(7);
        let decay = b.shr(bj, seven);
        let b1 = b.sub(bj, decay);
        store_elem4(b, o.coef_b, dst, b1);
    });
    let z = b.iconst(0);
    store_elem4(b, o.dq_hist, z, dq);
    let one = b.iconst(1);
    let sr_old = load_elem4(b, o.sr_hist, z);
    store_elem4(b, o.sr_hist, one, sr_old);
    store_elem4(b, o.sr_hist, z, sr);
    let a0 = load_elem4(b, o.coef_a, z);
    let sgn = b.icmp(Cmp::Ge, dq, z);
    let up = b.iconst(8);
    let down = b.iconst(-8);
    let adj = b.select(sgn, up, down);
    let a1 = b.add(a0, adj);
    let a2 = clamp_const(b, a1, -12288, 12288);
    store_elem4(b, o.coef_a, z, a2);
}

/// Builds the `g721encode` workload.
pub fn g721encode() -> Workload {
    let mut p = Program::new("g721encode");
    let o = add_objects(&mut p);
    let inbuf = p.add_object(DataObject::heap_site("pcmIn"));
    let outbuf = p.add_object(DataObject::heap_site("codesOut"));
    let mut b = FunctionBuilder::entry(&mut p);
    init_tables(&mut b, &o);
    let sz = b.iconst(SAMPLES * 4);
    let inp = b.malloc(inbuf, sz);
    let sz2 = b.iconst(SAMPLES * 4);
    let outp = b.malloc(outbuf, sz2);
    counted_loop(&mut b, SAMPLES, |b, i| {
        let k = b.iconst(73);
        let v0 = b.mul(i, k);
        let m = b.iconst(0x1FFF);
        let v1 = b.and(v0, m);
        let h = b.iconst(4096);
        let v = b.sub(v1, h);
        store_ptr4(b, inp, i, v);
    });
    counted_loop(&mut b, PASSES, |b, _pass| {
        counted_loop(b, SAMPLES, |b, i| {
            let sl = load_ptr4(b, inp, i);
            let se = predictor(b, &o);
            let d = b.sub(sl, se);
            // Log quantization against qtab: count decision levels below |d|.
            let zero = b.iconst(0);
            let nd = b.sub(zero, d);
            let mag = b.ibin(IntBinOp::Max, d, nd);
            let code0 = b.iconst(0);
            let code = b.mov(code0);
            counted_loop(b, 7, |b, j| {
                let q = load_elem4(b, o.qtab, j);
                let over = b.icmp(Cmp::Gt, mag, q);
                let one = b.iconst(1);
                let z = b.iconst(0);
                let inc = b.select(over, one, z);
                let c1 = b.add(code, inc);
                b.mov_to(code, c1);
            });
            let neg = b.icmp(Cmp::Lt, d, zero);
            let eight = b.iconst(8);
            let sbit = b.select(neg, eight, zero);
            let tx = b.or(code, sbit);
            store_ptr4(b, outp, i, tx);
            // Reconstruct dq/sr and update the adaptive state.
            let dqln = load_elem4(b, o.dqlntab, code);
            let seven_s = b.iconst(7);
            let dqmag = b.shr(dqln, seven_s);
            let ndq = b.sub(zero, dqmag);
            let dq = b.select(neg, ndq, dqmag);
            let sr = b.add(se, dq);
            update_state(b, &o, code, dq, sr);
        });
    });
    let last = b.iconst(SAMPLES - 1);
    let v = load_ptr4(&mut b, outp, last);
    b.ret(Some(v));
    Workload::from_program("g721encode", Suite::Mediabench, p)
}

/// Builds the `g721decode` workload.
pub fn g721decode() -> Workload {
    let mut p = Program::new("g721decode");
    let o = add_objects(&mut p);
    let inbuf = p.add_object(DataObject::heap_site("codesIn"));
    let outbuf = p.add_object(DataObject::heap_site("pcmOut"));
    let mut b = FunctionBuilder::entry(&mut p);
    init_tables(&mut b, &o);
    let sz = b.iconst(SAMPLES * 4);
    let inp = b.malloc(inbuf, sz);
    let sz2 = b.iconst(SAMPLES * 4);
    let outp = b.malloc(outbuf, sz2);
    counted_loop(&mut b, SAMPLES, |b, i| {
        let k = b.iconst(9);
        let v0 = b.mul(i, k);
        let m = b.iconst(15);
        let v = b.and(v0, m);
        store_ptr4(b, inp, i, v);
    });
    counted_loop(&mut b, PASSES, |b, _pass| {
        counted_loop(b, SAMPLES, |b, i| {
            let word = load_ptr4(b, inp, i);
            let seven = b.iconst(7);
            let code = b.and(word, seven);
            let eight = b.iconst(8);
            let sbits = b.and(word, eight);
            let zero = b.iconst(0);
            let neg = b.icmp(Cmp::Ne, sbits, zero);
            let se = predictor(b, &o);
            let dqln = load_elem4(b, o.dqlntab, code);
            let seven_s = b.iconst(7);
            let dqmag = b.shr(dqln, seven_s);
            let ndq = b.sub(zero, dqmag);
            let dq = b.select(neg, ndq, dqmag);
            let sr0 = b.add(se, dq);
            let sr = clamp_const(b, sr0, -32768, 32767);
            store_ptr4(b, outp, i, sr);
            update_state(b, &o, code, dq, sr);
        });
    });
    let last = b.iconst(SAMPLES - 1);
    let v = load_ptr4(&mut b, outp, last);
    b.ret(Some(v));
    Workload::from_program("g721decode", Suite::Mediabench, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn g721_pair_builds() {
        let enc = g721encode();
        let dec = g721decode();
        assert!(enc.num_objects() >= 15);
        assert!(dec.num_objects() >= 15);
        assert!(enc.num_ops() > 150);
    }

    #[test]
    fn encoder_produces_mixed_codes() {
        let w = g721encode();
        let r = mcpart_sim::run(&w.program, &[], mcpart_sim::ExecConfig::default()).unwrap();
        // Returned code word is a 4-bit quantity.
        match r.return_value {
            Some(mcpart_sim::Value::Int(v)) => assert!((0..16).contains(&v), "{v}"),
            other => panic!("unexpected return {other:?}"),
        }
    }
}
