//! `pegwit`: public-key encryption over GF(2^255), modeled on the
//! Mediabench Pegwit benchmark.
//!
//! The dominant computation is Galois-field polynomial arithmetic over
//! word arrays plus a square-hash over the message. Objects: the field
//! reduction table, the hash round-constant table, key and accumulator
//! word arrays, and heap message/ciphertext buffers.

use crate::gen::{
    counted_loop, load_elem4, load_ptr4, store_elem4, store_ptr4, unrolled_loop, Suite, Workload,
};
use mcpart_ir::{Cmp, DataObject, FunctionBuilder, IntBinOp, Program};

const WORDS: i64 = 16; // GF element size in 32-bit words
const MSG_WORDS: i64 = 1024;

/// Builds the `pegwit` workload.
pub fn pegwit() -> Workload {
    let mut p = Program::new("pegwit");
    let reduction = p.add_object(DataObject::global("gf_reduction_tbl", 256 * 4));
    let round_consts = p.add_object(DataObject::global("hash_round_consts", 32 * 4));
    let key = p.add_object(DataObject::global("secret_key", (WORDS * 4) as u64));
    let acc = p.add_object(DataObject::global("gf_accumulator", (WORDS * 4) as u64));
    let digest = p.add_object(DataObject::global("digest", 8 * 4));
    let message = p.add_object(DataObject::heap_site("message"));
    let cipher = p.add_object(DataObject::heap_site("ciphertext"));

    let mut b = FunctionBuilder::entry(&mut p);
    counted_loop(&mut b, 256, |b, i| {
        let k = b.iconst(0x1D);
        let v0 = b.mul(i, k);
        let m = b.iconst(0xFF);
        let v = b.and(v0, m);
        store_elem4(b, reduction, i, v);
    });
    counted_loop(&mut b, 32, |b, i| {
        let k = b.iconst(0x9E37);
        let v0 = b.mul(i, k);
        let m = b.iconst(0xFFFF);
        let v = b.and(v0, m);
        store_elem4(b, round_consts, i, v);
    });
    counted_loop(&mut b, WORDS, |b, i| {
        let k = b.iconst(0x6A09);
        let v0 = b.mul(i, k);
        let m = b.iconst(0xFFFF);
        let v = b.and(v0, m);
        store_elem4(b, key, i, v);
    });
    let sz = b.iconst(MSG_WORDS * 4);
    let msg = b.malloc(message, sz);
    let sz2 = b.iconst(MSG_WORDS * 4);
    let ct = b.malloc(cipher, sz2);
    counted_loop(&mut b, MSG_WORDS, |b, i| {
        let k = b.iconst(0x5851);
        let v0 = b.mul(i, k);
        let m = b.iconst(0xFFFF);
        let v = b.and(v0, m);
        store_ptr4(b, msg, i, v);
    });
    // Square hash of the message into the digest.
    unrolled_loop(&mut b, MSG_WORDS, 4, |b, i| {
        let seven = b.iconst(7);
        let slot = b.and(i, seven);
        let m_word = load_ptr4(b, msg, i);
        let thirty1 = b.iconst(31);
        let rc_idx = b.and(i, thirty1);
        let rc = load_elem4(b, round_consts, rc_idx);
        let d0 = load_elem4(b, digest, slot);
        let mixed0 = b.ibin(IntBinOp::Xor, d0, m_word);
        let sq = b.mul(mixed0, mixed0);
        let nine = b.iconst(9);
        let sqh = b.shr(sq, nine);
        let mixed = b.add(sqh, rc);
        let m16 = b.iconst(0xFFFF);
        let folded = b.and(mixed, m16);
        store_elem4(b, digest, slot, folded);
    });
    // GF "multiply-accumulate" encryption: for each message word,
    // shift-and-reduce the accumulator against the key, XOR in the
    // message, emit ciphertext.
    unrolled_loop(&mut b, MSG_WORDS, 4, |b, i| {
        let wmask = b.iconst(WORDS - 1);
        let w = b.and(i, wmask);
        let a = load_elem4(b, acc, w);
        let kv = load_elem4(b, key, w);
        // Carry-out byte selects the reduction entry.
        let eight = b.iconst(8);
        let carry = b.shr(a, eight);
        let cmask = b.iconst(0xFF);
        let cidx = b.and(carry, cmask);
        let red = load_elem4(b, reduction, cidx);
        let one = b.iconst(1);
        let shifted = b.shl(a, one);
        let reduced = b.ibin(IntBinOp::Xor, shifted, red);
        let mixed = b.ibin(IntBinOp::Xor, reduced, kv);
        let m_word = load_ptr4(b, msg, i);
        let out = b.ibin(IntBinOp::Xor, mixed, m_word);
        let m16 = b.iconst(0xFFFF);
        let folded = b.and(out, m16);
        store_elem4(b, acc, w, folded);
        store_ptr4(b, ct, i, folded);
    });
    // Checksum: fold digest and a sample of the ciphertext.
    let sum0 = b.iconst(0);
    let sum = b.mov(sum0);
    counted_loop(&mut b, 8, |b, i| {
        let d = load_elem4(b, digest, i);
        let s = b.add(sum, d);
        b.mov_to(sum, s);
    });
    let last = b.iconst(MSG_WORDS - 1);
    let c_last = load_ptr4(&mut b, ct, last);
    let zero = b.iconst(0);
    let nonzero = b.icmp(Cmp::Ne, c_last, zero);
    let bumped = b.add(sum, nonzero);
    b.ret(Some(bumped));
    Workload::from_program("pegwit", Suite::Mediabench, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pegwit_builds_and_runs() {
        let w = pegwit();
        assert!(w.num_objects() >= 7);
        let r = mcpart_sim::run(&w.program, &[], mcpart_sim::ExecConfig::default()).unwrap();
        match r.return_value {
            Some(mcpart_sim::Value::Int(v)) => assert!(v > 0),
            other => panic!("unexpected {other:?}"),
        }
    }
}
