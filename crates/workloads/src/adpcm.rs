//! ADPCM audio coder kernels: `rawcaudio` (encode) and `rawdaudio`
//! (decode), modeled on the Mediabench ADPCM benchmark.
//!
//! The data objects mirror the original: the 89-entry step-size table,
//! the 16-entry index-adjustment table, predictor state scalars, and
//! heap-allocated sample buffers. These are the two benchmarks the paper
//! enumerates exhaustively in Figure 9 (small object count).

use crate::gen::{
    clamp_const, counted_loop, load_elem4, load_ptr4, store_elem4, store_ptr4, unrolled_loop,
    Suite, Workload,
};
use mcpart_ir::{Cmp, DataObject, FunctionBuilder, IntBinOp, MemWidth, Program};

/// Samples per buffer.
const SAMPLES: i64 = 256;
/// Kernel passes over the buffer (media codecs stream many frames
/// through the same buffers, so the kernel dominates the profile the
/// way it does with the paper's real inputs).
const PASSES: i64 = 8;

fn build_tables(
    b: &mut FunctionBuilder<'_>,
    stepsize: mcpart_ir::ObjectId,
    indextab: mcpart_ir::ObjectId,
) {
    // stepsizeTable[i] = 7 + 3*i + (i*i >> 2): positive, monotone-ish,
    // like the real exponential table.
    counted_loop(b, 89, |b, i| {
        let three = b.iconst(3);
        let seven = b.iconst(7);
        let ii = b.mul(i, i);
        let two = b.iconst(2);
        let q = b.shr(ii, two);
        let t = b.mul(i, three);
        let t2 = b.add(t, seven);
        let v = b.add(t2, q);
        store_elem4(b, stepsize, i, v);
    });
    // indexTable[0..8] = {-1,-1,-1,-1,2,4,6,8}, mirrored for 8..16.
    counted_loop(b, 16, |b, i| {
        let seven = b.iconst(7);
        let low = b.and(i, seven);
        let four = b.iconst(4);
        let c = b.icmp(Cmp::Lt, low, four);
        let minus1 = b.iconst(-1);
        let fourc = b.iconst(4);
        let lo4 = b.sub(low, fourc);
        let two = b.iconst(2);
        let pos = b.mul(lo4, two);
        let twoc = b.iconst(2);
        let pos2 = b.add(pos, twoc);
        let v = b.select(c, minus1, pos2);
        store_elem4(b, indextab, i, v);
    });
}

/// Builds the `rawcaudio` (ADPCM encode) workload.
pub fn rawcaudio() -> Workload {
    let mut p = Program::new("rawcaudio");
    let stepsize = p.add_object(DataObject::global("stepsizeTable", 89 * 4));
    let indextab = p.add_object(DataObject::global("indexTable", 16 * 4));
    // The coder state is one struct (valprev at offset 0, index at 4),
    // matching the original `struct adpcm_state`.
    let state = p.add_object(DataObject::global("state", 8));
    let n_encoded = p.add_object(DataObject::global("numEncoded", 4));
    let inbuf = p.add_object(DataObject::heap_site("inbuf"));
    let outbuf = p.add_object(DataObject::heap_site("outbuf"));

    let mut b = FunctionBuilder::entry(&mut p);
    build_tables(&mut b, stepsize, indextab);
    let size = b.iconst(SAMPLES * 4);
    let inp = b.malloc(inbuf, size);
    let size2 = b.iconst(SAMPLES * 4);
    let outp = b.malloc(outbuf, size2);
    // Synthetic 16-bit waveform.
    counted_loop(&mut b, SAMPLES, |b, i| {
        let k = b.iconst(37);
        let m = b.iconst(0x3FF);
        let half = b.iconst(512);
        let v0 = b.mul(i, k);
        let v1 = b.and(v0, m);
        let v = b.sub(v1, half);
        store_ptr4(b, inp, i, v);
    });
    // Encoder main loop (unrolled x2 for ILP), streaming PASSES frames.
    counted_loop(&mut b, PASSES, |b, _pass| {
        unrolled_loop(b, SAMPLES, 2, |b, i| {
            let spred = b.addrof(state);
            let valpred = b.load(MemWidth::B4, spred);
            let sbase = b.addrof(state);
            let four_off = b.iconst(4);
            let sidx = b.add(sbase, four_off);
            let index = b.load(MemWidth::B4, sidx);
            let sample = load_ptr4(b, inp, i);
            let diff0 = b.sub(sample, valpred);
            let zero = b.iconst(0);
            let neg = b.icmp(Cmp::Lt, diff0, zero);
            let negd = b.sub(zero, diff0);
            let diff = b.select(neg, negd, diff0);
            let step = load_elem4(b, stepsize, index);
            let four = b.iconst(4);
            let scaled = b.mul(diff, four);
            let delta0 = b.ibin(IntBinOp::Div, scaled, step);
            let delta = clamp_const(b, delta0, 0, 7);
            // Index update via the index table.
            let adj = load_elem4(b, indextab, delta);
            let index1 = b.add(index, adj);
            let index2 = clamp_const(b, index1, 0, 88);
            b.store(MemWidth::B4, sidx, index2);
            // Predictor update.
            let dstep = b.mul(delta, step);
            let two = b.iconst(2);
            let vpdiff = b.shr(dstep, two);
            let vplus = b.add(valpred, vpdiff);
            let vminus = b.sub(valpred, vpdiff);
            let valpred1 = b.select(neg, vminus, vplus);
            let valpred2 = clamp_const(b, valpred1, -32768, 32767);
            b.store(MemWidth::B4, spred, valpred2);
            // Output nibble: delta | sign bit.
            let eight = b.iconst(8);
            let sbit = b.select(neg, eight, zero);
            let nibble = b.or(delta, sbit);
            store_ptr4(b, outp, i, nibble);
            // Count encoded samples.
            let cnt = b.addrof(n_encoded);
            let c0 = b.load(MemWidth::B4, cnt);
            let one = b.iconst(1);
            let c1 = b.add(c0, one);
            b.store(MemWidth::B4, cnt, c1);
        });
    });
    let cnt = b.addrof(n_encoded);
    let total = b.load(MemWidth::B4, cnt);
    b.ret(Some(total));
    Workload::from_program("rawcaudio", Suite::Mediabench, p)
}

/// Builds the `rawdaudio` (ADPCM decode) workload.
pub fn rawdaudio() -> Workload {
    let mut p = Program::new("rawdaudio");
    let stepsize = p.add_object(DataObject::global("stepsizeTable", 89 * 4));
    let indextab = p.add_object(DataObject::global("indexTable", 16 * 4));
    let state = p.add_object(DataObject::global("state", 8));
    let checksum = p.add_object(DataObject::global("checksum", 4));
    let inbuf = p.add_object(DataObject::heap_site("deltas"));
    let outbuf = p.add_object(DataObject::heap_site("pcmout"));

    let mut b = FunctionBuilder::entry(&mut p);
    build_tables(&mut b, stepsize, indextab);
    let size = b.iconst(SAMPLES * 4);
    let inp = b.malloc(inbuf, size);
    let size2 = b.iconst(SAMPLES * 4);
    let outp = b.malloc(outbuf, size2);
    // Synthetic 4-bit code stream.
    counted_loop(&mut b, SAMPLES, |b, i| {
        let k = b.iconst(11);
        let m = b.iconst(15);
        let v0 = b.mul(i, k);
        let v = b.and(v0, m);
        store_ptr4(b, inp, i, v);
    });
    // Decoder main loop (unrolled x2 for ILP), streaming PASSES frames.
    counted_loop(&mut b, PASSES, |b, _pass| {
        unrolled_loop(b, SAMPLES, 2, |b, i| {
            let spred = b.addrof(state);
            let valpred = b.load(MemWidth::B4, spred);
            let sbase = b.addrof(state);
            let four_off = b.iconst(4);
            let sidx = b.add(sbase, four_off);
            let index = b.load(MemWidth::B4, sidx);
            let code = load_ptr4(b, inp, i);
            let seven = b.iconst(7);
            let delta = b.and(code, seven);
            let eight = b.iconst(8);
            let signbit = b.and(code, eight);
            let zero = b.iconst(0);
            let neg = b.icmp(Cmp::Ne, signbit, zero);
            let step = load_elem4(b, stepsize, index);
            let adj = load_elem4(b, indextab, delta);
            let index1 = b.add(index, adj);
            let index2 = clamp_const(b, index1, 0, 88);
            b.store(MemWidth::B4, sidx, index2);
            let dstep = b.mul(delta, step);
            let two = b.iconst(2);
            let vpdiff = b.shr(dstep, two);
            let vplus = b.add(valpred, vpdiff);
            let vminus = b.sub(valpred, vpdiff);
            let valpred1 = b.select(neg, vminus, vplus);
            let valpred2 = clamp_const(b, valpred1, -32768, 32767);
            b.store(MemWidth::B4, spred, valpred2);
            store_ptr4(b, outp, i, valpred2);
            // Fold into a checksum.
            let csa = b.addrof(checksum);
            let cs = b.load(MemWidth::B4, csa);
            let cs1 = b.add(cs, valpred2);
            b.store(MemWidth::B4, csa, cs1);
        });
    });
    let csa = b.addrof(checksum);
    let cs = b.load(MemWidth::B4, csa);
    b.ret(Some(cs));
    Workload::from_program("rawdaudio", Suite::Mediabench, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rawcaudio_runs_and_profiles() {
        let w = rawcaudio();
        assert_eq!(w.name, "rawcaudio");
        assert_eq!(w.num_objects(), 6);
        // Encoder counted every sample.
        let r = mcpart_sim::run(&w.program, &[], mcpart_sim::ExecConfig::default()).unwrap();
        assert_eq!(r.return_value, Some(mcpart_sim::Value::Int(SAMPLES * PASSES)));
        // Heap profile recorded both buffers.
        let heap_total: u64 = w.profile.heap_bytes.values().sum();
        assert_eq!(heap_total, 2 * SAMPLES as u64 * 4);
    }

    #[test]
    fn rawdaudio_runs_deterministically() {
        let a = rawdaudio();
        let b = rawdaudio();
        let ra = mcpart_sim::run(&a.program, &[], mcpart_sim::ExecConfig::default()).unwrap();
        let rb = mcpart_sim::run(&b.program, &[], mcpart_sim::ExecConfig::default()).unwrap();
        assert_eq!(ra.return_value, rb.return_value);
        assert_eq!(ra.memory, rb.memory);
    }
}
