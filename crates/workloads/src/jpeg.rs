//! JPEG codec kernels: `cjpeg` (compress) and `djpeg` (decompress),
//! modeled on the Mediabench JPEG benchmark.
//!
//! Object mix: luminance/chrominance quantization tables, DC and AC
//! Huffman code-length tables, the sample MCU workspace, the component
//! state (previous DC values), and heap image/stream buffers.

use crate::gen::{
    clamp_const, counted_loop, load_elem4, load_ptr4, store_elem4, store_ptr4, unrolled_loop,
    Suite, Workload,
};
use mcpart_ir::{Cmp, DataObject, FunctionBuilder, IntBinOp, MemWidth, ObjectId, Program};

const W: i64 = 48;
const H: i64 = 32;
const MCUS: i64 = (W / 8) * (H / 8);

struct JpegObjects {
    qtbl_luma: ObjectId,
    qtbl_chroma: ObjectId,
    dc_huff: ObjectId,
    ac_huff: ObjectId,
    mcu: ObjectId,
    last_dc: ObjectId,
    bit_count: ObjectId,
}

fn add_objects(p: &mut Program) -> JpegObjects {
    JpegObjects {
        qtbl_luma: p.add_object(DataObject::global("std_luminance_quant_tbl", 64 * 4)),
        qtbl_chroma: p.add_object(DataObject::global("std_chrominance_quant_tbl", 64 * 4)),
        dc_huff: p.add_object(DataObject::global("dc_huff_bits", 17 * 4)),
        ac_huff: p.add_object(DataObject::global("ac_huff_bits", 256 * 4)),
        mcu: p.add_object(DataObject::global("MCU_buffer", 64 * 4)),
        last_dc: p.add_object(DataObject::global("last_dc_val", 3 * 4)),
        bit_count: p.add_object(DataObject::global("bytes_emitted", 4)),
    }
}

fn init_tables(b: &mut FunctionBuilder<'_>, o: &JpegObjects) {
    counted_loop(b, 64, |b, i| {
        // Luma table rises with frequency; chroma is coarser.
        let two = b.iconst(2);
        let sixteen = b.iconst(16);
        let l0 = b.mul(i, two);
        let l = b.add(l0, sixteen);
        store_elem4(b, o.qtbl_luma, i, l);
        let three = b.iconst(3);
        let c0 = b.mul(i, three);
        let seventeen = b.iconst(17);
        let c = b.add(c0, seventeen);
        store_elem4(b, o.qtbl_chroma, i, c);
    });
    counted_loop(b, 17, |b, i| {
        let one = b.iconst(1);
        let v = b.add(i, one);
        store_elem4(b, o.dc_huff, i, v);
    });
    counted_loop(b, 256, |b, i| {
        // Code length grows with the symbol's run/size class.
        let four = b.iconst(4);
        let hi = b.shr(i, four);
        let fifteen = b.iconst(15);
        let lo = b.and(i, fifteen);
        let sum = b.add(hi, lo);
        let two = b.iconst(2);
        let len0 = b.add(sum, two);
        let len = clamp_const(b, len0, 2, 16);
        store_elem4(b, o.ac_huff, i, len);
    });
}

fn build(name: &'static str, decode: bool) -> Workload {
    let mut p = Program::new(name);
    let o = add_objects(&mut p);
    let image = p.add_object(DataObject::heap_site("imageBuffer"));
    let stream = p.add_object(DataObject::heap_site("jpegStream"));
    let mut b = FunctionBuilder::entry(&mut p);
    init_tables(&mut b, &o);
    let sz = b.iconst(W * H * 4);
    let img = b.malloc(image, sz);
    let sz2 = b.iconst(W * H * 4);
    let strm = b.malloc(stream, sz2);
    counted_loop(&mut b, W * H, |b, i| {
        let k = b.iconst(if decode { 77 } else { 45 });
        let v0 = b.mul(i, k);
        let m = b.iconst(0xFF);
        let v = b.and(v0, m);
        store_ptr4(b, img, i, v);
    });
    counted_loop(&mut b, MCUS, |b, mcu_idx| {
        // Component cycles 0,1,2 (Y, Cb, Cr) with chroma every 3rd MCU.
        let three = b.iconst(3);
        let comp = b.ibin(IntBinOp::Rem, mcu_idx, three);
        // Load MCU from the image.
        unrolled_loop(b, 64, 4, |b, i| {
            let c64 = b.iconst(64);
            let base = b.mul(mcu_idx, c64);
            let src0 = b.add(base, i);
            let limit = b.iconst(W * H - 1);
            let src = b.ibin(IntBinOp::Min, src0, limit);
            let v = load_ptr4(b, img, src);
            let shifted = {
                let c128 = b.iconst(128);
                b.sub(v, c128)
            };
            store_elem4(b, o.mcu, i, shifted);
        });
        // Quantize (or dequantize) against the component's table.
        unrolled_loop(b, 64, 4, |b, i| {
            let zero = b.iconst(0);
            let is_luma = b.icmp(Cmp::Eq, comp, zero);
            let ql = load_elem4(b, o.qtbl_luma, i);
            let qc = load_elem4(b, o.qtbl_chroma, i);
            let q = b.select(is_luma, ql, qc);
            let v = load_elem4(b, o.mcu, i);
            let out = if decode {
                let r = b.mul(v, q);
                let four = b.iconst(4);
                b.shr(r, four)
            } else {
                b.ibin(IntBinOp::Div, v, q)
            };
            store_elem4(b, o.mcu, i, out);
        });
        // DC differential + Huffman "bit cost" accounting.
        let z = b.iconst(0);
        let dc = load_elem4(b, o.mcu, z);
        let prev = load_elem4(b, o.last_dc, comp);
        let diff = b.sub(dc, prev);
        store_elem4(b, o.last_dc, comp, dc);
        let nd = b.sub(z, diff);
        let mag = b.ibin(IntBinOp::Max, diff, nd);
        let size_class = clamp_const(b, mag, 0, 16);
        let dc_bits = load_elem4(b, o.dc_huff, size_class);
        let ba = b.addrof(o.bit_count);
        let bits0 = b.load(MemWidth::B4, ba);
        let bits1 = b.add(bits0, dc_bits);
        b.store(MemWidth::B4, ba, bits1);
        // AC coefficients: look up the run/size symbol cost and write
        // the coefficient to the output stream.
        unrolled_loop(b, 63, 3, |b, i| {
            let one = b.iconst(1);
            let idx = b.add(i, one);
            let v = load_elem4(b, o.mcu, idx);
            let z2 = b.iconst(0);
            let nv = b.sub(z2, v);
            let m = b.ibin(IntBinOp::Max, v, nv);
            let sym = clamp_const(b, m, 0, 255);
            let cost = load_elem4(b, o.ac_huff, sym);
            let ba = b.addrof(o.bit_count);
            let bits = b.load(MemWidth::B4, ba);
            let nb = b.add(bits, cost);
            b.store(MemWidth::B4, ba, nb);
            let c64 = b.iconst(64);
            let base = b.mul(mcu_idx, c64);
            let dst = b.add(base, idx);
            store_ptr4(b, strm, dst, v);
        });
    });
    let ba = b.addrof(o.bit_count);
    let bits = b.load(MemWidth::B4, ba);
    b.ret(Some(bits));
    Workload::from_program(name, Suite::Mediabench, p)
}

/// Builds the `cjpeg` workload.
pub fn cjpeg() -> Workload {
    build("cjpeg", false)
}

/// Builds the `djpeg` workload.
pub fn djpeg() -> Workload {
    build("djpeg", true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jpeg_pair_builds() {
        let c = cjpeg();
        let d = djpeg();
        assert!(c.num_objects() >= 9);
        assert!(d.num_ops() > 120);
        let r = mcpart_sim::run(&c.program, &[], mcpart_sim::ExecConfig::default()).unwrap();
        match r.return_value {
            Some(mcpart_sim::Value::Int(bits)) => assert!(bits > 0),
            other => panic!("unexpected {other:?}"),
        }
    }
}
