//! The three comparison schemes of Table 1: Unified Memory, Naïve
//! object placement, and Profile Max object partitioning.

use crate::error::RhopError;
use crate::groups::ObjectGroups;
use crate::rhop::{rhop_partition, RhopConfig, RhopStats};
use mcpart_analysis::AccessInfo;
use mcpart_ir::{ClusterId, EntityMap, ObjectId, Profile, Program};
use mcpart_machine::Machine;
use mcpart_sched::Placement;

/// Unified-memory partitioning: ordinary RHOP with no object homes (a
/// single multiported memory reachable from every cluster). This is the
/// paper's upper-bound configuration.
///
/// # Errors
///
/// Propagates [`RhopError`] from the underlying RHOP run.
pub fn unified_partition(
    program: &Program,
    access: &AccessInfo,
    profile: &Profile,
    machine: &Machine,
    config: &RhopConfig,
) -> Result<(Placement, RhopStats), RhopError> {
    let unified = machine.clone().with_unified_memory();
    let homes: EntityMap<ObjectId, Option<ClusterId>> =
        EntityMap::with_default(program.objects.len(), None);
    rhop_partition(program, access, profile, &unified, &homes, config)
}

/// Naïve object placement (§2, Figure 2): partition computation assuming
/// unified memory, then place each object group on the cluster where it
/// is dynamically accessed most often. No memory balance, no re-run of
/// the computation partitioner — required remote-access moves are left
/// to placement normalization.
///
/// # Errors
///
/// Propagates [`RhopError`] from the underlying RHOP run.
pub fn naive_partition(
    program: &Program,
    access: &AccessInfo,
    profile: &Profile,
    machine: &Machine,
    groups: &ObjectGroups,
    config: &RhopConfig,
) -> Result<(Placement, RhopStats), RhopError> {
    let (mut placement, stats) = unified_partition(program, access, profile, machine, config)?;
    let freq = group_cluster_frequencies(program, access, profile, &placement, groups, machine);
    for (g, per_cluster) in freq.iter().enumerate() {
        let best =
            per_cluster.iter().enumerate().max_by_key(|&(_, &f)| f).map(|(c, _)| c).unwrap_or(0);
        for &obj in &groups.groups[g] {
            placement.object_home[obj] = Some(ClusterId::new(best));
        }
    }
    Ok((placement, stats))
}

/// Profile Max object partitioning (§4.1): RHOP is run twice. The first
/// run assumes unified memory and yields, per object group, the dynamic
/// frequency of accesses on each cluster. Groups are then greedily
/// assigned — highest total frequency first — to their preferred
/// cluster, spilling to the lightest cluster once the preferred memory
/// exceeds its balance threshold. A second RHOP run partitions
/// computation with the objects locked in place.
///
/// # Errors
///
/// Propagates [`RhopError`] from either underlying RHOP run.
pub fn profile_max_partition(
    program: &Program,
    access: &AccessInfo,
    profile: &Profile,
    machine: &Machine,
    groups: &ObjectGroups,
    config: &RhopConfig,
    balance_threshold: f64,
) -> Result<(Placement, RhopStats), RhopError> {
    // First detailed run: unified memory.
    let (first, stats1) = unified_partition(program, access, profile, machine, config)?;
    let freq = group_cluster_frequencies(program, access, profile, &first, groups, machine);

    // Greedy placement by descending total dynamic frequency.
    let nclusters = machine.num_clusters();
    let total_bytes: u64 = groups.group_size.iter().sum();
    let weights = machine.memory_weights();
    let weight_sum: u64 = weights.iter().map(|&w| w as u64).sum();
    let limit: Vec<f64> = (0..nclusters)
        .map(|c| {
            total_bytes as f64 * weights[c] as f64 / weight_sum.max(1) as f64
                * (1.0 + balance_threshold)
        })
        .collect();
    let mut order: Vec<usize> = (0..groups.len()).collect();
    order.sort_by_key(|&g| std::cmp::Reverse(groups.group_freq[g]));
    let mut bytes = vec![0u64; nclusters];
    let mut homes: EntityMap<ObjectId, Option<ClusterId>> =
        EntityMap::with_default(program.objects.len(), None);
    for &g in &order {
        let preferred =
            freq[g].iter().enumerate().max_by_key(|&(_, &f)| f).map(|(c, _)| c).unwrap_or(0);
        let chosen = if (bytes[preferred] + groups.group_size[g]) as f64 <= limit[preferred] {
            preferred
        } else {
            (0..nclusters).min_by_key(|&c| bytes[c] + groups.group_size[g]).unwrap_or(0)
        };
        bytes[chosen] += groups.group_size[g];
        for &obj in &groups.groups[g] {
            homes[obj] = Some(ClusterId::new(chosen));
        }
    }

    // Second detailed run: cognizant of the object locations.
    let (placement, stats2) = rhop_partition(program, access, profile, machine, &homes, config)?;
    let mut stats = stats1;
    stats.add(&stats2);
    Ok((placement, stats))
}

/// Per object group, the dynamic frequency of its accesses executing on
/// each cluster under `placement` — the profile the Profile-Max and
/// Naïve schemes consume.
pub fn group_cluster_frequencies(
    program: &Program,
    access: &AccessInfo,
    profile: &Profile,
    placement: &Placement,
    groups: &ObjectGroups,
    machine: &Machine,
) -> Vec<Vec<u64>> {
    let nclusters = machine.num_clusters();
    let mut freq = vec![vec![0u64; nclusters]; groups.len()];
    for (g, sites) in groups.group_sites.iter().enumerate() {
        for site in sites {
            let c = placement.cluster_of(site.func, site.op).index();
            let f = profile.op_freq(program, site.func, site.op);
            freq[g][c] += f;
        }
    }
    let _ = access;
    freq
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpart_analysis::PointsTo;
    use mcpart_ir::{DataObject, FunctionBuilder, MemWidth};

    fn two_table_program() -> Program {
        let mut p = Program::new("t");
        let t1 = p.add_object(DataObject::global("t1", 128));
        let t2 = p.add_object(DataObject::global("t2", 128));
        let mut b = FunctionBuilder::entry(&mut p);
        for obj in [t1, t2] {
            let base = b.addrof(obj);
            let mut acc = b.iconst(0);
            for i in 0..4 {
                let off = b.iconst(4 * i);
                let addr = b.add(base, off);
                let v = b.load(MemWidth::B4, addr);
                acc = b.add(acc, v);
            }
            b.store(MemWidth::B4, base, acc);
        }
        b.ret(None);
        p
    }

    fn analyze(p: &Program) -> (Profile, AccessInfo, ObjectGroups) {
        let profile = Profile::uniform(p, 50);
        let pts = PointsTo::compute(p);
        let access = AccessInfo::compute(p, &pts, &profile);
        let groups = ObjectGroups::compute(p, &access);
        (profile, access, groups)
    }

    #[test]
    fn unified_assigns_no_homes() {
        let p = two_table_program();
        let (profile, access, _) = analyze(&p);
        let machine = Machine::paper_2cluster(5);
        let (placement, _) =
            unified_partition(&p, &access, &profile, &machine, &RhopConfig::default())
                .expect("rhop");
        assert!(!placement.has_object_homes());
    }

    #[test]
    fn naive_homes_every_object() {
        let p = two_table_program();
        let (profile, access, groups) = analyze(&p);
        let machine = Machine::paper_2cluster(5);
        let (placement, _) =
            naive_partition(&p, &access, &profile, &machine, &groups, &RhopConfig::default())
                .expect("rhop");
        assert!(placement.object_home.values().all(Option::is_some));
    }

    #[test]
    fn profile_max_balances_bytes() {
        let p = two_table_program();
        let (profile, access, groups) = analyze(&p);
        let machine = Machine::paper_2cluster(5);
        let (placement, stats) = profile_max_partition(
            &p,
            &access,
            &profile,
            &machine,
            &groups,
            &RhopConfig::default(),
            0.10,
        )
        .expect("rhop");
        assert!(placement.object_home.values().all(Option::is_some));
        let bytes = placement.bytes_per_cluster(&p, 2);
        // Two equal groups: balance threshold forces them apart.
        assert_eq!(bytes, vec![128, 128]);
        // Profile Max runs the detailed partitioner twice.
        assert_eq!(stats.regions, 2);
    }

    #[test]
    fn group_frequencies_follow_placement() {
        let p = two_table_program();
        let (profile, access, groups) = analyze(&p);
        let machine = Machine::paper_2cluster(5);
        let placement = Placement::all_on_cluster0(&p);
        let freq = group_cluster_frequencies(&p, &access, &profile, &placement, &groups, &machine);
        for row in &freq {
            assert_eq!(row[1], 0, "all ops on cluster 0");
            assert!(row[0] > 0);
        }
    }
}
