//! Exhaustive search over all data-object mappings (Figure 9).
//!
//! For benchmarks with few object groups, every `2^G`-style assignment
//! of groups to clusters is evaluated end-to-end: RHOP with the mapping
//! locked, move insertion, scheduling. Each point records performance
//! and the data-size balance, reproducing the scatter plots of the
//! paper's Figure 9 (performance vs. balance, with the GDP and Profile
//! Max choices marked).

use crate::error::RhopError;
use crate::gdp::data_partition_from_mapping;
use crate::groups::ObjectGroups;
use crate::rhop::{rhop_partition, RhopConfig};
use mcpart_analysis::{AccessInfo, PointsTo};
use mcpart_ir::{ClusterId, Profile, Program};
use mcpart_machine::Machine;
use mcpart_sched::{evaluate, insert_moves, normalize_placement};

/// One evaluated object mapping.
#[derive(Clone, PartialEq, Debug)]
pub struct ExhaustivePoint {
    /// Cluster of each object group.
    pub mapping: Vec<ClusterId>,
    /// Total dynamic cycles.
    pub cycles: u64,
    /// Data-size imbalance: fraction of all object bytes on the heavier
    /// cluster (0.5 = perfectly balanced, 1.0 = everything on one side).
    pub imbalance: f64,
    /// Dynamic intercluster moves.
    pub dynamic_moves: u64,
}

/// Error for programs whose search space is too large to enumerate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TooManyGroups {
    /// Number of live object groups found.
    pub groups: usize,
    /// The enumeration limit that was exceeded.
    pub limit: usize,
}

impl std::fmt::Display for TooManyGroups {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "exhaustive search over {} object groups exceeds the limit of {}",
            self.groups, self.limit
        )
    }
}

impl std::error::Error for TooManyGroups {}

/// A failure of the exhaustive-search experiment.
#[derive(Clone, PartialEq, Debug)]
pub enum ExhaustiveError {
    /// The search space is too large to enumerate.
    TooManyGroups(TooManyGroups),
    /// The search is only defined for two-cluster machines.
    UnsupportedMachine {
        /// How many clusters the machine actually has.
        nclusters: usize,
    },
    /// An underlying RHOP run failed.
    Rhop(RhopError),
}

impl std::fmt::Display for ExhaustiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExhaustiveError::TooManyGroups(e) => write!(f, "{e}"),
            ExhaustiveError::UnsupportedMachine { nclusters } => {
                write!(f, "exhaustive search needs a 2-cluster machine, got {nclusters}")
            }
            ExhaustiveError::Rhop(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ExhaustiveError {}

impl From<TooManyGroups> for ExhaustiveError {
    fn from(e: TooManyGroups) -> Self {
        ExhaustiveError::TooManyGroups(e)
    }
}

impl From<RhopError> for ExhaustiveError {
    fn from(e: RhopError) -> Self {
        ExhaustiveError::Rhop(e)
    }
}

/// Evaluates one explicit group mapping end-to-end and returns its
/// point.
///
/// # Errors
///
/// Propagates [`RhopError`] from the underlying RHOP run.
pub fn evaluate_mapping(
    program: &Program,
    profile: &Profile,
    machine: &Machine,
    groups: &ObjectGroups,
    mapping: &[ClusterId],
    rhop: &RhopConfig,
) -> Result<ExhaustivePoint, RhopError> {
    let pts = PointsTo::compute(program);
    let access = AccessInfo::compute(program, &pts, profile);
    let dp = data_partition_from_mapping(program, groups, mapping);
    let (placement, _) = rhop_partition(program, &access, profile, machine, &dp.object_home, rhop)?;
    let normalized = normalize_placement(program, &placement, &access, machine, profile);
    let (moved, moved_placement, _) = insert_moves(program, &normalized, machine);
    let moved_pts = PointsTo::compute(&moved);
    let moved_access = AccessInfo::compute(&moved, &moved_pts, profile);
    let report = evaluate(&moved, &moved_placement, machine, profile, &moved_access);
    let bytes = moved_placement.bytes_per_cluster(&moved, machine.num_clusters());
    let total: u64 = bytes.iter().sum();
    let imbalance = if total == 0 {
        0.5
    } else {
        bytes.iter().copied().max().unwrap_or(0) as f64 / total as f64
    };
    Ok(ExhaustivePoint {
        mapping: mapping.to_vec(),
        cycles: report.total_cycles,
        imbalance,
        dynamic_moves: report.dynamic_moves,
    })
}

/// Enumerates every assignment of *live* object groups to two clusters
/// (dead groups go to cluster 0) and evaluates each one.
///
/// By symmetry the first live group is fixed on cluster 0, halving the
/// space; the paper's plots are symmetric in the same way.
///
/// # Errors
///
/// Returns [`ExhaustiveError::TooManyGroups`] when the live group count
/// exceeds `limit` (the enumeration is `2^(G-1)` pipeline runs),
/// [`ExhaustiveError::UnsupportedMachine`] off two clusters, and
/// propagates RHOP failures.
pub fn exhaustive_search(
    program: &Program,
    profile: &Profile,
    machine: &Machine,
    rhop: &RhopConfig,
    limit: usize,
) -> Result<Vec<ExhaustivePoint>, ExhaustiveError> {
    if machine.num_clusters() != 2 {
        return Err(ExhaustiveError::UnsupportedMachine { nclusters: machine.num_clusters() });
    }
    let program = profile.apply_heap_sizes(program);
    let pts = PointsTo::compute(&program);
    let access = AccessInfo::compute(&program, &pts, profile);
    let groups = ObjectGroups::compute(&program, &access);
    let live = groups.live_groups();
    if live.len() > limit {
        return Err(TooManyGroups { groups: live.len(), limit }.into());
    }
    let free = live.len().saturating_sub(1);
    let mut points = Vec::with_capacity(1usize << free);
    for bits in 0u64..(1u64 << free) {
        let mut mapping = vec![ClusterId::new(0); groups.len()];
        for (bit, &g) in live.iter().skip(1).enumerate() {
            if bits >> bit & 1 == 1 {
                mapping[g] = ClusterId::new(1);
            }
        }
        points.push(evaluate_mapping(&program, profile, machine, &groups, &mapping, rhop)?);
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpart_ir::{DataObject, FunctionBuilder, MemWidth};

    fn three_object_program() -> Program {
        let mut p = Program::new("t");
        let objs: Vec<_> = (0..3)
            .map(|i| p.add_object(DataObject::global(format!("t{i}"), 32 * (i + 1) as u64)))
            .collect();
        let mut b = FunctionBuilder::entry(&mut p);
        let mut acc = b.iconst(0);
        for &o in &objs {
            let base = b.addrof(o);
            let v = b.load(MemWidth::B4, base);
            acc = b.add(acc, v);
        }
        b.ret(Some(acc));
        p
    }

    #[test]
    fn search_space_size_is_half_of_full() {
        let p = three_object_program();
        let profile = Profile::uniform(&p, 10);
        let machine = Machine::paper_2cluster(5);
        let points = exhaustive_search(&p, &profile, &machine, &RhopConfig::default(), 8).unwrap();
        // 3 live groups, first fixed: 2^2 = 4 points.
        assert_eq!(points.len(), 4);
        for pt in &points {
            assert!(pt.cycles > 0);
            assert!((0.5..=1.0).contains(&pt.imbalance), "{}", pt.imbalance);
        }
    }

    #[test]
    fn limit_is_enforced() {
        let p = three_object_program();
        let profile = Profile::uniform(&p, 10);
        let machine = Machine::paper_2cluster(5);
        let err = exhaustive_search(&p, &profile, &machine, &RhopConfig::default(), 2).unwrap_err();
        let ExhaustiveError::TooManyGroups(inner) = &err else {
            panic!("wrong error: {err}");
        };
        assert_eq!(inner.groups, 3);
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn balanced_mapping_has_lower_imbalance() {
        let p = three_object_program();
        let profile = Profile::uniform(&p, 10);
        let machine = Machine::paper_2cluster(5);
        let points = exhaustive_search(&p, &profile, &machine, &RhopConfig::default(), 8).unwrap();
        // Sizes are 32/64/96 (total 192): best balance is 96/96 = 0.5,
        // worst is 192/0 = 1.0.
        let min = points.iter().map(|p| p.imbalance).fold(f64::INFINITY, f64::min);
        let max = points.iter().map(|p| p.imbalance).fold(0.0, f64::max);
        assert!((min - 0.5).abs() < 1e-9, "min {min}");
        assert!((max - 1.0).abs() < 1e-9, "max {max}");
    }
}
