//! Access-pattern merging (§3.3.1): object groups.
//!
//! Two merge rules drive the coarsening of the program-level graph:
//!
//! 1. when one memory operation can access several data objects, those
//!    objects merge (placing them in different memories would force a
//!    transfer at that access);
//! 2. when several memory operations access one object, the operations
//!    merge — and drag in every other object they access.
//!
//! The transitive closure of both rules is a partition of the data
//! objects into *object groups*, the indivisible units of data
//! placement. All partitioners in this crate (GDP, Profile Max, Naïve)
//! place object groups, matching the paper ("the program-level graph of
//! the application is created and coarsened as before, so objects are
//! grouped together the same").

use mcpart_analysis::{AccessInfo, AccessSite};
use mcpart_ir::{EntityId, EntityMap, ObjectId, Program};
use std::collections::HashMap;

/// Union-find over dense indices.
#[derive(Clone, Debug)]
pub(crate) struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    pub(crate) fn new(n: usize) -> Self {
        UnionFind { parent: (0..n as u32).collect() }
    }

    pub(crate) fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    pub(crate) fn union(&mut self, a: u32, b: u32) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[rb as usize] = ra;
        }
    }
}

/// The partition of data objects into indivisible placement groups.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ObjectGroups {
    /// Group index of every object.
    pub group_of: EntityMap<ObjectId, usize>,
    /// Members of each group, in object-id order.
    pub groups: Vec<Vec<ObjectId>>,
    /// Total bytes per group.
    pub group_size: Vec<u64>,
    /// Total dynamic access frequency per group.
    pub group_freq: Vec<u64>,
    /// Access sites per group.
    pub group_sites: Vec<Vec<AccessSite>>,
}

impl ObjectGroups {
    /// Computes object groups by closing the two access-pattern merge
    /// rules.
    pub fn compute(program: &Program, access: &AccessInfo) -> Self {
        let n = program.objects.len();
        let mut uf = UnionFind::new(n);
        // Rule 1: objects co-accessed by one operation merge. Rule 2 is
        // implied at the object level: operations sharing an object are
        // merged *operations*, which then merge every object they touch —
        // i.e. the transitive closure over shared sites, which this
        // union already computes.
        for objects in access.site_objects.values() {
            let mut iter = objects.iter();
            if let Some(&first) = iter.next() {
                for &other in iter {
                    uf.union(first.index() as u32, other.index() as u32);
                }
            }
        }
        let mut root_to_group: HashMap<u32, usize> = HashMap::new();
        let mut group_of: EntityMap<ObjectId, usize> = EntityMap::with_default(n, usize::MAX);
        let mut groups: Vec<Vec<ObjectId>> = Vec::new();
        for i in 0..n as u32 {
            let root = uf.find(i);
            let g = *root_to_group.entry(root).or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            });
            groups[g].push(ObjectId(i));
            group_of[ObjectId(i)] = g;
        }
        let mut group_size = vec![0u64; groups.len()];
        let mut group_freq = vec![0u64; groups.len()];
        let mut group_sites: Vec<Vec<AccessSite>> = vec![Vec::new(); groups.len()];
        for (g, members) in groups.iter().enumerate() {
            for &obj in members {
                group_size[g] += program.objects[obj].size;
                group_freq[g] += access.object_freq[obj];
                for &site in &access.object_sites[obj] {
                    if !group_sites[g].contains(&site) {
                        group_sites[g].push(site);
                    }
                }
            }
            group_sites[g].sort();
        }
        ObjectGroups { group_of, groups, group_size, group_freq, group_sites }
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Returns `true` when the program has no data objects.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Groups that are actually accessed (nonzero frequency or at least
    /// one site), in index order. Unaccessed groups can be placed
    /// anywhere without affecting performance.
    pub fn live_groups(&self) -> Vec<usize> {
        (0..self.len()).filter(|&g| !self.group_sites[g].is_empty()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpart_analysis::PointsTo;
    use mcpart_ir::{Cmp, DataObject, FunctionBuilder, MemWidth, Profile};

    fn build_access(p: &Program) -> AccessInfo {
        let pts = PointsTo::compute(p);
        AccessInfo::compute(p, &pts, &Profile::uniform(p, 1))
    }

    #[test]
    fn independent_objects_stay_separate() {
        let mut p = Program::new("t");
        let a = p.add_object(DataObject::global("a", 8));
        let b_obj = p.add_object(DataObject::global("b", 8));
        let mut b = FunctionBuilder::entry(&mut p);
        let aa = b.addrof(a);
        let ab = b.addrof(b_obj);
        let _ = b.load(MemWidth::B4, aa);
        let _ = b.load(MemWidth::B4, ab);
        b.ret(None);
        let groups = ObjectGroups::compute(&p, &build_access(&p));
        assert_eq!(groups.len(), 2);
        assert_ne!(groups.group_of[a], groups.group_of[b_obj]);
    }

    #[test]
    fn ambiguous_access_merges_objects() {
        // A load whose address is either &a or &b (select) accesses both
        // objects, forcing them into one group (rule 1 / Figure 4).
        let mut p = Program::new("t");
        let a = p.add_object(DataObject::global("a", 8));
        let b_obj = p.add_object(DataObject::global("b", 8));
        let mut b = FunctionBuilder::entry(&mut p);
        let cond = b.param();
        let aa = b.addrof(a);
        let ab = b.addrof(b_obj);
        let ptr = b.select(cond, aa, ab);
        let _ = b.load(MemWidth::B4, ptr);
        b.ret(None);
        let groups = ObjectGroups::compute(&p, &build_access(&p));
        assert_eq!(groups.group_of[a], groups.group_of[b_obj]);
        let g = groups.group_of[a];
        assert_eq!(groups.group_size[g], 16);
    }

    #[test]
    fn transitive_merge_through_shared_operation() {
        // op1 may access {a, b}; op2 may access {b, c}: a, b, c all merge.
        let mut p = Program::new("t");
        let a = p.add_object(DataObject::global("a", 4));
        let b_obj = p.add_object(DataObject::global("b", 4));
        let c = p.add_object(DataObject::global("c", 4));
        let d = p.add_object(DataObject::global("d", 4));
        let mut b = FunctionBuilder::entry(&mut p);
        let cond = b.param();
        let aa = b.addrof(a);
        let ab = b.addrof(b_obj);
        let ac = b.addrof(c);
        let ad = b.addrof(d);
        let p1 = b.select(cond, aa, ab);
        let _ = b.load(MemWidth::B4, p1);
        let p2 = b.select(cond, ab, ac);
        let _ = b.load(MemWidth::B4, p2);
        let _ = b.load(MemWidth::B4, ad);
        b.ret(None);
        let groups = ObjectGroups::compute(&p, &build_access(&p));
        assert_eq!(groups.group_of[a], groups.group_of[b_obj]);
        assert_eq!(groups.group_of[b_obj], groups.group_of[c]);
        assert_ne!(groups.group_of[a], groups.group_of[d]);
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn loop_counter_example_from_figure4() {
        // Heap site reachable through the same pointer as a global.
        let mut p = Program::new("t");
        let heap = p.add_object(DataObject::heap_site("x"));
        let value1 = p.add_object(DataObject::global("value1", 4));
        let mut b = FunctionBuilder::entry(&mut p);
        let cond = b.param();
        let sz = b.iconst(16);
        let hp = b.malloc(heap, sz);
        let gp = b.addrof(value1);
        let foo = b.select(cond, hp, gp);
        let v = b.load(MemWidth::B4, foo);
        b.ret(Some(v));
        let groups = ObjectGroups::compute(&p, &build_access(&p));
        assert_eq!(groups.group_of[heap], groups.group_of[value1]);
    }

    #[test]
    fn live_groups_excludes_untouched() {
        let mut p = Program::new("t");
        let a = p.add_object(DataObject::global("a", 8));
        let _dead = p.add_object(DataObject::global("dead", 8));
        let mut b = FunctionBuilder::entry(&mut p);
        let aa = b.addrof(a);
        let _ = b.load(MemWidth::B4, aa);
        b.ret(None);
        let groups = ObjectGroups::compute(&p, &build_access(&p));
        assert_eq!(groups.live_groups().len(), 1);
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(4);
        uf.union(0, 1);
        uf.union(2, 3);
        assert_eq!(uf.find(0), uf.find(1));
        assert_ne!(uf.find(1), uf.find(2));
        uf.union(1, 3);
        assert_eq!(uf.find(0), uf.find(2));
    }

    #[test]
    fn unused_program_groups_every_object_alone() {
        let mut p = Program::new("t");
        for i in 0..5 {
            p.add_object(DataObject::global(format!("g{i}"), 4));
        }
        let mut b = FunctionBuilder::entry(&mut p);
        b.ret(None);
        let groups = ObjectGroups::compute(&p, &build_access(&p));
        assert_eq!(groups.len(), 5);
        assert!(groups.live_groups().is_empty());
        let _ = Cmp::Eq; // silence unused import lint in some cfgs
    }
}
