//! `mcpart serve` — a crash-only partition service over a spool
//! directory.
//!
//! The engine behind the CLI's `serve` command: it watches a spool
//! directory for job files (program + method + machine config + seed),
//! admits them in deterministic batches under a bounded queue, runs
//! each through the supervised pipeline, and writes one result file per
//! job with the same status vocabulary as one-shot runs. Results are
//! backed by a **content-addressed artifact cache** keyed by everything
//! a result depends on (the [`CheckpointHeader`] fields plus the
//! method), stored in the checkpoint record format with a checksum
//! footer so every hit can be integrity-verified before it is served.
//!
//! ## Crash-only lifecycle
//!
//! A job moves through the spool as files, and every transition is an
//! atomic rename, so any `kill -9` leaves only *tolerated* artifacts:
//!
//! ```text
//! <spool>/name.job      spooled   (submitted, not yet claimed)
//! <spool>/work/name.job claimed   (in flight; requeued on restart)
//! <spool>/out/name.json done      (written via .tmp + rename)
//! <spool>/failed/name.job + name.reason   quarantined / invalid
//! <spool>/cache/<key>.json        artifact cache entry
//! <spool>/telemetry/telemetry.jsonl       flight-recorder snapshots
//! ```
//!
//! On startup [`serve`] removes stray `*.tmp` files (a crash mid-write)
//! and renames everything in `work/` back into the spool root (a crash
//! mid-batch), so interrupted jobs are simply redone — usually as cache
//! hits. Poison jobs leave the queue through `failed/` with a
//! diagnostic instead of wedging it, and overload sheds
//! deterministically: job names are processed in lexicographic order
//! and everything past the admission bound gets a typed `overloaded`
//! result file, never a silent drop.
//!
//! Result files contain only pinned (deterministic) fields, so a cache
//! hit, a recompute, and a crash-interrupted redo all produce
//! byte-identical bytes on disk.

use crate::checkpoint::{
    fingerprint, method_from_slug, method_slug, parse_checkpoint, parse_checkpoint_any,
    program_fingerprint, run_unit_full, CheckpointHeader, Manifest, UnitRecord,
};
use crate::pipeline::{Method, PipelineConfig};
use crate::repartition::RepartitionStats;
use crate::rhop::PanicPlan;
use mcpart_ir::{Profile, Program};
use mcpart_machine::Machine;
use mcpart_obs::metrics::MetricsRegistry;
use mcpart_obs::recorder::FlightRecorder;
use mcpart_obs::{json, Obs};
use mcpart_par::supervise::{supervise_unit, RetryPolicy, UnitOutcome};
use mcpart_par::{parallel_map, resolve_jobs};
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Version tag of the job-file format (`"mcpart_job"` key).
pub const JOB_VERSION: i64 = 1;

/// Loads a program by the name given in a job file. The service engine
/// is loader-agnostic so `mcpart-core` needs no dependency on the
/// workload corpus: the CLI passes its benchmark-or-`.mcir`-path
/// resolver, the bench harness passes the workload table.
pub type JobLoader<'a> = dyn Fn(&str) -> Result<(Program, Profile), String> + Sync + 'a;

/// A service-level failure: the spool directory itself is unusable.
/// Per-job failures never surface here — they become result files and
/// `failed/` entries so one poison job cannot take the service down.
#[derive(Debug)]
pub enum ServeError {
    /// The spool directory could not be prepared, scanned, or written.
    Io(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Configuration of one [`serve`] run.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads per batch (`0` = all cores).
    pub jobs: usize,
    /// Jobs claimed and computed together; commits happen in job-name
    /// order within each batch regardless of worker count.
    pub batch: usize,
    /// Admission bound per spool scan: jobs past this many (in
    /// lexicographic name order) are shed with a typed `overloaded`
    /// result file.
    pub queue: usize,
    /// Spool scan interval when idle (daemon mode).
    pub poll: Duration,
    /// Process everything currently spooled, then exit instead of
    /// polling — one-shot semantics for tests and scripts.
    pub drain: bool,
    /// Panic retry budget per job (the supervision ladder's
    /// `--retries`).
    pub retries: u32,
    /// Wall-clock ceiling per partition attempt (`--unit-timeout`).
    pub unit_timeout: Option<Duration>,
    /// Crash-injection hook for the crash-consistency tests: after
    /// committing this many jobs, abort the process with the next
    /// job's output half-written and its claimed work file still in
    /// place — exactly the on-disk state `kill -9` mid-commit leaves.
    pub halt_after: Option<u64>,
    /// Flight-recorder cadence: append a telemetry snapshot to
    /// `<spool>/telemetry/` after this many committed jobs (and once
    /// more on exit). `0` disables the recorder entirely.
    pub telemetry_every: u64,
    /// Startup-requeue budget per job (`--max-requeues`). A job found
    /// claimed-but-uncommitted at startup was in flight when the
    /// previous process died; after this many consecutive requeues it
    /// is presumed to be crashing the service itself and recovery
    /// quarantines it to `failed/` instead of requeueing it again.
    pub max_requeues: u32,
    /// Observability sink: receives the `serve/*` counters and a
    /// replay of every job's pinned pipeline events in commit order.
    pub obs: Obs,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            jobs: 0,
            batch: 8,
            queue: 256,
            poll: Duration::from_millis(200),
            drain: false,
            retries: 2,
            unit_timeout: None,
            halt_after: None,
            telemetry_every: 1,
            max_requeues: 3,
            obs: Obs::disabled(),
        }
    }
}

/// Totals of one [`serve`] run, also surfaced as `serve/*` counters on
/// the configured observability sink.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Jobs admitted past the queue bound (includes failed ones).
    pub admitted: u64,
    /// Jobs shed by admission control with an `overloaded` result.
    pub rejected: u64,
    /// Results served from a verified cache entry.
    pub cache_hits: u64,
    /// Cache entries that failed integrity verification and were
    /// deleted (their jobs were then recomputed).
    pub cache_evictions: u64,
    /// Jobs moved to `failed/` because the pipeline quarantined them.
    pub quarantined: u64,
    /// Jobs moved to `failed/` for any other reason (unparseable job
    /// file, unknown program, pipeline error).
    pub failed: u64,
    /// Jobs that completed with an `ok` result.
    pub completed: u64,
    /// Claimed jobs re-queued by crash recovery at startup.
    pub requeued: u64,
    /// Jobs quarantined by crash recovery because they exhausted the
    /// startup-requeue budget (process-killing poison jobs).
    pub poisoned: u64,
}

impl ServeSummary {
    /// One greppable line, printed by the CLI after every serve run.
    pub fn line(&self) -> String {
        format!(
            "serve summary: admitted={} rejected={} cache_hits={} cache_evictions={} \
             quarantined={} failed={} completed={} requeued={} poisoned={}",
            self.admitted,
            self.rejected,
            self.cache_hits,
            self.cache_evictions,
            self.quarantined,
            self.failed,
            self.completed,
            self.requeued,
            self.poisoned
        )
    }

    /// Records the `serve/*` counters (always all of them, so
    /// `trace-check --require serve/...` holds on every serve trace).
    fn record(&self, obs: &Obs) {
        obs.counter("serve", "admitted", self.admitted as i64);
        obs.counter("serve", "rejected", self.rejected as i64);
        obs.counter("serve", "cache_hits", self.cache_hits as i64);
        obs.counter("serve", "cache_evictions", self.cache_evictions as i64);
        obs.counter("serve", "quarantined", self.quarantined as i64);
        obs.counter("serve", "poisoned", self.poisoned as i64);
    }
}

/// A parsed job file: one JSON object per file.
///
/// ```json
/// {"mcpart_job":1,"program":"rawcaudio","method":"gdp","clusters":2,
///  "latency":5,"memory":"partitioned","seed":17417,"gdp_fuel":1000}
/// ```
///
/// Only `program` is required; everything else defaults to the
/// one-shot CLI defaults. Unknown keys are ignored (forward
/// compatibility), an unknown *value* is an invalid job.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Benchmark name or `.mcir` path, resolved by the [`JobLoader`].
    pub program: String,
    /// Partitioning method (default GDP).
    pub method: Method,
    /// Cluster count (default 2).
    pub clusters: usize,
    /// Intercluster move latency in cycles (default 5).
    pub latency: u32,
    /// Memory model slug: `partitioned`, `unified`, or
    /// `coherent:<penalty>`.
    pub memory: MemoryModel,
    /// RHOP seed override (default: the method's builtin seed).
    pub seed: Option<u64>,
    /// GDP refinement fuel cap (default unlimited).
    pub gdp_fuel: Option<u64>,
    /// Fault injection (`"func"` or `"func:n"`), for poison-job tests.
    pub inject_panic: Option<PanicPlan>,
}

/// The machine's memory model, as named in job files and checkpoint
/// headers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemoryModel {
    /// Per-cluster memories (the paper's machine).
    Partitioned,
    /// One shared memory.
    Unified,
    /// Shared memory with a remote-access penalty.
    Coherent(u32),
}

impl MemoryModel {
    /// Parses the slug used by `--memory`, job files, and checkpoint
    /// headers.
    pub fn parse(slug: &str) -> Result<MemoryModel, String> {
        if slug == "partitioned" {
            Ok(MemoryModel::Partitioned)
        } else if slug == "unified" {
            Ok(MemoryModel::Unified)
        } else if let Some(p) = slug.strip_prefix("coherent:") {
            p.parse().map(MemoryModel::Coherent).map_err(|_| {
                format!("memory `coherent:{p}`: penalty must be a non-negative integer")
            })
        } else {
            Err(format!("unknown memory model `{slug}` (partitioned|unified|coherent:<penalty>)"))
        }
    }

    /// The stable slug (inverse of [`MemoryModel::parse`]).
    pub fn slug(&self) -> String {
        match self {
            MemoryModel::Partitioned => "partitioned".to_string(),
            MemoryModel::Unified => "unified".to_string(),
            MemoryModel::Coherent(p) => format!("coherent:{p}"),
        }
    }

    /// Applies the model to a machine description.
    pub fn apply(&self, machine: Machine) -> Machine {
        match self {
            MemoryModel::Partitioned => machine,
            MemoryModel::Unified => machine.with_unified_memory(),
            MemoryModel::Coherent(p) => machine.with_coherent_cache(*p),
        }
    }
}

/// Reads an optional unsigned integer field from a job document.
fn num_field(doc: &json::JsonValue, key: &str) -> Result<Option<u64>, String> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => {
            let n = v.as_num().ok_or_else(|| format!("`{key}` must be a number"))?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(format!("`{key}` must be a non-negative integer"));
            }
            Ok(Some(n as u64))
        }
    }
}

/// Parses one job file. Errors are diagnostic strings destined for the
/// job's `failed/` entry and `invalid` result file.
pub fn parse_job(text: &str) -> Result<JobSpec, String> {
    let doc = json::parse(text.trim()).map_err(|e| format!("not a JSON job file: {e}"))?;
    let version = doc
        .get("mcpart_job")
        .and_then(json::JsonValue::as_num)
        .ok_or("not a job file (missing `mcpart_job` version)")?;
    if version as i64 != JOB_VERSION {
        return Err(format!("unsupported job version {version} (expected {JOB_VERSION})"));
    }
    let program = doc
        .get("program")
        .and_then(json::JsonValue::as_str)
        .ok_or("job is missing the `program` field")?
        .to_string();
    let method = match doc.get("method").and_then(json::JsonValue::as_str) {
        None => Method::Gdp,
        Some(slug) => method_from_slug(slug).ok_or_else(|| format!("unknown method `{slug}`"))?,
    };
    let clusters = num_field(&doc, "clusters")?.unwrap_or(2) as usize;
    if clusters == 0 {
        return Err("`clusters` must be at least 1".to_string());
    }
    let latency = num_field(&doc, "latency")?.unwrap_or(5) as u32;
    let memory = match doc.get("memory").and_then(json::JsonValue::as_str) {
        None => MemoryModel::Partitioned,
        Some(slug) => MemoryModel::parse(slug)?,
    };
    let seed = num_field(&doc, "seed")?;
    let gdp_fuel = num_field(&doc, "gdp_fuel")?;
    let inject_panic = match doc.get("inject_panic").and_then(json::JsonValue::as_str) {
        None => None,
        Some(v) => Some(match v.split_once(':') {
            Some((func, count)) => PanicPlan {
                func: func.to_string(),
                panics: count
                    .parse()
                    .map_err(|_| "`inject_panic` count must be a number".to_string())?,
            },
            None => PanicPlan::always(v),
        }),
    };
    Ok(JobSpec { program, method, clusters, latency, memory, seed, gdp_fuel, inject_panic })
}

/// The content address of a job's artifact: an FNV-1a fingerprint of
/// the checkpoint header (program hash, seed, clusters, latency,
/// memory, GDP fuel) plus the method slug — everything a result
/// depends on, nothing it doesn't.
pub fn cache_key(header: &CheckpointHeader, method: Method) -> String {
    let material = format!("{}|{}", header.to_json(), method_slug(method));
    format!("{:016x}", fingerprint(material.as_bytes()))
}

/// Key of the checksum footer line terminating every cache entry.
const CACHE_SUM_KEY: &str = "mcpart_cache_sum";

/// Renders a cache entry: a one-record checkpoint (header line + unit
/// record line, plus the unit's manifest line when the run produced
/// one) followed by a footer carrying the FNV-1a fingerprint of the
/// preceding bytes. The footer is what makes the cache
/// *self-healing*: any truncation or bit flip — even one that still
/// parses — breaks the fingerprint and the entry is evicted instead of
/// served.
pub fn render_cache_entry(
    header: &CheckpointHeader,
    record: &UnitRecord,
    manifest: Option<&Manifest>,
) -> String {
    let mut body = format!("{}\n{}\n", header.to_json(), record.to_json());
    if let Some(m) = manifest {
        body.push_str(&m.to_json());
        body.push('\n');
    }
    let sum = fingerprint(body.as_bytes());
    format!("{body}{{\"{CACHE_SUM_KEY}\":\"{sum:016x}\"}}\n")
}

/// Checksum layer of cache-entry verification: validates the footer
/// fingerprint over the raw bytes (catches truncation, bit flips, and
/// invalid UTF-8 before any parsing) and returns the covered text.
fn checksum_verified_text(bytes: &[u8]) -> Result<&str, String> {
    let Some(last) = bytes.last() else { return Err("empty entry".to_string()) };
    if *last != b'\n' {
        return Err("truncated entry (no trailing newline)".to_string());
    }
    let body = &bytes[..bytes.len() - 1];
    let footer_start = body.iter().rposition(|&b| b == b'\n').map(|p| p + 1).unwrap_or(0);
    if footer_start == 0 {
        return Err("missing checksum footer".to_string());
    }
    let prefix = &bytes[..footer_start];
    let footer = std::str::from_utf8(&body[footer_start..])
        .map_err(|_| "checksum footer is not UTF-8".to_string())?;
    let doc = json::parse(footer).map_err(|e| format!("bad checksum footer: {e}"))?;
    let sum_hex = doc
        .get(CACHE_SUM_KEY)
        .and_then(json::JsonValue::as_str)
        .ok_or_else(|| format!("footer is missing `{CACHE_SUM_KEY}`"))?;
    let sum =
        u64::from_str_radix(sum_hex, 16).map_err(|_| format!("unreadable checksum `{sum_hex}`"))?;
    let actual = fingerprint(prefix);
    if actual != sum {
        return Err(format!("checksum mismatch (stored {sum:016x}, computed {actual:016x})"));
    }
    std::str::from_utf8(prefix).map_err(|_| "entry is not UTF-8".to_string())
}

/// Verifies a cache entry end to end: checksum over the raw bytes
/// first, then a full checkpoint parse against the expected header,
/// then the unit key. Returns the verified record or the reason the
/// entry must be evicted.
pub fn verify_cache_entry(
    bytes: &[u8],
    expected: &CheckpointHeader,
    unit: &str,
) -> Result<UnitRecord, String> {
    let text = checksum_verified_text(bytes)?;
    let ck = parse_checkpoint(text, expected).map_err(|e| format!("unusable entry: {e}"))?;
    match ck.records.as_slice() {
        [record] if record.unit == unit => Ok(record.clone()),
        [record] => Err(format!("entry is for unit `{}`, wanted `{unit}`", record.unit)),
        records => Err(format!("entry holds {} records, wanted 1", records.len())),
    }
}

/// Path of the by-name baseline pointer for a job's compatibility
/// class: the cache key with the program *content* hash zeroed, so
/// every revision of a program under the same configuration (seed,
/// clusters, latency, memory, fuel, method) shares one pointer. The
/// pointer file holds the cache key of the latest published entry in
/// that class; a cache miss follows it to find a baseline manifest.
/// `.ptr`, not `.json`, so cache-entry listings never mistake it for
/// an artifact.
fn baseline_pointer_path(cache: &Path, header: &CheckpointHeader, method: Method) -> PathBuf {
    let mut class = header.clone();
    class.program_hash = 0;
    cache.join(format!("name_{}.ptr", cache_key(&class, method)))
}

/// Follows the baseline pointer on a cache miss and loads the prior
/// entry's manifest for an incremental run. Every failure — no
/// pointer, vanished entry, checksum damage, incompatible
/// configuration, no manifest — degrades to `None` (a cold run),
/// never an error: the pointer is an optimization hint, not a source
/// of truth.
fn load_baseline_manifest(
    cache: &Path,
    header: &CheckpointHeader,
    method: Method,
    unit: &str,
) -> Option<Manifest> {
    let key = fs::read_to_string(baseline_pointer_path(cache, header, method)).ok()?;
    let key = key.trim();
    if key.is_empty() || !key.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    let bytes = fs::read(cache.join(format!("{key}.json"))).ok()?;
    let text = checksum_verified_text(&bytes).ok()?;
    let ck = parse_checkpoint_any(text).ok()?;
    if !ck.header.compatible_baseline(header) {
        return None;
    }
    ck.manifest_for(unit).cloned()
}

/// Terminal status of one job, mirroring the one-shot exit codes:
/// `0` ok, `1` runtime failure (including quarantine and shed load),
/// `2` unusable job file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum JobStatus {
    Ok,
    Quarantined,
    Failed,
    Invalid,
    Overloaded,
}

impl JobStatus {
    fn slug(self) -> &'static str {
        match self {
            JobStatus::Ok => "ok",
            JobStatus::Quarantined => "quarantined",
            JobStatus::Failed => "failed",
            JobStatus::Invalid => "invalid",
            JobStatus::Overloaded => "overloaded",
        }
    }

    fn exit(self) -> i64 {
        match self {
            JobStatus::Ok => 0,
            JobStatus::Quarantined | JobStatus::Failed | JobStatus::Overloaded => 1,
            JobStatus::Invalid => 2,
        }
    }
}

/// How a job's result was obtained.
#[derive(Clone, Debug, PartialEq, Eq)]
enum CacheNote {
    Hit,
    Miss,
    Evicted(String),
}

/// Everything the sequential commit phase needs about one computed
/// job. Workers produce these in parallel; all file-system effects
/// except cache eviction happen at commit time, in job-name order.
struct JobOutcome {
    file_name: String,
    stem: String,
    status: JobStatus,
    reason: String,
    record: Option<UnitRecord>,
    cache: CacheNote,
    /// Cache entry to publish on a fresh successful compute.
    entry: Option<(PathBuf, CheckpointHeader)>,
    /// Baseline pointer to refresh alongside the entry: (pointer
    /// path, cache key of the published entry).
    pointer: Option<(PathBuf, String)>,
    /// The run's manifest, published inside the cache entry so a
    /// later revision of the same program can run incrementally.
    manifest: Option<Manifest>,
    /// Dirty-cone stats when this compute degraded a miss to an
    /// incremental run against a prior entry's manifest.
    repartition: Option<RepartitionStats>,
}

/// Renders a job's result file: one JSON line of pinned fields only
/// (no wall-clock, no cache provenance), so a cache hit, a fresh
/// compute, and a post-crash redo write byte-identical files.
fn render_result(
    stem: &str,
    status: JobStatus,
    reason: &str,
    record: Option<&UnitRecord>,
) -> String {
    let mut s = format!(
        "{{\"mcpart_result\":1,\"job\":\"{}\",\"status\":\"{}\",\"exit\":{}",
        json::escape(stem),
        status.slug(),
        status.exit()
    );
    if let Some(r) = record {
        s.push_str(&format!(
            ",\"unit\":\"{}\",\"requested\":\"{}\",\"method\":\"{}\",\"downgrades\":{}",
            json::escape(&r.unit),
            method_slug(r.requested),
            method_slug(r.method),
            r.downgrades.len()
        ));
        s.push_str(&format!(
            ",\"cycles\":{},\"dynamic_moves\":{},\"remote\":{},\"moves_inserted\":{}",
            r.cycles, r.dynamic_moves, r.remote, r.moves_inserted
        ));
        s.push_str(&format!(",\"retries\":{},\"pressure\":{}", r.retries, r.pressure));
        s.push_str(",\"quarantine\":[");
        for (i, q) in r.quarantine.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\"", json::escape(&q.unit)));
        }
        s.push_str("],\"data_bytes\":[");
        for (i, b) in r.data_bytes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&b.to_string());
        }
        s.push(']');
    }
    if !reason.is_empty() {
        s.push_str(&format!(",\"reason\":\"{}\"", json::escape(reason)));
    }
    s.push_str("}\n");
    s
}

/// The spool's subdirectories. All paths live under one root so a
/// single rename moves a job between lifecycle states.
struct SpoolDirs {
    root: PathBuf,
    work: PathBuf,
    out: PathBuf,
    failed: PathBuf,
    cache: PathBuf,
}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> ServeError {
    ServeError::Io(format!("cannot {what} {}: {e}", path.display()))
}

impl SpoolDirs {
    fn prepare(root: &Path) -> Result<SpoolDirs, ServeError> {
        let dirs = SpoolDirs {
            root: root.to_path_buf(),
            work: root.join("work"),
            out: root.join("out"),
            failed: root.join("failed"),
            cache: root.join("cache"),
        };
        for d in [&dirs.root, &dirs.work, &dirs.out, &dirs.failed, &dirs.cache] {
            fs::create_dir_all(d).map_err(|e| io_err("create", d, e))?;
        }
        Ok(dirs)
    }

    /// Crash recovery: removes half-written `*.tmp` artifacts and
    /// requeues claimed-but-uncommitted jobs. Each requeue is tallied
    /// in a `<stem>.requeues` sidecar next to the spooled job (the
    /// `.requeues` extension keeps it invisible to admission); a job
    /// that exceeds `max_requeues` consecutive requeues has taken the
    /// process down that many times mid-flight and is quarantined to
    /// `failed/` with a diagnostic instead. Returns (requeued jobs,
    /// poisoned jobs, removed tmp files).
    fn recover(&self, max_requeues: u32) -> Result<(u64, u64, u64), ServeError> {
        let mut tmps = 0;
        for dir in [&self.out, &self.cache] {
            for entry in fs::read_dir(dir).map_err(|e| io_err("read", dir, e))? {
                let entry = entry.map_err(|e| io_err("read", dir, e))?;
                let path = entry.path();
                if path.extension().and_then(|e| e.to_str()) == Some("tmp") {
                    fs::remove_file(&path).map_err(|e| io_err("remove", &path, e))?;
                    tmps += 1;
                }
            }
        }
        let mut requeued = 0;
        let mut poisoned = 0;
        for name in list_jobs(&self.work)? {
            let from = self.work.join(&name);
            let stem = name.strip_suffix(".job").unwrap_or(&name);
            let sidecar = self.sidecar(stem);
            // A torn or missing sidecar reads as zero: the budget
            // resets rather than quarantining a healthy job early.
            let count = fs::read_to_string(&sidecar)
                .ok()
                .and_then(|s| s.trim().parse::<u32>().ok())
                .unwrap_or(0)
                .saturating_add(1);
            if count > max_requeues {
                let dest = self.failed.join(&name);
                fs::rename(&from, &dest).map_err(|e| io_err("quarantine", &from, e))?;
                write_atomic(
                    &self.failed.join(format!("{stem}.reason")),
                    &format!(
                        "poisoned: requeued {max_requeues} time(s) by crash recovery \
                         without ever committing; presumed to crash the service\n"
                    ),
                )?;
                let _ = fs::remove_file(&sidecar);
                poisoned += 1;
                continue;
            }
            fs::write(&sidecar, format!("{count}\n"))
                .map_err(|e| io_err("record requeue in", &sidecar, e))?;
            let to = self.root.join(&name);
            fs::rename(&from, &to).map_err(|e| io_err("requeue", &from, e))?;
            requeued += 1;
        }
        Ok((requeued, poisoned, tmps))
    }

    /// The startup-requeue tally for one job stem.
    fn sidecar(&self, stem: &str) -> PathBuf {
        self.root.join(format!("{stem}.requeues"))
    }
}

/// Job files (`*.job`) directly inside `dir`, in lexicographic order —
/// the deterministic admission order.
fn list_jobs(dir: &Path) -> Result<Vec<String>, ServeError> {
    let mut names = Vec::new();
    for entry in fs::read_dir(dir).map_err(|e| io_err("read", dir, e))? {
        let entry = entry.map_err(|e| io_err("read", dir, e))?;
        if !entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
            continue;
        }
        if let Some(name) = entry.file_name().to_str() {
            if name.ends_with(".job") {
                names.push(name.to_string());
            }
        }
    }
    names.sort();
    Ok(names)
}

/// Publishes a file atomically: write to `<path>.tmp`, sync, rename.
/// A crash leaves either the old content, the new content, or a
/// `.tmp` that recovery deletes — never a half-written final file.
fn write_atomic(path: &Path, text: &str) -> Result<(), ServeError> {
    let tmp = path.with_extension("tmp");
    let mut file = fs::File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
    file.write_all(text.as_bytes())
        .and_then(|()| file.sync_data())
        .map_err(|e| io_err("write", &tmp, e))?;
    drop(file);
    fs::rename(&tmp, path).map_err(|e| io_err("publish", path, e))
}

/// One progress line on stdout. Write errors are swallowed: losing a
/// log line to a closed pipe must not take the service down.
fn progress(line: &str) {
    let mut out = std::io::stdout();
    let _ = writeln!(out, "{line}");
    let _ = out.flush();
}

/// Computes one claimed job (the parallel phase — no spool mutation
/// except cache eviction, which is keyed and idempotent).
fn process_job(
    dirs: &SpoolDirs,
    cfg: &ServeConfig,
    loader: &JobLoader<'_>,
    file_name: &str,
) -> JobOutcome {
    let stem = file_name.strip_suffix(".job").unwrap_or(file_name).to_string();
    let invalid = |stem: &str, reason: String| JobOutcome {
        file_name: file_name.to_string(),
        stem: stem.to_string(),
        status: JobStatus::Invalid,
        reason,
        record: None,
        cache: CacheNote::Miss,
        entry: None,
        pointer: None,
        manifest: None,
        repartition: None,
    };
    let path = dirs.work.join(file_name);
    let text = match fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => return invalid(&stem, format!("cannot read job file: {e}")),
    };
    let spec = match parse_job(&text) {
        Ok(s) => s,
        Err(e) => return invalid(&stem, e),
    };
    let (program, profile) = match loader(&spec.program) {
        Ok(p) => p,
        Err(e) => return invalid(&stem, e),
    };
    let machine = spec.memory.apply(Machine::homogeneous(spec.clusters, spec.latency));
    let seed = spec.seed.unwrap_or_else(|| PipelineConfig::new(spec.method).rhop.seed);
    let header = CheckpointHeader {
        program: program.name.clone(),
        program_hash: program_fingerprint(&program),
        seed,
        clusters: spec.clusters,
        latency: spec.latency,
        memory: spec.memory.slug(),
        gdp_fuel: spec.gdp_fuel,
    };
    let unit = format!("{}/{}", program.name, method_slug(spec.method));
    let entry_path = dirs.cache.join(format!("{}.json", cache_key(&header, spec.method)));

    let mut cache = CacheNote::Miss;
    if let Ok(bytes) = fs::read(&entry_path) {
        match verify_cache_entry(&bytes, &header, &unit) {
            Ok(record) => {
                return JobOutcome {
                    file_name: file_name.to_string(),
                    stem,
                    status: JobStatus::Ok,
                    reason: String::new(),
                    record: Some(record),
                    cache: CacheNote::Hit,
                    entry: None,
                    pointer: None,
                    manifest: None,
                    repartition: None,
                };
            }
            Err(why) => {
                // Never serve a suspect entry: evict and recompute.
                let _ = fs::remove_file(&entry_path);
                cache = CacheNote::Evicted(why);
            }
        }
    }

    let mut pcfg = PipelineConfig::new(spec.method)
        .with_jobs(1)
        .with_retries(cfg.retries)
        .with_obs(Obs::enabled());
    pcfg.gdp.fuel = spec.gdp_fuel;
    pcfg.rhop.seed = seed;
    pcfg.rhop.inject_panic = spec.inject_panic.clone();
    pcfg.unit_timeout = cfg.unit_timeout;
    // A miss on a program we have partitioned before (under this exact
    // configuration) degrades to an incremental run: replay the clean
    // functions from the prior entry's manifest, recompute the dirty
    // cone. Byte-identity to a cold run is RHOP's purity contract.
    pcfg.baseline =
        load_baseline_manifest(&dirs.cache, &header, spec.method, &unit).map(std::sync::Arc::new);

    match supervise_unit(
        &unit,
        RetryPolicy::new(cfg.retries),
        |_| true,
        |_| run_unit_full(&program, &profile, &machine, &pcfg),
    ) {
        UnitOutcome::Completed { value: run, .. } => {
            let record = run.record;
            let (status, reason) = if record.quarantine.is_empty() {
                (JobStatus::Ok, String::new())
            } else {
                let units: Vec<String> = record
                    .quarantine
                    .iter()
                    .map(|q| format!("{} ({} attempts): {}", q.unit, q.attempts, q.reason))
                    .collect();
                (JobStatus::Quarantined, units.join("; "))
            };
            let (entry, pointer) = if status == JobStatus::Ok {
                let pointer_path = baseline_pointer_path(&dirs.cache, &header, spec.method);
                let key = cache_key(&header, spec.method);
                (Some((entry_path, header)), Some((pointer_path, key)))
            } else {
                (None, None)
            };
            JobOutcome {
                file_name: file_name.to_string(),
                stem,
                status,
                reason,
                record: Some(record),
                cache,
                entry,
                pointer,
                manifest: run.manifest,
                repartition: run.repartition,
            }
        }
        UnitOutcome::Failed(e) => JobOutcome {
            file_name: file_name.to_string(),
            stem,
            status: JobStatus::Failed,
            reason: e.to_string(),
            record: None,
            cache,
            entry: None,
            pointer: None,
            manifest: None,
            repartition: None,
        },
        UnitOutcome::Quarantined(q) => JobOutcome {
            file_name: file_name.to_string(),
            stem,
            status: JobStatus::Quarantined,
            reason: format!("{} ({} attempts): {}", q.unit, q.attempts, q.reason),
            record: None,
            cache,
            entry: None,
            pointer: None,
            manifest: None,
            repartition: None,
        },
    }
}

/// Commits one outcome: result file, cache entry, work-file
/// disposition, counters — all in job-name order, so the on-disk
/// effects of a batch are independent of the worker count.
fn commit(
    dirs: &SpoolDirs,
    cfg: &ServeConfig,
    outcome: &JobOutcome,
    sum: &mut ServeSummary,
) -> Result<(), ServeError> {
    let out_path = dirs.out.join(format!("{}.json", outcome.stem));
    let text =
        render_result(&outcome.stem, outcome.status, &outcome.reason, outcome.record.as_ref());

    // Publish the cache entry before the result: a crash between the
    // two costs one recompute-turned-cache-hit, never a result whose
    // artifact vanished.
    if let (Some((entry_path, header)), Some(record)) = (&outcome.entry, &outcome.record) {
        write_atomic(entry_path, &render_cache_entry(header, record, outcome.manifest.as_ref()))?;
        // Refresh the by-name pointer after the entry it names exists;
        // a crash between the two leaves the old pointer, which at
        // worst costs one cold run.
        if let Some((pointer_path, key)) = &outcome.pointer {
            write_atomic(pointer_path, &format!("{key}\n"))?;
        }
    }

    let committed = sum.completed + sum.quarantined + sum.failed;
    if cfg.halt_after == Some(committed) {
        // Crash injection: die with this job's output half-written
        // and its work file still claimed — the exact state kill -9
        // leaves — so the restart path is exercised deterministically.
        let tmp = out_path.with_extension("tmp");
        let half = &text.as_bytes()[..text.len() / 2];
        let _ = fs::write(&tmp, half);
        std::process::abort();
    }

    write_atomic(&out_path, &text)?;
    if let Some(record) = &outcome.record {
        record.replay_events(&cfg.obs);
    }
    // Dirty-cone counters ride after the replayed pipeline events so
    // an incremental trace is the from-scratch trace plus a trailing
    // `repartition/*` block — never interleaved with pinned events.
    if let Some(rp) = &outcome.repartition {
        cfg.obs.counter("repartition", "dirty_funcs", rp.dirty_funcs as i64);
        cfg.obs.counter("repartition", "replayed_funcs", rp.replayed_funcs as i64);
        cfg.obs.counter("repartition", "cone_frac_x1000", rp.cone_frac_x1000() as i64);
    }

    // The job reached a committed disposition, so it is no longer a
    // requeue suspect: forget its startup-requeue tally.
    let _ = fs::remove_file(dirs.sidecar(&outcome.stem));
    let work_path = dirs.work.join(&outcome.file_name);
    match outcome.status {
        JobStatus::Ok => {
            fs::remove_file(&work_path).map_err(|e| io_err("retire", &work_path, e))?;
            sum.completed += 1;
        }
        JobStatus::Quarantined | JobStatus::Failed | JobStatus::Invalid => {
            let dest = dirs.failed.join(&outcome.file_name);
            fs::rename(&work_path, &dest).map_err(|e| io_err("quarantine", &work_path, e))?;
            let reason_path = dirs.failed.join(format!("{}.reason", outcome.stem));
            write_atomic(
                &reason_path,
                &format!("{}: {}\n", outcome.status.slug(), outcome.reason),
            )?;
            if outcome.status == JobStatus::Quarantined {
                sum.quarantined += 1;
            } else {
                sum.failed += 1;
            }
        }
        JobStatus::Overloaded => unreachable!("overload is shed before claiming"),
    }
    match (&outcome.cache, outcome.status) {
        (CacheNote::Hit, _) => {
            sum.cache_hits += 1;
            progress(&format!("job {}: {} (cache hit)", outcome.stem, outcome.status.slug()));
        }
        (CacheNote::Evicted(why), _) => {
            sum.cache_evictions += 1;
            progress(&format!(
                "job {}: {} (cache entry evicted: {}; recomputed)",
                outcome.stem,
                outcome.status.slug(),
                why
            ));
        }
        (CacheNote::Miss, JobStatus::Ok) => match &outcome.repartition {
            Some(rp) => progress(&format!(
                "job {}: ok (computed incrementally: {}/{} replayed)",
                outcome.stem, rp.replayed_funcs, rp.total_funcs
            )),
            None => progress(&format!("job {}: ok (computed)", outcome.stem)),
        },
        (CacheNote::Miss, _) => {
            progress(&format!(
                "job {}: {}: {}",
                outcome.stem,
                outcome.status.slug(),
                outcome.reason
            ));
        }
    }
    Ok(())
}

/// Folds one committed job into the run's metrics registry: the job's
/// partition time feeds a wall histogram, its pinned pipeline events
/// feed pinned histograms (counter values plus span args — which is
/// how per-job GDP cut, RHOP estimator effort, and stall/transfer
/// cycle distributions reach the flight recorder).
fn observe_outcome(registry: &mut MetricsRegistry, outcome: &JobOutcome) {
    let Some(record) = &outcome.record else { return };
    registry.observe_wall("serve/job", (record.partition_ms.max(0.0) * 1000.0) as u64);
    if let Some(rp) = &outcome.repartition {
        registry.observe("repartition/replayed_funcs", rp.replayed_funcs as i64);
        registry.observe("repartition/cone_frac_x1000", rp.cone_frac_x1000() as i64);
    }
    for e in &record.events {
        let label = format!("{}/{}", e.cat, e.name);
        if let Some(v) = e.counter {
            registry.observe(&label, v);
        }
        for (k, v) in &e.args {
            registry.observe(&format!("{label}.{k}"), *v);
        }
    }
}

/// Appends one cumulative snapshot (scalar totals + histograms) to the
/// flight recorder.
fn flush_telemetry(
    recorder: &mut FlightRecorder,
    sum: &ServeSummary,
    registry: &MetricsRegistry,
) -> Result<(), ServeError> {
    let counters = [
        ("admitted", sum.admitted as i64),
        ("rejected", sum.rejected as i64),
        ("cache_hits", sum.cache_hits as i64),
        ("cache_evictions", sum.cache_evictions as i64),
        ("quarantined", sum.quarantined as i64),
        ("failed", sum.failed as i64),
        ("completed", sum.completed as i64),
        ("requeued", sum.requeued as i64),
        ("poisoned", sum.poisoned as i64),
    ];
    recorder
        .record(&counters, registry)
        .map_err(|e| ServeError::Io(format!("telemetry append failed: {e}")))
}

/// Runs the partition service over `spool` until it is told to stop:
/// in drain mode, when the spool is empty; in daemon mode, when
/// `shutdown` becomes true (the CLI's SIGTERM handler sets it), after
/// which the in-flight batch is drained and the function returns
/// normally — crash-only shutdown has no other cleanup to do.
pub fn serve(
    spool: &Path,
    cfg: &ServeConfig,
    loader: &JobLoader<'_>,
    shutdown: &AtomicBool,
) -> Result<ServeSummary, ServeError> {
    let dirs = SpoolDirs::prepare(spool)?;
    let (requeued, poisoned, tmps) = dirs.recover(cfg.max_requeues)?;
    if requeued > 0 || poisoned > 0 || tmps > 0 {
        progress(&format!(
            "recovery: requeued {requeued} interrupted job(s), quarantined {poisoned} \
             poison job(s), removed {tmps} partial artifact(s)"
        ));
    }
    let mut sum = ServeSummary { requeued, poisoned, ..ServeSummary::default() };
    let workers = resolve_jobs(cfg.jobs);
    let mut recorder = if cfg.telemetry_every > 0 {
        let dir = spool.join("telemetry");
        Some(FlightRecorder::open(&dir).map_err(|e| io_err("open telemetry", &dir, e))?)
    } else {
        None
    };
    let mut registry = MetricsRegistry::new();
    let mut since_flush = 0u64;
    'scan: loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let pending = list_jobs(&dirs.root)?;
        if pending.is_empty() {
            if cfg.drain {
                break;
            }
            let step = Duration::from_millis(25).min(cfg.poll.max(Duration::from_millis(1)));
            let mut slept = Duration::ZERO;
            while slept < cfg.poll && !shutdown.load(Ordering::SeqCst) {
                std::thread::sleep(step);
                slept += step;
            }
            continue;
        }
        // Deterministic admission: lexicographic order, bounded queue.
        let bound = pending.len().min(cfg.queue.max(1));
        let (admitted, shed) = pending.split_at(bound);
        for name in shed {
            let stem = name.strip_suffix(".job").unwrap_or(name);
            let reason = format!("admission queue full (bound {})", cfg.queue.max(1));
            let text = render_result(stem, JobStatus::Overloaded, &reason, None);
            write_atomic(&dirs.out.join(format!("{stem}.json")), &text)?;
            let job_path = dirs.root.join(name);
            fs::remove_file(&job_path).map_err(|e| io_err("shed", &job_path, e))?;
            let _ = fs::remove_file(dirs.sidecar(stem));
            sum.rejected += 1;
            progress(&format!("job {stem}: overloaded (shed)"));
        }
        sum.admitted += admitted.len() as u64;
        registry.observe("serve/queue_depth", pending.len() as i64);
        for chunk in admitted.chunks(cfg.batch.max(1)) {
            if shutdown.load(Ordering::SeqCst) {
                // Unclaimed jobs stay spooled for the next run.
                sum.admitted -= chunk.len() as u64;
                break 'scan;
            }
            let batch_start = Instant::now();
            for name in chunk {
                let from = dirs.root.join(name);
                let to = dirs.work.join(name);
                fs::rename(&from, &to).map_err(|e| io_err("claim", &from, e))?;
            }
            let outcomes =
                parallel_map(workers, chunk, |_, name| process_job(&dirs, cfg, loader, name));
            for outcome in &outcomes {
                commit(&dirs, cfg, outcome, &mut sum)?;
                observe_outcome(&mut registry, outcome);
                since_flush += 1;
                if let Some(rec) = recorder.as_mut() {
                    if since_flush >= cfg.telemetry_every {
                        flush_telemetry(rec, &sum, &registry)?;
                        since_flush = 0;
                    }
                }
            }
            registry.observe("serve/batch_jobs", chunk.len() as i64);
            registry.observe_wall("serve/batch", batch_start.elapsed().as_micros() as u64);
        }
        // A shutdown between chunks also lands here with admitted
        // jobs subtracted; recount what is left for the next pass.
    }
    if let Some(rec) = recorder.as_mut() {
        // Exit snapshot: the batch histograms recorded since the last
        // per-job flush, and a final cumulative record for this run
        // even if it committed nothing.
        flush_telemetry(rec, &sum, &registry)?;
    }
    sum.record(&cfg.obs);
    progress(&sum.line());
    Ok(sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::run_unit;
    use mcpart_ir::{DataObject, FunctionBuilder, MemWidth};

    fn demo() -> (Program, Profile) {
        let mut program = Program::new("demo");
        let table = program.add_object(DataObject::global("table", 64));
        let mut b = FunctionBuilder::entry(&mut program);
        let base = b.addrof(table);
        let v = b.load(MemWidth::B4, base);
        let w = b.add(v, v);
        b.store(MemWidth::B4, base, w);
        b.ret(None);
        let profile = Profile::uniform(&program, 100);
        (program, profile)
    }

    fn demo_header(program: &Program) -> CheckpointHeader {
        CheckpointHeader {
            program: program.name.clone(),
            program_hash: program_fingerprint(program),
            seed: PipelineConfig::new(Method::Gdp).rhop.seed,
            clusters: 2,
            latency: 5,
            memory: "partitioned".to_string(),
            gdp_fuel: None,
        }
    }

    fn demo_record(program: &Program, profile: &Profile) -> UnitRecord {
        let machine = Machine::homogeneous(2, 5);
        let cfg = PipelineConfig::new(Method::Gdp);
        run_unit(program, profile, &machine, &cfg).expect("demo pipeline runs")
    }

    #[test]
    fn job_parsing_defaults_and_errors() {
        let spec = parse_job(r#"{"mcpart_job":1,"program":"fir"}"#).expect("minimal job");
        assert_eq!(spec.program, "fir");
        assert_eq!(spec.method, Method::Gdp);
        assert_eq!(spec.clusters, 2);
        assert_eq!(spec.latency, 5);
        assert_eq!(spec.memory, MemoryModel::Partitioned);
        assert!(spec.seed.is_none());

        let spec = parse_job(
            r#"{"mcpart_job":1,"program":"fir","method":"naive","clusters":4,
                "latency":9,"memory":"coherent:3","seed":7,"gdp_fuel":100,
                "inject_panic":"main:2"}"#,
        )
        .expect("full job");
        assert_eq!(spec.method, Method::Naive);
        assert_eq!(spec.clusters, 4);
        assert_eq!(spec.memory, MemoryModel::Coherent(3));
        assert_eq!(spec.seed, Some(7));
        assert_eq!(spec.inject_panic.as_ref().map(|p| p.panics), Some(2));

        for bad in [
            "not json",
            "{}",
            r#"{"mcpart_job":2,"program":"fir"}"#,
            r#"{"mcpart_job":1}"#,
            r#"{"mcpart_job":1,"program":"fir","method":"quantum"}"#,
            r#"{"mcpart_job":1,"program":"fir","clusters":0}"#,
            r#"{"mcpart_job":1,"program":"fir","memory":"ram"}"#,
            r#"{"mcpart_job":1,"program":"fir","seed":-3}"#,
        ] {
            assert!(parse_job(bad).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn cache_entry_roundtrip_and_verification() {
        let (program, profile) = demo();
        let header = demo_header(&program);
        let record = demo_record(&program, &profile);
        let entry = render_cache_entry(&header, &record, None);
        let verified = verify_cache_entry(entry.as_bytes(), &header, &record.unit)
            .expect("pristine entry verifies");
        assert_eq!(verified, record);
    }

    #[test]
    fn cache_entry_with_manifest_verifies_and_yields_it_back() {
        let (program, profile) = demo();
        let header = demo_header(&program);
        let machine = Machine::homogeneous(2, 5);
        let cfg = PipelineConfig::new(Method::Gdp);
        let run = run_unit_full(&program, &profile, &machine, &cfg).expect("unit runs");
        let manifest = run.manifest.expect("GDP run produces a manifest");
        let entry = render_cache_entry(&header, &run.record, Some(&manifest));
        let verified = verify_cache_entry(entry.as_bytes(), &header, &run.record.unit)
            .expect("manifest-bearing entry verifies");
        assert_eq!(verified, run.record);
        let text = checksum_verified_text(entry.as_bytes()).expect("checksum holds");
        let ck = parse_checkpoint_any(text).expect("parses as checkpoint");
        assert_eq!(ck.manifest_for(&run.record.unit), Some(&manifest));
    }

    #[test]
    fn cache_verification_rejects_every_corruption() {
        let (program, profile) = demo();
        let header = demo_header(&program);
        let record = demo_record(&program, &profile);
        let entry = render_cache_entry(&header, &record, None);
        let bytes = entry.as_bytes();

        // Truncation sweep: every proper prefix must be rejected.
        for keep in [0, 1, bytes.len() / 4, bytes.len() / 2, bytes.len() - 2, bytes.len() - 1] {
            assert!(
                verify_cache_entry(&bytes[..keep], &header, &record.unit).is_err(),
                "accepted a {keep}-byte truncation"
            );
        }
        // Bit flips: every byte is covered by the checksum.
        for pos in (0..bytes.len()).step_by(bytes.len() / 23 + 1) {
            let mut flipped = bytes.to_vec();
            flipped[pos] ^= 0x10;
            assert!(
                verify_cache_entry(&flipped, &header, &record.unit).is_err(),
                "accepted a bit flip at byte {pos}"
            );
        }
        // Headerless / foreign content.
        for junk in ["", "\n", "{\"x\":1}\n", "plain text\n"] {
            assert!(verify_cache_entry(junk.as_bytes(), &header, &record.unit).is_err());
        }
        // A wrong unit or mismatched header is stale, not servable.
        assert!(verify_cache_entry(bytes, &header, "other/gdp").is_err());
        let mut other = header.clone();
        other.seed ^= 1;
        assert!(verify_cache_entry(bytes, &other, &record.unit).is_err());
    }

    #[test]
    fn cache_key_separates_configurations() {
        let (program, _) = demo();
        let header = demo_header(&program);
        let base = cache_key(&header, Method::Gdp);
        assert_eq!(base, cache_key(&header, Method::Gdp));
        assert_ne!(base, cache_key(&header, Method::Naive));
        let mut seeded = header.clone();
        seeded.seed += 1;
        assert_ne!(base, cache_key(&seeded, Method::Gdp));
        let mut wider = header.clone();
        wider.clusters = 4;
        assert_ne!(base, cache_key(&wider, Method::Gdp));
    }

    #[test]
    fn memory_model_slug_roundtrip() {
        for slug in ["partitioned", "unified", "coherent:7"] {
            assert_eq!(MemoryModel::parse(slug).expect("parses").slug(), slug);
        }
        assert!(MemoryModel::parse("coherent:-1").is_err());
        assert!(MemoryModel::parse("fast").is_err());
    }

    #[test]
    fn result_files_are_pinned_and_typed() {
        let (program, profile) = demo();
        let record = demo_record(&program, &profile);
        let ok = render_result("j1", JobStatus::Ok, "", Some(&record));
        assert!(ok.contains("\"status\":\"ok\",\"exit\":0"));
        assert!(ok.contains("\"cycles\":"));
        assert!(!ok.contains("partition_ms"), "wall-clock leaked into a result file");
        let shed =
            render_result("j2", JobStatus::Overloaded, "admission queue full (bound 1)", None);
        assert!(shed.contains("\"status\":\"overloaded\",\"exit\":1"));
        assert!(shed.contains("queue full"));
        let invalid = render_result("j3", JobStatus::Invalid, "not a JSON job file: x", None);
        assert!(invalid.contains("\"exit\":2"));
    }

    #[test]
    fn startup_requeue_budget_quarantines_poison_jobs() {
        let root =
            std::env::temp_dir().join(format!("mcpart-serve-requeues-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let dirs = SpoolDirs::prepare(&root).expect("spool");
        let cap = 2u32;
        fs::write(dirs.root.join("poison.job"), "{}").expect("spool job");

        // Crash loop: the job is claimed, the process dies, the next
        // startup requeues it — `cap` times, each tallied in the
        // sidecar — and the startup after that quarantines it.
        for round in 1..=cap {
            fs::rename(dirs.root.join("poison.job"), dirs.work.join("poison.job")).expect("claim");
            let (requeued, poisoned, _) = dirs.recover(cap).expect("recover");
            assert_eq!((requeued, poisoned), (1, 0), "round {round}");
            assert_eq!(
                fs::read_to_string(dirs.sidecar("poison")).expect("sidecar").trim(),
                round.to_string()
            );
        }
        fs::rename(dirs.root.join("poison.job"), dirs.work.join("poison.job")).expect("claim");
        let (requeued, poisoned, _) = dirs.recover(cap).expect("recover");
        assert_eq!((requeued, poisoned), (0, 1), "budget exhausted, must quarantine");
        assert!(dirs.failed.join("poison.job").exists(), "job not moved to failed/");
        let reason = fs::read_to_string(dirs.failed.join("poison.reason")).expect("diagnostic");
        assert!(reason.contains("poisoned: requeued 2 time(s)"), "{reason}");
        assert!(!dirs.sidecar("poison").exists(), "sidecar must not outlive the job");

        // A torn sidecar resets the tally instead of quarantining a
        // job whose history was lost.
        fs::write(dirs.root.join("flaky.job"), "{}").expect("spool job");
        fs::rename(dirs.root.join("flaky.job"), dirs.work.join("flaky.job")).expect("claim");
        fs::write(dirs.sidecar("flaky"), "99 garbage").expect("torn sidecar");
        let (requeued, poisoned, _) = dirs.recover(1).expect("recover");
        assert_eq!((requeued, poisoned), (1, 0), "torn tally must read as zero");
        let _ = fs::remove_dir_all(&root);
    }
}
