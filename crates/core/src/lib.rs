//! # mcpart-core — Global Data Partitioning for multicluster processors
//!
//! The primary contribution of Chu & Mahlke, *Compiler-directed Data
//! Partitioning for Multicluster Processors* (CGO 2006), plus the three
//! baselines it is evaluated against:
//!
//! * **GDP** ([`gdp_partition`]) — first pass: the whole-program
//!   data-flow graph ([`ProgramDfg`]) is coarsened by access-pattern
//!   merging ([`ObjectGroups`]) and split by a multilevel graph
//!   partitioner balancing data bytes per cluster memory;
//! * **RHOP** ([`rhop_partition`]) — second pass: region-based
//!   hierarchical operation partitioning with memory operations locked
//!   to their object's home cluster;
//! * **Baselines** — [`unified_partition`], [`naive_partition`],
//!   [`profile_max_partition`] (Table 1);
//! * **Pipeline** ([`run_pipeline`]) — analyses, partitioning,
//!   normalization, intercluster move insertion, scheduling, and the
//!   cycle/move accounting behind every figure of the paper;
//! * **Exhaustive search** ([`exhaustive_search`]) — Figure 9's sweep of
//!   all object mappings.
//!
//! ```
//! use mcpart_ir::{Program, DataObject, FunctionBuilder, MemWidth, Profile};
//! use mcpart_machine::Machine;
//! use mcpart_core::{run_pipeline, Method, PipelineConfig};
//!
//! let mut program = Program::new("demo");
//! let table = program.add_object(DataObject::global("table", 64));
//! let mut b = FunctionBuilder::entry(&mut program);
//! let base = b.addrof(table);
//! let v = b.load(MemWidth::B4, base);
//! let w = b.add(v, v);
//! b.store(MemWidth::B4, base, w);
//! b.ret(None);
//!
//! let machine = Machine::paper_2cluster(5);
//! let profile = Profile::uniform(&program, 100);
//! let result = run_pipeline(&program, &profile, &machine, &PipelineConfig::new(Method::Gdp))
//!     .expect("pipeline");
//! assert!(result.cycles() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod baselines;
mod chaos;
mod checkpoint;
mod dfg;
mod error;
mod exhaustive;
mod gdp;
mod groups;
mod oracle;
mod pipeline;
pub mod repartition;
mod rhop;
mod serve;

pub use baselines::{
    group_cluster_frequencies, naive_partition, profile_max_partition, unified_partition,
};
pub use chaos::{
    run_chaos, run_scenario, ChaosConfig, ChaosError, ChaosSummary, Scenario, ScenarioResult,
    ScenarioVerdict,
};
pub use checkpoint::{
    fingerprint, load_checkpoint, load_checkpoint_any, method_from_slug, method_slug,
    parse_checkpoint, parse_checkpoint_any, program_fingerprint, run_unit, run_unit_full,
    Checkpoint, CheckpointError, CheckpointHeader, CheckpointWriter, Manifest, ManifestFunc,
    PinnedEvent, UnitRecord, UnitRun, CHECKPOINT_VERSION, MANIFEST_KEY,
};
pub use dfg::{ProgramDfg, ProgramNode};
pub use error::{
    Downgrade, GdpError, McpartError, PipelineError, PipelineErrorKind, RhopError, Stage,
};
pub use exhaustive::{
    evaluate_mapping, exhaustive_search, ExhaustiveError, ExhaustivePoint, TooManyGroups,
};
pub use gdp::{data_partition_from_mapping, gdp_partition, DataPartition, GdpConfig};
pub use groups::ObjectGroups;
pub use oracle::{check_result, OracleCheck, OracleReport};
pub use pipeline::{run_all_methods, run_pipeline, Method, PipelineConfig, PipelineResult};
pub use repartition::{build_manifest, compute_reuse, RepartitionStats};
pub use rhop::{
    rhop_partition, rhop_partition_detailed, FuncPartitionOutcome, PanicPlan, RegionScope,
    ReuseEntry, RhopConfig, RhopStats,
};
pub use serve::{
    cache_key, parse_job, render_cache_entry, serve, verify_cache_entry, JobLoader, JobSpec,
    MemoryModel, ServeConfig, ServeError, ServeSummary, JOB_VERSION,
};
