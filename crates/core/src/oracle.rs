//! The independent placement oracle.
//!
//! Judges a [`PipelineResult`] without consulting any GDP or RHOP
//! internals: every invariant below is recomputed from the raw
//! transformed program, the placement tables, the machine description
//! and the simulator. The partitioners could be arbitrarily buggy —
//! swapped clusters, phantom byte accounting, a broken degradation
//! ladder — and the oracle would still catch it, because its only
//! shared code with them is the IR itself.
//!
//! The chaos harness ([`crate::chaos`]) runs this oracle over every
//! scenario; `#[cfg(test)]` suites use it directly as a property.
//!
//! Checks, in evaluation order:
//!
//! 1. **shape** — placement tables exactly mirror the transformed
//!    program: one cluster per operation per function, one home slot
//!    per data object.
//! 2. **range** — every cluster index and object home is a real
//!    cluster of the machine.
//! 3. **calls** — every `call` executes on cluster 0 (the calling
//!    convention the normalizer enforces).
//! 4. **memops** — under partitioned memory, every memory operation
//!    executes on the home cluster of every object it can access.
//! 5. **bridges** — every operand is read from the cluster that owns
//!    its register: for each non-`move` operation, each source
//!    register's defining cluster equals the operation's cluster
//!    (`move` operations are the bridges and are exempt).
//! 6. **bytes** — `data_bytes` recounted from object sizes and homes,
//!    byte for byte, plus the DFG cut recount: on one cluster the
//!    value cut must be zero.
//! 7. **moves** — the static intercluster move count recounted by
//!    scanning the transformed program for `move` operations whose
//!    source register lives on another cluster.
//! 8. **ladder** — downgrade records form a chain: first rung starts
//!    at the requested method, each hop follows
//!    [`Method::fallback`], the last rung lands on the producing
//!    method, and the producing method differs from the requested one
//!    exactly when downgrades exist.
//! 9. **quarantine** — every quarantined function sits on the trivial
//!    fallback placement: all its operations on cluster 0, except
//!    memory operations pinned to their object's home and the bridges
//!    serving them.
//! 10. **semantics** — the transformed program computes the same
//!     return value and final memory as the original, on the
//!     simulator.

use crate::pipeline::{Method, PipelineResult};
use mcpart_analysis::{AccessInfo, AccessSite, PointsTo};
use mcpart_ir::{FuncId, Opcode, Profile, Program};
use mcpart_machine::Machine;
use mcpart_sim::ExecConfig;
use std::fmt;

/// One oracle invariant's verdict.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OracleCheck {
    /// Stable check name (`shape`, `range`, ... as listed in the
    /// module docs).
    pub name: &'static str,
    /// Whether the invariant held.
    pub passed: bool,
    /// Human-readable evidence: the first violation found, or a short
    /// summary of what was verified.
    pub detail: String,
}

/// The oracle's full verdict on one pipeline result.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct OracleReport {
    /// Every check that ran, in evaluation order.
    pub checks: Vec<OracleCheck>,
}

impl OracleReport {
    /// `true` when every check passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// The failed checks, in evaluation order.
    pub fn failures(&self) -> Vec<&OracleCheck> {
        self.checks.iter().filter(|c| !c.passed).collect()
    }

    /// Number of checks evaluated.
    pub fn checks_run(&self) -> usize {
        self.checks.len()
    }

    fn push(&mut self, name: &'static str, result: Result<String, String>) {
        let (passed, detail) = match result {
            Ok(d) => (true, d),
            Err(d) => (false, d),
        };
        self.checks.push(OracleCheck { name, passed, detail });
    }
}

impl fmt::Display for OracleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.checks {
            writeln!(f, "{} {}: {}", if c.passed { "ok  " } else { "FAIL" }, c.name, c.detail)?;
        }
        Ok(())
    }
}

/// First-definition home cluster of every register of one function,
/// recomputed here (not borrowed from the scheduler): parameters and
/// undefined registers live on cluster 0 by calling convention, and a
/// normalized placement gives all definitions of a register one
/// cluster, so the first definition is authoritative.
fn own_vreg_homes(program: &Program, func: FuncId, result: &PipelineResult) -> Vec<u32> {
    let f = &program.functions[func];
    let mut homes = vec![0u32; f.num_vregs];
    let mut fixed = vec![false; f.num_vregs];
    for (oid, op) in f.ops.iter() {
        for &d in &op.dsts {
            if !std::mem::replace(&mut fixed[d.0 as usize], true) {
                homes[d.0 as usize] = result.placement.cluster_of(func, oid).index() as u32;
            }
        }
    }
    homes
}

/// Judges `result` against the original (pre-pipeline) program.
///
/// `machine` must be the machine the pipeline ran on (the oracle
/// re-derives the unified-memory evaluation machine for
/// [`Method::Unified`] itself, mirroring what the pipeline does).
/// `exec` bounds the simulator runs of the semantics check.
pub fn check_result(
    original: &Program,
    profile: &Profile,
    machine: &Machine,
    result: &PipelineResult,
    exec: ExecConfig,
) -> OracleReport {
    let mut report = OracleReport::default();
    let n = machine.num_clusters();
    let transformed = &result.program;
    // The pipeline's own reference input: heap sizes applied. Object
    // ids and function shapes are unchanged by it.
    let reference = profile.apply_heap_sizes(original);
    let memory_partitioned = machine.memory.is_partitioned() && result.method != Method::Unified;

    // 1. shape
    report.push("shape", check_shape(transformed, result));
    if !report.passed() {
        // Everything downstream indexes through the placement tables;
        // a shape mismatch would turn those checks into panics.
        return report;
    }

    // 2. range
    report.push("range", check_range(transformed, result, n));
    if !report.passed() {
        return report;
    }

    // 3. calls
    report.push("calls", check_calls(transformed, result));

    // 4. memops (partitioned memory only; unified and coherent caches
    // legitimately access remote objects).
    let pts = PointsTo::compute(transformed);
    let access = AccessInfo::compute(transformed, &pts, profile);
    if memory_partitioned {
        report.push("memops", check_memops(transformed, result, &access));
    }

    // 5. bridges
    report.push("bridges", check_bridges(transformed, result));

    // 6. bytes (placement byte recount + DFG cut recount)
    report.push("bytes", check_bytes(transformed, result, profile, n));

    // 7. moves
    report.push("moves", check_moves(transformed, result));

    // 8. ladder
    report.push("ladder", check_ladder(result));

    // 9. quarantine
    report.push("quarantine", check_quarantine(transformed, result, &access, memory_partitioned));

    // 10. semantics
    report.push("semantics", check_semantics(&reference, transformed, exec));

    report
}

fn check_shape(transformed: &Program, result: &PipelineResult) -> Result<String, String> {
    let placed_funcs = result.placement.op_cluster.len();
    if placed_funcs != transformed.functions.len() {
        return Err(format!(
            "placement covers {placed_funcs} function(s), program has {}",
            transformed.functions.len()
        ));
    }
    for (fid, f) in transformed.functions.iter() {
        let placed = result.placement.op_cluster[fid].len();
        if placed != f.ops.len() {
            return Err(format!(
                "function `{}` has {} op(s) but {} placement slot(s)",
                f.name,
                f.ops.len(),
                placed
            ));
        }
    }
    if result.placement.object_home.len() != transformed.objects.len() {
        return Err(format!(
            "home table covers {} object(s), program has {}",
            result.placement.object_home.len(),
            transformed.objects.len()
        ));
    }
    Ok(format!(
        "{} function(s), {} object(s)",
        transformed.functions.len(),
        transformed.objects.len()
    ))
}

fn check_range(transformed: &Program, result: &PipelineResult, n: usize) -> Result<String, String> {
    for (fid, f) in transformed.functions.iter() {
        for oid in f.ops.keys() {
            let c = result.placement.cluster_of(fid, oid).index();
            if c >= n {
                return Err(format!(
                    "function `{}` op {oid} on cluster {c}, machine has {n}",
                    f.name
                ));
            }
        }
    }
    for (obj, home) in result.placement.object_home.iter() {
        if let Some(c) = home {
            if c.index() >= n {
                return Err(format!(
                    "object `{}` homed on cluster {}, machine has {n}",
                    transformed.objects[obj].name,
                    c.index()
                ));
            }
        }
    }
    Ok(format!("all clusters < {n}"))
}

fn check_calls(transformed: &Program, result: &PipelineResult) -> Result<String, String> {
    let mut calls = 0usize;
    for (fid, f) in transformed.functions.iter() {
        for (oid, op) in f.ops.iter() {
            if matches!(op.opcode, Opcode::Call(_)) {
                calls += 1;
                let c = result.placement.cluster_of(fid, oid).index();
                if c != 0 {
                    return Err(format!(
                        "call in `{}` placed on cluster {c} (calling convention pins calls \
                         to cluster 0)",
                        f.name
                    ));
                }
            }
        }
    }
    Ok(format!("{calls} call(s) on cluster 0"))
}

fn check_memops(
    transformed: &Program,
    result: &PipelineResult,
    access: &AccessInfo,
) -> Result<String, String> {
    let mut memops = 0usize;
    for (fid, f) in transformed.functions.iter() {
        for (oid, op) in f.ops.iter() {
            if !op.opcode.is_memory() {
                continue;
            }
            memops += 1;
            let cluster = result.placement.cluster_of(fid, oid);
            let site = AccessSite { func: fid, op: oid };
            let Some(objs) = access.site_objects.get(&site) else { continue };
            for &obj in objs {
                match result.placement.object_home[obj] {
                    Some(home) if home != cluster => {
                        return Err(format!(
                            "memory op in `{}` on cluster {} accesses `{}` homed on cluster \
                             {} under partitioned memory",
                            f.name,
                            cluster.index(),
                            transformed.objects[obj].name,
                            home.index()
                        ));
                    }
                    _ => {}
                }
            }
        }
    }
    Ok(format!("{memops} memory op(s) on their home clusters"))
}

fn check_bridges(transformed: &Program, result: &PipelineResult) -> Result<String, String> {
    let mut operands = 0usize;
    for (fid, f) in transformed.functions.iter() {
        let homes = own_vreg_homes(transformed, fid, result);
        for (oid, op) in f.ops.iter() {
            if matches!(op.opcode, Opcode::Move) {
                continue; // moves are the bridges
            }
            let need = result.placement.cluster_of(fid, oid).index() as u32;
            for &s in &op.srcs {
                operands += 1;
                let home = homes[s.0 as usize];
                if home != need {
                    return Err(format!(
                        "`{}` op {oid} on cluster {need} reads {s} homed on cluster {home} \
                         with no bridging move",
                        f.name
                    ));
                }
            }
        }
    }
    Ok(format!("{operands} operand read(s) all cluster-local"))
}

fn check_bytes(
    transformed: &Program,
    result: &PipelineResult,
    profile: &Profile,
    n: usize,
) -> Result<String, String> {
    let mut recount = vec![0u64; n];
    for (obj, home) in result.placement.object_home.iter() {
        if let Some(c) = home {
            recount[c.index()] += transformed.objects[obj].size;
        }
    }
    if recount != result.data_bytes {
        return Err(format!(
            "reported data_bytes {:?} but object sizes recount to {recount:?}",
            result.data_bytes
        ));
    }
    // DFG cut recount: value edges whose endpoints sit on different
    // clusters. The transformed program bridges every such edge with a
    // move, so on a single-cluster machine the cut must be zero.
    let dfg = crate::dfg::ProgramDfg::build(transformed, profile);
    let mut cut_weight = 0u64;
    for (a, b, w) in dfg.edges() {
        let na = dfg.nodes[a];
        let nb = dfg.nodes[b];
        if result.placement.cluster_of(na.func, na.op)
            != result.placement.cluster_of(nb.func, nb.op)
        {
            cut_weight = cut_weight.saturating_add(w);
        }
    }
    if n == 1 && cut_weight != 0 {
        return Err(format!("single-cluster machine with nonzero DFG cut ({cut_weight})"));
    }
    Ok(format!("{recount:?} bytes per cluster, DFG cut weight {cut_weight}"))
}

fn check_moves(transformed: &Program, result: &PipelineResult) -> Result<String, String> {
    let mut static_moves = 0u64;
    for (fid, f) in transformed.functions.iter() {
        let homes = own_vreg_homes(transformed, fid, result);
        for (oid, op) in f.ops.iter() {
            if matches!(op.opcode, Opcode::Move)
                && homes[op.srcs[0].0 as usize]
                    != result.placement.cluster_of(fid, oid).index() as u32
            {
                static_moves += 1;
            }
        }
    }
    let reported = result.report.static_moves;
    if static_moves != reported {
        return Err(format!(
            "reported {reported} static intercluster move(s) but the program contains \
             {static_moves}"
        ));
    }
    Ok(format!("{static_moves} static intercluster move(s)"))
}

fn check_ladder(result: &PipelineResult) -> Result<String, String> {
    let d = &result.downgrades;
    if d.is_empty() {
        if result.method != result.requested_method {
            return Err(format!(
                "method {} differs from requested {} with no downgrade records",
                result.method, result.requested_method
            ));
        }
        return Ok("no downgrades, method as requested".to_string());
    }
    if result.method == result.requested_method {
        return Err(format!(
            "{} downgrade record(s) but the method still equals the requested {}",
            d.len(),
            result.requested_method
        ));
    }
    if d[0].from != result.requested_method {
        return Err(format!(
            "first downgrade leaves {} but the requested method was {}",
            d[0].from, result.requested_method
        ));
    }
    for (i, rung) in d.iter().enumerate() {
        match rung.from.fallback() {
            Some(next) if next == rung.to => {}
            _ => {
                return Err(format!(
                    "downgrade {} -> {} does not follow the ladder (expected {:?})",
                    rung.from,
                    rung.to,
                    rung.from.fallback()
                ));
            }
        }
        if let Some(next) = d.get(i + 1) {
            if next.from != rung.to {
                return Err(format!(
                    "downgrade chain broken: rung {i} lands on {} but rung {} leaves {}",
                    rung.to,
                    i + 1,
                    next.from
                ));
            }
        }
    }
    let last = &d[d.len() - 1];
    if last.to != result.method {
        return Err(format!(
            "last downgrade lands on {} but the producing method is {}",
            last.to, result.method
        ));
    }
    Ok(format!("{} downgrade(s), chain {} -> {}", d.len(), d[0].from, result.method))
}

fn check_quarantine(
    transformed: &Program,
    result: &PipelineResult,
    access: &AccessInfo,
    memory_partitioned: bool,
) -> Result<String, String> {
    let quarantined = &result.rhop_stats.quarantine.units;
    for q in quarantined {
        let Some((fid, f)) = transformed.functions.iter().find(|(_, f)| f.name == q.unit) else {
            return Err(format!("quarantined unit `{}` names no function", q.unit));
        };
        for (oid, op) in f.ops.iter() {
            let c = result.placement.cluster_of(fid, oid).index();
            if c == 0 {
                continue;
            }
            // The trivial fallback is all-on-cluster-0; the normalizer
            // may then relocate memory ops to their object's home and
            // insert bridging moves on those clusters. Anything else
            // off cluster 0 betrays a partitioner writing into a
            // quarantined function.
            let pinned_memop = memory_partitioned && op.opcode.is_memory() && {
                let site = AccessSite { func: fid, op: oid };
                access.site_objects.get(&site).is_some_and(|objs| !objs.is_empty())
            };
            if !pinned_memop && !matches!(op.opcode, Opcode::Move) {
                return Err(format!(
                    "quarantined `{}` has op {oid} ({:?}) on cluster {c} instead of the \
                     fallback cluster",
                    q.unit, op.opcode
                ));
            }
        }
    }
    Ok(format!("{} quarantined unit(s) on the fallback placement", quarantined.len()))
}

fn check_semantics(
    reference: &Program,
    transformed: &Program,
    exec: ExecConfig,
) -> Result<String, String> {
    match mcpart_sim::semantically_equivalent(reference, transformed, &[], exec) {
        Ok(true) => Ok("return value and final memory match".to_string()),
        Ok(false) => Err("transformed program diverges from the original".to_string()),
        Err(e) => Err(format!("simulator failed: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run_pipeline, PipelineConfig};
    use mcpart_ir::{ClusterId, DataObject, FunctionBuilder, MemWidth};

    fn bench_program() -> Program {
        let mut p = Program::new("oracle-bench");
        let t1 = p.add_object(DataObject::global("t1", 128));
        let t2 = p.add_object(DataObject::global("t2", 64));
        let mut b = FunctionBuilder::entry(&mut p);
        let base1 = b.addrof(t1);
        let base2 = b.addrof(t2);
        let mut acc = b.iconst(0);
        for i in 0..4i64 {
            let o = b.iconst(4 * i);
            let a1 = b.add(base1, o);
            let v1 = b.load(MemWidth::B4, a1);
            let a2 = b.add(base2, o);
            let v2 = b.load(MemWidth::B4, a2);
            let s = b.add(v1, v2);
            acc = b.add(acc, s);
        }
        b.store(MemWidth::B4, base1, acc);
        b.ret(Some(acc));
        p
    }

    #[test]
    fn clean_runs_pass_every_check() {
        let p = bench_program();
        let profile = Profile::uniform(&p, 10);
        let machine = Machine::paper_2cluster(5);
        for method in Method::ALL {
            let result =
                run_pipeline(&p, &profile, &machine, &PipelineConfig::new(method)).expect("run");
            let report = check_result(&p, &profile, &machine, &result, ExecConfig::default());
            assert!(report.passed(), "{method}:\n{report}");
            assert!(report.checks_run() >= 8, "{method} ran too few checks");
        }
    }

    #[test]
    fn corrupted_object_home_is_caught() {
        let p = bench_program();
        let profile = Profile::uniform(&p, 10);
        let machine = Machine::paper_2cluster(5);
        let mut result =
            run_pipeline(&p, &profile, &machine, &PipelineConfig::new(Method::Gdp)).expect("run");
        // Flip one object's home without touching anything else: byte
        // recount and memop homing must both notice.
        let (obj, old) = result
            .placement
            .object_home
            .iter()
            .find_map(|(o, h)| h.map(|c| (o, c)))
            .expect("a homed object");
        result.placement.object_home[obj] = Some(ClusterId::new((old.index() + 1) % 2));
        let report = check_result(&p, &profile, &machine, &result, ExecConfig::default());
        assert!(!report.passed());
        let failed: Vec<&str> = report.failures().iter().map(|c| c.name).collect();
        assert!(failed.contains(&"bytes"), "{report}");
    }

    #[test]
    fn out_of_range_cluster_is_caught() {
        let p = bench_program();
        let profile = Profile::uniform(&p, 10);
        let machine = Machine::paper_2cluster(5);
        let mut result =
            run_pipeline(&p, &profile, &machine, &PipelineConfig::new(Method::Naive)).expect("run");
        let fid = result.program.entry;
        let first = result.program.functions[fid].ops.keys().next().expect("an op");
        result.placement.set_cluster(fid, first, ClusterId::new(7));
        let report = check_result(&p, &profile, &machine, &result, ExecConfig::default());
        assert!(!report.passed());
        assert_eq!(report.failures()[0].name, "range", "{report}");
    }

    #[test]
    fn fabricated_downgrade_chain_is_caught() {
        let p = bench_program();
        let profile = Profile::uniform(&p, 10);
        let machine = Machine::paper_2cluster(5);
        let mut result =
            run_pipeline(&p, &profile, &machine, &PipelineConfig::new(Method::Gdp)).expect("run");
        // Claim a downgrade that never happened.
        result.downgrades.push(crate::error::Downgrade {
            from: Method::Gdp,
            to: Method::ProfileMax,
            reason: "fabricated".to_string(),
        });
        let report = check_result(&p, &profile, &machine, &result, ExecConfig::default());
        let failed: Vec<&str> = report.failures().iter().map(|c| c.name).collect();
        assert!(failed.contains(&"ladder"), "{report}");
    }

    #[test]
    fn real_downgrades_satisfy_the_ladder_check() {
        let p = bench_program();
        let profile = Profile::uniform(&p, 10);
        let machine = Machine::paper_2cluster(5);
        let mut cfg = PipelineConfig::new(Method::Gdp);
        cfg.gdp.fuel = Some(0);
        let result = run_pipeline(&p, &profile, &machine, &cfg).expect("ladder recovers");
        assert!(result.was_downgraded());
        let report = check_result(&p, &profile, &machine, &result, ExecConfig::default());
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn shape_mismatch_short_circuits() {
        let p = bench_program();
        let profile = Profile::uniform(&p, 10);
        let machine = Machine::paper_2cluster(5);
        let mut result =
            run_pipeline(&p, &profile, &machine, &PipelineConfig::new(Method::Gdp)).expect("run");
        result.placement.op_cluster = mcpart_ir::EntityMap::new();
        let report = check_result(&p, &profile, &machine, &result, ExecConfig::default());
        assert!(!report.passed());
        assert_eq!(report.checks_run(), 1, "downstream checks must not run on a bad shape");
        assert_eq!(report.failures()[0].name, "shape");
    }
}
