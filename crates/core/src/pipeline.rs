//! The end-to-end compilation pipeline: analyses → data partitioning →
//! computation partitioning → normalization → move insertion →
//! scheduling and evaluation.
//!
//! Every stage reports failure through [`PipelineError`], and a
//! graceful-degradation ladder retries recoverable GDP failures with
//! Profile Max and then Naive placement, recording each downgrade in
//! the [`PipelineResult`] so reports stay honest about what actually
//! ran.

use crate::baselines::{naive_partition, profile_max_partition, unified_partition};
use crate::checkpoint::Manifest;
use crate::error::{Downgrade, PipelineError, PipelineErrorKind, Stage};
use crate::gdp::{gdp_partition, GdpConfig};
use crate::groups::ObjectGroups;
use crate::repartition::RepartitionStats;
use crate::rhop::{RhopConfig, RhopStats};
use mcpart_analysis::{validate_profile, AccessInfo, PointsTo};
use mcpart_ir::{Profile, Program};
use mcpart_machine::Machine;
use mcpart_sched::{evaluate, normalize_placement, validate_placement, PerfReport, Placement};
use std::fmt;
use std::time::{Duration, Instant};

/// The partitioning method to run (Table 1 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Method {
    /// Global Data Partitioning (the paper's contribution): GDP object
    /// partitioning + RHOP with locked memory operations.
    Gdp,
    /// Profile Max: RHOP twice — unified-memory profile, greedy
    /// frequency-ordered object assignment, then RHOP with locks.
    ProfileMax,
    /// Naïve: RHOP assuming unified memory; objects placed post-hoc at
    /// their maximum-access cluster, remote accesses patched in.
    Naive,
    /// Unified memory: single multiported memory, ordinary RHOP (the
    /// upper-bound baseline).
    Unified,
}

impl Method {
    /// All methods, in the paper's presentation order.
    pub const ALL: [Method; 4] = [Method::Gdp, Method::ProfileMax, Method::Naive, Method::Unified];

    /// How many runs of the detailed computation partitioner the method
    /// costs (the compile-time proxy of §4.5).
    pub fn detailed_partitioner_runs(self) -> usize {
        match self {
            Method::ProfileMax => 2,
            _ => 1,
        }
    }

    /// The next rung of the graceful-degradation ladder: the simpler
    /// method the pipeline retries with when this one fails
    /// recoverably. GDP falls back to Profile Max, Profile Max to
    /// Naive; Naive and Unified have nowhere simpler to go.
    pub fn fallback(self) -> Option<Method> {
        match self {
            Method::Gdp => Some(Method::ProfileMax),
            Method::ProfileMax => Some(Method::Naive),
            Method::Naive | Method::Unified => None,
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Method::Gdp => "GDP",
            Method::ProfileMax => "Profile Max",
            Method::Naive => "Naive",
            Method::Unified => "Unified",
        };
        f.write_str(s)
    }
}

/// Pipeline configuration.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Which scheme to run.
    pub method: Method,
    /// GDP first-pass options (including its refinement fuel budget).
    pub gdp: GdpConfig,
    /// RHOP second-pass options (including its estimator-call budget).
    pub rhop: RhopConfig,
    /// Profile Max memory balance threshold.
    pub profile_max_balance: f64,
    /// When `true`, the pipeline additionally executes the original and
    /// transformed programs and checks identical behaviour (slow; meant
    /// for tests). A mismatch is a typed
    /// [`PipelineErrorKind::SemanticsChanged`] error.
    pub validate: bool,
    /// Interpreter limits for the semantic-validation runs (step budget
    /// and call depth), so a runaway transformed program yields a typed
    /// error instead of a hang.
    pub exec: mcpart_sim::ExecConfig,
    /// Wall-clock budget per pipeline stage (`None` = unlimited). A
    /// stage that overruns yields [`PipelineErrorKind::Timeout`];
    /// because the check runs between stages, a long stage finishes
    /// first and is then reported.
    pub stage_budget: Option<Duration>,
    /// When `false` (the default is `true`), skip the post-move
    /// placement validation. Validation is cheap and catches partitioner
    /// bugs, so leave it on outside microbenchmarks.
    pub check_placement: bool,
    /// Where intercluster transfers are placed.
    pub move_strategy: mcpart_sched::MoveStrategy,
    /// Run the scalar optimizer (DCE, CSE, copy propagation, constant
    /// folding) before partitioning. Off by default to keep the
    /// paper-reproduction numbers on the raw generator output.
    pub pre_optimize: bool,
    /// Evaluate with software pipelining: single-block loop bodies are
    /// modulo-scheduled and charged their initiation interval per
    /// iteration. Off by default (the paper's model schedules each
    /// iteration acyclically).
    pub software_pipelining: bool,
    /// Observability sink shared by every stage (set it with
    /// [`PipelineConfig::with_obs`] so the GDP/RHOP sub-configs share
    /// the same sink). The default records nothing.
    pub obs: mcpart_obs::Obs,
    /// Run-level retry cap: how many times a recoverable failure (or a
    /// caught worker panic) may advance the degradation ladder one rung
    /// before the run fails. The default of 2 admits the full
    /// GDP → Profile Max → Naive ladder.
    pub retries: u32,
    /// Per-unit wall-clock ceiling enforced by a watchdog thread: when
    /// a method attempt runs longer than this, the watchdog flags the
    /// attempt's shared budget so its next fuel charge fails cleanly
    /// (a typed, recoverable error feeding the same ladder). `None`
    /// (default) disables the watchdog and keeps the run fully
    /// deterministic.
    pub unit_timeout: Option<Duration>,
    /// Fault injection for supervision tests: method attempts listed
    /// here panic at entry (caught by panic isolation, advancing the
    /// ladder). Empty in production.
    pub fault_methods: Vec<Method>,
    /// Baseline manifest for incremental re-partitioning (see
    /// [`crate::repartition`]): when set and the method is
    /// [`Method::Gdp`], clean functions replay the baseline's recorded
    /// RHOP results instead of re-running the partitioner. Output is
    /// byte-identical either way; `None` (default) runs from scratch.
    pub baseline: Option<std::sync::Arc<Manifest>>,
}

impl PipelineConfig {
    /// Default configuration for a method.
    pub fn new(method: Method) -> Self {
        PipelineConfig {
            method,
            gdp: GdpConfig::default(),
            rhop: RhopConfig::default(),
            profile_max_balance: 0.10,
            validate: false,
            exec: mcpart_sim::ExecConfig::default(),
            stage_budget: None,
            check_placement: true,
            move_strategy: mcpart_sched::MoveStrategy::default(),
            pre_optimize: false,
            software_pipelining: false,
            obs: mcpart_obs::Obs::disabled(),
            retries: 2,
            unit_timeout: None,
            fault_methods: Vec::new(),
            baseline: None,
        }
    }

    /// Sets the retry cap at both supervision levels: the run-level
    /// ladder (this config) and the per-function unit supervisor
    /// (`rhop.retries`).
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self.rhop.retries = retries;
        self
    }

    /// Sets the worker-thread count of every parallel stage (RHOP's
    /// per-function fan-out and the graph partitioner's restarts): `1`
    /// = sequential, `0` = all available cores. Never changes results —
    /// only wall-clock time.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.rhop.jobs = jobs;
        self.gdp.jobs = jobs;
        self
    }

    /// Attaches one observability sink to the whole pipeline: stage
    /// spans and counters here, plus the GDP, METIS and RHOP events of
    /// the sub-configs (they all share the sink, so a downgrade ladder
    /// accumulates every attempt's events in order).
    pub fn with_obs(mut self, obs: mcpart_obs::Obs) -> Self {
        self.gdp.obs = obs.clone();
        self.rhop.obs = obs.clone();
        self.obs = obs;
        self
    }
}

/// Stable method ordinal for pinned event args (events carry integers).
fn method_ord(method: Method) -> i64 {
    match method {
        Method::Gdp => 0,
        Method::ProfileMax => 1,
        Method::Naive => 2,
        Method::Unified => 3,
    }
}

/// Everything the pipeline produces for one (program, machine, method)
/// triple.
#[derive(Clone, Debug)]
pub struct PipelineResult {
    /// The method that actually produced this result (after any
    /// downgrades).
    pub method: Method,
    /// The method originally requested. Differs from `method` exactly
    /// when `downgrades` is non-empty.
    pub requested_method: Method,
    /// The degradation ladder's record of abandoned methods, oldest
    /// first. Empty on a clean run.
    pub downgrades: Vec<Downgrade>,
    /// The transformed program (intercluster moves inserted).
    pub program: Program,
    /// The final placement of the transformed program.
    pub placement: Placement,
    /// Scheduled performance (cycles, dynamic moves).
    pub report: PerfReport,
    /// RHOP statistics (estimator calls etc.).
    pub rhop_stats: RhopStats,
    /// Number of detailed-partitioner runs (compile-time proxy).
    pub detailed_runs: usize,
    /// Data bytes homed per cluster (all zeros for Unified).
    pub data_bytes: Vec<u64>,
    /// Static intercluster moves inserted.
    pub moves_inserted: usize,
    /// Wall-clock time of the partitioning phases (excludes evaluation).
    pub partition_time: Duration,
    /// Manifest for a future incremental run. `Some` exactly when the
    /// producing rung was [`Method::Gdp`] (its `unit` field is empty;
    /// [`crate::checkpoint::run_unit_full`] fills it in).
    pub manifest: Option<Manifest>,
    /// Dirty-cone statistics when this run replayed against a baseline
    /// manifest; `None` on a from-scratch run.
    pub repartition: Option<RepartitionStats>,
}

impl PipelineResult {
    /// Total dynamic cycles.
    pub fn cycles(&self) -> u64 {
        self.report.total_cycles
    }

    /// Dynamic intercluster moves.
    pub fn dynamic_moves(&self) -> u64 {
        self.report.dynamic_moves
    }

    /// Whether the degradation ladder fired (the result was produced by
    /// a simpler method than requested).
    pub fn was_downgraded(&self) -> bool {
        !self.downgrades.is_empty()
    }

    /// Function units that exhausted their retries and run on the
    /// trivial fallback placement (empty on a healthy run).
    pub fn quarantine(&self) -> &mcpart_par::supervise::QuarantineReport {
        &self.rhop_stats.quarantine
    }
}

/// Runs the full pipeline for one method.
///
/// The input program is verified and the profile shape-checked before
/// any partitioning work. If the requested method fails recoverably
/// (partitioner budget exhaustion, an invalid placement, a semantic
/// mismatch, a stage timeout), the pipeline walks the degradation
/// ladder — GDP → Profile Max → Naive — and records each rung in
/// [`PipelineResult::downgrades`].
///
/// # Errors
///
/// Returns a [`PipelineError`] naming the failing stage when the input
/// is unusable or when the last rung of the ladder also fails.
pub fn run_pipeline(
    program: &Program,
    profile: &Profile,
    machine: &Machine,
    config: &PipelineConfig,
) -> Result<PipelineResult, PipelineError> {
    let fail = |stage: Stage, kind: PipelineErrorKind| PipelineError {
        program: program.name.clone(),
        method: config.method,
        stage,
        kind,
    };
    mcpart_ir::verify_program(program)
        .map_err(|e| fail(Stage::Verify, PipelineErrorKind::Verify(e)))?;
    validate_profile(program, profile)
        .map_err(|e| fail(Stage::Analysis, PipelineErrorKind::Profile(e)))?;
    machine
        .validate()
        .map_err(|e| fail(Stage::Verify, PipelineErrorKind::Machine { message: e.to_string() }))?;

    let mut downgrades = Vec::new();
    let mut method = config.method;
    loop {
        let mut attempt = config.clone();
        attempt.method = method;
        // Arm the per-attempt watchdog: it fires the abort handle that
        // this attempt's shared budget checks on every fuel charge, so
        // a runaway unit fails at its next spend with a typed,
        // recoverable error — no thread is killed. The guard disarms
        // the watchdog when the attempt returns.
        let _watchdog = config.unit_timeout.map(|ceiling| {
            let handle = mcpart_par::supervise::AbortHandle::armed();
            attempt.rhop.abort = handle.clone();
            mcpart_par::supervise::Watchdog::arm(ceiling, handle)
        });
        // Panic isolation: a worker panic anywhere inside the attempt
        // is caught here, converted into a typed recoverable error, and
        // fed to the same ladder as ordinary partitioning failures. The
        // attempt's obs events stay withheld exactly as on the error
        // path, preserving the pinned-log determinism contract.
        let outcome =
            mcpart_par::supervise::catch_unit(|| run_method(program, profile, machine, &attempt))
                .unwrap_or_else(|payload| {
                    Err(PipelineError {
                        program: program.name.clone(),
                        method,
                        stage: Stage::Supervision,
                        kind: PipelineErrorKind::WorkerPanic { payload },
                    })
                });
        match outcome {
            Ok(mut result) => {
                result.requested_method = config.method;
                result.downgrades = downgrades;
                if config.obs.is_enabled() {
                    let stats = &result.rhop_stats;
                    config.obs.counter(
                        "supervise",
                        "retries",
                        stats.retries as i64 + result.downgrades.len() as i64,
                    );
                    config.obs.counter("supervise", "quarantined", stats.quarantine.len() as i64);
                }
                return Ok(result);
            }
            Err(e) if e.is_recoverable() && downgrades.len() < config.retries as usize => {
                match method.fallback() {
                    Some(next) => {
                        config.obs.counter_args(
                            "pipeline",
                            "downgrade",
                            (downgrades.len() + 1) as i64,
                            &[("from", method_ord(method)), ("to", method_ord(next))],
                        );
                        downgrades.push(Downgrade {
                            from: method,
                            to: next,
                            reason: e.to_string(),
                        });
                        method = next;
                    }
                    None => return Err(e),
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// One strict attempt with one method: any stage failure is returned,
/// never retried.
fn run_method(
    program: &Program,
    profile: &Profile,
    machine: &Machine,
    config: &PipelineConfig,
) -> Result<PipelineResult, PipelineError> {
    if config.fault_methods.contains(&config.method) {
        panic!("injected fault in method {}", config.method);
    }
    let fail = |stage: Stage, kind: PipelineErrorKind| PipelineError {
        program: program.name.clone(),
        method: config.method,
        stage,
        kind,
    };
    // Stage clock: each stage must individually finish within the
    // configured wall-clock budget, and react to the watchdog's abort
    // between stages (stages without a shared budget of their own).
    let check_clock = |stage: Stage, started: Instant| -> Result<(), PipelineError> {
        if config.rhop.abort.is_aborted() {
            let budget = config.unit_timeout.unwrap_or_default();
            return Err(fail(stage, PipelineErrorKind::Timeout { budget, elapsed: budget }));
        }
        if let Some(budget) = config.stage_budget {
            let elapsed = started.elapsed();
            if elapsed > budget {
                return Err(fail(stage, PipelineErrorKind::Timeout { budget, elapsed }));
            }
        }
        Ok(())
    };

    // Prepartitioning analyses (§3.2): heap sizes applied, points-to,
    // access relationship, object groups.
    let clock = Instant::now();
    let mut program = profile.apply_heap_sizes(program);
    if config.pre_optimize {
        mcpart_ir::optimize(&mut program);
    }
    let program = program;
    let pts = PointsTo::compute(&program);
    let access = AccessInfo::compute(&program, &pts, profile);
    let merge_clock = Instant::now();
    let groups = ObjectGroups::compute(&program, &access);
    if config.obs.is_enabled() {
        let singletons = groups.groups.iter().filter(|g| g.len() == 1).count();
        config.obs.span_args(
            "pipeline",
            "merge",
            merge_clock,
            &[
                ("objects", program.objects.len() as i64),
                ("groups", groups.len() as i64),
                ("merged", (program.objects.len() - groups.len()) as i64),
                ("singletons", singletons as i64),
            ],
        );
        config.obs.span_args(
            "pipeline",
            "analysis",
            clock,
            &[("method", method_ord(config.method))],
        );
    }
    check_clock(Stage::Analysis, clock)?;

    let start = Instant::now();
    let mut manifest = None;
    let mut repartition = None;
    let (placement, rhop_stats) = match config.method {
        Method::Gdp => {
            let clock = Instant::now();
            let dp = gdp_partition(&program, profile, &access, &groups, machine, &config.gdp)
                .map_err(|e| fail(Stage::DataPartition, PipelineErrorKind::Gdp(e)))?;
            check_clock(Stage::DataPartition, clock)?;
            let clock = Instant::now();
            // GDP is always re-run (it is the cheap global pass); a
            // baseline manifest only short-circuits the per-function
            // RHOP work for functions outside the dirty cone.
            let mut rhop_cfg = config.rhop.clone();
            if let Some(baseline) = &config.baseline {
                let (reuse, stats) = crate::repartition::compute_reuse(
                    &program,
                    &access,
                    &groups,
                    &dp,
                    config.gdp.merge_dependent_ops,
                    baseline,
                );
                repartition = Some(stats);
                rhop_cfg.reuse = Some(std::sync::Arc::new(reuse));
            }
            let (placement, stats, outcomes) = crate::rhop::rhop_partition_detailed(
                &program,
                &access,
                profile,
                machine,
                &dp.object_home,
                &rhop_cfg,
            )
            .map_err(|e| fail(Stage::ComputationPartition, PipelineErrorKind::Rhop(e)))?;
            check_clock(Stage::ComputationPartition, clock)?;
            manifest = Some(crate::repartition::build_manifest(
                &program, &access, &groups, &dp, &placement, &outcomes,
            ));
            (placement, stats)
        }
        Method::ProfileMax => {
            let clock = Instant::now();
            let out = profile_max_partition(
                &program,
                &access,
                profile,
                machine,
                &groups,
                &config.rhop,
                config.profile_max_balance,
            )
            .map_err(|e| fail(Stage::ComputationPartition, PipelineErrorKind::Rhop(e)))?;
            check_clock(Stage::ComputationPartition, clock)?;
            out
        }
        Method::Naive => {
            let clock = Instant::now();
            let out = naive_partition(&program, &access, profile, machine, &groups, &config.rhop)
                .map_err(|e| fail(Stage::ComputationPartition, PipelineErrorKind::Rhop(e)))?;
            check_clock(Stage::ComputationPartition, clock)?;
            out
        }
        Method::Unified => {
            let clock = Instant::now();
            let out = unified_partition(&program, &access, profile, machine, &config.rhop)
                .map_err(|e| fail(Stage::ComputationPartition, PipelineErrorKind::Rhop(e)))?;
            check_clock(Stage::ComputationPartition, clock)?;
            out
        }
    };
    let eval_machine = match config.method {
        Method::Unified => machine.clone().with_unified_memory(),
        _ => machine.clone(),
    };
    let clock = Instant::now();
    let normalized = normalize_placement(&program, &placement, &access, &eval_machine, profile);
    config.obs.span_since("pipeline", "normalize", clock);
    check_clock(Stage::Normalize, clock)?;
    let clock = Instant::now();
    let (moved_program, moved_placement, move_stats) = mcpart_sched::insert_moves_with(
        &program,
        &normalized,
        &eval_machine,
        Some(profile),
        config.move_strategy,
    );
    config.obs.span_args(
        "pipeline",
        "moves",
        clock,
        &[("moves_inserted", move_stats.moves_inserted as i64)],
    );
    check_clock(Stage::MoveInsertion, clock)?;
    let partition_time = start.elapsed();

    // Re-analyze the moved program (op ids shifted) for placement
    // validation and scheduling disambiguation.
    let moved_pts = PointsTo::compute(&moved_program);
    let moved_access = AccessInfo::compute(&moved_program, &moved_pts, profile);

    // Post-partition validation: every memory op on its object's home
    // cluster, every cross-cluster def bridged by a move. A violation
    // here marks the placement unusable and (for GDP / Profile Max)
    // drives the degradation ladder.
    if config.check_placement {
        let clock = Instant::now();
        validate_placement(&moved_program, &moved_placement, &moved_access, &eval_machine)
            .map_err(|e| fail(Stage::PlacementValidation, PipelineErrorKind::Placement(e)))?;
        config.obs.span_since("pipeline", "validate_placement", clock);
        check_clock(Stage::PlacementValidation, clock)?;
    }

    if config.validate {
        let clock = Instant::now();
        let ok = mcpart_sim::semantically_equivalent(&program, &moved_program, &[], config.exec)
            .map_err(|e| fail(Stage::SemanticValidation, PipelineErrorKind::Exec(e)))?;
        if !ok {
            return Err(fail(Stage::SemanticValidation, PipelineErrorKind::SemanticsChanged));
        }
        config.obs.span_since("pipeline", "validate_semantics", clock);
        check_clock(Stage::SemanticValidation, clock)?;
    }

    let clock = Instant::now();
    let report = if config.software_pipelining {
        mcpart_sched::evaluate_pipelined(
            &moved_program,
            &moved_placement,
            &eval_machine,
            profile,
            &moved_access,
        )
    } else {
        evaluate(&moved_program, &moved_placement, &eval_machine, profile, &moved_access)
    };
    if config.obs.is_enabled() {
        config.obs.counter("sim", "cycles", report.total_cycles as i64);
        config.obs.counter("sim", "stall_cycles", report.stall_cycles as i64);
        config.obs.counter("sim", "transfer_cycles", report.transfer_cycles as i64);
        config.obs.counter("sim", "dynamic_moves", report.dynamic_moves as i64);
        config.obs.counter("sim", "static_moves", report.static_moves as i64);
        config.obs.counter("sim", "remote_accesses", report.dynamic_remote_accesses as i64);
        config.obs.span_since("pipeline", "sim", clock);
    }
    check_clock(Stage::Evaluation, clock)?;

    let data_bytes = moved_placement.bytes_per_cluster(&moved_program, machine.num_clusters());
    if config.obs.is_enabled() {
        for (cluster, &bytes) in data_bytes.iter().enumerate() {
            config.obs.counter_args(
                "pipeline",
                "data_bytes",
                bytes as i64,
                &[("cluster", cluster as i64)],
            );
        }
    }
    Ok(PipelineResult {
        method: config.method,
        requested_method: config.method,
        downgrades: Vec::new(),
        program: moved_program,
        placement: moved_placement,
        report,
        rhop_stats,
        detailed_runs: config.method.detailed_partitioner_runs(),
        data_bytes,
        moves_inserted: move_stats.moves_inserted,
        partition_time,
        manifest,
        repartition,
    })
}

/// Runs all four methods on one program/machine, returning results in
/// [`Method::ALL`] order. Convenience for the experiment harness.
///
/// # Errors
///
/// Returns the first method's [`PipelineError`] that survives its
/// degradation ladder.
pub fn run_all_methods(
    program: &Program,
    profile: &Profile,
    machine: &Machine,
) -> Result<Vec<PipelineResult>, PipelineError> {
    Method::ALL
        .iter()
        .map(|&m| run_pipeline(program, profile, machine, &PipelineConfig::new(m)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::GdpError;
    use mcpart_ir::{DataObject, FunctionBuilder, MemWidth};

    fn bench_program() -> Program {
        let mut p = Program::new("bench");
        let t1 = p.add_object(DataObject::global("t1", 128));
        let t2 = p.add_object(DataObject::global("t2", 64));
        let state = p.add_object(DataObject::global("state", 16));
        let mut b = FunctionBuilder::entry(&mut p);
        let base1 = b.addrof(t1);
        let base2 = b.addrof(t2);
        let sbase = b.addrof(state);
        let mut acc = b.iconst(0);
        for i in 0..4i64 {
            let o = b.iconst(4 * i);
            let a1 = b.add(base1, o);
            let v1 = b.load(MemWidth::B4, a1);
            let a2 = b.add(base2, o);
            let v2 = b.load(MemWidth::B4, a2);
            let s = b.add(v1, v2);
            acc = b.add(acc, s);
        }
        b.store(MemWidth::B4, sbase, acc);
        b.ret(Some(acc));
        p
    }

    #[test]
    fn all_methods_run_and_validate() {
        let p = bench_program();
        let profile = Profile::uniform(&p, 10);
        let machine = Machine::paper_2cluster(5);
        for method in Method::ALL {
            let mut cfg = PipelineConfig::new(method);
            cfg.validate = true;
            let result = run_pipeline(&p, &profile, &machine, &cfg).expect("pipeline");
            assert!(result.cycles() > 0, "{method} produced zero cycles");
            assert!(!result.was_downgraded(), "{method} should run cleanly");
            mcpart_ir::verify_program(&result.program).unwrap();
        }
    }

    #[test]
    fn unified_is_competitive() {
        // The unified model has no data-placement penalty, so it should
        // be at least as fast as the naive scheme at high move latency.
        let p = bench_program();
        let profile = Profile::uniform(&p, 10);
        let machine = Machine::paper_2cluster(10);
        let unified = run_pipeline(&p, &profile, &machine, &PipelineConfig::new(Method::Unified))
            .expect("pipeline");
        let naive = run_pipeline(&p, &profile, &machine, &PipelineConfig::new(Method::Naive))
            .expect("pipeline");
        assert!(
            unified.cycles() <= naive.cycles() + 2,
            "unified {} vs naive {}",
            unified.cycles(),
            naive.cycles()
        );
    }

    #[test]
    fn profile_max_counts_two_runs() {
        let p = bench_program();
        let profile = Profile::uniform(&p, 10);
        let machine = Machine::paper_2cluster(5);
        let pm = run_pipeline(&p, &profile, &machine, &PipelineConfig::new(Method::ProfileMax))
            .expect("pipeline");
        assert_eq!(pm.detailed_runs, 2);
        let gdp = run_pipeline(&p, &profile, &machine, &PipelineConfig::new(Method::Gdp))
            .expect("pipeline");
        assert_eq!(gdp.detailed_runs, 1);
    }

    #[test]
    fn method_display_names() {
        assert_eq!(Method::Gdp.to_string(), "GDP");
        assert_eq!(Method::ProfileMax.to_string(), "Profile Max");
        assert_eq!(Method::Naive.to_string(), "Naive");
        assert_eq!(Method::Unified.to_string(), "Unified");
    }

    #[test]
    fn starved_gdp_downgrades_to_profile_max() {
        let p = bench_program();
        let profile = Profile::uniform(&p, 10);
        let machine = Machine::paper_2cluster(5);
        let mut cfg = PipelineConfig::new(Method::Gdp);
        cfg.gdp.fuel = Some(0); // the graph partitioner cannot refine at all
        cfg.validate = true;
        let result = run_pipeline(&p, &profile, &machine, &cfg).expect("ladder recovers");
        assert_eq!(result.requested_method, Method::Gdp);
        assert_eq!(result.method, Method::ProfileMax);
        assert_eq!(result.downgrades.len(), 1);
        assert_eq!(result.downgrades[0].from, Method::Gdp);
        assert_eq!(result.downgrades[0].to, Method::ProfileMax);
        assert!(result.downgrades[0].reason.contains("budget"), "{}", result.downgrades[0]);
        assert!(result.cycles() > 0);
    }

    #[test]
    fn ladder_bottoms_out_at_naive() {
        // Starve GDP *and* RHOP: GDP fails on fuel, Profile Max and
        // Naive fail on the estimator budget, so the error that
        // surfaces is the last rung's.
        let p = bench_program();
        let profile = Profile::uniform(&p, 10);
        let machine = Machine::paper_2cluster(5);
        let mut cfg = PipelineConfig::new(Method::Gdp);
        cfg.gdp.fuel = Some(0);
        cfg.rhop.max_estimator_calls = Some(1);
        let e = run_pipeline(&p, &profile, &machine, &cfg).unwrap_err();
        assert_eq!(e.method, Method::Naive, "the surfaced error names the last rung tried");
        assert!(matches!(e.kind, PipelineErrorKind::Rhop(_)), "{e}");
    }

    #[test]
    fn unverifiable_program_is_rejected_up_front() {
        let mut p = Program::new("broken");
        let mut b = FunctionBuilder::entry(&mut p);
        let v = b.iconst(1);
        b.ret(Some(v));
        // Truncate the entry block's terminator.
        let entry = p.entry;
        let eb = p.functions[entry].entry;
        p.functions[entry].blocks[eb].term = None;
        let profile = Profile::uniform(&p, 1);
        let machine = Machine::paper_2cluster(5);
        let e =
            run_pipeline(&p, &profile, &machine, &PipelineConfig::new(Method::Gdp)).unwrap_err();
        assert_eq!(e.stage, Stage::Verify);
        assert!(matches!(e.kind, PipelineErrorKind::Verify(_)), "{e}");
    }

    #[test]
    fn mismatched_profile_is_rejected_up_front() {
        let p = bench_program();
        let other = Program::new("other");
        let profile = Profile::uniform(&other, 1);
        let machine = Machine::paper_2cluster(5);
        let e =
            run_pipeline(&p, &profile, &machine, &PipelineConfig::new(Method::Naive)).unwrap_err();
        assert_eq!(e.stage, Stage::Analysis);
        assert!(!e.is_recoverable());
    }

    #[test]
    fn zero_stage_budget_times_out() {
        let p = bench_program();
        let profile = Profile::uniform(&p, 10);
        let machine = Machine::paper_2cluster(5);
        let mut cfg = PipelineConfig::new(Method::Unified);
        cfg.stage_budget = Some(Duration::ZERO);
        let e = run_pipeline(&p, &profile, &machine, &cfg).unwrap_err();
        assert!(matches!(e.kind, PipelineErrorKind::Timeout { .. }), "{e}");
    }

    #[test]
    fn timeout_is_recoverable_through_the_ladder() {
        // With a per-stage budget of zero, GDP times out, Profile Max
        // times out, Naive times out: the surfaced error is a timeout
        // (recoverable kind) from the final rung.
        let p = bench_program();
        let profile = Profile::uniform(&p, 10);
        let machine = Machine::paper_2cluster(5);
        let mut cfg = PipelineConfig::new(Method::Gdp);
        cfg.stage_budget = Some(Duration::ZERO);
        let e = run_pipeline(&p, &profile, &machine, &cfg).unwrap_err();
        assert!(e.is_recoverable());
    }

    #[test]
    fn run_all_methods_reports_each_method() {
        let p = bench_program();
        let profile = Profile::uniform(&p, 10);
        let machine = Machine::paper_2cluster(5);
        let results = run_all_methods(&p, &profile, &machine).expect("all methods");
        assert_eq!(results.len(), 4);
        for (r, m) in results.iter().zip(Method::ALL) {
            assert_eq!(r.method, m);
        }
    }

    #[test]
    fn gdp_internal_errors_render() {
        // Exercise the Display plumbing end to end.
        let e = PipelineError {
            program: "x".into(),
            method: Method::Gdp,
            stage: Stage::DataPartition,
            kind: PipelineErrorKind::Gdp(GdpError::NoClusters),
        };
        assert!(e.to_string().contains("no clusters"), "{e}");
    }
}
