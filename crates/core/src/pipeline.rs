//! The end-to-end compilation pipeline: analyses → data partitioning →
//! computation partitioning → normalization → move insertion →
//! scheduling and evaluation.

use crate::baselines::{naive_partition, profile_max_partition, unified_partition};
use crate::gdp::{gdp_partition, GdpConfig};
use crate::groups::ObjectGroups;
use crate::rhop::{rhop_partition, RhopConfig, RhopStats};
use mcpart_analysis::{AccessInfo, PointsTo};
use mcpart_ir::{Profile, Program};
use mcpart_machine::Machine;
use mcpart_sched::{evaluate, normalize_placement, PerfReport, Placement};
use std::fmt;
use std::time::{Duration, Instant};

/// The partitioning method to run (Table 1 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Method {
    /// Global Data Partitioning (the paper's contribution): GDP object
    /// partitioning + RHOP with locked memory operations.
    Gdp,
    /// Profile Max: RHOP twice — unified-memory profile, greedy
    /// frequency-ordered object assignment, then RHOP with locks.
    ProfileMax,
    /// Naïve: RHOP assuming unified memory; objects placed post-hoc at
    /// their maximum-access cluster, remote accesses patched in.
    Naive,
    /// Unified memory: single multiported memory, ordinary RHOP (the
    /// upper-bound baseline).
    Unified,
}

impl Method {
    /// All methods, in the paper's presentation order.
    pub const ALL: [Method; 4] = [Method::Gdp, Method::ProfileMax, Method::Naive, Method::Unified];

    /// How many runs of the detailed computation partitioner the method
    /// costs (the compile-time proxy of §4.5).
    pub fn detailed_partitioner_runs(self) -> usize {
        match self {
            Method::ProfileMax => 2,
            _ => 1,
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Method::Gdp => "GDP",
            Method::ProfileMax => "Profile Max",
            Method::Naive => "Naive",
            Method::Unified => "Unified",
        };
        f.write_str(s)
    }
}

/// Pipeline configuration.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Which scheme to run.
    pub method: Method,
    /// GDP first-pass options.
    pub gdp: GdpConfig,
    /// RHOP second-pass options.
    pub rhop: RhopConfig,
    /// Profile Max memory balance threshold.
    pub profile_max_balance: f64,
    /// When `true`, the pipeline additionally executes the original and
    /// transformed programs and asserts identical behaviour (slow;
    /// meant for tests).
    pub validate: bool,
    /// Where intercluster transfers are placed.
    pub move_strategy: mcpart_sched::MoveStrategy,
    /// Run the scalar optimizer (DCE, CSE, copy propagation, constant
    /// folding) before partitioning. Off by default to keep the
    /// paper-reproduction numbers on the raw generator output.
    pub pre_optimize: bool,
    /// Evaluate with software pipelining: single-block loop bodies are
    /// modulo-scheduled and charged their initiation interval per
    /// iteration. Off by default (the paper's model schedules each
    /// iteration acyclically).
    pub software_pipelining: bool,
}

impl PipelineConfig {
    /// Default configuration for a method.
    pub fn new(method: Method) -> Self {
        PipelineConfig {
            method,
            gdp: GdpConfig::default(),
            rhop: RhopConfig::default(),
            profile_max_balance: 0.10,
            validate: false,
            move_strategy: mcpart_sched::MoveStrategy::default(),
            pre_optimize: false,
            software_pipelining: false,
        }
    }
}

/// Everything the pipeline produces for one (program, machine, method)
/// triple.
#[derive(Clone, Debug)]
pub struct PipelineResult {
    /// The method that ran.
    pub method: Method,
    /// The transformed program (intercluster moves inserted).
    pub program: Program,
    /// The final placement of the transformed program.
    pub placement: Placement,
    /// Scheduled performance (cycles, dynamic moves).
    pub report: PerfReport,
    /// RHOP statistics (estimator calls etc.).
    pub rhop_stats: RhopStats,
    /// Number of detailed-partitioner runs (compile-time proxy).
    pub detailed_runs: usize,
    /// Data bytes homed per cluster (all zeros for Unified).
    pub data_bytes: Vec<u64>,
    /// Static intercluster moves inserted.
    pub moves_inserted: usize,
    /// Wall-clock time of the partitioning phases (excludes evaluation).
    pub partition_time: Duration,
}

impl PipelineResult {
    /// Total dynamic cycles.
    pub fn cycles(&self) -> u64 {
        self.report.total_cycles
    }

    /// Dynamic intercluster moves.
    pub fn dynamic_moves(&self) -> u64 {
        self.report.dynamic_moves
    }
}

/// Runs the full pipeline for one method.
///
/// # Panics
///
/// Panics if `config.validate` is set and the transformed program does
/// not behave identically to the original (this indicates a bug in the
/// partitioner or move inserter, and is always a reportable defect).
pub fn run_pipeline(
    program: &Program,
    profile: &Profile,
    machine: &Machine,
    config: &PipelineConfig,
) -> PipelineResult {
    // Prepartitioning analyses (§3.2): heap sizes applied, points-to,
    // access relationship, object groups.
    let mut program = profile.apply_heap_sizes(program);
    if config.pre_optimize {
        mcpart_ir::optimize(&mut program);
    }
    let program = program;
    let pts = PointsTo::compute(&program);
    let access = AccessInfo::compute(&program, &pts, profile);
    let groups = ObjectGroups::compute(&program, &access);

    let start = Instant::now();
    let (placement, rhop_stats) = match config.method {
        Method::Gdp => {
            let dp = gdp_partition(&program, profile, &access, &groups, machine, &config.gdp);
            rhop_partition(&program, &access, profile, machine, &dp.object_home, &config.rhop)
        }
        Method::ProfileMax => profile_max_partition(
            &program,
            &access,
            profile,
            machine,
            &groups,
            &config.rhop,
            config.profile_max_balance,
        ),
        Method::Naive => {
            naive_partition(&program, &access, profile, machine, &groups, &config.rhop)
        }
        Method::Unified => unified_partition(&program, &access, profile, machine, &config.rhop),
    };
    let eval_machine = match config.method {
        Method::Unified => machine.clone().with_unified_memory(),
        _ => machine.clone(),
    };
    let normalized = normalize_placement(&program, &placement, &access, &eval_machine, profile);
    let (moved_program, moved_placement, move_stats) = mcpart_sched::insert_moves_with(
        &program,
        &normalized,
        &eval_machine,
        Some(profile),
        config.move_strategy,
    );
    let partition_time = start.elapsed();

    if config.validate {
        let ok = mcpart_sim::semantically_equivalent(
            &program,
            &moved_program,
            &[],
            mcpart_sim::ExecConfig::default(),
        )
        .expect("both program variants must execute");
        assert!(ok, "{} transformation changed program semantics", config.method);
    }

    // Re-analyze the moved program (op ids shifted) for scheduling
    // disambiguation, then evaluate.
    let moved_pts = PointsTo::compute(&moved_program);
    let moved_access = AccessInfo::compute(&moved_program, &moved_pts, profile);
    let report = if config.software_pipelining {
        mcpart_sched::evaluate_pipelined(
            &moved_program,
            &moved_placement,
            &eval_machine,
            profile,
            &moved_access,
        )
    } else {
        evaluate(&moved_program, &moved_placement, &eval_machine, profile, &moved_access)
    };

    let data_bytes = moved_placement.bytes_per_cluster(&moved_program, machine.num_clusters());
    PipelineResult {
        method: config.method,
        program: moved_program,
        placement: moved_placement,
        report,
        rhop_stats,
        detailed_runs: config.method.detailed_partitioner_runs(),
        data_bytes,
        moves_inserted: move_stats.moves_inserted,
        partition_time,
    }
}

/// Runs all four methods on one program/machine, returning results in
/// [`Method::ALL`] order. Convenience for the experiment harness.
pub fn run_all_methods(
    program: &Program,
    profile: &Profile,
    machine: &Machine,
) -> Vec<PipelineResult> {
    Method::ALL
        .iter()
        .map(|&m| run_pipeline(program, profile, machine, &PipelineConfig::new(m)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpart_ir::{DataObject, FunctionBuilder, MemWidth};

    fn bench_program() -> Program {
        let mut p = Program::new("bench");
        let t1 = p.add_object(DataObject::global("t1", 128));
        let t2 = p.add_object(DataObject::global("t2", 64));
        let state = p.add_object(DataObject::global("state", 16));
        let mut b = FunctionBuilder::entry(&mut p);
        let base1 = b.addrof(t1);
        let base2 = b.addrof(t2);
        let sbase = b.addrof(state);
        let mut acc = b.iconst(0);
        for i in 0..4i64 {
            let o = b.iconst(4 * i);
            let a1 = b.add(base1, o);
            let v1 = b.load(MemWidth::B4, a1);
            let a2 = b.add(base2, o);
            let v2 = b.load(MemWidth::B4, a2);
            let s = b.add(v1, v2);
            acc = b.add(acc, s);
        }
        b.store(MemWidth::B4, sbase, acc);
        b.ret(Some(acc));
        p
    }

    #[test]
    fn all_methods_run_and_validate() {
        let p = bench_program();
        let profile = Profile::uniform(&p, 10);
        let machine = Machine::paper_2cluster(5);
        for method in Method::ALL {
            let mut cfg = PipelineConfig::new(method);
            cfg.validate = true;
            let result = run_pipeline(&p, &profile, &machine, &cfg);
            assert!(result.cycles() > 0, "{method} produced zero cycles");
            mcpart_ir::verify_program(&result.program).unwrap();
        }
    }

    #[test]
    fn unified_is_competitive() {
        // The unified model has no data-placement penalty, so it should
        // be at least as fast as the naive scheme at high move latency.
        let p = bench_program();
        let profile = Profile::uniform(&p, 10);
        let machine = Machine::paper_2cluster(10);
        let unified =
            run_pipeline(&p, &profile, &machine, &PipelineConfig::new(Method::Unified));
        let naive = run_pipeline(&p, &profile, &machine, &PipelineConfig::new(Method::Naive));
        assert!(
            unified.cycles() <= naive.cycles() + 2,
            "unified {} vs naive {}",
            unified.cycles(),
            naive.cycles()
        );
    }

    #[test]
    fn profile_max_counts_two_runs() {
        let p = bench_program();
        let profile = Profile::uniform(&p, 10);
        let machine = Machine::paper_2cluster(5);
        let pm = run_pipeline(&p, &profile, &machine, &PipelineConfig::new(Method::ProfileMax));
        assert_eq!(pm.detailed_runs, 2);
        let gdp = run_pipeline(&p, &profile, &machine, &PipelineConfig::new(Method::Gdp));
        assert_eq!(gdp.detailed_runs, 1);
    }

    #[test]
    fn method_display_names() {
        assert_eq!(Method::Gdp.to_string(), "GDP");
        assert_eq!(Method::ProfileMax.to_string(), "Profile Max");
        assert_eq!(Method::Naive.to_string(), "Naive");
        assert_eq!(Method::Unified.to_string(), "Unified");
    }
}
