//! First pass: Global Data Partitioning (§3.3).
//!
//! The coarsened program-level DFG (operations merged by access
//! pattern) is handed to the multilevel graph partitioner with node
//! weights carrying data-object bytes (and, optionally, dynamic
//! operation weight as a second balance constraint). The resulting
//! partition assigns every object group a home cluster.

use crate::dfg::ProgramDfg;
use crate::error::GdpError;
use crate::groups::ObjectGroups;
use mcpart_analysis::AccessInfo;
use mcpart_ir::{ClusterId, EntityMap, ObjectId, Profile, Program};
use mcpart_machine::Machine;
use mcpart_metis::{partition, GraphBuilder, PartitionConfig};

/// Configuration of the GDP first pass.
#[derive(Clone, Debug)]
pub struct GdpConfig {
    /// Allowed relative imbalance of per-cluster data bytes (the paper's
    /// METIS balance parameter; §4.3 notes better-performing but
    /// imbalanced mappings become reachable by loosening it). Default
    /// 20%: media benchmarks carry a few indivisible buffers/tables, so
    /// a strict 50/50 split is often infeasible.
    pub imbalance: f64,
    /// When `true`, dynamic operation weight is a second balance
    /// constraint. Off by default: the paper balances *data bytes* and
    /// leaves computation balance to the second-pass RHOP; forcing hot
    /// co-accessed tables apart to balance operation weight measurably
    /// hurts (kept as an ablation knob).
    pub balance_ops: bool,
    /// RNG seed for the graph partitioner.
    pub seed: u64,
    /// Ablation of §3.3.1: additionally merge *dependent* operations
    /// into the memory supernodes (the alternative coarsening the paper
    /// evaluated and rejected — "fewer groupings of objects allowed for
    /// more freedom and flexibility in the partitioning process").
    pub merge_dependent_ops: bool,
    /// Refinement work budget handed to the graph partitioner (`None` =
    /// unlimited). Exhausting it yields a typed
    /// [`GdpError::Metis`]/`BudgetExceeded` instead of a long-running
    /// refinement loop.
    pub fuel: Option<u64>,
    /// Worker threads handed to the graph partitioner for its
    /// initial-partition restarts (`1` = sequential, `0` = all
    /// available cores; never changes results).
    pub jobs: usize,
    /// Observability sink (spans for DFG build and the partition,
    /// counters for cut and per-cluster bytes); the default records
    /// nothing.
    pub obs: mcpart_obs::Obs,
}

impl Default for GdpConfig {
    fn default() -> Self {
        GdpConfig {
            imbalance: 0.20,
            balance_ops: false,
            seed: 0xDA7A,
            merge_dependent_ops: false,
            fuel: None,
            jobs: 1,
            obs: mcpart_obs::Obs::disabled(),
        }
    }
}

/// The output of data partitioning: a home cluster per object (group).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DataPartition {
    /// Home cluster of every object.
    pub object_home: EntityMap<ObjectId, Option<ClusterId>>,
    /// Home cluster of every object group (index-aligned with
    /// [`ObjectGroups::groups`]).
    pub group_cluster: Vec<ClusterId>,
    /// Edge cut reported by the graph partitioner (diagnostic).
    pub cut: u64,
}

impl DataPartition {
    /// Data bytes per cluster under this partition.
    pub fn bytes_per_cluster(&self, program: &Program, num_clusters: usize) -> Vec<u64> {
        let mut bytes = vec![0u64; num_clusters];
        for (obj, home) in self.object_home.iter() {
            if let Some(c) = home {
                bytes[c.index()] += program.objects[obj].size;
            }
        }
        bytes
    }
}

/// Runs Global Data Partitioning: builds the merged program-level graph
/// and splits it across the machine's cluster memories.
///
/// # Errors
///
/// Returns [`GdpError::NoClusters`] for a clusterless machine,
/// [`GdpError::Metis`] when the graph partitioner rejects its
/// configuration or exhausts its `config.fuel` budget, and
/// [`GdpError::Internal`] if graph construction breaks an invariant.
pub fn gdp_partition(
    program: &Program,
    profile: &Profile,
    _access: &AccessInfo,
    groups: &ObjectGroups,
    machine: &Machine,
    config: &GdpConfig,
) -> Result<DataPartition, GdpError> {
    let nclusters = machine.num_clusters();
    if nclusters == 0 {
        return Err(GdpError::NoClusters);
    }
    let total_clock = std::time::Instant::now();
    let dfg_clock = std::time::Instant::now();
    let dfg = ProgramDfg::build_with_jobs(program, profile, config.jobs);
    config.obs.span_args(
        "gdp",
        "dfg",
        dfg_clock,
        &[("nodes", dfg.len() as i64), ("edges", dfg.num_edges() as i64)],
    );

    // Supernodes: one per live object group (all of the group's access
    // sites merged), one per remaining operation.
    let live = groups.live_groups();
    let mut super_of_node: Vec<usize> = vec![usize::MAX; dfg.len()];
    let ncon = if config.balance_ops { 2 } else { 1 };
    let mut builder = GraphBuilder::new(ncon);
    let mut group_vertex: Vec<Option<u32>> = vec![None; groups.len()];
    let mut vertex_count = 0usize;
    // Optional §3.3.1 ablation: absorb the direct DFG neighbours of the
    // memory operations into their supernode, emulating the rejected
    // low-slack dependent-operation merging.
    let mut absorbed: Vec<Vec<usize>> = vec![Vec::new(); groups.len()];
    if config.merge_dependent_ops {
        let mut owner: Vec<usize> = vec![usize::MAX; dfg.len()];
        for &g in &live {
            for site in &groups.group_sites[g] {
                owner[dfg.index_of(site.func, site.op)] = g;
            }
        }
        for (from, to, _) in dfg.edges() {
            if owner[from] != usize::MAX && owner[to] == usize::MAX {
                absorbed[owner[from]].push(to);
            } else if owner[to] != usize::MAX && owner[from] == usize::MAX {
                absorbed[owner[to]].push(from);
            }
        }
    }
    for &g in &live {
        let mut freq = 0u64;
        for site in &groups.group_sites[g] {
            let idx = dfg.index_of(site.func, site.op);
            super_of_node[idx] = vertex_count;
            freq += dfg.node_freq[idx];
        }
        for &idx in &absorbed[g] {
            if super_of_node[idx] == usize::MAX {
                super_of_node[idx] = vertex_count;
                freq += dfg.node_freq[idx];
            }
        }
        let weights: Vec<u64> = if config.balance_ops {
            vec![groups.group_size[g], freq]
        } else {
            vec![groups.group_size[g]]
        };
        group_vertex[g] = Some(builder.add_vertex(&weights));
        vertex_count += 1;
    }
    for (idx, node) in dfg.nodes.iter().enumerate() {
        if super_of_node[idx] != usize::MAX {
            continue;
        }
        let _ = node;
        let weights: Vec<u64> =
            if config.balance_ops { vec![0, dfg.node_freq[idx].max(1)] } else { vec![0] };
        builder.add_vertex(&weights);
        super_of_node[idx] = vertex_count;
        vertex_count += 1;
    }
    builder.reserve_edges(dfg.num_edges());
    for (from, to, w) in dfg.edges() {
        builder.add_edge(super_of_node[from] as u32, super_of_node[to] as u32, w);
    }
    let graph = builder.build_with_jobs(config.jobs);
    config.obs.counter("gdp", "supernodes", vertex_count as i64);
    config.obs.counter("gdp", "merged_sites", (dfg.len() - vertex_count) as i64);

    let fractions: Vec<f64> = machine.memory_weights().iter().map(|&w| w as f64).collect();
    let metis_config = PartitionConfig::new(nclusters)
        .with_imbalance(config.imbalance)
        .with_target_fractions(fractions)
        .with_seed(config.seed)
        .with_fuel(config.fuel)
        .with_jobs(config.jobs)
        .with_obs(config.obs.clone());
    let result = partition(&graph, &metis_config)?;

    // Extract group homes; dead groups go to the byte-lightest cluster.
    let mut group_cluster = vec![ClusterId::new(0); groups.len()];
    let mut bytes = vec![0u64; nclusters];
    for &g in &live {
        let Some(v) = group_vertex[g] else {
            return Err(GdpError::Internal {
                message: format!("live object group {g} has no supernode"),
            });
        };
        let c = result.assignment[v as usize] as usize;
        group_cluster[g] = ClusterId::new(c);
        bytes[c] += groups.group_size[g];
    }
    let mut dead: Vec<usize> = (0..groups.len()).filter(|g| !live.contains(g)).collect();
    dead.sort_by_key(|&g| std::cmp::Reverse(groups.group_size[g]));
    for g in dead {
        let c = (0..nclusters).min_by_key(|&c| bytes[c]).unwrap_or(0);
        group_cluster[g] = ClusterId::new(c);
        bytes[c] += groups.group_size[g];
    }

    let mut object_home: EntityMap<ObjectId, Option<ClusterId>> =
        EntityMap::with_default(program.objects.len(), None);
    for (obj, &g) in groups.group_of.iter() {
        object_home[obj] = Some(group_cluster[g]);
    }
    let dp = DataPartition { object_home, group_cluster, cut: result.cut };
    if config.obs.is_enabled() {
        config.obs.counter("gdp", "cut", dp.cut as i64);
        let final_bytes = dp.bytes_per_cluster(program, nclusters);
        for (c, &b) in final_bytes.iter().enumerate() {
            config.obs.counter_args("gdp", "cluster_bytes", b as i64, &[("cluster", c as i64)]);
        }
        // Balance as max-over-ideal, scaled ×1000 (1000 = perfect).
        let total: u64 = final_bytes.iter().sum();
        if total > 0 {
            let ideal = total as f64 / nclusters as f64;
            let worst = final_bytes.iter().copied().max().unwrap_or(0) as f64;
            config.obs.counter("gdp", "balance_x1000", (worst / ideal * 1000.0) as i64);
        }
        config.obs.span_since("gdp", "partition", total_clock);
    }
    Ok(dp)
}

/// Assigns every object group a home from an explicit per-group mapping
/// (used by the exhaustive-search experiment of Figure 9).
pub fn data_partition_from_mapping(
    program: &Program,
    groups: &ObjectGroups,
    mapping: &[ClusterId],
) -> DataPartition {
    assert_eq!(mapping.len(), groups.len(), "one cluster per object group");
    let mut object_home: EntityMap<ObjectId, Option<ClusterId>> =
        EntityMap::with_default(program.objects.len(), None);
    for (obj, &g) in groups.group_of.iter() {
        object_home[obj] = Some(mapping[g]);
    }
    DataPartition { object_home, group_cluster: mapping.to_vec(), cut: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpart_analysis::PointsTo;
    use mcpart_ir::{DataObject, FunctionBuilder, MemWidth};

    /// Two independent pipelines, each hammering its own table: the
    /// natural data partition separates the tables.
    fn two_pipeline_program() -> (Program, ObjectId, ObjectId) {
        let mut p = Program::new("t");
        let t1 = p.add_object(DataObject::global("t1", 256));
        let t2 = p.add_object(DataObject::global("t2", 256));
        let mut b = FunctionBuilder::entry(&mut p);
        for obj in [t1, t2] {
            let base = b.addrof(obj);
            let mut acc = b.iconst(0);
            for i in 0..6 {
                let off = b.iconst(i * 4);
                let addr = b.add(base, off);
                let v = b.load(MemWidth::B4, addr);
                acc = b.add(acc, v);
            }
            let slot = b.addrof(obj);
            b.store(MemWidth::B4, slot, acc);
        }
        b.ret(None);
        (p, t1, t2)
    }

    fn analyze(p: &Program) -> (Profile, AccessInfo, ObjectGroups) {
        let profile = Profile::uniform(p, 100);
        let pts = PointsTo::compute(p);
        let access = AccessInfo::compute(p, &pts, &profile);
        let groups = ObjectGroups::compute(p, &access);
        (profile, access, groups)
    }

    #[test]
    fn gdp_separates_independent_tables() {
        let (p, t1, t2) = two_pipeline_program();
        let (profile, access, groups) = analyze(&p);
        assert_eq!(groups.live_groups().len(), 2);
        let machine = Machine::paper_2cluster(5);
        let dp = gdp_partition(&p, &profile, &access, &groups, &machine, &GdpConfig::default())
            .expect("gdp");
        assert_ne!(dp.object_home[t1], dp.object_home[t2], "tables should split");
        let bytes = dp.bytes_per_cluster(&p, 2);
        assert_eq!(bytes, vec![256, 256]);
    }

    #[test]
    fn gdp_handles_no_objects() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let v = b.iconst(1);
        b.ret(Some(v));
        let (profile, access, groups) = analyze(&p);
        let machine = Machine::paper_2cluster(5);
        let dp = gdp_partition(&p, &profile, &access, &groups, &machine, &GdpConfig::default())
            .expect("gdp");
        assert!(dp.object_home.is_empty());
    }

    #[test]
    fn explicit_mapping_round_trips() {
        let (p, t1, t2) = two_pipeline_program();
        let (_, access, _) = {
            let profile = Profile::uniform(&p, 1);
            let pts = PointsTo::compute(&p);
            let access = AccessInfo::compute(&p, &pts, &profile);
            let groups = ObjectGroups::compute(&p, &access);
            (profile, access, groups)
        };
        let groups = ObjectGroups::compute(&p, &access);
        let mapping: Vec<ClusterId> = (0..groups.len()).map(|g| ClusterId::new(g % 2)).collect();
        let dp = data_partition_from_mapping(&p, &groups, &mapping);
        assert_eq!(dp.object_home[t1].unwrap().index() + dp.object_home[t2].unwrap().index(), 1);
    }

    #[test]
    fn four_cluster_partition_spreads_bytes() {
        let mut p = Program::new("t");
        let objs: Vec<_> =
            (0..8).map(|i| p.add_object(DataObject::global(format!("t{i}"), 128))).collect();
        let mut b = FunctionBuilder::entry(&mut p);
        for &o in &objs {
            let base = b.addrof(o);
            let v = b.load(MemWidth::B4, base);
            let w = b.add(v, v);
            b.store(MemWidth::B4, base, w);
        }
        b.ret(None);
        let (profile, access, groups) = analyze(&p);
        let machine = Machine::homogeneous(4, 5);
        let dp = gdp_partition(&p, &profile, &access, &groups, &machine, &GdpConfig::default())
            .expect("gdp");
        let bytes = dp.bytes_per_cluster(&p, 4);
        assert_eq!(bytes.iter().sum::<u64>(), 1024);
        for (c, &bb) in bytes.iter().enumerate() {
            assert!(bb > 0, "cluster {c} got no data: {bytes:?}");
        }
    }

    #[test]
    fn memory_weights_bias_the_split() {
        let mut p = Program::new("t");
        let objs: Vec<_> =
            (0..8).map(|i| p.add_object(DataObject::global(format!("t{i}"), 128))).collect();
        let mut b = FunctionBuilder::entry(&mut p);
        for &o in &objs {
            let base = b.addrof(o);
            let v = b.load(MemWidth::B4, base);
            b.store(MemWidth::B4, base, v);
        }
        b.ret(None);
        let (profile, access, groups) = analyze(&p);
        let mut machine = Machine::paper_2cluster(5);
        machine.clusters[0].memory_weight = 3;
        let dp = gdp_partition(&p, &profile, &access, &groups, &machine, &GdpConfig::default())
            .expect("gdp");
        let bytes = dp.bytes_per_cluster(&p, 2);
        assert!(
            bytes[0] >= bytes[1] * 2,
            "3:1 capacity should hold most data on cluster 0: {bytes:?}"
        );
    }

    #[test]
    fn dead_objects_balance_bytes() {
        let mut p = Program::new("t");
        for i in 0..6 {
            p.add_object(DataObject::global(format!("d{i}"), 100));
        }
        let mut b = FunctionBuilder::entry(&mut p);
        b.ret(None);
        let (profile, access, groups) = analyze(&p);
        let machine = Machine::paper_2cluster(5);
        let dp = gdp_partition(&p, &profile, &access, &groups, &machine, &GdpConfig::default())
            .expect("gdp");
        let bytes = dp.bytes_per_cluster(&p, 2);
        assert_eq!(bytes[0] + bytes[1], 600);
        assert!((bytes[0] as i64 - bytes[1] as i64).abs() <= 100, "{bytes:?}");
    }

    #[test]
    fn exhausted_fuel_is_a_typed_error() {
        let (p, _, _) = two_pipeline_program();
        let (profile, access, groups) = analyze(&p);
        let machine = Machine::paper_2cluster(5);
        let cfg = GdpConfig { fuel: Some(0), ..GdpConfig::default() };
        let e = gdp_partition(&p, &profile, &access, &groups, &machine, &cfg).unwrap_err();
        assert!(
            matches!(e, GdpError::Metis(mcpart_metis::MetisError::BudgetExceeded { .. })),
            "{e}"
        );
    }
}
