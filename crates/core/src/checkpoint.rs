//! Checkpoint/resume for pipeline work units (crash-only operation).
//!
//! A *unit* at this level is one `(program, method)` pipeline run — the
//! granularity of the CLI's `run`/`exec`/`compare` commands and of the
//! bench sweep. After each completed unit the driver appends one
//! serde-free JSON line (rendered and parsed with [`mcpart_obs::json`])
//! to the checkpoint file; a resumed run validates the header, skips
//! the recorded units (replaying their pinned obs events), and runs
//! only what is missing — producing output byte-identical to an
//! uninterrupted run.
//!
//! ## File format
//!
//! Line 1 is the **header**: the format version plus everything a
//! result depends on — program name and content hash, RHOP seed,
//! machine shape (clusters, latency, memory mode) and GDP fuel. A
//! mismatch on resume is rejected with
//! [`CheckpointError::Mismatch`] (exit 2 at the CLI) rather than
//! silently mixing incompatible placements. Every subsequent line is
//! one [`UnitRecord`].
//!
//! ## Crash tolerance
//!
//! The writer appends one `\n`-terminated line per unit and flushes it
//! before reporting the unit done. A process killed mid-append leaves
//! at most one unterminated final line; the loader treats that
//! unterminated tail as a crash artifact and discards it (the unit
//! simply reruns). A *terminated* line that fails to parse is real
//! corruption and is rejected with a line/column diagnostic — never a
//! panic.
//!
//! ## Manifest lines
//!
//! A GDP unit may be followed by one **manifest** line (key
//! `mcpart_manifest`): per-function content hashes, per-group content
//! hashes and homes, and the per-function RHOP outputs needed to replay
//! clean functions on a later incremental run (see
//! [`crate::repartition`]). Manifest lines are advisory: manifest-less
//! checkpoints (from before the manifest existed, or whose manifest was
//! lost) load fine and simply force a full recompute, and a manifest
//! line that fails to parse or validate is silently ignored rather than
//! rejected. Only the *absence* of a manifest costs anything; it can
//! never make a result wrong.

use crate::error::Downgrade;
use crate::pipeline::{Method, PipelineConfig, PipelineResult};
use crate::{run_pipeline, McpartError};
use mcpart_ir::{ClusterId, EntityMap, Profile, Program};
use mcpart_machine::Machine;
use mcpart_obs::json::{self, JsonValue};
use mcpart_obs::EventKind;
use mcpart_par::supervise::{QuarantineReport, QuarantinedUnit};
use mcpart_sched::Placement;
use std::fmt;
use std::fmt::Write as _;
use std::io::Write as _;

/// Checkpoint format version (bumped on incompatible changes).
pub const CHECKPOINT_VERSION: i64 = 1;

/// FNV-1a hash of a byte string — the content fingerprint used to tie
/// a checkpoint to its program text.
pub fn fingerprint(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The content fingerprint of a program (hash of its textual IR).
pub fn program_fingerprint(program: &Program) -> u64 {
    fingerprint(mcpart_ir::program_to_string(program).as_bytes())
}

/// Stable lowercase slug of a method, used in unit keys and records.
pub fn method_slug(method: Method) -> &'static str {
    match method {
        Method::Gdp => "gdp",
        Method::ProfileMax => "profile-max",
        Method::Naive => "naive",
        Method::Unified => "unified",
    }
}

/// Inverse of [`method_slug`].
pub fn method_from_slug(slug: &str) -> Option<Method> {
    Some(match slug {
        "gdp" => Method::Gdp,
        "profile-max" => Method::ProfileMax,
        "naive" => Method::Naive,
        "unified" => Method::Unified,
        _ => return None,
    })
}

/// Everything a unit's result depends on; written as the checkpoint's
/// first line and validated on resume.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointHeader {
    /// Program (workload) name.
    pub program: String,
    /// Content hash of the program's textual IR.
    pub program_hash: u64,
    /// RHOP seed.
    pub seed: u64,
    /// Cluster count of the machine.
    pub clusters: usize,
    /// Intercluster move latency.
    pub latency: u32,
    /// Memory mode slug (`partitioned`, `unified`, `coherent:<p>`).
    pub memory: String,
    /// GDP refinement fuel (`None` = unlimited).
    pub gdp_fuel: Option<u64>,
}

impl CheckpointHeader {
    /// Renders the header as its JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"mcpart_checkpoint\":{CHECKPOINT_VERSION},\"program\":\"{}\",\
             \"program_hash\":\"{:016x}\",\"seed\":\"{}\",\"clusters\":{},\
             \"latency\":{},\"memory\":\"{}\",\"gdp_fuel\":{}}}",
            json::escape(&self.program),
            self.program_hash,
            self.seed,
            self.clusters,
            self.latency,
            json::escape(&self.memory),
            self.gdp_fuel.map_or(-1i64, |f| f as i64),
        );
        s
    }

    fn from_json(doc: &JsonValue) -> Result<CheckpointHeader, String> {
        let version = doc
            .get("mcpart_checkpoint")
            .and_then(JsonValue::as_num)
            .ok_or("not a checkpoint file (missing 'mcpart_checkpoint' version)")?;
        if version as i64 != CHECKPOINT_VERSION {
            return Err(format!(
                "unsupported checkpoint version {version} (expected {CHECKPOINT_VERSION})"
            ));
        }
        let field_str = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or(format!("header missing '{key}'"))
        };
        let field_num = |key: &str| -> Result<f64, String> {
            doc.get(key).and_then(JsonValue::as_num).ok_or(format!("header missing '{key}'"))
        };
        let program_hash = u64::from_str_radix(&field_str("program_hash")?, 16)
            .map_err(|_| "header 'program_hash' is not a hex hash".to_string())?;
        let seed = field_str("seed")?
            .parse::<u64>()
            .map_err(|_| "header 'seed' is not an integer".to_string())?;
        let gdp_fuel = match field_num("gdp_fuel")? as i64 {
            -1 => None,
            f if f >= 0 => Some(f as u64),
            _ => return Err("header 'gdp_fuel' must be -1 or non-negative".to_string()),
        };
        Ok(CheckpointHeader {
            program: field_str("program")?,
            program_hash,
            seed,
            clusters: field_num("clusters")? as usize,
            latency: field_num("latency")? as u32,
            memory: field_str("memory")?,
            gdp_fuel,
        })
    }

    /// First header field that differs from `expected`, if any.
    fn mismatch_against(&self, expected: &CheckpointHeader) -> Option<(String, String, String)> {
        let fields: [(&str, String, String); 7] = [
            ("program", expected.program.clone(), self.program.clone()),
            (
                "program_hash",
                format!("{:016x}", expected.program_hash),
                format!("{:016x}", self.program_hash),
            ),
            ("seed", expected.seed.to_string(), self.seed.to_string()),
            ("clusters", expected.clusters.to_string(), self.clusters.to_string()),
            ("latency", expected.latency.to_string(), self.latency.to_string()),
            ("memory", expected.memory.clone(), self.memory.clone()),
            ("gdp_fuel", format!("{:?}", expected.gdp_fuel), format!("{:?}", self.gdp_fuel)),
        ];
        fields
            .into_iter()
            .find(|(_, want, got)| want != got)
            .map(|(name, want, got)| (name.to_string(), want, got))
    }

    /// Whether a checkpoint with this header can serve as the
    /// *baseline* of an incremental re-partition targeting `current`:
    /// every result-affecting field must match except `program_hash`
    /// (the whole point is that the program text changed).
    pub fn compatible_baseline(&self, current: &CheckpointHeader) -> bool {
        let mut relaxed = self.clone();
        relaxed.program_hash = current.program_hash;
        relaxed.mismatch_against(current).is_none()
    }
}

/// Manifest line key (and, with the leading `{"`, the prefix that
/// identifies a manifest line inside a checkpoint or cache entry).
pub const MANIFEST_KEY: &str = "mcpart_manifest";

fn manifest_line_prefix() -> String {
    format!("{{\"{MANIFEST_KEY}\"")
}

/// Per-function entry of a [`Manifest`]: everything needed to decide
/// whether the function is dirty and, if clean, to replay its RHOP
/// result without re-running the partitioner.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManifestFunc {
    /// Function name (diagnostic only; identity is positional, because
    /// RHOP's per-function RNG seed derives from the function *index*).
    pub name: String,
    /// Content hash: FNV-1a of the function's textual IR folded with
    /// the object names its memory ops may touch (in op order), so a
    /// points-to change caused elsewhere still dirties this function.
    pub hash: u64,
    /// Sorted content hashes of the object groups the function
    /// accesses.
    pub groups: Vec<u64>,
    /// Pre-normalization RHOP op clusters (empty for a quarantined
    /// function, which is never replayable).
    pub op_cluster: Vec<u32>,
    /// Per-function RHOP stats, in fixed order: regions,
    /// estimator_calls, moves_accepted, full_evals, pruned_evals,
    /// pruned_lock, pruned_bound.
    pub stats: [u64; 7],
    /// Panicking attempts the function needed (`u64::MAX` marks a
    /// quarantined function). Only a `0` entry is replayable: retries
    /// consume backoff fuel whose accounting cannot be reproduced
    /// without re-running.
    pub retries: u64,
}

impl ManifestFunc {
    /// Whether this entry carries a replayable RHOP result.
    pub fn replayable(&self) -> bool {
        self.retries == 0
    }
}

/// The incremental-repartition manifest written alongside a GDP unit
/// record: per-function and per-group content hashes plus the
/// per-function RHOP outputs a clean function replays from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Unit key this manifest belongs to (`program/method-slug`).
    pub unit: String,
    /// Per-function entries, in function-index order.
    pub funcs: Vec<ManifestFunc>,
    /// `(content hash, home cluster)` of every live object group in
    /// the baseline GDP placement, sorted by hash (`-1` = unhomed).
    pub groups: Vec<(u64, i64)>,
}

impl Manifest {
    /// Renders the manifest as its JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"{MANIFEST_KEY}\":{CHECKPOINT_VERSION},\"unit\":\"{}\",\"funcs\":[",
            json::escape(&self.unit)
        );
        for (i, f) in self.funcs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"hash\":\"{:016x}\",\"groups\":[",
                json::escape(&f.name),
                f.hash
            );
            for (j, g) in f.groups.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "\"{g:016x}\"");
            }
            s.push_str("],\"op_cluster\":[");
            for (j, c) in f.op_cluster.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{c}");
            }
            s.push_str("],\"stats\":[");
            for (j, v) in f.stats.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{v}");
            }
            // u64::MAX (quarantine marker) does not survive an f64
            // roundtrip; encode retries as -1 in that case.
            let retries = if f.retries == u64::MAX { -1 } else { f.retries as i64 };
            let _ = write!(s, "],\"retries\":{retries}}}");
        }
        s.push_str("],\"groups\":[");
        for (i, (hash, home)) in self.groups.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "[\"{hash:016x}\",{home}]");
        }
        s.push_str("]}");
        s
    }

    fn from_json(doc: &JsonValue) -> Result<Manifest, String> {
        let version =
            doc.get(MANIFEST_KEY).and_then(JsonValue::as_num).ok_or("missing manifest version")?;
        if version as i64 != CHECKPOINT_VERSION {
            return Err(format!("unsupported manifest version {version}"));
        }
        let unit = doc
            .get("unit")
            .and_then(JsonValue::as_str)
            .ok_or("manifest missing 'unit'")?
            .to_string();
        let hex = |v: &JsonValue| -> Result<u64, String> {
            let s = v.as_str().ok_or("manifest hash is not a string")?;
            u64::from_str_radix(s, 16).map_err(|_| "manifest hash is not hex".to_string())
        };
        let mut funcs = Vec::new();
        for f in doc.get("funcs").and_then(JsonValue::as_arr).ok_or("manifest missing 'funcs'")? {
            let name = f
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or("manifest func missing 'name'")?
                .to_string();
            let hash = hex(f.get("hash").ok_or("manifest func missing 'hash'")?)?;
            let mut groups = Vec::new();
            for g in f.get("groups").and_then(JsonValue::as_arr).ok_or("func missing 'groups'")? {
                groups.push(hex(g)?);
            }
            let mut op_cluster = Vec::new();
            for c in f
                .get("op_cluster")
                .and_then(JsonValue::as_arr)
                .ok_or("func missing 'op_cluster'")?
            {
                op_cluster.push(c.as_num().ok_or("op_cluster value is not a number")? as u32);
            }
            let stats_arr =
                f.get("stats").and_then(JsonValue::as_arr).ok_or("func missing 'stats'")?;
            if stats_arr.len() != 7 {
                return Err("func 'stats' must have 7 entries".to_string());
            }
            let mut stats = [0u64; 7];
            for (slot, v) in stats.iter_mut().zip(stats_arr) {
                *slot = v.as_num().ok_or("stats value is not a number")? as u64;
            }
            let retries =
                f.get("retries").and_then(JsonValue::as_num).ok_or("func missing 'retries'")?
                    as i64;
            let retries = if retries < 0 { u64::MAX } else { retries as u64 };
            funcs.push(ManifestFunc { name, hash, groups, op_cluster, stats, retries });
        }
        let mut groups = Vec::new();
        for pair in
            doc.get("groups").and_then(JsonValue::as_arr).ok_or("manifest missing 'groups'")?
        {
            let kv = pair.as_arr().ok_or("manifest group is not a pair")?;
            if kv.len() != 2 {
                return Err("manifest group is not a [hash, home] pair".to_string());
            }
            let home = kv[1].as_num().ok_or("group home is not a number")? as i64;
            groups.push((hex(&kv[0])?, home));
        }
        Ok(Manifest { unit, funcs, groups })
    }
}

/// The pinned projection of one obs event, carried by a [`UnitRecord`]
/// so a resumed run can replay the unit's trace contribution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PinnedEvent {
    /// Event category.
    pub cat: String,
    /// Event name.
    pub name: String,
    /// `Some(value)` for counters, `None` for spans.
    pub counter: Option<i64>,
    /// Pinned integer attributes.
    pub args: Vec<(String, i64)>,
}

/// One completed unit: its identity, placement, downgrade records,
/// report scalars, quarantine state and pinned obs events.
#[derive(Clone, Debug, PartialEq)]
pub struct UnitRecord {
    /// Unit key: `program/method-slug` of the *requested* method.
    pub unit: String,
    /// Requested method.
    pub requested: Method,
    /// Method that actually produced the result.
    pub method: Method,
    /// Degradation-ladder records, oldest first.
    pub downgrades: Vec<Downgrade>,
    /// Operation clusters per function (input order).
    pub op_cluster: Vec<Vec<u32>>,
    /// Object home clusters (`-1` = unhomed).
    pub object_home: Vec<i64>,
    /// Total dynamic cycles.
    pub cycles: u64,
    /// Dynamic intercluster moves.
    pub dynamic_moves: u64,
    /// Dynamic remote accesses (coherent model).
    pub remote: u64,
    /// Static intercluster moves inserted.
    pub moves_inserted: usize,
    /// Detailed-partitioner runs (compile-time proxy).
    pub detailed_runs: usize,
    /// Data bytes homed per cluster.
    pub data_bytes: Vec<u64>,
    /// Panicking function attempts that were retried successfully.
    pub retries: u64,
    /// Function units replaced by the quarantine fallback.
    pub quarantine: Vec<QuarantinedUnit>,
    /// Peak boundary register pressure of the transformed program.
    pub pressure: u64,
    /// Partitioning wall-clock milliseconds (non-pinned; informational).
    pub partition_ms: f64,
    /// Pinned obs events recorded while the unit ran.
    pub events: Vec<PinnedEvent>,
}

impl UnitRecord {
    /// Builds a record from a finished pipeline run. `events` is the
    /// slice of the obs log recorded *during* this unit (the caller
    /// snapshots the sink length before the run).
    pub fn from_result(
        unit: &str,
        result: &PipelineResult,
        events: &[mcpart_obs::Event],
    ) -> UnitRecord {
        let pressure = result
            .program
            .functions
            .values()
            .map(|f| mcpart_analysis::Liveness::compute(f).peak_boundary_pressure())
            .max()
            .unwrap_or(0) as u64;
        UnitRecord {
            unit: unit.to_string(),
            requested: result.requested_method,
            method: result.method,
            downgrades: result.downgrades.clone(),
            op_cluster: result
                .placement
                .op_cluster
                .values()
                .map(|ops| ops.values().map(|c| c.index() as u32).collect())
                .collect(),
            object_home: result
                .placement
                .object_home
                .values()
                .map(|h| h.map_or(-1, |c| c.index() as i64))
                .collect(),
            cycles: result.cycles(),
            dynamic_moves: result.dynamic_moves(),
            remote: result.report.dynamic_remote_accesses,
            moves_inserted: result.moves_inserted,
            detailed_runs: result.detailed_runs,
            data_bytes: result.data_bytes.clone(),
            retries: result.rhop_stats.retries,
            quarantine: result.rhop_stats.quarantine.units.clone(),
            pressure,
            // Quantized to the serialized precision (microseconds) so the
            // record roundtrips bit-for-bit through its JSON line.
            partition_ms: (result.partition_time.as_secs_f64() * 1e6).round() / 1e3,
            events: events
                .iter()
                .map(|e| PinnedEvent {
                    cat: e.cat.to_string(),
                    name: e.name.clone(),
                    counter: match e.kind {
                        EventKind::Counter(v) => Some(v),
                        EventKind::Span => None,
                    },
                    args: e.args.clone(),
                })
                .collect(),
        }
    }

    /// Rebuilds the placement this record describes.
    pub fn placement(&self) -> Placement {
        Placement {
            op_cluster: self
                .op_cluster
                .iter()
                .map(|ops| {
                    ops.iter().map(|&c| ClusterId::new(c as usize)).collect::<EntityMap<_, _>>()
                })
                .collect(),
            object_home: self
                .object_home
                .iter()
                .map(|&h| if h < 0 { None } else { Some(ClusterId::new(h as usize)) })
                .collect(),
        }
    }

    /// The quarantine report carried by this record.
    pub fn quarantine_report(&self) -> QuarantineReport {
        QuarantineReport { units: self.quarantine.clone() }
    }

    /// Replays the unit's pinned obs events into a sink, so a resumed
    /// run's pinned log is byte-identical to an uninterrupted one.
    pub fn replay_events(&self, obs: &mcpart_obs::Obs) {
        for e in &self.events {
            let kind = match e.counter {
                Some(v) => EventKind::Counter(v),
                None => EventKind::Span,
            };
            obs.replay(mcpart_obs::intern_cat(&e.cat), &e.name, kind, e.args.clone());
        }
    }

    /// Renders the record as its JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"unit\":\"{}\",\"requested\":\"{}\",\"method\":\"{}\"",
            json::escape(&self.unit),
            method_slug(self.requested),
            method_slug(self.method)
        );
        s.push_str(",\"downgrades\":[");
        for (i, d) in self.downgrades.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"from\":\"{}\",\"to\":\"{}\",\"reason\":\"{}\"}}",
                method_slug(d.from),
                method_slug(d.to),
                json::escape(&d.reason)
            );
        }
        s.push_str("],\"op_cluster\":[");
        for (i, ops) in self.op_cluster.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('[');
            for (j, c) in ops.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{c}");
            }
            s.push(']');
        }
        s.push_str("],\"object_home\":[");
        for (i, h) in self.object_home.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{h}");
        }
        let _ = write!(
            s,
            "],\"cycles\":{},\"dynamic_moves\":{},\"remote\":{},\"moves_inserted\":{},\
             \"detailed_runs\":{},\"retries\":{},\"pressure\":{},\"partition_ms\":{:.3}",
            self.cycles,
            self.dynamic_moves,
            self.remote,
            self.moves_inserted,
            self.detailed_runs,
            self.retries,
            self.pressure,
            self.partition_ms
        );
        s.push_str(",\"data_bytes\":[");
        for (i, b) in self.data_bytes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{b}");
        }
        s.push_str("],\"quarantine\":[");
        for (i, q) in self.quarantine.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"unit\":\"{}\",\"attempts\":{},\"reason\":\"{}\"}}",
                json::escape(&q.unit),
                q.attempts,
                json::escape(&q.reason)
            );
        }
        s.push_str("],\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"cat\":\"{}\",\"name\":\"{}\"",
                json::escape(&e.cat),
                json::escape(&e.name)
            );
            if let Some(v) = e.counter {
                let _ = write!(s, ",\"counter\":{v}");
            }
            s.push_str(",\"args\":[");
            for (j, (k, v)) in e.args.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "[\"{}\",{}]", json::escape(k), v);
            }
            s.push_str("]}");
        }
        s.push_str("]}");
        s
    }

    fn from_json(doc: &JsonValue) -> Result<UnitRecord, String> {
        let str_field = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or(format!("record missing '{key}'"))
        };
        let num_field = |key: &str| -> Result<f64, String> {
            doc.get(key).and_then(JsonValue::as_num).ok_or(format!("record missing '{key}'"))
        };
        let arr_field = |key: &str| -> Result<&[JsonValue], String> {
            doc.get(key).and_then(JsonValue::as_arr).ok_or(format!("record missing '{key}'"))
        };
        let method_field = |key: &str| -> Result<Method, String> {
            let slug = str_field(key)?;
            method_from_slug(&slug).ok_or(format!("record '{key}': unknown method '{slug}'"))
        };
        let mut downgrades = Vec::new();
        for d in arr_field("downgrades")? {
            let slug_of = |key: &str| -> Result<Method, String> {
                let s = d
                    .get(key)
                    .and_then(JsonValue::as_str)
                    .ok_or(format!("downgrade missing '{key}'"))?;
                method_from_slug(s).ok_or(format!("downgrade '{key}': unknown method '{s}'"))
            };
            downgrades.push(Downgrade {
                from: slug_of("from")?,
                to: slug_of("to")?,
                reason: d
                    .get("reason")
                    .and_then(JsonValue::as_str)
                    .ok_or("downgrade missing 'reason'")?
                    .to_string(),
            });
        }
        let mut op_cluster = Vec::new();
        for func in arr_field("op_cluster")? {
            let ops = func.as_arr().ok_or("op_cluster entry is not an array")?;
            let mut clusters = Vec::with_capacity(ops.len());
            for c in ops {
                clusters.push(c.as_num().ok_or("op_cluster value is not a number")? as u32);
            }
            op_cluster.push(clusters);
        }
        let mut object_home = Vec::new();
        for h in arr_field("object_home")? {
            object_home.push(h.as_num().ok_or("object_home value is not a number")? as i64);
        }
        let mut data_bytes = Vec::new();
        for b in arr_field("data_bytes")? {
            data_bytes.push(b.as_num().ok_or("data_bytes value is not a number")? as u64);
        }
        let mut quarantine = Vec::new();
        for q in arr_field("quarantine")? {
            quarantine.push(QuarantinedUnit {
                unit: q
                    .get("unit")
                    .and_then(JsonValue::as_str)
                    .ok_or("quarantine entry missing 'unit'")?
                    .to_string(),
                attempts: q
                    .get("attempts")
                    .and_then(JsonValue::as_num)
                    .ok_or("quarantine entry missing 'attempts'")? as u32,
                reason: q
                    .get("reason")
                    .and_then(JsonValue::as_str)
                    .ok_or("quarantine entry missing 'reason'")?
                    .to_string(),
            });
        }
        let mut events = Vec::new();
        for e in arr_field("events")? {
            let mut args = Vec::new();
            for pair in e.get("args").and_then(JsonValue::as_arr).ok_or("event missing 'args'")? {
                let kv = pair.as_arr().ok_or("event arg is not a pair")?;
                if kv.len() != 2 {
                    return Err("event arg is not a [key, value] pair".to_string());
                }
                args.push((
                    kv[0].as_str().ok_or("event arg key is not a string")?.to_string(),
                    kv[1].as_num().ok_or("event arg value is not a number")? as i64,
                ));
            }
            events.push(PinnedEvent {
                cat: e
                    .get("cat")
                    .and_then(JsonValue::as_str)
                    .ok_or("event missing 'cat'")?
                    .to_string(),
                name: e
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or("event missing 'name'")?
                    .to_string(),
                counter: e.get("counter").and_then(JsonValue::as_num).map(|v| v as i64),
                args,
            });
        }
        Ok(UnitRecord {
            unit: str_field("unit")?,
            requested: method_field("requested")?,
            method: method_field("method")?,
            downgrades,
            op_cluster,
            object_home,
            cycles: num_field("cycles")? as u64,
            dynamic_moves: num_field("dynamic_moves")? as u64,
            remote: num_field("remote")? as u64,
            moves_inserted: num_field("moves_inserted")? as usize,
            detailed_runs: num_field("detailed_runs")? as usize,
            data_bytes,
            retries: num_field("retries")? as u64,
            quarantine,
            pressure: num_field("pressure")? as u64,
            partition_ms: num_field("partition_ms")?,
            events,
        })
    }
}

/// Why a checkpoint could not be used.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(String),
    /// A newline-terminated line is malformed (real corruption, not a
    /// crash artifact). `line`/`column` are 1-based.
    Corrupt {
        /// 1-based line number.
        line: usize,
        /// 1-based byte column within the line.
        column: usize,
        /// What was wrong.
        message: String,
    },
    /// The header does not match the requested run configuration.
    Mismatch {
        /// Header field that differs.
        field: String,
        /// Value the current run requires.
        expected: String,
        /// Value found in the file.
        found: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Corrupt { line, column, message } => {
                write!(f, "checkpoint corrupt at line {line}, column {column}: {message}")
            }
            CheckpointError::Mismatch { field, expected, found } => write!(
                f,
                "checkpoint header mismatch: {field} is `{found}` but this run requires \
                 `{expected}` (delete the checkpoint or rerun with matching options)"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// A loaded checkpoint: validated header, completed unit records, and
/// whether a crash artifact (unterminated tail line) was discarded.
#[derive(Debug)]
pub struct Checkpoint {
    /// The validated header.
    pub header: CheckpointHeader,
    /// Completed units, in file order.
    pub records: Vec<UnitRecord>,
    /// Repartition manifests, in file order. Unparseable manifest
    /// lines are dropped here (never an error), so absence only forces
    /// a full recompute.
    pub manifests: Vec<Manifest>,
    /// Whether an unterminated final line was dropped (the killed
    /// process died mid-append; the unit will simply rerun).
    pub dropped_partial_tail: bool,
}

impl Checkpoint {
    /// The record for a unit key, if the unit completed before the
    /// crash.
    pub fn record_for(&self, unit: &str) -> Option<&UnitRecord> {
        self.records.iter().find(|r| r.unit == unit)
    }

    /// The manifest for a unit key, if one was written and survived.
    pub fn manifest_for(&self, unit: &str) -> Option<&Manifest> {
        self.manifests.iter().find(|m| m.unit == unit)
    }
}

/// Loads and validates a checkpoint file against the header the
/// current run would write.
pub fn load_checkpoint(
    path: &str,
    expected: &CheckpointHeader,
) -> Result<Checkpoint, CheckpointError> {
    let bytes =
        std::fs::read(path).map_err(|e| CheckpointError::Io(format!("cannot read {path}: {e}")))?;
    let text = checkpoint_utf8(&bytes)?;
    parse_checkpoint(text, expected)
}

/// Decodes checkpoint bytes, classifying invalid UTF-8 as corruption at
/// a 1-based line/column rather than as an I/O failure: garbage on disk
/// is a configuration problem (exit 2), not a transient runtime error.
fn checkpoint_utf8(bytes: &[u8]) -> Result<&str, CheckpointError> {
    std::str::from_utf8(bytes).map_err(|e| {
        let at = e.valid_up_to();
        let prefix = &bytes[..at];
        let line = prefix.iter().filter(|&&b| b == b'\n').count() + 1;
        let column = at - prefix.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1) + 1;
        CheckpointError::Corrupt { line, column, message: format!("invalid UTF-8 at byte {at}") }
    })
}

/// [`load_checkpoint`] on in-memory text (the testable core).
pub fn parse_checkpoint(
    text: &str,
    expected: &CheckpointHeader,
) -> Result<Checkpoint, CheckpointError> {
    parse_checkpoint_inner(text, Some(expected))
}

/// [`load_checkpoint`] without header validation — loads a file for
/// `checkpoint-diff`, which compares two checkpoints on their own
/// terms.
pub fn load_checkpoint_any(path: &str) -> Result<Checkpoint, CheckpointError> {
    let bytes =
        std::fs::read(path).map_err(|e| CheckpointError::Io(format!("cannot read {path}: {e}")))?;
    parse_checkpoint_any(checkpoint_utf8(&bytes)?)
}

/// Parses a checkpoint without validating its header against a run
/// configuration — the `checkpoint-diff` tool's entry point, which
/// compares two files on their own terms.
pub fn parse_checkpoint_any(text: &str) -> Result<Checkpoint, CheckpointError> {
    parse_checkpoint_inner(text, None)
}

fn parse_checkpoint_inner(
    text: &str,
    expected: Option<&CheckpointHeader>,
) -> Result<Checkpoint, CheckpointError> {
    let corrupt = |line_no: usize, message: String| {
        // Parse errors embed a byte offset within the line; surface it
        // as a 1-based column.
        let column = json::error_byte(&message).map_or(1, |b| b + 1);
        CheckpointError::Corrupt { line: line_no, column, message }
    };
    let mut lines: Vec<(usize, &str, bool)> = Vec::new();
    let mut line_no = 0;
    for piece in text.split_inclusive('\n') {
        line_no += 1;
        let terminated = piece.ends_with('\n');
        let body = piece.trim_end_matches(['\n', '\r']);
        lines.push((line_no, body, terminated));
    }
    // Drop an unterminated tail: a process killed mid-append leaves one.
    let mut dropped_partial_tail = false;
    if let Some(&(_, body, terminated)) = lines.last() {
        if !terminated && json::parse(body).is_err() {
            lines.pop();
            dropped_partial_tail = true;
        }
    }
    let Some(&(_, header_line, _)) = lines.first() else {
        return Err(corrupt(1, "missing checkpoint header".to_string()));
    };
    let header_doc = json::parse(header_line).map_err(|e| corrupt(1, e))?;
    let header = CheckpointHeader::from_json(&header_doc).map_err(|e| corrupt(1, e))?;
    if let Some(expected) = expected {
        if let Some((field, expected, found)) = header.mismatch_against(expected) {
            return Err(CheckpointError::Mismatch { field, expected, found });
        }
    }
    let mut records = Vec::new();
    let mut manifests = Vec::new();
    let manifest_prefix = manifest_line_prefix();
    for &(n, body, _) in &lines[1..] {
        if body.is_empty() {
            continue;
        }
        if body.starts_with(&manifest_prefix) {
            // Manifests are advisory: a malformed one is dropped (the
            // unit recomputes from scratch), never a parse error.
            if let Ok(doc) = json::parse(body) {
                if let Ok(m) = Manifest::from_json(&doc) {
                    manifests.push(m);
                }
            }
            continue;
        }
        let doc = json::parse(body).map_err(|e| corrupt(n, e))?;
        records.push(UnitRecord::from_json(&doc).map_err(|e| corrupt(n, e))?);
    }
    Ok(Checkpoint { header, records, manifests, dropped_partial_tail })
}

/// Appends unit records to a checkpoint file, one flushed line each.
#[derive(Debug)]
pub struct CheckpointWriter {
    file: std::fs::File,
    path: String,
}

impl CheckpointWriter {
    /// Creates (truncating) a checkpoint file and writes the header.
    pub fn create(path: &str, header: &CheckpointHeader) -> Result<Self, CheckpointError> {
        let mut file = std::fs::File::create(path)
            .map_err(|e| CheckpointError::Io(format!("cannot create {path}: {e}")))?;
        writeln!(file, "{}", header.to_json())
            .map_err(|e| CheckpointError::Io(format!("cannot write {path}: {e}")))?;
        let mut w = CheckpointWriter { file, path: path.to_string() };
        w.flush()?;
        Ok(w)
    }

    /// Re-creates the file from a validated resume: header plus the
    /// surviving records and manifests (this drops any crash artifact
    /// from the tail so subsequent appends start on a clean line).
    pub fn resume(
        path: &str,
        header: &CheckpointHeader,
        records: &[UnitRecord],
        manifests: &[Manifest],
    ) -> Result<Self, CheckpointError> {
        let mut w = CheckpointWriter::create(path, header)?;
        for r in records {
            w.append(r)?;
            if let Some(m) = manifests.iter().find(|m| m.unit == r.unit) {
                w.append_manifest(m)?;
            }
        }
        Ok(w)
    }

    /// Appends one record and flushes it to the OS before returning,
    /// so a later SIGKILL cannot lose a unit that was reported done.
    pub fn append(&mut self, record: &UnitRecord) -> Result<(), CheckpointError> {
        writeln!(self.file, "{}", record.to_json())
            .map_err(|e| CheckpointError::Io(format!("cannot write {}: {e}", self.path)))?;
        self.flush()
    }

    /// Appends one manifest line (written right after its unit's
    /// record, so a crash between the two costs only the manifest).
    pub fn append_manifest(&mut self, manifest: &Manifest) -> Result<(), CheckpointError> {
        writeln!(self.file, "{}", manifest.to_json())
            .map_err(|e| CheckpointError::Io(format!("cannot write {}: {e}", self.path)))?;
        self.flush()
    }

    /// Crash-injection hook for the kill-and-resume tests: appends
    /// only the first half of the record's line — no terminating
    /// newline — and flushes, reproducing bit-for-bit the on-disk
    /// state of a process killed mid-append. The caller is expected to
    /// abort immediately afterwards; a resumed load classifies the
    /// unterminated tail as a tolerated crash artifact and drops it.
    pub fn append_partial(&mut self, record: &UnitRecord) -> Result<(), CheckpointError> {
        let line = record.to_json();
        let half = &line.as_bytes()[..line.len() / 2];
        self.file
            .write_all(half)
            .map_err(|e| CheckpointError::Io(format!("cannot write {}: {e}", self.path)))?;
        self.flush()
    }

    fn flush(&mut self) -> Result<(), CheckpointError> {
        self.file
            .flush()
            .and_then(|()| self.file.sync_data())
            .map_err(|e| CheckpointError::Io(format!("cannot flush {}: {e}", self.path)))
    }
}

/// A completed unit plus its incremental-repartition byproducts.
#[derive(Debug)]
pub struct UnitRun {
    /// The unit record (what [`run_unit`] returns).
    pub record: UnitRecord,
    /// Manifest for a future incremental run (GDP method, not
    /// downgraded; `None` otherwise).
    pub manifest: Option<Manifest>,
    /// Dirty-cone statistics when the run replayed against a baseline
    /// manifest (`None` on a from-scratch run).
    pub repartition: Option<crate::repartition::RepartitionStats>,
}

/// Runs one checkpointable unit: snapshots the obs log, runs the
/// pipeline, and packages the result (placement, downgrades, report
/// scalars, quarantine, the unit's pinned events) as a [`UnitRecord`],
/// alongside the fresh manifest and — when `config.baseline` carried a
/// prior manifest — the dirty-cone statistics.
///
/// A terminal worker panic surfaces as
/// [`McpartError::WorkerPanic`] naming this unit.
pub fn run_unit_full(
    program: &Program,
    profile: &Profile,
    machine: &Machine,
    config: &PipelineConfig,
) -> Result<UnitRun, McpartError> {
    let unit = format!("{}/{}", program.name, method_slug(config.method));
    let before = config.obs.events().len();
    let result = run_pipeline(program, profile, machine, config)
        .map_err(|e| McpartError::from_unit_failure(&unit, e))?;
    let events = config.obs.events();
    let record = UnitRecord::from_result(&unit, &result, &events[before..]);
    let manifest = result.manifest.clone().map(|mut m| {
        m.unit = unit.clone();
        m
    });
    Ok(UnitRun { record, manifest, repartition: result.repartition })
}

/// [`run_unit_full`] without the repartition byproducts.
pub fn run_unit(
    program: &Program,
    profile: &Profile,
    machine: &Machine,
    config: &PipelineConfig,
) -> Result<UnitRecord, McpartError> {
    run_unit_full(program, profile, machine, config).map(|run| run.record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpart_ir::{DataObject, FunctionBuilder, MemWidth};

    fn demo_program() -> (Program, Profile) {
        let mut program = Program::new("demo");
        let table = program.add_object(DataObject::global("table", 64));
        let mut b = FunctionBuilder::entry(&mut program);
        let base = b.addrof(table);
        let v = b.load(MemWidth::B4, base);
        let w = b.add(v, v);
        b.store(MemWidth::B4, base, w);
        b.ret(None);
        let profile = Profile::uniform(&program, 100);
        (program, profile)
    }

    fn demo_header(program: &Program) -> CheckpointHeader {
        CheckpointHeader {
            program: program.name.clone(),
            program_hash: program_fingerprint(program),
            seed: 0x4409,
            clusters: 2,
            latency: 5,
            memory: "partitioned".to_string(),
            gdp_fuel: None,
        }
    }

    #[test]
    fn header_roundtrips() {
        let (program, _) = demo_program();
        let h = demo_header(&program);
        let doc = json::parse(&h.to_json()).expect("header is valid JSON");
        let parsed = CheckpointHeader::from_json(&doc).expect("header parses back");
        assert_eq!(parsed, h);
        let mut other = h.clone();
        other.seed = 7;
        assert!(parsed.mismatch_against(&h).is_none());
        let (field, _, _) = parsed.mismatch_against(&other).expect("seed differs");
        assert_eq!(field, "seed");
    }

    #[test]
    fn unit_record_roundtrips_through_json() {
        let (program, profile) = demo_program();
        let machine = Machine::paper_2cluster(5);
        let obs = mcpart_obs::Obs::enabled();
        let config = PipelineConfig::new(Method::Gdp).with_obs(obs.clone());
        let record = run_unit(&program, &profile, &machine, &config).expect("unit runs");
        assert_eq!(record.unit, "demo/gdp");
        assert!(!record.events.is_empty(), "obs events captured");
        let doc = json::parse(&record.to_json()).expect("record is valid JSON");
        let parsed = UnitRecord::from_json(&doc).expect("record parses back");
        assert_eq!(parsed, record);
        // The rebuilt placement matches the live one.
        let result = run_pipeline(&program, &profile, &machine, &config).expect("pipeline");
        assert_eq!(record.placement().op_cluster, result.placement.op_cluster);
        assert_eq!(record.placement().object_home, result.placement.object_home);
    }

    #[test]
    fn replay_reproduces_the_pinned_log() {
        let (program, profile) = demo_program();
        let machine = Machine::paper_2cluster(5);
        let live = mcpart_obs::Obs::enabled();
        let config = PipelineConfig::new(Method::Gdp).with_obs(live.clone());
        let record = run_unit(&program, &profile, &machine, &config).expect("unit runs");
        let resumed = mcpart_obs::Obs::enabled();
        record.replay_events(&resumed);
        assert_eq!(live.pinned_log(), resumed.pinned_log());
    }

    #[test]
    fn checkpoint_roundtrips_and_tolerates_partial_tail() {
        let (program, profile) = demo_program();
        let machine = Machine::paper_2cluster(5);
        let config = PipelineConfig::new(Method::Gdp);
        let record = run_unit(&program, &profile, &machine, &config).expect("unit runs");
        let header = demo_header(&program);
        let mut text = format!("{}\n{}\n", header.to_json(), record.to_json());
        let ck = parse_checkpoint(&text, &header).expect("clean checkpoint parses");
        assert_eq!(ck.records.len(), 1);
        assert!(!ck.dropped_partial_tail);
        assert!(ck.record_for("demo/gdp").is_some());
        assert!(ck.record_for("demo/naive").is_none());
        // A SIGKILL mid-append leaves an unterminated prefix of the next
        // record: dropped as a crash artifact, not an error.
        let half = &record.to_json()[..40];
        text.push_str(half);
        let ck = parse_checkpoint(&text, &header).expect("partial tail tolerated");
        assert_eq!(ck.records.len(), 1);
        assert!(ck.dropped_partial_tail);
    }

    #[test]
    fn terminated_garbage_is_corruption_with_line_and_column() {
        let (program, _) = demo_program();
        let header = demo_header(&program);
        let text = format!("{}\n{{\"unit\": }}\n", header.to_json());
        match parse_checkpoint(&text, &header) {
            Err(CheckpointError::Corrupt { line, column, .. }) => {
                assert_eq!(line, 2);
                assert!(column > 1, "column {column} should point into the line");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // A header mismatch is a Mismatch, not corruption.
        let mut other_header = header.clone();
        other_header.clusters = 4;
        let text = format!("{}\n", header.to_json());
        match parse_checkpoint(&text, &other_header) {
            Err(CheckpointError::Mismatch { field, .. }) => assert_eq!(field, "clusters"),
            other => panic!("expected Mismatch, got {other:?}"),
        }
        // An empty file has no header.
        assert!(matches!(
            parse_checkpoint("", &header),
            Err(CheckpointError::Corrupt { line: 1, .. })
        ));
    }

    #[test]
    fn writer_appends_flushed_lines() {
        let (program, profile) = demo_program();
        let machine = Machine::paper_2cluster(5);
        let config = PipelineConfig::new(Method::Gdp);
        let record = run_unit(&program, &profile, &machine, &config).expect("unit runs");
        let header = demo_header(&program);
        let dir = std::env::temp_dir().join("mcpart_checkpoint_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("unit.ckpt");
        let path_str = path.to_str().expect("utf-8 path");
        {
            let mut w = CheckpointWriter::create(path_str, &header).expect("create");
            w.append(&record).expect("append");
        }
        let ck = load_checkpoint(path_str, &header).expect("load");
        assert_eq!(ck.records.len(), 1);
        assert_eq!(ck.records[0], record);
        // Resume rewrites the file with the surviving records.
        {
            let _w = CheckpointWriter::resume(path_str, &header, &ck.records, &ck.manifests)
                .expect("resume");
        }
        let again = load_checkpoint(path_str, &header).expect("reload");
        assert_eq!(again.records.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    fn demo_manifest(unit: &str) -> Manifest {
        Manifest {
            unit: unit.to_string(),
            funcs: vec![
                ManifestFunc {
                    name: "main".to_string(),
                    hash: 0xdead_beef_0123_4567,
                    groups: vec![1, 0xffff_ffff_ffff_fffe],
                    op_cluster: vec![0, 1, 0, 1],
                    stats: [1, 2, 3, 4, 5, 6, 7],
                    retries: 0,
                },
                ManifestFunc {
                    name: "quarantined".to_string(),
                    hash: 7,
                    groups: vec![],
                    op_cluster: vec![],
                    stats: [0; 7],
                    retries: u64::MAX,
                },
            ],
            groups: vec![(1, 0), (0xffff_ffff_ffff_fffe, -1)],
        }
    }

    #[test]
    fn manifest_roundtrips_through_json() {
        let m = demo_manifest("demo/gdp");
        let doc = json::parse(&m.to_json()).expect("manifest is valid JSON");
        let parsed = Manifest::from_json(&doc).expect("manifest parses back");
        assert_eq!(parsed, m);
        assert!(parsed.funcs[0].replayable());
        assert!(!parsed.funcs[1].replayable());
    }

    #[test]
    fn manifest_lines_load_and_corrupt_ones_are_dropped_not_errors() {
        let (program, profile) = demo_program();
        let machine = Machine::paper_2cluster(5);
        let config = PipelineConfig::new(Method::Gdp);
        let record = run_unit(&program, &profile, &machine, &config).expect("unit runs");
        let header = demo_header(&program);
        let manifest = demo_manifest("demo/gdp");
        let text = format!("{}\n{}\n{}\n", header.to_json(), record.to_json(), manifest.to_json());
        let ck = parse_checkpoint(&text, &header).expect("manifested checkpoint parses");
        assert_eq!(ck.records.len(), 1);
        assert_eq!(ck.manifest_for("demo/gdp"), Some(&manifest));
        assert!(ck.manifest_for("demo/naive").is_none());
        // A corrupt manifest line is dropped (full recompute), never an
        // error — but a corrupt *record* line still is one.
        let m = manifest.to_json();
        for bad in [&m[..m.len() / 2], "{\"mcpart_manifest\":1,\"unit\":3}"] {
            let text = format!("{}\n{}\n{bad}\n", header.to_json(), record.to_json());
            let ck = parse_checkpoint(&text, &header).expect("corrupt manifest tolerated");
            assert_eq!(ck.records.len(), 1);
            assert!(ck.manifests.is_empty());
        }
        // Manifests survive a resume rewrite.
        let dir = std::env::temp_dir().join("mcpart_manifest_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("unit.ckpt");
        let path_str = path.to_str().expect("utf-8 path");
        {
            let _w = CheckpointWriter::resume(
                path_str,
                &header,
                &ck.records,
                std::slice::from_ref(&manifest),
            )
            .expect("resume");
        }
        let again = load_checkpoint(path_str, &header).expect("reload");
        assert_eq!(again.manifest_for("demo/gdp"), Some(&manifest));
        std::fs::remove_file(&path).ok();
    }
}
