//! Chaos soak harness: seeded (program, machine, fault-plan) scenarios
//! judged by the independent [`crate::oracle`].
//!
//! One scenario is a triple sampled deterministically from a base seed:
//!
//! * a **program** — a small synthetic [`SynthSpec`] instance or a
//!   Mediabench workload;
//! * a **machine** — one cell of a [`SweepMatrix`] (cluster count,
//!   latency, topology, unit mix, memory model);
//! * a **fault plan** — a [`FaultPlan`] arming the repo's existing
//!   injectors (unit panics, GDP fuel, estimator budgets, watchdog
//!   timeouts, checkpoint corruption, spool kills).
//!
//! The scenario runs the full pipeline under the plan and the oracle
//! judges the outcome: the run must end in a valid placement (all
//! oracle invariants hold) or a *typed* error — never a panic. Each
//! successful run is additionally re-run at a different `--jobs` count
//! and byte-compared, and checkpoint-corruption entries exercise the
//! checkpoint parser's no-panic / crash-recovery contract in memory.
//!
//! Failing scenarios greedily **shrink** (drop fault entries, simplify
//! the machine, halve synthetic-program axes — each candidate
//! re-validated) and the minimized repro is written to a corpus file
//! whose grammar round-trips through [`Scenario::parse`], so
//! `mcpart chaos --replay <file>` re-runs it exactly.
//!
//! Everything is a pure function of the scenario, so the whole soak is
//! bit-identical across runs and `--jobs` counts.

use crate::checkpoint::{
    method_from_slug, method_slug, program_fingerprint, CheckpointHeader, UnitRecord,
};
use crate::oracle::{check_result, OracleReport};
use crate::pipeline::{run_pipeline, Method, PipelineConfig, PipelineResult};
use mcpart_ir::{ClusterId, Profile, Program};
use mcpart_machine::{memory_slug, Machine, MemoryModel, SweepMatrix, SweepPoint, Topology};
use mcpart_obs::Obs;
use mcpart_par::fault::{FaultEntry, FaultPlan};
use mcpart_rng::{derive_seed, Rng, SeedableRng, SmallRng};
use mcpart_sim::ExecConfig;
use mcpart_workloads::SynthSpec;
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// Total shrink re-runs allowed per failing scenario.
const SHRINK_BUDGET: u64 = 64;

/// A chaos-harness failure that is *not* a scenario verdict: bad
/// configuration, an unresolvable program target, or corpus I/O.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ChaosError {
    /// A repro file failed to parse (1-based line).
    Parse {
        /// 1-based line of the offending token.
        line: usize,
        /// What is wrong with it.
        message: String,
    },
    /// A scenario's program target resolved to nothing.
    Target {
        /// The target string and why it failed.
        message: String,
    },
    /// A machine configuration failed validation.
    Machine {
        /// The rendered [`mcpart_machine::MachineError`].
        message: String,
    },
    /// Corpus directory or repro file I/O failed.
    Io {
        /// The path involved.
        path: String,
        /// The rendered I/O error.
        message: String,
    },
}

impl fmt::Display for ChaosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosError::Parse { line, message } => write!(f, "repro line {line}: {message}"),
            ChaosError::Target { message } => write!(f, "chaos target: {message}"),
            ChaosError::Machine { message } => write!(f, "chaos machine: {message}"),
            ChaosError::Io { path, message } => write!(f, "chaos corpus {path}: {message}"),
        }
    }
}

impl std::error::Error for ChaosError {}

/// One sampled (or replayed) soak scenario.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Scenario {
    /// Program target: a `key=value` synthetic spec (contains `=`) or a
    /// workload name.
    pub target: String,
    /// The machine configuration.
    pub point: SweepPoint,
    /// Requested partitioning method (the ladder may downgrade it).
    pub method: Method,
    /// The armed fault injectors.
    pub faults: FaultPlan,
    /// Seed for the RHOP refiner and the synthetic program.
    pub seed: u64,
}

impl Scenario {
    /// Parses the repro-file grammar (the `Display` rendering plus
    /// optional `#` comments). `target` is mandatory; the other keys
    /// default to the paper machine, GDP and the empty plan.
    pub fn parse(text: &str) -> Result<Scenario, ChaosError> {
        let mut target: Option<String> = None;
        let mut point = SweepPoint::paper();
        let mut method = Method::Gdp;
        let mut faults = FaultPlan::none();
        let mut seed = 0u64;
        for (lineno, raw) in text.lines().enumerate() {
            let line = lineno + 1;
            // Whole-line comments only: fault plans legitimately
            // contain `#k` unit references, so `#` is not special
            // mid-line.
            let content = raw.trim();
            if content.is_empty() || content.starts_with('#') {
                continue;
            }
            let (key, value) = content.split_once('=').ok_or_else(|| ChaosError::Parse {
                line,
                message: "expected `key = value`".to_string(),
            })?;
            let value = value.trim();
            match key.trim() {
                "target" => target = Some(value.to_string()),
                "machine" => {
                    point = SweepPoint::parse(value)
                        .map_err(|message| ChaosError::Parse { line, message })?;
                }
                "method" => {
                    method = method_from_slug(value).ok_or_else(|| ChaosError::Parse {
                        line,
                        message: format!("unknown method `{value}`"),
                    })?;
                }
                "faults" => {
                    faults = FaultPlan::parse(value)
                        .map_err(|e| ChaosError::Parse { line, message: e.to_string() })?;
                }
                "seed" => {
                    seed = value.parse().map_err(|_| ChaosError::Parse {
                        line,
                        message: format!("bad seed `{value}`"),
                    })?;
                }
                other => {
                    return Err(ChaosError::Parse {
                        line,
                        message: format!(
                            "unknown key `{other}` (target, machine, method, faults, seed)"
                        ),
                    });
                }
            }
        }
        let target = target.ok_or(ChaosError::Parse {
            line: text.lines().count().max(1),
            message: "repro file has no `target =` line".to_string(),
        })?;
        Ok(Scenario { target, point, method, faults, seed })
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "target = {}", self.target)?;
        writeln!(f, "machine = {}", self.point)?;
        writeln!(f, "method = {}", method_slug(self.method))?;
        writeln!(f, "faults = {}", self.faults)?;
        writeln!(f, "seed = {}", self.seed)
    }
}

/// How one scenario ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScenarioVerdict {
    /// The pipeline produced a placement and every oracle check passed.
    Pass,
    /// The pipeline failed with a typed error after exhausting its
    /// ladder — the contract allows this under injected faults.
    TypedError,
    /// The pipeline produced a result the oracle rejected, a
    /// jobs-invariance re-run diverged, or a corruption sub-check
    /// misbehaved.
    OracleFailure,
    /// Something panicked — never allowed.
    Panicked,
}

impl ScenarioVerdict {
    /// Stable slug for logs and repro-file comments.
    pub fn slug(self) -> &'static str {
        match self {
            ScenarioVerdict::Pass => "pass",
            ScenarioVerdict::TypedError => "typed-error",
            ScenarioVerdict::OracleFailure => "oracle-failure",
            ScenarioVerdict::Panicked => "panic",
        }
    }
}

impl fmt::Display for ScenarioVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

/// One judged scenario.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ScenarioResult {
    /// The scenario as run (post-shrink results carry the shrunk one).
    pub scenario: Scenario,
    /// The verdict.
    pub verdict: ScenarioVerdict,
    /// Oracle checks evaluated (0 on typed errors and panics).
    pub checks_run: usize,
    /// Evidence: the first oracle failure, the typed error, or the
    /// panic payload.
    pub detail: String,
}

impl ScenarioResult {
    /// Whether this scenario violated the chaos contract.
    pub fn failed(&self) -> bool {
        matches!(self.verdict, ScenarioVerdict::OracleFailure | ScenarioVerdict::Panicked)
    }
}

/// Soak driver configuration.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Scenarios to sample.
    pub scenarios: usize,
    /// Base seed; every scenario derives its own stream from it.
    pub seed: u64,
    /// The machine sweep matrix to sample from.
    pub sweep: SweepMatrix,
    /// Shrink failing scenarios before reporting them.
    pub shrink: bool,
    /// Directory receiving minimized repro files (one per failure).
    pub corpus: Option<PathBuf>,
    /// Second worker count for the jobs-invariance re-run (`<= 1`
    /// skips the re-run).
    pub jobs_compare: usize,
    /// Test hook: corrupt every successful placement before judging,
    /// so the oracle must catch it (exercises the failure path
    /// end-to-end).
    pub inject_bad_placement: bool,
    /// Simulator bounds for the oracle's semantics check.
    pub exec: ExecConfig,
    /// Observability sink for the `chaos/*` counters.
    pub obs: Obs,
}

impl ChaosConfig {
    /// A default soak: `scenarios` samples from the built-in sweep at
    /// `seed`, shrinking on, no corpus, jobs-invariance at 4 workers.
    pub fn new(scenarios: usize, seed: u64) -> ChaosConfig {
        ChaosConfig {
            scenarios,
            seed,
            sweep: SweepMatrix::builtin(),
            shrink: true,
            corpus: None,
            jobs_compare: 4,
            inject_bad_placement: false,
            exec: ExecConfig::default(),
            obs: Obs::default(),
        }
    }
}

/// What a whole soak did.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ChaosSummary {
    /// Scenarios run.
    pub scenarios: usize,
    /// Scenarios that passed every oracle check.
    pub passed: usize,
    /// Scenarios ending in an allowed typed error.
    pub typed_errors: usize,
    /// Oracle checks evaluated across all scenarios.
    pub oracle_checks: u64,
    /// Shrink re-runs spent across all failures.
    pub shrink_steps: u64,
    /// The failing scenarios (shrunk when shrinking is on).
    pub failures: Vec<ScenarioResult>,
    /// Repro files written to the corpus.
    pub repro_files: Vec<PathBuf>,
}

impl ChaosSummary {
    /// One-line human summary.
    pub fn line(&self) -> String {
        format!(
            "chaos: {} scenario(s), {} pass, {} typed error(s), {} failure(s), \
             {} oracle check(s), {} shrink step(s)",
            self.scenarios,
            self.passed,
            self.typed_errors,
            self.failures.len(),
            self.oracle_checks,
            self.shrink_steps
        )
    }
}

/// Runs a seeded soak: samples `cfg.scenarios` scenarios, judges each,
/// shrinks and records failures, and emits the `chaos/*` counters.
pub fn run_chaos(cfg: &ChaosConfig) -> Result<ChaosSummary, ChaosError> {
    cfg.sweep.validate().map_err(|e| ChaosError::Machine { message: e.to_string() })?;
    let points = cfg.sweep.expand();
    let media: Vec<String> = mcpart_workloads::mediabench().into_iter().map(|w| w.name).collect();
    let mut cache: TargetCache = HashMap::new();
    let mut summary = ChaosSummary::default();
    for id in 0..cfg.scenarios {
        let scenario = sample_scenario(cfg, &points, &media, id);
        let mut result = run_scenario_cached(&scenario, cfg, &mut cache)?;
        summary.scenarios += 1;
        summary.oracle_checks += result.checks_run as u64;
        match result.verdict {
            ScenarioVerdict::Pass => summary.passed += 1,
            ScenarioVerdict::TypedError => summary.typed_errors += 1,
            _ => {
                if cfg.shrink {
                    let (shrunk, steps) = shrink(result, cfg, &mut cache)?;
                    summary.shrink_steps += steps;
                    result = shrunk;
                }
                if let Some(dir) = &cfg.corpus {
                    let path = write_repro(dir, cfg.seed, id, &result)?;
                    summary.repro_files.push(path);
                }
                summary.failures.push(result);
            }
        }
    }
    if cfg.obs.is_enabled() {
        cfg.obs.counter("chaos", "scenarios", summary.scenarios as i64);
        cfg.obs.counter("chaos", "failures", summary.failures.len() as i64);
        cfg.obs.counter("chaos", "shrink_steps", summary.shrink_steps as i64);
        cfg.obs.counter("chaos", "oracle_checks", summary.oracle_checks as i64);
    }
    Ok(summary)
}

/// Runs and judges one scenario (the `--replay` path).
pub fn run_scenario(scenario: &Scenario, cfg: &ChaosConfig) -> Result<ScenarioResult, ChaosError> {
    let mut cache = HashMap::new();
    run_scenario_cached(scenario, cfg, &mut cache)
}

type TargetCache = HashMap<String, (Program, Profile)>;

fn load_target(target: &str, cache: &mut TargetCache) -> Result<(Program, Profile), ChaosError> {
    if let Some(hit) = cache.get(target) {
        return Ok(hit.clone());
    }
    let workload = if target.contains('=') {
        mcpart_workloads::synth_result(target)
            .map_err(|e| ChaosError::Target { message: format!("`{target}`: {e}") })?
    } else {
        mcpart_workloads::by_name(target)
            .ok_or_else(|| ChaosError::Target { message: format!("unknown workload `{target}`") })?
    };
    let loaded = (workload.program, workload.profile);
    cache.insert(target.to_string(), loaded.clone());
    Ok(loaded)
}

fn pipeline_config(scenario: &Scenario, program: &Program, jobs: usize) -> PipelineConfig {
    let mut pcfg = PipelineConfig::new(scenario.method).with_jobs(jobs);
    pcfg.rhop.seed = scenario.seed;
    for entry in &scenario.faults.entries {
        match entry {
            FaultEntry::UnitPanic { unit, times } => {
                // `#k` references resolve against the function list so
                // plans stay meaningful across shrunk programs.
                let func = match unit.strip_prefix('#').and_then(|d| d.parse::<usize>().ok()) {
                    Some(k) => {
                        let n = program.functions.len().max(1);
                        program
                            .functions
                            .iter()
                            .nth(k % n)
                            .map(|(_, f)| f.name.clone())
                            .unwrap_or_else(|| unit.clone())
                    }
                    None => unit.clone(),
                };
                pcfg.rhop.inject_panic = Some(crate::rhop::PanicPlan { func, panics: *times });
            }
            FaultEntry::Fuel { budget } => pcfg.gdp.fuel = Some(*budget),
            FaultEntry::EstimatorBudget { calls } => {
                pcfg.rhop.max_estimator_calls = Some(*calls);
            }
            FaultEntry::Timeout { ms } => {
                pcfg.unit_timeout = Some(std::time::Duration::from_millis(*ms));
            }
            // Checkpoint and spool faults act after the pipeline run.
            FaultEntry::CheckpointTruncate { .. }
            | FaultEntry::CheckpointBitflip { .. }
            | FaultEntry::ServeKill { .. } => {}
        }
    }
    pcfg
}

fn run_scenario_cached(
    scenario: &Scenario,
    cfg: &ChaosConfig,
    cache: &mut TargetCache,
) -> Result<ScenarioResult, ChaosError> {
    let (program, profile) = load_target(&scenario.target, cache)?;
    let machine = scenario.point.machine();
    machine.validate().map_err(|e| ChaosError::Machine { message: e.to_string() })?;
    let pcfg = pipeline_config(scenario, &program, 1);
    let run = catch_unwind(AssertUnwindSafe(|| run_pipeline(&program, &profile, &machine, &pcfg)));
    let verdict = |verdict, checks_run, detail| {
        Ok(ScenarioResult { scenario: scenario.clone(), verdict, checks_run, detail })
    };
    let outcome = match run {
        Err(payload) => {
            return verdict(ScenarioVerdict::Panicked, 0, panic_message(payload.as_ref()));
        }
        Ok(outcome) => outcome,
    };
    match outcome {
        Err(e) => {
            // A typed error is allowed — but it must be *stable*: the
            // same scenario at another worker count must fail the same
            // way, or the determinism contract is broken.
            if cfg.jobs_compare > 1 {
                let pcfg2 = pipeline_config(scenario, &program, cfg.jobs_compare);
                let second = catch_unwind(AssertUnwindSafe(|| {
                    run_pipeline(&program, &profile, &machine, &pcfg2)
                }));
                match second {
                    Err(payload) => {
                        return verdict(
                            ScenarioVerdict::Panicked,
                            0,
                            format!(
                                "jobs={} re-run panicked: {}",
                                cfg.jobs_compare,
                                panic_message(payload.as_ref())
                            ),
                        );
                    }
                    Ok(Err(e2)) if e2.to_string() == e.to_string() => {}
                    Ok(other) => {
                        return verdict(
                            ScenarioVerdict::OracleFailure,
                            0,
                            format!(
                                "jobs=1 failed (`{e}`) but jobs={} produced {}",
                                cfg.jobs_compare,
                                match other {
                                    Ok(_) => "a placement".to_string(),
                                    Err(e2) => format!("a different error (`{e2}`)"),
                                }
                            ),
                        );
                    }
                }
            }
            verdict(ScenarioVerdict::TypedError, 0, e.to_string())
        }
        Ok(mut result) => {
            if cfg.inject_bad_placement {
                corrupt_placement(&mut result, machine.num_clusters());
            }
            let report = check_result(&program, &profile, &machine, &result, cfg.exec);
            let checks_run = report.checks_run();
            if !report.passed() {
                return verdict(ScenarioVerdict::OracleFailure, checks_run, oracle_detail(&report));
            }
            if cfg.jobs_compare > 1 && !cfg.inject_bad_placement {
                if let Some(detail) =
                    jobs_divergence(scenario, cfg, &program, &profile, &machine, &result)
                {
                    return verdict(ScenarioVerdict::OracleFailure, checks_run, detail);
                }
            }
            if let Some(detail) = checkpoint_faults(scenario, &result, &program) {
                return verdict(ScenarioVerdict::OracleFailure, checks_run, detail);
            }
            verdict(ScenarioVerdict::Pass, checks_run, String::new())
        }
    }
}

fn oracle_detail(report: &OracleReport) -> String {
    report
        .failures()
        .iter()
        .map(|c| format!("{}: {}", c.name, c.detail))
        .collect::<Vec<_>>()
        .join("; ")
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Zeroed-clock unit-record rendering: the canonical byte string two
/// runs of the same scenario must agree on.
fn record_bytes(result: &PipelineResult) -> String {
    let mut record = UnitRecord::from_result("chaos", result, &[]);
    record.partition_ms = 0.0;
    record.to_json()
}

fn jobs_divergence(
    scenario: &Scenario,
    cfg: &ChaosConfig,
    program: &Program,
    profile: &Profile,
    machine: &Machine,
    first: &PipelineResult,
) -> Option<String> {
    let pcfg = pipeline_config(scenario, program, cfg.jobs_compare);
    let second = catch_unwind(AssertUnwindSafe(|| run_pipeline(program, profile, machine, &pcfg)));
    match second {
        Err(payload) => Some(format!(
            "jobs={} re-run panicked: {}",
            cfg.jobs_compare,
            panic_message(payload.as_ref())
        )),
        Ok(Err(e)) => {
            Some(format!("jobs=1 produced a placement but jobs={} failed: {e}", cfg.jobs_compare))
        }
        Ok(Ok(again)) => {
            let a = record_bytes(first);
            let b = record_bytes(&again);
            if a == b {
                None
            } else {
                let at = a.bytes().zip(b.bytes()).take_while(|(x, y)| x == y).count();
                Some(format!("jobs=1 and jobs={} records diverge at byte {at}", cfg.jobs_compare))
            }
        }
    }
}

/// In-memory checkpoint corruption sub-checks: the parser must survive
/// truncation and bit flips (typed error or clean parse, never a
/// panic), and must recover the committed prefix after a mid-append
/// kill.
fn checkpoint_faults(
    scenario: &Scenario,
    result: &PipelineResult,
    program: &Program,
) -> Option<String> {
    let wants = scenario.faults.entries.iter().any(|e| {
        matches!(
            e,
            FaultEntry::CheckpointTruncate { .. }
                | FaultEntry::CheckpointBitflip { .. }
                | FaultEntry::ServeKill { .. }
        )
    });
    if !wants {
        return None;
    }
    let header = CheckpointHeader {
        program: program.name.clone(),
        program_hash: program_fingerprint(program),
        seed: scenario.seed,
        clusters: scenario.point.clusters,
        latency: scenario.point.latency,
        memory: memory_slug(scenario.point.memory),
        gdp_fuel: None,
    };
    let record = UnitRecord::from_result("chaos", result, &[]);
    for entry in &scenario.faults.entries {
        match entry {
            FaultEntry::CheckpointTruncate { permille } => {
                let text = format!("{}\n{}\n", header.to_json(), record.to_json());
                let mut keep = text.len() * (*permille as usize) / 1000;
                while keep > 0 && !text.is_char_boundary(keep) {
                    keep -= 1;
                }
                let cut = &text[..keep];
                let parsed =
                    catch_unwind(AssertUnwindSafe(|| crate::checkpoint::parse_checkpoint_any(cut)));
                match parsed {
                    Err(payload) => {
                        return Some(format!(
                            "checkpoint parser panicked on a {permille}‰ truncation: {}",
                            panic_message(payload.as_ref())
                        ));
                    }
                    Ok(Ok(ck)) if *permille == 1000 && ck.records.len() != 1 => {
                        return Some(format!(
                            "untouched checkpoint recovered {} record(s) instead of 1",
                            ck.records.len()
                        ));
                    }
                    Ok(_) => {}
                }
            }
            FaultEntry::CheckpointBitflip { permille, bit } => {
                let text = format!("{}\n{}\n", header.to_json(), record.to_json());
                let mut bytes = text.into_bytes();
                let pos = (bytes.len() * (*permille as usize) / 1000).min(bytes.len() - 1);
                bytes[pos] ^= 1 << bit;
                // Invalid UTF-8 counts as a cleanly detected corruption.
                if let Ok(flipped) = String::from_utf8(bytes) {
                    let parsed = catch_unwind(AssertUnwindSafe(|| {
                        crate::checkpoint::parse_checkpoint_any(&flipped)
                    }));
                    if let Err(payload) = parsed {
                        return Some(format!(
                            "checkpoint parser panicked on a bit flip at {permille}‰: {}",
                            panic_message(payload.as_ref())
                        ));
                    }
                }
            }
            FaultEntry::ServeKill { after } => {
                // A spool kill after `after` commits: the file holds
                // `after` whole record lines plus one the crash cut in
                // half. Recovery must return exactly the committed
                // prefix and flag the dropped tail.
                let mut text = format!("{}\n", header.to_json());
                let line = record.to_json();
                for _ in 0..*after {
                    text.push_str(&line);
                    text.push('\n');
                }
                let mut half = line.len() / 2;
                while half > 0 && !line.is_char_boundary(half) {
                    half -= 1;
                }
                text.push_str(&line[..half]);
                let parsed = catch_unwind(AssertUnwindSafe(|| {
                    crate::checkpoint::parse_checkpoint_any(&text)
                }));
                match parsed {
                    Err(payload) => {
                        return Some(format!(
                            "checkpoint recovery panicked after a kill at {after}: {}",
                            panic_message(payload.as_ref())
                        ));
                    }
                    Ok(Err(e)) => {
                        return Some(format!(
                            "crash recovery rejected a valid prefix (kill after {after}): {e}"
                        ));
                    }
                    Ok(Ok(ck)) => {
                        if ck.records.len() != *after as usize {
                            return Some(format!(
                                "crash recovery found {} record(s), expected the {} committed \
                                 before the kill",
                                ck.records.len(),
                                after
                            ));
                        }
                        if !ck.dropped_partial_tail {
                            return Some(
                                "crash recovery did not flag the torn final record".to_string(),
                            );
                        }
                    }
                }
            }
            _ => {}
        }
    }
    None
}

/// Corrupts a placement the way a buggy partitioner would (test hook
/// behind `--inject-bad-placement`): flip a homed object to another
/// cluster, or — when there is none to flip — park an op on a cluster
/// the machine does not have.
fn corrupt_placement(result: &mut PipelineResult, n: usize) {
    if n > 1 {
        let homed = result.placement.object_home.iter().find_map(|(o, h)| h.map(|c| (o, c)));
        if let Some((obj, c)) = homed {
            result.placement.object_home[obj] = Some(ClusterId::new((c.index() + 1) % n));
            return;
        }
    }
    let fid = result.program.entry;
    if let Some(op) = result.program.functions[fid].ops.keys().next() {
        result.placement.set_cluster(fid, op, ClusterId::new(n));
    }
}

fn sample_scenario(
    cfg: &ChaosConfig,
    points: &[SweepPoint],
    media: &[String],
    id: usize,
) -> Scenario {
    let mut rng = SmallRng::seed_from_u64(derive_seed(cfg.seed, id as u64));
    let point = points[rng.gen_range(0..points.len())];
    let method = match rng.gen_range(0u32..8) {
        0..=4 => Method::Gdp,
        5 => Method::ProfileMax,
        6 => Method::Naive,
        _ => Method::Unified,
    };
    let target = if media.is_empty() || rng.gen_bool(0.8) {
        let funcs = rng.gen_range(1usize..4);
        let depth = rng.gen_range(1usize..3).min(funcs);
        let region = rng.gen_range(6usize..28);
        let objects = rng.gen_range(2usize..9);
        let sharing = rng.gen_range(1usize..3);
        let trips = rng.gen_range(1usize..9);
        let pseed = rng.next_u64() & 0xffff;
        format!(
            "funcs={funcs},depth={depth},region={region},objects={objects},\
             sharing={sharing},trips={trips},seed={pseed}"
        )
    } else {
        media[rng.gen_range(0..media.len())].clone()
    };
    let mut entries = Vec::new();
    if rng.gen_bool(0.35) {
        let times = if rng.gen_bool(0.5) { u32::MAX } else { rng.gen_range(1u32..3) };
        entries.push(FaultEntry::UnitPanic { unit: format!("#{}", rng.gen_range(0u32..4)), times });
    }
    if rng.gen_bool(0.3) {
        entries.push(FaultEntry::Fuel { budget: rng.gen_range(0u64..40) });
    }
    if rng.gen_bool(0.25) {
        entries.push(FaultEntry::EstimatorBudget { calls: rng.gen_range(1u64..64) });
    }
    if rng.gen_bool(0.1) {
        // Generous on purpose: arms the watchdog without ever firing,
        // keeping the soak deterministic on slow machines.
        entries.push(FaultEntry::Timeout { ms: 120_000 });
    }
    if rng.gen_bool(0.25) {
        entries.push(FaultEntry::CheckpointTruncate { permille: rng.gen_range(0u32..1001) });
    }
    if rng.gen_bool(0.2) {
        entries.push(FaultEntry::CheckpointBitflip {
            permille: rng.gen_range(0u32..1001),
            bit: rng.gen_range(0u32..8) as u8,
        });
    }
    if rng.gen_bool(0.15) {
        entries.push(FaultEntry::ServeKill { after: rng.gen_range(0u32..3) });
    }
    Scenario {
        target,
        point,
        method,
        faults: FaultPlan { entries },
        seed: derive_seed(cfg.seed, 0x1000_0000 ^ id as u64),
    }
}

/// Greedy shrink: repeatedly try simpler variants (drop a fault entry,
/// simplify the machine one axis at a time, halve a synthetic-program
/// axis) and keep any that still fails, until nothing simpler fails or
/// the re-run budget is spent.
fn shrink(
    failing: ScenarioResult,
    cfg: &ChaosConfig,
    cache: &mut TargetCache,
) -> Result<(ScenarioResult, u64), ChaosError> {
    let mut best = failing;
    let mut steps = 0u64;
    'outer: loop {
        for candidate in shrink_candidates(&best.scenario) {
            if steps >= SHRINK_BUDGET {
                break 'outer;
            }
            steps += 1;
            let result = run_scenario_cached(&candidate, cfg, cache)?;
            if result.failed() {
                best = result;
                continue 'outer;
            }
        }
        break;
    }
    Ok((best, steps))
}

fn shrink_candidates(s: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    for i in (0..s.faults.entries.len()).rev() {
        let mut faults = s.faults.clone();
        faults.entries.remove(i);
        out.push(Scenario { faults, ..s.clone() });
    }
    let paper = SweepPoint::paper();
    if s.point.topology != Topology::Bus {
        out.push(Scenario {
            point: SweepPoint { topology: Topology::Bus, ..s.point },
            ..s.clone()
        });
    }
    if s.point.latency != 1 {
        out.push(Scenario { point: SweepPoint { latency: 1, ..s.point }, ..s.clone() });
    }
    if s.point.mix != paper.mix {
        out.push(Scenario { point: SweepPoint { mix: paper.mix, ..s.point }, ..s.clone() });
    }
    if s.point.memory != MemoryModel::Partitioned {
        out.push(Scenario {
            point: SweepPoint { memory: MemoryModel::Partitioned, ..s.point },
            ..s.clone()
        });
    }
    if s.point.clusters > 1 {
        let fewer = if s.point.clusters > 2 { s.point.clusters / 2 } else { 1 };
        out.push(Scenario { point: SweepPoint { clusters: fewer, ..s.point }, ..s.clone() });
    }
    if s.target.contains('=') {
        if let Ok(spec) = SynthSpec::parse(&s.target) {
            for field in 0..6 {
                if let Some(smaller) = halve_spec(spec, field) {
                    out.push(Scenario { target: render_spec(&smaller), ..s.clone() });
                }
            }
        }
    }
    out
}

fn halve_spec(mut spec: SynthSpec, field: usize) -> Option<SynthSpec> {
    match field {
        0 if spec.funcs > 1 => spec.funcs /= 2,
        1 if spec.depth > 1 => spec.depth /= 2,
        2 if spec.region_ops > 4 => spec.region_ops /= 2,
        3 if spec.objects > 1 => spec.objects /= 2,
        4 if spec.sharing > 1 => spec.sharing /= 2,
        5 if spec.trips > 1 => spec.trips /= 2,
        _ => return None,
    }
    Some(spec)
}

fn render_spec(spec: &SynthSpec) -> String {
    format!(
        "funcs={},depth={},region={},objects={},sharing={},trips={},seed={}",
        spec.funcs, spec.depth, spec.region_ops, spec.objects, spec.sharing, spec.trips, spec.seed
    )
}

fn write_repro(
    dir: &std::path::Path,
    seed: u64,
    id: usize,
    result: &ScenarioResult,
) -> Result<PathBuf, ChaosError> {
    let io_err = |path: &std::path::Path, e: std::io::Error| ChaosError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    };
    std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    let path = dir.join(format!("chaos-seed{seed}-s{id}.repro"));
    let mut body = format!(
        "# mcpart chaos repro — seed {seed}, scenario {id}\n# verdict: {}\n",
        result.verdict.slug()
    );
    for line in result.detail.lines() {
        body.push_str("# ");
        body.push_str(line);
        body.push('\n');
    }
    body.push_str(&result.scenario.to_string());
    std::fs::write(&path, body).map_err(|e| io_err(&path, e))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_cfg(scenarios: usize, seed: u64) -> ChaosConfig {
        let mut cfg = ChaosConfig::new(scenarios, seed);
        // A tiny sweep keeps test scenarios fast and all-synthetic
        // sampling avoids loading Mediabench in the unit suite.
        cfg.sweep =
            SweepMatrix::parse("clusters = [1, 2, 4]\nlatency = [1, 5]\n").expect("tiny sweep");
        cfg.jobs_compare = 2;
        cfg
    }

    #[test]
    fn scenario_roundtrips_through_the_repro_grammar() {
        let s = Scenario {
            target: "funcs=2,depth=1,region=9,objects=3,sharing=1,trips=2,seed=7".to_string(),
            point: SweepPoint { clusters: 4, topology: Topology::Ring, ..SweepPoint::paper() },
            method: Method::ProfileMax,
            faults: FaultPlan::parse("fuel:3+panic:#1x2").expect("plan"),
            seed: 99,
        };
        let parsed = Scenario::parse(&s.to_string()).expect("roundtrip");
        assert_eq!(parsed, s);
        // Comments and missing optional keys are tolerated.
        let sparse = Scenario::parse("# hi\ntarget = rawcaudio\n").expect("sparse");
        assert_eq!(sparse.target, "rawcaudio");
        assert_eq!(sparse.method, Method::Gdp);
        assert_eq!(sparse.point, SweepPoint::paper());
        assert!(sparse.faults.is_empty());
        // Errors carry the line.
        let e = Scenario::parse("target = x\nwarp = 1\n").expect_err("unknown key");
        assert!(matches!(e, ChaosError::Parse { line: 2, .. }), "{e}");
        let e = Scenario::parse("# empty\n").expect_err("no target");
        assert!(e.to_string().contains("target"), "{e}");
    }

    #[test]
    fn soak_is_deterministic_and_clean() {
        let cfg = quiet_cfg(12, 0xC0FFEE);
        let a = run_chaos(&cfg).expect("soak");
        let b = run_chaos(&cfg).expect("soak again");
        assert_eq!(a, b, "same seed must reproduce the same soak bit-for-bit");
        assert_eq!(a.scenarios, 12);
        assert!(a.failures.is_empty(), "clean build must pass the oracle: {:?}", a.failures);
        assert!(a.oracle_checks > 0);
        assert!(a.passed + a.typed_errors == 12);
    }

    #[test]
    fn counters_reach_the_obs_sink() {
        let mut cfg = quiet_cfg(5, 7);
        cfg.obs = Obs::enabled();
        let summary = run_chaos(&cfg).expect("soak");
        assert_eq!(cfg.obs.last_counter("chaos", "scenarios"), Some(5));
        assert_eq!(
            cfg.obs.last_counter("chaos", "oracle_checks"),
            Some(summary.oracle_checks as i64)
        );
        assert_eq!(cfg.obs.last_counter("chaos", "failures"), Some(0));
    }

    #[test]
    fn injected_bad_placement_is_caught_shrunk_and_replayable() {
        let dir = std::env::temp_dir().join(format!("mcpart-chaos-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = quiet_cfg(3, 0xBAD);
        cfg.inject_bad_placement = true;
        cfg.corpus = Some(dir.clone());
        let summary = run_chaos(&cfg).expect("soak");
        assert!(!summary.failures.is_empty(), "the oracle must catch corrupted placements");
        assert_eq!(summary.repro_files.len(), summary.failures.len());
        assert!(summary.shrink_steps > 0, "failures must be shrunk");
        // Every repro file replays to the same failure.
        for path in &summary.repro_files {
            let text = std::fs::read_to_string(path).expect("read repro");
            let scenario = Scenario::parse(&text).expect("parse repro");
            let replay = run_scenario(&scenario, &cfg).expect("replay");
            assert!(replay.failed(), "replayed repro must still fail: {}", replay.detail);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_heavy_scenarios_never_panic() {
        // Arm every deterministic injector at once on a ladder-friendly
        // method: the run must end in a placement or a typed error.
        let cfg = quiet_cfg(1, 1);
        let scenario = Scenario {
            target: "funcs=2,depth=1,region=10,objects=3,sharing=1,trips=2,seed=5".to_string(),
            point: SweepPoint { clusters: 2, ..SweepPoint::paper() },
            method: Method::Gdp,
            faults: FaultPlan::parse("panic:#0+fuel:0+estimator:1+truncate:500+bitflip:500.3")
                .expect("plan"),
            seed: 17,
        };
        let result = run_scenario(&scenario, &cfg).expect("run");
        assert_ne!(result.verdict, ScenarioVerdict::Panicked, "{}", result.detail);
    }

    #[test]
    fn shrink_reduces_a_failing_scenario() {
        let mut cfg = quiet_cfg(1, 2);
        cfg.inject_bad_placement = true;
        let scenario = Scenario {
            target: "funcs=3,depth=2,region=20,objects=6,sharing=2,trips=8,seed=3".to_string(),
            point: SweepPoint {
                clusters: 4,
                latency: 10,
                topology: Topology::Mesh,
                ..SweepPoint::paper()
            },
            method: Method::Gdp,
            // A fault that downgrades one rung but leaves the ladder
            // able to finish, so the corrupted placement gets judged.
            faults: FaultPlan::parse("fuel:0+timeout:120000").expect("plan"),
            seed: 5,
        };
        let first = run_scenario(&scenario, &cfg).expect("run");
        assert!(first.failed());
        let mut cache = HashMap::new();
        let (shrunk, steps) = shrink(first, &cfg, &mut cache).expect("shrink");
        assert!(steps > 0);
        assert!(shrunk.failed());
        // The shrunk machine is simpler and the fault plan no larger.
        assert!(shrunk.scenario.point.clusters <= scenario.point.clusters);
        assert!(shrunk.scenario.faults.entries.len() <= scenario.faults.entries.len());
        assert_eq!(shrunk.scenario.point.topology, Topology::Bus);
    }
}
