//! The program-level data-flow graph of the first pass (§3.3).
//!
//! Nodes are *all* operations of *all* functions; the only information
//! recorded is data-dependent flow (register def → use, and value flow
//! through calls), deliberately coarse: "a more simplified view of the
//! program behavior is used for the data object partitioning".
//!
//! The graph is stored flat for million-op programs: node lookup is a
//! per-function offset plus the dense op index (no hash map), and the
//! edge list is a CSR keyed by source node. Edge extraction runs
//! per-function — optionally sharded over `mcpart-par` — and the
//! per-function sorted runs concatenate into a globally sorted stream
//! because function node ranges are disjoint and ascending, so the
//! result is bit-identical for every `jobs` value.

use mcpart_ir::{DefUse, EntityId, FuncId, OpId, Opcode, Profile, Program, Terminator};

/// A node of the program-level DFG: an operation in some function.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ProgramNode {
    /// Containing function.
    pub func: FuncId,
    /// The operation.
    pub op: OpId,
}

/// The whole-program data-flow graph, CSR-packed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProgramDfg {
    /// All nodes, in (function, op) order.
    pub nodes: Vec<ProgramNode>,
    /// Dynamic execution frequency of each node.
    pub node_freq: Vec<u64>,
    /// `func_offset[f]` is the dense index of function `f`'s first op;
    /// one extra sentinel entry holds the total node count.
    func_offset: Vec<usize>,
    /// CSR row starts into `edge_to`/`edge_w`, one per node plus a
    /// sentinel.
    edge_xadj: Vec<usize>,
    /// Edge destinations, grouped by source and ascending within each
    /// group.
    edge_to: Vec<u32>,
    /// Edge weights (execution frequency of the consumer).
    edge_w: Vec<u64>,
}

/// Collapses runs of equal `(from, to)` keys in a sorted triple list,
/// keeping the maximum weight (all duplicates carry the consumer's
/// frequency, so any commutative combine gives the same answer).
fn dedup_max(edges: &mut Vec<(u32, u32, u64)>) {
    edges.dedup_by(|next, keep| {
        if keep.0 == next.0 && keep.1 == next.1 {
            keep.2 = keep.2.max(next.2);
            true
        } else {
            false
        }
    });
}

/// Merges two sorted, deduplicated triple streams, combining equal keys
/// with max.
fn merge_two_max(a: Vec<(u32, u32, u64)>, b: Vec<(u32, u32, u64)>) -> Vec<(u32, u32, u64)> {
    if a.is_empty() {
        return b;
    }
    if b.is_empty() {
        return a;
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let ka = (a[i].0, a[i].1);
        let kb = (b[j].0, b[j].1);
        match ka.cmp(&kb) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push((ka.0, ka.1, a[i].2.max(b[j].2)));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

impl ProgramDfg {
    /// Builds the program-level DFG under a profile (sequential).
    pub fn build(program: &Program, profile: &Profile) -> Self {
        Self::build_with_jobs(program, profile, 1)
    }

    /// Builds the program-level DFG under a profile, sharding the
    /// per-function edge extraction over `jobs` workers (`0` = all
    /// available cores). The result is bit-identical for every `jobs`
    /// value.
    pub fn build_with_jobs(program: &Program, profile: &Profile, jobs: usize) -> Self {
        let num_funcs = program.functions.len();
        let mut nodes = Vec::with_capacity(program.num_ops());
        let mut node_freq = Vec::with_capacity(program.num_ops());
        let mut func_offset = Vec::with_capacity(num_funcs + 1);
        for (fid, func) in program.functions.iter() {
            func_offset.push(nodes.len());
            for (oid, _) in func.ops.iter() {
                // The flat index scheme (offset + dense op index) must
                // agree with iteration order.
                debug_assert_eq!(func_offset[fid.index()] + oid.index(), nodes.len());
                nodes.push(ProgramNode { func: fid, op: oid });
                node_freq.push(profile.op_freq(program, fid, oid));
            }
        }
        func_offset.push(nodes.len());

        // Def-use chains once per function (call sites share the
        // callee's), then per-function edge extraction. Both stages are
        // pure per-function maps, so sharding cannot change the output.
        let fids: Vec<FuncId> = program.functions.keys().collect();
        let dus: Vec<DefUse> = mcpart_par::parallel_map(jobs, &fids, |_, &fid| {
            DefUse::compute(&program.functions[fid])
        });
        // Each function yields its intra-function edges (sorted and
        // deduplicated: these concatenate into a globally sorted run)
        // and its cross-function call edges (merged separately).
        type EdgeRun = Vec<(u32, u32, u64)>;
        let per_func: Vec<(EdgeRun, EdgeRun)> = mcpart_par::parallel_map(jobs, &fids, |_, &fid| {
            let func = &program.functions[fid];
            let du = &dus[fid.index()];
            let base = func_offset[fid.index()] as u32;
            let mut intra = Vec::new();
            let mut cross = Vec::new();
            // Register flow: every def reaches every use of the
            // same register (coarse over-approximation for
            // multi-def registers).
            for v in 0..func.num_vregs {
                let v = mcpart_ir::VReg(v as u32);
                for &def in &du.defs[v] {
                    for &usage in &du.uses[v] {
                        if def == usage {
                            continue;
                        }
                        let from = base + def.index() as u32;
                        let to = base + usage.index() as u32;
                        intra.push((from, to, node_freq[to as usize].max(1)));
                    }
                }
            }
            // Interprocedural value flow through calls.
            for (oid, op) in func.ops.iter() {
                if let Opcode::Call(callee) = op.opcode {
                    let call_idx = base + oid.index() as u32;
                    let cf = &program.functions[callee];
                    let cdu = &dus[callee.index()];
                    let cbase = func_offset[callee.index()] as u32;
                    // Arguments: call node → uses of the parameter.
                    for &param in &cf.params {
                        for &usage in &cdu.uses[param] {
                            let to = cbase + usage.index() as u32;
                            cross.push((call_idx, to, node_freq[to as usize].max(1)));
                        }
                    }
                    // Return value: defs of returned registers →
                    // call node.
                    for block in cf.blocks.values() {
                        if let Some(Terminator::Return(Some(v))) = &block.term {
                            for &def in &cdu.defs[*v] {
                                let from = cbase + def.index() as u32;
                                cross.push((from, call_idx, node_freq[call_idx as usize].max(1)));
                            }
                        }
                    }
                }
            }
            intra.sort_unstable_by_key(|t| (t.0, t.1));
            dedup_max(&mut intra);
            (intra, cross)
        });

        let intra_len: usize = per_func.iter().map(|(i, _)| i.len()).sum();
        let mut intra_all = Vec::with_capacity(intra_len);
        let mut cross_all = Vec::new();
        for (intra, cross) in per_func {
            intra_all.extend_from_slice(&intra);
            cross_all.extend_from_slice(&cross);
        }
        cross_all.sort_unstable_by_key(|t| (t.0, t.1));
        dedup_max(&mut cross_all);
        let edges = merge_two_max(intra_all, cross_all);
        // The determinism contract: the final edge order is strictly
        // increasing in (from, to), independent of jobs.
        debug_assert!(edges.windows(2).all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));

        // Pack into CSR.
        let n = nodes.len();
        let mut edge_xadj = vec![0usize; n + 1];
        for &(from, _, _) in &edges {
            edge_xadj[from as usize + 1] += 1;
        }
        for i in 0..n {
            edge_xadj[i + 1] += edge_xadj[i];
        }
        let edge_to: Vec<u32> = edges.iter().map(|&(_, to, _)| to).collect();
        let edge_w: Vec<u64> = edges.iter().map(|&(_, _, w)| w).collect();
        ProgramDfg { nodes, node_freq, func_offset, edge_xadj, edge_to, edge_w }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` for an empty program.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of (deduplicated) flow edges.
    pub fn num_edges(&self) -> usize {
        self.edge_to.len()
    }

    /// The dense index of an operation: the containing function's
    /// offset plus the op's index within it.
    pub fn index_of(&self, func: FuncId, op: OpId) -> usize {
        self.func_offset[func.index()] + op.index()
    }

    /// All flow edges `(from, to, weight)` in ascending `(from, to)`
    /// order; the weight is the execution frequency of the consumer.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, u64)> + '_ {
        (0..self.nodes.len()).flat_map(move |from| {
            (self.edge_xadj[from]..self.edge_xadj[from + 1])
                .map(move |i| (from, self.edge_to[i] as usize, self.edge_w[i]))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpart_ir::{FunctionBuilder, MemWidth};

    #[test]
    fn flow_edges_weighted_by_consumer_freq() {
        let mut p = Program::new("t");
        let obj = p.add_object(mcpart_ir::DataObject::global("g", 8));
        let mut b = FunctionBuilder::entry(&mut p);
        let a = b.addrof(obj);
        let hot = b.block("hot");
        let done = b.block("done");
        b.jump(hot);
        b.switch_to(hot);
        let _v = b.load(MemWidth::B4, a); // consumer of `a` in hot block
        b.jump(done);
        b.switch_to(done);
        b.ret(None);
        let mut profile = Profile::uniform(&p, 1);
        profile.funcs[p.entry].block_freq[hot] = 500;
        let dfg = ProgramDfg::build(&p, &profile);
        // The addrof → load edge carries the hot block's frequency.
        let max_w = dfg.edges().map(|(_, _, w)| w).max().unwrap();
        assert_eq!(max_w, 500);
    }

    #[test]
    fn call_edges_cross_functions() {
        let mut p = Program::new("t");
        let callee = {
            let mut cb = FunctionBuilder::new_function(&mut p, "f");
            let a = cb.param();
            let r = cb.add(a, a);
            cb.ret(Some(r));
            cb.func_id()
        };
        let mut b = FunctionBuilder::entry(&mut p);
        let x = b.iconst(3);
        let r = b.call(callee, vec![x], 1);
        b.ret(Some(r[0]));
        let profile = Profile::uniform(&p, 1);
        let dfg = ProgramDfg::build(&p, &profile);
        // Edge from the call into the callee's add (parameter use), and
        // from the callee's add (return def) back to the call.
        let cross: Vec<_> =
            dfg.edges().filter(|&(f, t, _)| dfg.nodes[f].func != dfg.nodes[t].func).collect();
        assert_eq!(cross.len(), 2, "{cross:?}");
    }

    #[test]
    fn node_count_covers_all_functions() {
        let mut p = Program::new("t");
        {
            let mut cb = FunctionBuilder::new_function(&mut p, "f");
            cb.ret(None);
        }
        let mut b = FunctionBuilder::entry(&mut p);
        b.ret(None);
        let dfg = ProgramDfg::build(&p, &Profile::uniform(&p, 1));
        assert_eq!(dfg.len(), p.num_ops());
        assert!(!dfg.is_empty());
    }

    #[test]
    fn index_of_matches_node_order() {
        let mut p = Program::new("t");
        {
            let mut cb = FunctionBuilder::new_function(&mut p, "f");
            let a = cb.iconst(1);
            let b2 = cb.iconst(2);
            cb.add(a, b2);
            cb.ret(None);
        }
        let mut b = FunctionBuilder::entry(&mut p);
        b.iconst(7);
        b.ret(None);
        let dfg = ProgramDfg::build(&p, &Profile::uniform(&p, 1));
        for (i, node) in dfg.nodes.iter().enumerate() {
            assert_eq!(dfg.index_of(node.func, node.op), i);
        }
    }

    #[test]
    fn parallel_build_is_bit_identical() {
        let mut p = Program::new("t");
        let callee = {
            let mut cb = FunctionBuilder::new_function(&mut p, "f");
            let a = cb.param();
            let r = cb.add(a, a);
            cb.ret(Some(r));
            cb.func_id()
        };
        let mut b = FunctionBuilder::entry(&mut p);
        let x = b.iconst(3);
        let y = b.iconst(4);
        let s = b.add(x, y);
        let r = b.call(callee, vec![s], 1);
        b.ret(Some(r[0]));
        let profile = Profile::uniform(&p, 9);
        let seq = ProgramDfg::build_with_jobs(&p, &profile, 1);
        for jobs in [2, 4, 0] {
            assert_eq!(ProgramDfg::build_with_jobs(&p, &profile, jobs), seq, "jobs={jobs}");
        }
    }
}
