//! The program-level data-flow graph of the first pass (§3.3).
//!
//! Nodes are *all* operations of *all* functions; the only information
//! recorded is data-dependent flow (register def → use, and value flow
//! through calls), deliberately coarse: "a more simplified view of the
//! program behavior is used for the data object partitioning".

use mcpart_ir::{DefUse, FuncId, OpId, Opcode, Profile, Program, Terminator};
use std::collections::HashMap;

/// A node of the program-level DFG: an operation in some function.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ProgramNode {
    /// Containing function.
    pub func: FuncId,
    /// The operation.
    pub op: OpId,
}

/// The whole-program data-flow graph.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProgramDfg {
    /// All nodes, in (function, op) order.
    pub nodes: Vec<ProgramNode>,
    /// Node → dense index.
    pub index: HashMap<ProgramNode, usize>,
    /// Flow edges `(from, to, dynamic_weight)`; weight is the execution
    /// frequency of the consumer.
    pub edges: Vec<(usize, usize, u64)>,
    /// Dynamic execution frequency of each node.
    pub node_freq: Vec<u64>,
}

impl ProgramDfg {
    /// Builds the program-level DFG under a profile.
    pub fn build(program: &Program, profile: &Profile) -> Self {
        let mut nodes = Vec::new();
        let mut index = HashMap::new();
        let mut node_freq = Vec::new();
        for (fid, func) in program.functions.iter() {
            for (oid, _) in func.ops.iter() {
                let node = ProgramNode { func: fid, op: oid };
                index.insert(node, nodes.len());
                nodes.push(node);
                node_freq.push(profile.op_freq(program, fid, oid));
            }
        }
        // Deduplicated edges: a value used twice by one consumer still
        // needs only one transfer.
        let mut edge_set: HashMap<(usize, usize), u64> = HashMap::new();
        let mut add_edge = |from: usize, to: usize, w: u64| {
            let e = edge_set.entry((from, to)).or_insert(0);
            *e = (*e).max(w);
        };
        for (fid, func) in program.functions.iter() {
            let du = DefUse::compute(func);
            // Register flow: every def reaches every use of the same
            // register (coarse over-approximation for multi-def
            // registers).
            for v in 0..func.num_vregs {
                let v = mcpart_ir::VReg(v as u32);
                for &def in &du.defs[v] {
                    for &usage in &du.uses[v] {
                        if def == usage {
                            continue;
                        }
                        let from = index[&ProgramNode { func: fid, op: def }];
                        let to = index[&ProgramNode { func: fid, op: usage }];
                        add_edge(from, to, node_freq[to].max(1));
                    }
                }
            }
            // Interprocedural value flow through calls.
            for (oid, op) in func.ops.iter() {
                if let Opcode::Call(callee) = op.opcode {
                    let call_idx = index[&ProgramNode { func: fid, op: oid }];
                    let cf = &program.functions[callee];
                    let cdu = DefUse::compute(cf);
                    // Arguments: call node → uses of the parameter.
                    for &param in &cf.params {
                        for &usage in &cdu.uses[param] {
                            let to = index[&ProgramNode { func: callee, op: usage }];
                            add_edge(call_idx, to, node_freq[to].max(1));
                        }
                    }
                    // Return value: defs of returned registers → call node.
                    for block in cf.blocks.values() {
                        if let Some(Terminator::Return(Some(v))) = &block.term {
                            for &def in &cdu.defs[*v] {
                                let from = index[&ProgramNode { func: callee, op: def }];
                                add_edge(from, call_idx, node_freq[call_idx].max(1));
                            }
                        }
                    }
                }
            }
        }
        let _ = add_edge;
        let mut edges: Vec<(usize, usize, u64)> =
            edge_set.into_iter().map(|((f, t), w)| (f, t, w)).collect();
        edges.sort_unstable();
        ProgramDfg { nodes, index, edges, node_freq }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` for an empty program.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The dense index of an operation.
    pub fn index_of(&self, func: FuncId, op: OpId) -> usize {
        self.index[&ProgramNode { func, op }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpart_ir::{FunctionBuilder, MemWidth};

    #[test]
    fn flow_edges_weighted_by_consumer_freq() {
        let mut p = Program::new("t");
        let obj = p.add_object(mcpart_ir::DataObject::global("g", 8));
        let mut b = FunctionBuilder::entry(&mut p);
        let a = b.addrof(obj);
        let hot = b.block("hot");
        let done = b.block("done");
        b.jump(hot);
        b.switch_to(hot);
        let _v = b.load(MemWidth::B4, a); // consumer of `a` in hot block
        b.jump(done);
        b.switch_to(done);
        b.ret(None);
        let mut profile = Profile::uniform(&p, 1);
        profile.funcs[p.entry].block_freq[hot] = 500;
        let dfg = ProgramDfg::build(&p, &profile);
        // The addrof → load edge carries the hot block's frequency.
        let max_w = dfg.edges.iter().map(|&(_, _, w)| w).max().unwrap();
        assert_eq!(max_w, 500);
    }

    #[test]
    fn call_edges_cross_functions() {
        let mut p = Program::new("t");
        let callee = {
            let mut cb = FunctionBuilder::new_function(&mut p, "f");
            let a = cb.param();
            let r = cb.add(a, a);
            cb.ret(Some(r));
            cb.func_id()
        };
        let mut b = FunctionBuilder::entry(&mut p);
        let x = b.iconst(3);
        let r = b.call(callee, vec![x], 1);
        b.ret(Some(r[0]));
        let profile = Profile::uniform(&p, 1);
        let dfg = ProgramDfg::build(&p, &profile);
        // Edge from the call into the callee's add (parameter use), and
        // from the callee's add (return def) back to the call.
        let cross: Vec<_> =
            dfg.edges.iter().filter(|&&(f, t, _)| dfg.nodes[f].func != dfg.nodes[t].func).collect();
        assert_eq!(cross.len(), 2, "{cross:?}");
    }

    #[test]
    fn node_count_covers_all_functions() {
        let mut p = Program::new("t");
        {
            let mut cb = FunctionBuilder::new_function(&mut p, "f");
            cb.ret(None);
        }
        let mut b = FunctionBuilder::entry(&mut p);
        b.ret(None);
        let dfg = ProgramDfg::build(&p, &Profile::uniform(&p, 1));
        assert_eq!(dfg.len(), p.num_ops());
        assert!(!dfg.is_empty());
    }
}
