//! Typed failures of the partitioning pipeline.
//!
//! Every stage of [`crate::run_pipeline`] reports failure through
//! [`PipelineError`], which names the program, the method, and the
//! stage that failed alongside the stage-specific cause. Callers can
//! match on [`PipelineErrorKind`] to distinguish unusable inputs
//! (verification, profile shape) from partitioning failures (budget
//! exhaustion, invalid placements) — the latter are *recoverable* and
//! drive the pipeline's graceful-degradation ladder.

use crate::pipeline::Method;
use std::error::Error;
use std::fmt;
use std::time::Duration;

/// The pipeline stage in which a failure occurred.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Stage {
    /// Structural verification of the input program.
    Verify,
    /// Prepartitioning analyses (profile validation, points-to, access
    /// relationship, object grouping).
    Analysis,
    /// Global Data Partitioning (first pass).
    DataPartition,
    /// RHOP computation partitioning (second pass).
    ComputationPartition,
    /// Placement normalization.
    Normalize,
    /// Intercluster move insertion.
    MoveInsertion,
    /// Post-move placement validation against the machine's rules.
    PlacementValidation,
    /// Semantic equivalence check of original vs. transformed program.
    SemanticValidation,
    /// Schedule construction and cycle accounting.
    Evaluation,
    /// The supervision layer itself: a caught worker panic whose
    /// failing stage is unknown (the unwind crossed stage boundaries).
    Supervision,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Stage::Verify => "verify",
            Stage::Analysis => "analysis",
            Stage::DataPartition => "data partition",
            Stage::ComputationPartition => "computation partition",
            Stage::Normalize => "normalize",
            Stage::MoveInsertion => "move insertion",
            Stage::PlacementValidation => "placement validation",
            Stage::SemanticValidation => "semantic validation",
            Stage::Evaluation => "evaluation",
            Stage::Supervision => "supervision",
        };
        f.write_str(s)
    }
}

/// A failure of the Global Data Partitioning pass.
#[derive(Clone, PartialEq, Debug)]
pub enum GdpError {
    /// The underlying multilevel graph partitioner failed (bad
    /// configuration or exhausted refinement budget).
    Metis(mcpart_metis::MetisError),
    /// The target machine has no clusters to partition onto.
    NoClusters,
    /// An internal invariant of graph construction broke (e.g. a live
    /// object group without a supernode) — indicates corrupted analysis
    /// results rather than a bad configuration.
    Internal {
        /// Which invariant broke.
        message: String,
    },
}

impl fmt::Display for GdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GdpError::Metis(e) => write!(f, "graph partitioner failed: {e}"),
            GdpError::NoClusters => f.write_str("machine has no clusters"),
            GdpError::Internal { message } => write!(f, "internal invariant broken: {message}"),
        }
    }
}

impl Error for GdpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GdpError::Metis(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mcpart_metis::MetisError> for GdpError {
    fn from(e: mcpart_metis::MetisError) -> Self {
        GdpError::Metis(e)
    }
}

/// A failure of the RHOP computation partitioner.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RhopError {
    /// The schedule-estimator call budget
    /// ([`crate::RhopConfig::max_estimator_calls`]) ran out before the
    /// hierarchical passes converged.
    EstimatorBudgetExceeded {
        /// The configured budget.
        limit: u64,
    },
    /// An internal invariant of the hierarchical partitioner broke.
    Internal {
        /// Which invariant broke.
        message: String,
    },
    /// The unit watchdog fired: the partition exceeded its wall-clock
    /// ceiling and the shared budget refused further fuel charges.
    Aborted,
}

impl fmt::Display for RhopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RhopError::EstimatorBudgetExceeded { limit } => {
                write!(f, "estimator call budget of {limit} exhausted")
            }
            RhopError::Internal { message } => {
                write!(f, "internal invariant broken: {message}")
            }
            RhopError::Aborted => {
                f.write_str("unit watchdog aborted the partition (wall-clock ceiling exceeded)")
            }
        }
    }
}

impl Error for RhopError {}

/// The stage-specific cause of a [`PipelineError`].
#[derive(Clone, PartialEq, Debug)]
pub enum PipelineErrorKind {
    /// The input program failed structural verification.
    Verify(mcpart_ir::VerifyError),
    /// The profile does not fit the program.
    Profile(mcpart_analysis::AnalysisError),
    /// The machine description is unusable (e.g. zero clusters).
    Machine {
        /// What is wrong with it.
        message: String,
    },
    /// Global Data Partitioning failed.
    Gdp(GdpError),
    /// RHOP failed.
    Rhop(RhopError),
    /// The final placement violates the machine's execution rules.
    Placement(mcpart_sched::PlacementError),
    /// A validation run of the interpreter failed on either program
    /// variant (including exceeding its step budget).
    Exec(mcpart_sim::ExecError),
    /// The transformed program behaves differently from the original.
    SemanticsChanged,
    /// A stage exceeded its wall-clock budget
    /// ([`crate::PipelineConfig::stage_budget`]).
    Timeout {
        /// The configured per-stage budget.
        budget: Duration,
        /// How long the stage actually ran.
        elapsed: Duration,
    },
    /// A supervised worker panicked while running this method; the
    /// panic was caught (panic isolation), its obs events were
    /// withheld, and the payload preserved here.
    WorkerPanic {
        /// The rendered panic payload.
        payload: String,
    },
}

impl fmt::Display for PipelineErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineErrorKind::Verify(e) => write!(f, "program does not verify: {e}"),
            PipelineErrorKind::Profile(e) => write!(f, "{e}"),
            PipelineErrorKind::Machine { message } => write!(f, "unusable machine: {message}"),
            PipelineErrorKind::Gdp(e) => write!(f, "{e}"),
            PipelineErrorKind::Rhop(e) => write!(f, "{e}"),
            PipelineErrorKind::Placement(e) => write!(f, "invalid placement: {e}"),
            PipelineErrorKind::Exec(e) => write!(f, "validation run failed: {e}"),
            PipelineErrorKind::SemanticsChanged => {
                f.write_str("transformed program behaves differently from the original")
            }
            PipelineErrorKind::Timeout { budget, elapsed } => write!(
                f,
                "stage exceeded its {:.1} ms budget (ran {:.1} ms)",
                budget.as_secs_f64() * 1e3,
                elapsed.as_secs_f64() * 1e3
            ),
            PipelineErrorKind::WorkerPanic { payload } => {
                write!(f, "worker panicked: {payload}")
            }
        }
    }
}

/// A pipeline failure with full provenance: which program, which
/// method, which stage, and why.
#[derive(Clone, PartialEq, Debug)]
pub struct PipelineError {
    /// Name of the program being compiled.
    pub program: String,
    /// The method that was running when the failure occurred (after a
    /// downgrade this is the fallback method, not the requested one).
    pub method: Method,
    /// The stage that failed.
    pub stage: Stage,
    /// The stage-specific cause.
    pub kind: PipelineErrorKind,
}

impl PipelineError {
    /// Whether the pipeline's degradation ladder may retry with a
    /// simpler method. Partitioning failures (budget exhaustion,
    /// invalid or semantics-breaking placements, stage timeouts) are
    /// recoverable; unusable *inputs* (verification, profile shape,
    /// machine description, interpreter failures on the original
    /// program) are not — a simpler method would fail the same way.
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self.kind,
            PipelineErrorKind::Gdp(_)
                | PipelineErrorKind::Rhop(_)
                | PipelineErrorKind::Placement(_)
                | PipelineErrorKind::SemanticsChanged
                | PipelineErrorKind::Timeout { .. }
                | PipelineErrorKind::WorkerPanic { .. }
        )
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} pipeline failed on `{}` during {}: {}",
            self.method, self.program, self.stage, self.kind
        )
    }
}

impl Error for PipelineError {}

/// One rung of the graceful-degradation ladder: the pipeline abandoned
/// `from` and retried with `to`.
#[derive(Clone, PartialEq, Debug)]
pub struct Downgrade {
    /// The method that failed.
    pub from: Method,
    /// The simpler method tried next.
    pub to: Method,
    /// Why `from` was abandoned (the rendered [`PipelineError`]).
    pub reason: String,
}

impl fmt::Display for Downgrade {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}: {}", self.from, self.to, self.reason)
    }
}

/// Top-level error of the `mcpart` toolchain: everything a driver
/// (CLI, experiment harness) can encounter between reading input text
/// and producing a report.
#[derive(Clone, PartialEq, Debug)]
pub enum McpartError {
    /// The textual IR did not parse.
    Parse(mcpart_ir::ParseError),
    /// The program did not verify.
    Verify(mcpart_ir::VerifyError),
    /// A profiling or validation execution failed.
    Exec(mcpart_sim::ExecError),
    /// The pipeline itself failed.
    Pipeline(PipelineError),
    /// A supervised work unit panicked and exhausted its retries. The
    /// panic never unwound past the supervisor; `unit` names the work
    /// item (`workload/method` at the driver level, a function name at
    /// the partitioner level) and `payload` is its rendered panic
    /// message.
    WorkerPanic {
        /// The supervised unit that died.
        unit: String,
        /// The rendered panic payload.
        payload: String,
    },
}

impl McpartError {
    /// Wraps a terminal pipeline failure, lifting worker panics into
    /// the dedicated [`McpartError::WorkerPanic`] variant so drivers
    /// can report the unit that died.
    pub fn from_unit_failure(unit: &str, e: PipelineError) -> Self {
        match e.kind {
            PipelineErrorKind::WorkerPanic { payload } => {
                McpartError::WorkerPanic { unit: unit.to_string(), payload }
            }
            _ => McpartError::Pipeline(e),
        }
    }
}

impl fmt::Display for McpartError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McpartError::Parse(e) => write!(f, "parse error: {e}"),
            McpartError::Verify(e) => write!(f, "verification error: {e}"),
            McpartError::Exec(e) => write!(f, "execution error: {e}"),
            McpartError::Pipeline(e) => write!(f, "{e}"),
            McpartError::WorkerPanic { unit, payload } => {
                write!(f, "worker panicked in unit `{unit}`: {payload}")
            }
        }
    }
}

impl Error for McpartError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            McpartError::Parse(e) => Some(e),
            McpartError::Verify(e) => Some(e),
            McpartError::Exec(e) => Some(e),
            McpartError::Pipeline(e) => Some(e),
            McpartError::WorkerPanic { .. } => None,
        }
    }
}

impl From<mcpart_ir::ParseError> for McpartError {
    fn from(e: mcpart_ir::ParseError) -> Self {
        McpartError::Parse(e)
    }
}

impl From<mcpart_ir::VerifyError> for McpartError {
    fn from(e: mcpart_ir::VerifyError) -> Self {
        McpartError::Verify(e)
    }
}

impl From<mcpart_sim::ExecError> for McpartError {
    fn from(e: mcpart_sim::ExecError) -> Self {
        McpartError::Exec(e)
    }
}

impl From<PipelineError> for McpartError {
    fn from(e: PipelineError) -> Self {
        McpartError::Pipeline(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(kind: PipelineErrorKind) -> PipelineError {
        PipelineError {
            program: "demo".into(),
            method: Method::Gdp,
            stage: Stage::DataPartition,
            kind,
        }
    }

    #[test]
    fn partitioning_failures_are_recoverable() {
        let e = sample(PipelineErrorKind::Gdp(GdpError::Metis(
            mcpart_metis::MetisError::BudgetExceeded { limit: 3 },
        )));
        assert!(e.is_recoverable());
        let e = sample(PipelineErrorKind::Timeout {
            budget: Duration::from_millis(1),
            elapsed: Duration::from_millis(2),
        });
        assert!(e.is_recoverable());
    }

    #[test]
    fn input_failures_are_not_recoverable() {
        let e =
            sample(PipelineErrorKind::Profile(mcpart_analysis::AnalysisError::ProfileMismatch {
                message: "x".into(),
            }));
        assert!(!e.is_recoverable());
        let e = sample(PipelineErrorKind::Exec(mcpart_sim::ExecError::StepLimit));
        assert!(!e.is_recoverable());
    }

    #[test]
    fn worker_panics_are_recoverable_and_lift_to_mcpart_error() {
        let e = sample(PipelineErrorKind::WorkerPanic { payload: "boom".into() });
        assert!(e.is_recoverable(), "panics must feed the degradation ladder");
        let lifted = McpartError::from_unit_failure("fir/gdp", e);
        match &lifted {
            McpartError::WorkerPanic { unit, payload } => {
                assert_eq!(unit, "fir/gdp");
                assert_eq!(payload, "boom");
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        let s = lifted.to_string();
        assert!(s.contains("fir/gdp") && s.contains("boom"), "{s}");
        // Non-panic failures keep the Pipeline wrapping.
        let e = sample(PipelineErrorKind::Gdp(GdpError::NoClusters));
        assert!(matches!(McpartError::from_unit_failure("u", e), McpartError::Pipeline(_)));
    }

    #[test]
    fn watchdog_abort_renders_and_recovers() {
        let e = sample(PipelineErrorKind::Rhop(RhopError::Aborted));
        assert!(e.is_recoverable());
        assert!(e.to_string().contains("watchdog"), "{e}");
    }

    #[test]
    fn errors_render_with_provenance() {
        let e = sample(PipelineErrorKind::Gdp(GdpError::NoClusters));
        let s = e.to_string();
        assert!(s.contains("GDP"), "{s}");
        assert!(s.contains("demo"), "{s}");
        assert!(s.contains("data partition"), "{s}");
    }
}
