//! Second pass: Region-based Hierarchical Operation Partitioning
//! (RHOP, Chu/Fan/Mahlke PLDI'03) extended with data-object locking
//! (§3.4 of the CGO'06 paper).
//!
//! For each region, operations are coarsened bottom-up along
//! low-slack (high-weight) dependence edges, an initial cluster
//! assignment is made at the coarsest level, and the hierarchy is walked
//! back while greedily moving operation groups between clusters whenever
//! the schedule-length estimate improves. Memory operations whose data
//! object has a home cluster are *locked*: the estimator reports any
//! displacing assignment as infeasible, so they never move.
//!
//! ## Performance structure
//!
//! The pass is organized for speed without giving up determinism:
//!
//! * **Per-function parallelism.** Functions are independent — a
//!   function's sweeps read and write only its own operations — so they
//!   are fanned out over [`mcpart_par::parallel_map`] with one RNG
//!   stream per function ([`mcpart_rng::derive_seed`] of the config
//!   seed and the function index). Results are bit-identical for every
//!   [`RhopConfig::jobs`] value, including `1`.
//! * **Cached region contexts.** The dependence graph, estimator,
//!   locks, def-grouping and base edge weights of a region are built
//!   once ([`RegionCtx`]) and reused by all three sweeps, instead of
//!   being recomputed per sweep.
//! * **Incremental probe evaluation.** Refinement probes run through
//!   [`IncrementalEstimator`]: one scratch assignment mutated by
//!   try-move/rollback (no per-probe clone), occupancy buckets updated
//!   only for moved nodes, and an exact lower bound that prunes probes
//!   which provably cannot improve the incumbent. Pruned probes still
//!   charge the estimator-call budget, so
//!   [`RhopConfig::max_estimator_calls`] retains its meaning.

use mcpart_analysis::{AccessInfo, AccessSite};
use mcpart_ir::{
    BlockId, ClusterId, EntityId, EntityMap, FuncId, ObjectId, OpId, Opcode, Profile, Program, VReg,
};
use mcpart_machine::Machine;
use mcpart_par::supervise::{
    supervise_unit, AbortHandle, QuarantineReport, RetryPolicy, UnitOutcome,
};
use mcpart_par::SharedBudget;
use mcpart_rng::rngs::SmallRng;
use mcpart_rng::seq::SliceRandom;
use mcpart_rng::{derive_seed, SeedableRng};
use mcpart_sched::{IncrementalEstimator, Placement, RegionEstimator, INFEASIBLE};

use crate::error::RhopError;
use crate::groups::UnionFind;

/// Scope of the regions RHOP partitions one at a time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RegionScope {
    /// Every basic block is its own region (the default). Cross-block
    /// placement is coordinated by a second sweep in which each region
    /// sees the home clusters of its live-in values and the estimator
    /// charges a move for consuming them remotely.
    PerBlock,
    /// All blocks of a function form one region (unless the function
    /// declares explicit regions, which always win). Cross-block
    /// register flow then participates in the cut estimates, matching
    /// the paper's region-based (hyperblock-scope) partitioning.
    WholeFunction,
    /// One region per outermost natural loop nest (header + body +
    /// latches), plus singleton regions for straight-line blocks —
    /// the closest analog of the paper's compiler-formed loop regions.
    LoopNests,
}

/// Configuration of the RHOP computation partitioner.
#[derive(Clone, Debug)]
pub struct RhopConfig {
    /// RNG seed (refinement visit order). Each function derives its own
    /// stream from this seed, so placements do not depend on how
    /// functions are scheduled across workers.
    pub seed: u64,
    /// Coarsening stops when a region has at most this many groups.
    pub coarsen_to: usize,
    /// Refinement passes per uncoarsening level.
    pub refine_passes: usize,
    /// Region scope (see [`RegionScope`]).
    pub region_scope: RegionScope,
    /// Budget on schedule-estimator invocations across the whole run
    /// (`None` = unlimited). The estimator dominates RHOP's compile
    /// time (§4.5), so this bounds the pass's total work; exhausting it
    /// yields [`RhopError::EstimatorBudgetExceeded`]. Pruned probes
    /// charge the budget exactly like full evaluations, so the budget's
    /// meaning is independent of [`RhopConfig::incremental`].
    pub max_estimator_calls: Option<u64>,
    /// Worker threads partitioning functions concurrently: `1` =
    /// sequential (the default for library users), `0` = all available
    /// cores. Placements, statistics and errors are bit-identical for
    /// every value.
    pub jobs: usize,
    /// Prune refinement probes with an exact lower bound (default on).
    /// Pruning never changes placements or accepted moves — only which
    /// probes pay for a full schedule simulation — so turning it off is
    /// useful solely for measuring its benefit.
    pub incremental: bool,
    /// Observability sink. Workers record into private buffers that are
    /// flushed in function order, so the pinned event log of a
    /// successful run is byte-identical for every [`RhopConfig::jobs`]
    /// value; on a failed run no RHOP events are flushed at all. The
    /// default records nothing.
    pub obs: mcpart_obs::Obs,
    /// Extra attempts a *panicking* function unit gets before it is
    /// quarantined. Typed errors (budget exhaustion) are never retried
    /// here — they are deterministic and feed the pipeline's ladder.
    pub retries: u32,
    /// Base backoff fuel charged against the estimator budget before a
    /// retry (doubling per retry). Fuel-denominated so the retry
    /// decision never consults a clock: `--jobs N` stays bit-identical.
    pub backoff_fuel: u64,
    /// Fault injection: panic inside the named function's partition
    /// while the 0-based attempt number is below `panics`. Used by the
    /// supervision tests and the CLI's `--inject-panic`.
    pub inject_panic: Option<PanicPlan>,
    /// Abort handle checked by every budget charge; a watchdog fires it
    /// to stop a runaway unit at its next fuel spend. Disarmed by
    /// default.
    pub abort: AbortHandle,
    /// Per-function replay table installed by an incremental run (see
    /// [`crate::repartition`]): entry `i`, when present, short-circuits
    /// function `i`'s partition with the baseline's recorded result —
    /// charging the recorded estimator calls against the budget and
    /// emitting the recorded `rhop/function` span, so placements,
    /// stats, budget outcome and pinned events are byte-identical to a
    /// live run. `None` (the default) and `None` entries run live.
    pub reuse: Option<std::sync::Arc<Vec<Option<ReuseEntry>>>>,
}

/// A replayable per-function RHOP result recorded by a baseline run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReuseEntry {
    /// Pre-normalization cluster of every op, in op order.
    pub op_cluster: Vec<u32>,
    /// The function's recorded stats contribution (zero retries and no
    /// quarantine — only clean completions are replayable).
    pub stats: RhopStats,
}

/// Per-function outcome surfaced by [`rhop_partition_detailed`]:
/// `None` marks a quarantined function (its placement is the trivial
/// fallback, never replayable later).
#[derive(Clone, Debug)]
pub struct FuncPartitionOutcome {
    /// The function's own stats contribution.
    pub stats: RhopStats,
    /// Panicking attempts that preceded success.
    pub retries: u64,
    /// Whether the result was replayed from a [`ReuseEntry`].
    pub replayed: bool,
}

/// A deterministic injected fault: panic in `func` while the attempt
/// number is below `panics` (so `panics = 1` exercises
/// retry-then-succeed, `u32::MAX` exercises quarantine).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PanicPlan {
    /// Name of the function whose partition panics.
    pub func: String,
    /// Number of leading attempts that panic.
    pub panics: u32,
}

impl PanicPlan {
    /// A plan that panics on every attempt (quarantine path).
    pub fn always(func: &str) -> Self {
        PanicPlan { func: func.to_string(), panics: u32::MAX }
    }
}

impl Default for RhopConfig {
    fn default() -> Self {
        RhopConfig {
            seed: 0x4409,
            coarsen_to: 8,
            refine_passes: 2,
            region_scope: RegionScope::PerBlock,
            max_estimator_calls: None,
            jobs: 1,
            incremental: true,
            obs: mcpart_obs::Obs::disabled(),
            retries: 2,
            backoff_fuel: 16,
            inject_panic: None,
            abort: AbortHandle::default(),
            reuse: None,
        }
    }
}

/// Statistics of one RHOP run (for the compile-time experiment, §4.5).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RhopStats {
    /// Regions partitioned.
    pub regions: usize,
    /// Total schedule-estimator invocations (budgeted work units; a
    /// pruned probe counts exactly like a fully simulated one).
    pub estimator_calls: u64,
    /// Total groups moved during refinement.
    pub moves_accepted: u64,
    /// Probes that paid for a full schedule simulation.
    pub full_evals: u64,
    /// Probes answered by the exact lower bound alone
    /// (`pruned_lock + pruned_bound`).
    pub pruned_evals: u64,
    /// Pruned probes rejected for displacing a locked operation.
    pub pruned_lock: u64,
    /// Pruned probes rejected by the resource/critical-path bound.
    pub pruned_bound: u64,
    /// Panicking attempts that were retried and then completed.
    pub retries: u64,
    /// Function units that exhausted their retries and were replaced by
    /// the trivial all-on-cluster-0 fallback instead of failing the run.
    pub quarantine: QuarantineReport,
}

impl RhopStats {
    /// Accumulates another run's counters (merging per-function or
    /// per-phase results).
    pub fn add(&mut self, other: &RhopStats) {
        self.regions += other.regions;
        self.estimator_calls += other.estimator_calls;
        self.moves_accepted += other.moves_accepted;
        self.full_evals += other.full_evals;
        self.pruned_evals += other.pruned_evals;
        self.pruned_lock += other.pruned_lock;
        self.pruned_bound += other.pruned_bound;
        self.retries += other.retries;
        self.quarantine.merge(&other.quarantine);
    }
}

/// Spends one estimator invocation against the shared budget. A failed
/// spend is the watchdog's abort when the handle fired, and plain
/// budget exhaustion otherwise.
fn spend_estimate(stats: &mut RhopStats, budget: &SharedBudget) -> Result<(), RhopError> {
    stats.estimator_calls += 1;
    if budget.spend() {
        Ok(())
    } else if budget.is_aborted() {
        Err(RhopError::Aborted)
    } else {
        Err(RhopError::EstimatorBudgetExceeded { limit: budget.limit().unwrap_or(0) })
    }
}

/// Runs RHOP over every region of every function.
///
/// `object_home` supplies the data partition: memory operations
/// accessing a homed object are locked to that cluster, and `call`s are
/// locked to cluster 0. Pass a map of `None`s for the unified-memory
/// model (no locks).
///
/// Functions are partitioned concurrently on [`RhopConfig::jobs`]
/// workers; the result does not depend on the worker count.
///
/// # Errors
///
/// Returns [`RhopError::EstimatorBudgetExceeded`] when
/// `config.max_estimator_calls` runs out mid-pass, and
/// [`RhopError::Internal`] if the hierarchical partitioner breaks one
/// of its invariants.
pub fn rhop_partition(
    program: &Program,
    access: &AccessInfo,
    profile: &Profile,
    machine: &Machine,
    object_home: &EntityMap<ObjectId, Option<ClusterId>>,
    config: &RhopConfig,
) -> Result<(Placement, RhopStats), RhopError> {
    rhop_partition_detailed(program, access, profile, machine, object_home, config)
        .map(|(placement, stats, _)| (placement, stats))
}

/// [`rhop_partition`] plus the per-function outcome vector the
/// incremental-repartition manifest is built from (one entry per
/// function in index order; `None` = quarantined).
pub fn rhop_partition_detailed(
    program: &Program,
    access: &AccessInfo,
    _profile: &Profile,
    machine: &Machine,
    object_home: &EntityMap<ObjectId, Option<ClusterId>>,
    config: &RhopConfig,
) -> Result<(Placement, RhopStats, Vec<Option<FuncPartitionOutcome>>), RhopError> {
    let clock = std::time::Instant::now();
    let mut placement = Placement::all_on_cluster0(program);
    placement.object_home = object_home.clone();
    // The budget is shared across workers. Whether it runs out depends
    // only on the total demand (which is fixed: a replayed function
    // lump-charges exactly the estimator calls its live run would
    // spend), so the ok/exceeded outcome — and with the fid-order
    // reduction below, the reported error — is deterministic.
    let budget = SharedBudget::with_abort(config.max_estimator_calls, config.abort.clone());
    let fids: Vec<FuncId> = program.functions.keys().collect();
    let policy = RetryPolicy { retries: config.retries, backoff_fuel: config.backoff_fuel };
    let reuse = config.reuse.as_deref();
    let reuse_of = |fid: FuncId| reuse.and_then(|r| r.get(fid.index())).and_then(Option::as_ref);
    // Each function is a supervised unit: a panicking attempt is caught
    // (its events withheld), retried with fuel-denominated backoff, and
    // finally quarantined behind a trivial fallback placement. Panics
    // and backoff charges are pure functions of `(function, attempt)`,
    // so the supervision outcome is identical for every worker count.
    // A function with a reuse entry skips supervision entirely: replay
    // runs no partitioner code, so there is nothing to panic.
    let results = mcpart_par::parallel_map(config.jobs, &fids, |_, &fid| {
        if let Some(entry) = reuse_of(fid) {
            return replay_function(fid, entry, config, &budget);
        }
        supervise_unit(
            &program.functions[fid].name,
            policy,
            |fuel| budget.charge(fuel),
            |attempt| {
                partition_function(
                    program,
                    fid,
                    access,
                    machine,
                    object_home,
                    config,
                    &budget,
                    attempt,
                )
            },
        )
    });
    let mut stats = RhopStats::default();
    let mut outcomes: Vec<Option<FuncPartitionOutcome>> = Vec::with_capacity(fids.len());
    // Worker event buffers are held back until every function succeeded,
    // then flushed in function order: the sink sees the same sequence
    // for every worker count, and a failed run flushes nothing.
    let mut bufs = Vec::with_capacity(fids.len());
    for (&fid, outcome) in fids.iter().zip(results) {
        match outcome {
            UnitOutcome::Completed { value: (op_clusters, func_stats, buf), retries, .. } => {
                placement.op_cluster[fid] = op_clusters;
                stats.add(&func_stats);
                stats.retries += u64::from(retries);
                outcomes.push(Some(FuncPartitionOutcome {
                    stats: func_stats,
                    retries: u64::from(retries),
                    replayed: reuse_of(fid).is_some(),
                }));
                bufs.push(buf);
            }
            UnitOutcome::Failed(e) => return Err(e),
            UnitOutcome::Quarantined(q) => {
                // The unit never completed: leave the function on the
                // all-on-cluster-0 fallback, withhold its events, and
                // report it instead of failing the workload.
                stats.quarantine.units.push(q);
                outcomes.push(None);
            }
        }
    }
    for buf in bufs {
        config.obs.append(buf);
    }
    if config.obs.is_enabled() {
        config.obs.counter("rhop", "regions", stats.regions as i64);
        config.obs.counter("rhop", "estimator_calls", stats.estimator_calls as i64);
        config.obs.counter("rhop", "moves_accepted", stats.moves_accepted as i64);
        config.obs.counter("rhop", "full_evals", stats.full_evals as i64);
        config.obs.counter("rhop", "pruned_evals", stats.pruned_evals as i64);
        config.obs.counter("rhop", "pruned_lock", stats.pruned_lock as i64);
        config.obs.counter("rhop", "pruned_bound", stats.pruned_bound as i64);
        config.obs.span_since("rhop", "partition", clock);
    }
    Ok((placement, stats, outcomes))
}

/// Replays one function's recorded RHOP result: charges the recorded
/// estimator calls (so the shared budget's total demand — and
/// therefore its ok/exceeded outcome — matches a live run exactly),
/// rebuilds the op-cluster map, and emits the one `rhop/function` span
/// a live [`partition_function`] would, from the recorded stats.
fn replay_function(
    fid: FuncId,
    entry: &ReuseEntry,
    config: &RhopConfig,
    budget: &SharedBudget,
) -> UnitOutcome<(EntityMap<OpId, ClusterId>, RhopStats, mcpart_obs::EventBuf), RhopError> {
    let clock = std::time::Instant::now();
    let mut buf = config.obs.buffer();
    if entry.stats.estimator_calls > 0 && !budget.charge(entry.stats.estimator_calls) {
        return UnitOutcome::Failed(if budget.is_aborted() {
            RhopError::Aborted
        } else {
            RhopError::EstimatorBudgetExceeded { limit: budget.limit().unwrap_or(0) }
        });
    }
    let op_clusters: EntityMap<OpId, ClusterId> =
        entry.op_cluster.iter().map(|&c| ClusterId::new(c as usize)).collect();
    let stats = entry.stats.clone();
    buf.span_args(
        "rhop",
        "function",
        clock,
        &[
            ("func", fid.index() as i64),
            ("regions", stats.regions as i64),
            ("estimator_calls", stats.estimator_calls as i64),
            ("moves_accepted", stats.moves_accepted as i64),
            ("full_evals", stats.full_evals as i64),
            ("pruned_evals", stats.pruned_evals as i64),
        ],
    );
    UnitOutcome::Completed { value: (op_clusters, stats, buf), retries: 0, backoff_spent: 0 }
}

/// Partitions all regions of one function (all three sweeps). Pure in
/// `(program, fid, config, attempt)` plus the shared budget: reads only
/// `fid`'s operations and returns only `fid`'s cluster map, which is
/// what makes the per-function fan-out deterministic. `attempt` is the
/// supervisor's 0-based retry counter, consumed only by fault
/// injection.
#[allow(clippy::too_many_arguments)]
fn partition_function(
    program: &Program,
    fid: FuncId,
    access: &AccessInfo,
    machine: &Machine,
    object_home: &EntityMap<ObjectId, Option<ClusterId>>,
    config: &RhopConfig,
    budget: &SharedBudget,
    attempt: u32,
) -> Result<(EntityMap<OpId, ClusterId>, RhopStats, mcpart_obs::EventBuf), RhopError> {
    let clock = std::time::Instant::now();
    let mut buf = config.obs.buffer();
    let func = &program.functions[fid];
    if let Some(plan) = &config.inject_panic {
        if plan.func == func.name && attempt < plan.panics {
            panic!("injected fault in `{}` (attempt {attempt})", func.name);
        }
    }
    let mut op_clusters: EntityMap<OpId, ClusterId> =
        EntityMap::with_default(func.num_ops(), ClusterId::new(0));
    let mut stats = RhopStats::default();
    let mut rng = SmallRng::seed_from_u64(derive_seed(config.seed, fid.index() as u64));
    let regions: Vec<Vec<BlockId>> = if !func.regions.is_empty() {
        func.regions.values().map(|r| r.blocks.clone()).collect()
    } else {
        match config.region_scope {
            RegionScope::PerBlock => func.blocks.keys().map(|b| vec![b]).collect(),
            RegionScope::WholeFunction => {
                vec![func.blocks.keys().collect()]
            }
            RegionScope::LoopNests => mcpart_analysis::loop_regions(func),
        }
    };
    // Build each region's dependence graph, estimator, locks and base
    // grouping once; all three sweeps reuse them.
    let mut ctxs: Vec<RegionCtx> = regions
        .iter()
        .map(|blocks| RegionCtx::build(program, fid, blocks, access, machine, object_home))
        .collect();
    let nclusters = machine.num_clusters();
    // Sweep 1: partition each region in isolation. Sweep 2:
    // re-partition with the homes of live-in registers (from sweep
    // 1's global result) charged by the estimator, coordinating
    // placement across blocks.
    for sweep in 0..3 {
        let hints: Option<EntityMap<VReg, ClusterId>> =
            if sweep == 0 { None } else { Some(mcpart_sched::vreg_homes_of(func, &op_clusters)) };
        for ctx in &mut ctxs {
            partition_region(
                ctx,
                nclusters,
                config,
                hints.as_ref(),
                sweep == 0,
                &mut op_clusters,
                &mut stats,
                &mut rng,
                budget,
            )?;
        }
    }
    buf.span_args(
        "rhop",
        "function",
        clock,
        &[
            ("func", fid.index() as i64),
            ("regions", stats.regions as i64),
            ("estimator_calls", stats.estimator_calls as i64),
            ("moves_accepted", stats.moves_accepted as i64),
            ("full_evals", stats.full_evals as i64),
            ("pruned_evals", stats.pruned_evals as i64),
        ],
    );
    Ok((op_clusters, stats, buf))
}

/// One coarsening level: groups of region-node indices.
#[derive(Clone)]
struct Level {
    /// Node members per group.
    members: Vec<Vec<u32>>,
    /// Cluster lock per group.
    lock: Vec<Option<ClusterId>>,
}

/// Everything about a region that is invariant across the three RHOP
/// sweeps: the estimator (dependence graph, latencies, locks, memory
/// homes), the operation list, the def-grouped base level and its
/// slack-weighted edges, and the live-in consumption sites. Building
/// this dominates a sweep's fixed cost, so it is done once per region.
struct RegionCtx {
    est: RegionEstimator,
    node_ops: Vec<OpId>,
    base: Level,
    group_edges: std::collections::HashMap<(usize, usize), u64>,
    /// `(node, source register)` per live-in operand occurrence, for
    /// re-annotating the estimator each hinted sweep.
    live_ins: Vec<(u32, VReg)>,
}

impl RegionCtx {
    fn build(
        program: &Program,
        fid: FuncId,
        blocks: &[BlockId],
        access: &AccessInfo,
        machine: &Machine,
        object_home: &EntityMap<ObjectId, Option<ClusterId>>,
    ) -> Self {
        let mut est = RegionEstimator::new(program, fid, blocks, access, machine);
        let n = est.len();
        let func = &program.functions[fid];

        // Locks: calls to cluster 0; memory ops to their object's home
        // (hard lock under partitioned memory, latency penalty under the
        // coherent-cache model).
        let node_ops: Vec<OpId> = est.dg.ops.clone();
        for (i, &op_id) in node_ops.iter().enumerate() {
            let op = &func.ops[op_id];
            match op.opcode {
                Opcode::Call(_) => est.lock(i, ClusterId::new(0)),
                _ if op.opcode.is_memory() => {
                    let site = AccessSite { func: fid, op: op_id };
                    let home = access
                        .site_objects
                        .get(&site)
                        .and_then(|objs| objs.iter().find_map(|&o| object_home[o]));
                    match (
                        home,
                        machine.memory.is_partitioned(),
                        machine.memory.coherence_penalty(),
                    ) {
                        (Some(home), true, _) => est.lock(i, home),
                        (Some(home), false, Some(penalty)) => est.set_mem_home(i, home, penalty),
                        _ => {}
                    }
                }
                _ => {}
            }
        }

        // Live-in operand sites: values defined outside the region
        // consumed here, annotated with their home clusters on the
        // hinted sweeps.
        let defined_here: std::collections::HashSet<VReg> =
            node_ops.iter().flat_map(|&o| func.ops[o].dsts.iter().copied()).collect();
        let mut live_ins = Vec::new();
        for (i, &op_id) in node_ops.iter().enumerate() {
            for &src in &func.ops[op_id].srcs {
                if !defined_here.contains(&src) {
                    live_ins.push((i as u32, src));
                }
            }
        }

        // Base grouping: definitions of the same register stay together
        // so every value has a unique home register file.
        let mut uf = UnionFind::new(n);
        let mut def_node: std::collections::HashMap<VReg, u32> = std::collections::HashMap::new();
        for (i, &op_id) in node_ops.iter().enumerate() {
            for &d in &func.ops[op_id].dsts {
                match def_node.entry(d) {
                    std::collections::hash_map::Entry::Occupied(e) => uf.union(*e.get(), i as u32),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(i as u32);
                    }
                }
            }
        }
        let mut base = Level { members: Vec::new(), lock: Vec::new() };
        let mut root_group: std::collections::HashMap<u32, usize> =
            std::collections::HashMap::new();
        let mut group_of_node = vec![0usize; n];
        for i in 0..n as u32 {
            let root = uf.find(i);
            let g = *root_group.entry(root).or_insert_with(|| {
                base.members.push(Vec::new());
                base.lock.push(None);
                base.members.len() - 1
            });
            base.members[g].push(i);
            group_of_node[i as usize] = g;
            if base.lock[g].is_none() {
                base.lock[g] = est.lock_of(i as usize);
            }
        }

        // Edge weights between base groups: low slack ⇒ high weight,
        // scaled so critical edges dominate the matching order.
        let slacks = est.dg.edge_slacks();
        let max_slack = slacks.iter().copied().max().unwrap_or(0) as u64;
        let mut group_edges: std::collections::HashMap<(usize, usize), u64> =
            std::collections::HashMap::new();
        for (ei, d) in est.dg.deps.iter().enumerate() {
            if d.kind != mcpart_sched::DepKind::Flow {
                continue;
            }
            let a = group_of_node[d.from as usize];
            let b = group_of_node[d.to as usize];
            if a == b {
                continue;
            }
            let key = (a.min(b), a.max(b));
            let w = max_slack + 1 - slacks[ei] as u64;
            *group_edges.entry(key).or_insert(0) += w;
        }

        RegionCtx { est, node_ops, base, group_edges, live_ins }
    }
}

#[allow(clippy::too_many_arguments)]
fn partition_region(
    ctx: &mut RegionCtx,
    nclusters: usize,
    config: &RhopConfig,
    live_in_hints: Option<&EntityMap<VReg, ClusterId>>,
    count_region: bool,
    op_clusters: &mut EntityMap<OpId, ClusterId>,
    stats: &mut RhopStats,
    rng: &mut SmallRng,
    budget: &SharedBudget,
) -> Result<(), RhopError> {
    let n = ctx.est.len();
    if n == 0 {
        return Ok(());
    }
    if count_region {
        stats.regions += 1;
    }

    // Re-annotate the (cached) estimator with this sweep's live-in
    // operand homes; everything else in the context is sweep-invariant.
    ctx.est.clear_live_in_homes();
    if let Some(hints) = live_in_hints {
        for &(i, src) in &ctx.live_ins {
            ctx.est.add_live_in_home(i as usize, hints[src]);
        }
    }
    let est = &ctx.est;
    let mut inc = IncrementalEstimator::new(est);

    // Multilevel coarsening by heavy-edge matching over groups, from
    // the cached base level.
    let mut group_edges = ctx.group_edges.clone();
    let mut levels: Vec<Level> = vec![ctx.base.clone()];
    loop {
        let Some(current) = levels.last() else {
            return Err(RhopError::Internal { message: "coarsening lost the base level".into() });
        };
        let g = current.members.len();
        if g <= config.coarsen_to.max(nclusters) {
            break;
        }
        // Build adjacency with weights (sorted for determinism —
        // HashMap iteration order must not influence matching).
        let mut sorted_edges: Vec<((usize, usize), u64)> =
            group_edges.iter().map(|(&k, &w)| (k, w)).collect();
        sorted_edges.sort_unstable();
        let mut adj: Vec<Vec<(usize, u64)>> = vec![Vec::new(); g];
        for &((a, b), w) in &sorted_edges {
            adj[a].push((b, w));
            adj[b].push((a, w));
        }
        let mut matched = vec![usize::MAX; g];
        let mut order: Vec<usize> = (0..g).collect();
        order.shuffle(rng);
        for &v in &order {
            if matched[v] != usize::MAX {
                continue;
            }
            let mut best: Option<(usize, u64)> = None;
            for &(u, w) in &adj[v] {
                if matched[u] != usize::MAX || u == v {
                    continue;
                }
                // Conflicting locks cannot merge.
                if let (Some(a), Some(b)) = (current.lock[v], current.lock[u]) {
                    if a != b {
                        continue;
                    }
                }
                if best.map(|(_, bw)| w > bw).unwrap_or(true) {
                    best = Some((u, w));
                }
            }
            match best {
                Some((u, _)) => {
                    matched[v] = u;
                    matched[u] = v;
                }
                None => matched[v] = v,
            }
        }
        // Build the coarser level.
        let mut coarse = Level { members: Vec::new(), lock: Vec::new() };
        let mut map = vec![usize::MAX; g];
        for v in 0..g {
            if map[v] != usize::MAX {
                continue;
            }
            let mut members = current.members[v].clone();
            let mut lock = current.lock[v];
            map[v] = coarse.members.len();
            let partner = matched[v];
            if partner != v && partner != usize::MAX && map[partner] == usize::MAX {
                members.extend(current.members[partner].iter().copied());
                lock = lock.or(current.lock[partner]);
                map[partner] = coarse.members.len();
            }
            coarse.members.push(members);
            coarse.lock.push(lock);
        }
        if coarse.members.len() as f64 > g as f64 * 0.98 {
            break;
        }
        // Re-project edges.
        let mut new_edges: std::collections::HashMap<(usize, usize), u64> =
            std::collections::HashMap::new();
        for (&(a, b), &w) in &group_edges {
            let (na, nb) = (map[a], map[b]);
            if na == nb {
                continue;
            }
            *new_edges.entry((na.min(nb), na.max(nb))).or_insert(0) += w;
        }
        group_edges = new_edges;
        levels.push(coarse);
    }

    // Initial assignment at the coarsest level: try both a lock-seeded
    // single-cluster start and a balanced round-robin start, refine
    // each, and keep the better one.
    let coarsest = levels.len() - 1;
    let mut assign_groups: Vec<u16> = {
        let level = &levels[coarsest];
        let seed_a: Vec<u16> =
            level.lock.iter().map(|l| l.map(|c| c.index() as u16).unwrap_or(0)).collect();
        let mut seed_b = seed_a.clone();
        let mut next = 0usize;
        for (g, lock) in level.lock.iter().enumerate() {
            if lock.is_none() {
                seed_b[g] = (next % nclusters) as u16;
                next += 1;
            }
        }
        let mut best: Option<(Vec<u16>, u32, u32)> = None;
        for mut cand in [seed_a, seed_b] {
            let (e, peak) = refine_level(
                level,
                &mut cand,
                &mut inc,
                nclusters,
                config.refine_passes.max(2) + 2,
                config.incremental,
                stats,
                rng,
                budget,
            )?;
            // The refined candidate's final (estimate, peak) is already
            // exact; charge the comparison like the re-evaluation it
            // replaces so budgets keep their historical meaning.
            spend_estimate(stats, budget)?;
            let better = match &best {
                None => true,
                Some((_, be, bp)) => e < *be || (e == *be && peak < *bp),
            };
            if better {
                best = Some((cand, e, peak));
            }
        }
        match best {
            Some((cand, _, _)) => cand,
            None => {
                return Err(RhopError::Internal {
                    message: "no initial candidate assignment survived".into(),
                })
            }
        }
    };

    // Uncoarsening: project and refine at each finer level.
    for li in (0..coarsest).rev() {
        // Project: a fine group takes the cluster of the coarse group
        // containing its first node.
        let coarse = &levels[li + 1];
        let fine = &levels[li];
        let mut node_cluster = vec![0u16; n];
        for (g, members) in coarse.members.iter().enumerate() {
            for &m in members {
                node_cluster[m as usize] = assign_groups[g];
            }
        }
        let mut fine_assign: Vec<u16> =
            fine.members.iter().map(|members| node_cluster[members[0] as usize]).collect();
        refine_level(
            fine,
            &mut fine_assign,
            &mut inc,
            nclusters,
            config.refine_passes,
            config.incremental,
            stats,
            rng,
            budget,
        )?;
        assign_groups = fine_assign;
    }

    // Write node clusters into the function's cluster map.
    let finest = &levels[0];
    for (g, members) in finest.members.iter().enumerate() {
        for &m in members {
            op_clusters[ctx.node_ops[m as usize]] = ClusterId::new(assign_groups[g] as usize);
        }
    }
    stats.full_evals += inc.full_evals;
    stats.pruned_evals += inc.pruned_evals;
    stats.pruned_lock += inc.pruned_lock;
    stats.pruned_bound += inc.pruned_bound;
    Ok(())
}

/// Greedy refinement at one level: move groups between clusters while
/// the schedule estimate improves. Returns the final `(estimate, peak)`
/// of the refined assignment.
///
/// Probes go through the incremental evaluator: each candidate is a
/// try-move, judged either by the exact lower bound (pruned) or by a
/// full allocation-free simulation, then rolled back — the accepted
/// best move is re-applied and committed. Every probe charges the
/// budget exactly once regardless of how it was answered, and pruning
/// rejects precisely the probes the acceptance test below would reject,
/// so placements, accepted moves and budget-exhaustion points are
/// identical to exhaustive evaluation.
#[allow(clippy::too_many_arguments)]
fn refine_level(
    level: &Level,
    assign: &mut [u16],
    inc: &mut IncrementalEstimator<'_>,
    nclusters: usize,
    passes: usize,
    incremental: bool,
    stats: &mut RhopStats,
    rng: &mut SmallRng,
    budget: &SharedBudget,
) -> Result<(u32, u32), RhopError> {
    inc.load_groups(&level.members, assign);
    let mut current = inc.estimate();
    let mut current_peak = inc.resource_peak();
    spend_estimate(stats, budget)?;
    if current == INFEASIBLE {
        // Locked base assignment should always be feasible; bail out
        // defensively.
        return Ok((current, current_peak));
    }
    let mut order: Vec<usize> = (0..level.members.len()).collect();
    for _ in 0..passes.max(1) {
        order.shuffle(rng);
        let mut moved = 0usize;
        for &g in &order {
            if level.lock[g].is_some() {
                continue;
            }
            let original = assign[g];
            let mut best: Option<(u16, u32, u32)> = None;
            for c in 0..nclusters as u16 {
                if c == original {
                    continue;
                }
                inc.try_move(&level.members[g], c);
                spend_estimate(stats, budget)?;
                let probe = if incremental {
                    inc.estimate_unless_worse(current, current_peak)
                } else {
                    let e = inc.estimate();
                    if e == INFEASIBLE {
                        None
                    } else {
                        Some((e, inc.resource_peak()))
                    }
                };
                inc.rollback();
                if let Some((e, peak)) = probe {
                    // Accept strict improvements, or equal estimates
                    // that lower the resource peak (leaves headroom for
                    // the real scheduler and lets coordinated splits
                    // emerge).
                    let improves = e < current || (e == current && peak < current_peak);
                    if improves
                        && best.map(|(_, be, bp)| e < be || (e == be && peak < bp)).unwrap_or(true)
                    {
                        best = Some((c, e, peak));
                    }
                }
            }
            if let Some((c, e, peak)) = best {
                assign[g] = c;
                inc.try_move(&level.members[g], c);
                inc.commit();
                current = e;
                current_peak = peak;
                moved += 1;
                stats.moves_accepted += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }
    Ok((current, current_peak))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpart_analysis::PointsTo;
    use mcpart_ir::{DataObject, FunctionBuilder, MemWidth};
    use mcpart_sched::{evaluate, insert_moves, normalize_placement};

    fn analyze(p: &Program) -> (Profile, AccessInfo) {
        let profile = Profile::uniform(p, 100);
        let pts = PointsTo::compute(p);
        let access = AccessInfo::compute(p, &pts, &profile);
        (profile, access)
    }

    /// Two independent dependence chains: RHOP should split them across
    /// clusters for ILP.
    #[test]
    fn independent_chains_split_across_clusters() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        // Four serial chains: one cluster's two integer units saturate,
        // so the resource bound pushes RHOP to use both clusters.
        let mut chains: Vec<_> = (0..4).map(|i| b.iconst(i)).collect();
        for _ in 0..8 {
            for c in chains.iter_mut() {
                *c = b.add(*c, *c);
            }
        }
        let s1 = b.add(chains[0], chains[1]);
        let s2 = b.add(chains[2], chains[3]);
        let z = b.add(s1, s2);
        b.ret(Some(z));
        let (profile, access) = analyze(&p);
        let machine = Machine::paper_2cluster(1);
        let homes = EntityMap::with_default(0, None);
        let (placement, stats) =
            rhop_partition(&p, &access, &profile, &machine, &homes, &RhopConfig::default())
                .expect("rhop");
        let counts = placement.ops_per_cluster(2);
        assert!(counts[0] > 0 && counts[1] > 0, "both clusters used: {counts:?}");
        assert!(stats.regions >= 1);
        assert!(stats.estimator_calls > 0);
    }

    /// A single serial chain must stay on one cluster (no benefit from
    /// splitting, move latency would hurt).
    #[test]
    fn serial_chain_stays_together() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let mut x = b.iconst(1);
        for _ in 0..10 {
            x = b.add(x, x);
        }
        b.ret(Some(x));
        let (profile, access) = analyze(&p);
        let machine = Machine::paper_2cluster(10);
        let homes = EntityMap::with_default(0, None);
        let (placement, _) =
            rhop_partition(&p, &access, &profile, &machine, &homes, &RhopConfig::default())
                .expect("rhop");
        let counts = placement.ops_per_cluster(2);
        assert!(counts[0] == 0 || counts[1] == 0, "serial chain split needlessly: {counts:?}");
    }

    /// Memory operations follow their object's home cluster.
    #[test]
    fn locked_memops_respect_object_homes() {
        let mut p = Program::new("t");
        let t1 = p.add_object(DataObject::global("t1", 64));
        let mut b = FunctionBuilder::entry(&mut p);
        let base = b.addrof(t1);
        let v = b.load(MemWidth::B4, base);
        let w = b.add(v, v);
        b.store(MemWidth::B4, base, w);
        b.ret(None);
        let (profile, access) = analyze(&p);
        let machine = Machine::paper_2cluster(5);
        let mut homes: EntityMap<ObjectId, Option<ClusterId>> = EntityMap::with_default(1, None);
        homes[t1] = Some(ClusterId::new(1));
        let (placement, _) =
            rhop_partition(&p, &access, &profile, &machine, &homes, &RhopConfig::default())
                .expect("rhop");
        let func = p.entry_function();
        for (oid, op) in func.ops.iter() {
            if op.opcode.is_memory() {
                assert_eq!(
                    placement.cluster_of(p.entry, oid),
                    ClusterId::new(1),
                    "{oid} must sit with its object"
                );
            }
        }
    }

    /// The partitioner is deterministic: same seed, same placement.
    #[test]
    fn rhop_is_deterministic() {
        let mut p = Program::new("t");
        let t1 = p.add_object(DataObject::global("t1", 64));
        let t2 = p.add_object(DataObject::global("t2", 64));
        let mut b = FunctionBuilder::entry(&mut p);
        for obj in [t1, t2] {
            let base = b.addrof(obj);
            let v = b.load(MemWidth::B4, base);
            let w = b.mul(v, v);
            b.store(MemWidth::B4, base, w);
        }
        b.ret(None);
        let (profile, access) = analyze(&p);
        let machine = Machine::paper_2cluster(5);
        let homes = EntityMap::with_default(2, None);
        let (a, _) =
            rhop_partition(&p, &access, &profile, &machine, &homes, &RhopConfig::default())
                .expect("rhop");
        let (b2, _) =
            rhop_partition(&p, &access, &profile, &machine, &homes, &RhopConfig::default())
                .expect("rhop");
        assert_eq!(a.op_cluster, b2.op_cluster);
    }

    /// Worker count never changes the result: placements and statistics
    /// from `jobs = 1` and `jobs = 8` are bit-identical, and pruning
    /// (`incremental`) changes only how probes are answered, not the
    /// placement, the accepted moves or the budgeted call count.
    #[test]
    fn jobs_and_pruning_do_not_change_results() {
        let mut p = Program::new("t");
        let t1 = p.add_object(DataObject::global("t1", 64));
        let mut b = FunctionBuilder::entry(&mut p);
        let base = b.addrof(t1);
        let v = b.load(MemWidth::B4, base);
        let mut acc = v;
        for i in 0..6 {
            let k = b.iconst(i);
            acc = b.add(acc, k);
        }
        b.store(MemWidth::B4, base, acc);
        b.ret(None);
        // A second function so the fan-out actually has two tasks.
        let mut b2 = FunctionBuilder::new_function(&mut p, "aux");
        let mut x = b2.iconst(3);
        for _ in 0..5 {
            x = b2.mul(x, x);
        }
        b2.ret(Some(x));
        let (profile, access) = analyze(&p);
        let machine = Machine::paper_2cluster(5);
        let mut homes: EntityMap<ObjectId, Option<ClusterId>> = EntityMap::with_default(1, None);
        homes[t1] = Some(ClusterId::new(1));
        let seq = RhopConfig { jobs: 1, ..RhopConfig::default() };
        let par = RhopConfig { jobs: 8, ..RhopConfig::default() };
        let full = RhopConfig { incremental: false, ..RhopConfig::default() };
        let (pl_seq, st_seq) =
            rhop_partition(&p, &access, &profile, &machine, &homes, &seq).expect("rhop");
        let (pl_par, st_par) =
            rhop_partition(&p, &access, &profile, &machine, &homes, &par).expect("rhop");
        let (pl_full, st_full) =
            rhop_partition(&p, &access, &profile, &machine, &homes, &full).expect("rhop");
        assert_eq!(pl_seq.op_cluster, pl_par.op_cluster);
        assert_eq!(st_seq, st_par);
        assert_eq!(pl_seq.op_cluster, pl_full.op_cluster);
        assert_eq!(st_seq.estimator_calls, st_full.estimator_calls);
        assert_eq!(st_seq.moves_accepted, st_full.moves_accepted);
        assert!(st_seq.pruned_evals > 0, "pruning should answer some probes: {st_seq:?}");
        assert_eq!(
            st_seq.pruned_lock + st_seq.pruned_bound,
            st_seq.pruned_evals,
            "the prune-reason split must cover every pruned probe"
        );
        assert_eq!(st_full.pruned_evals, 0);
        assert_eq!(
            st_seq.full_evals + st_seq.pruned_evals,
            st_full.full_evals,
            "every probe is answered exactly once either way"
        );
    }

    /// Loop-carried registers (multi-def) are pre-merged: both defining
    /// operations receive the same cluster straight from RHOP (not just
    /// after normalization).
    #[test]
    fn def_groups_share_a_cluster() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let i = b.iconst(0);
        let n = b.iconst(64);
        let head = b.block("head");
        let body = b.block("body");
        let exit = b.block("exit");
        b.jump(head);
        b.switch_to(head);
        let c = b.icmp(mcpart_ir::Cmp::Lt, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        let one = b.iconst(1);
        let ni = b.add(i, one);
        b.mov_to(i, ni);
        b.jump(head);
        b.switch_to(exit);
        b.ret(Some(i));
        let (profile, access) = analyze(&p);
        let machine = Machine::paper_2cluster(5);
        let homes = EntityMap::with_default(0, None);
        let (placement, _) =
            rhop_partition(&p, &access, &profile, &machine, &homes, &RhopConfig::default())
                .expect("rhop");
        // Defs of i: the entry iconst and the body mov — note they sit
        // in different regions (per-block), so only normalization can
        // unify across regions; within the body region the mov and its
        // feeding add share a def-group with... check the in-region
        // invariant: every multi-def register defined twice within one
        // region is co-located. Here each region has one def, so assert
        // the pipeline-level property instead via normalization.
        let npl = mcpart_sched::normalize_placement(&p, &placement, &access, &machine, &profile);
        let f = p.entry;
        let entry_iconst = p.functions[f].blocks[p.functions[f].entry].ops[0];
        let body_mov = p.functions[f].blocks[body].ops[2];
        assert_eq!(npl.cluster_of(f, entry_iconst), npl.cluster_of(f, body_mov));
    }

    /// Conflicting locks (two memops in one def-group with different
    /// homes) degrade gracefully: the eventual placement still runs.
    #[test]
    fn region_scope_variants_produce_valid_placements() {
        let mut p = Program::new("t");
        let t1 = p.add_object(DataObject::global("t1", 64));
        let mut b = FunctionBuilder::entry(&mut p);
        let lhs = b.addrof(t1);
        let v = b.load(MemWidth::B4, lhs);
        let w = b.add(v, v);
        b.store(MemWidth::B4, lhs, w);
        b.ret(None);
        let (profile, access) = analyze(&p);
        let machine = Machine::paper_2cluster(5);
        let mut homes: EntityMap<ObjectId, Option<ClusterId>> = EntityMap::with_default(1, None);
        homes[t1] = Some(ClusterId::new(1));
        for scope in [RegionScope::PerBlock, RegionScope::LoopNests, RegionScope::WholeFunction] {
            let cfg = RhopConfig { region_scope: scope, ..RhopConfig::default() };
            let (placement, _) =
                rhop_partition(&p, &access, &profile, &machine, &homes, &cfg).expect("rhop");
            for (oid, op) in p.entry_function().ops.iter() {
                if op.opcode.is_memory() {
                    assert_eq!(
                        placement.cluster_of(p.entry, oid),
                        ClusterId::new(1),
                        "{scope:?}: memop must sit at its home"
                    );
                }
            }
        }
    }

    /// End-to-end sanity: RHOP placement normalizes, moves insert, the
    /// result schedules, and semantics are preserved.
    #[test]
    fn rhop_pipeline_end_to_end() {
        let mut p = Program::new("t");
        let t1 = p.add_object(DataObject::global("t1", 64));
        let t2 = p.add_object(DataObject::global("t2", 64));
        let mut b = FunctionBuilder::entry(&mut p);
        for (i, obj) in [t1, t2].into_iter().enumerate() {
            let base = b.addrof(obj);
            let k = b.iconst(i as i64 + 3);
            let v = b.load(MemWidth::B4, base);
            let w = b.add(v, k);
            let w2 = b.mul(w, k);
            b.store(MemWidth::B4, base, w2);
        }
        b.ret(None);
        mcpart_ir::verify_program(&p).unwrap();
        let (profile, access) = analyze(&p);
        let machine = Machine::paper_2cluster(5);
        let mut homes: EntityMap<ObjectId, Option<ClusterId>> = EntityMap::with_default(2, None);
        homes[t1] = Some(ClusterId::new(0));
        homes[t2] = Some(ClusterId::new(1));
        let (placement, _) =
            rhop_partition(&p, &access, &profile, &machine, &homes, &RhopConfig::default())
                .expect("rhop");
        let normalized = normalize_placement(&p, &placement, &access, &machine, &profile);
        let (moved, moved_placement, _) = insert_moves(&p, &normalized, &machine);
        mcpart_ir::verify_program(&moved).unwrap();
        assert!(mcpart_sim::semantically_equivalent(
            &p,
            &moved,
            &[],
            mcpart_sim::ExecConfig::default()
        )
        .unwrap());
        let pts = PointsTo::compute(&moved);
        let moved_access = AccessInfo::compute(&moved, &pts, &Profile::uniform(&moved, 100));
        let report = evaluate(
            &moved,
            &moved_placement,
            &machine,
            &Profile::uniform(&moved, 100),
            &moved_access,
        );
        assert!(report.total_cycles > 0);
    }

    /// A starved estimator budget is a typed error, never a hang, and a
    /// generous one changes nothing. The budget's exhaustion point is
    /// deterministic even with parallel workers.
    #[test]
    fn estimator_budget_is_enforced() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let mut chains: Vec<_> = (0..4).map(|i| b.iconst(i)).collect();
        for _ in 0..8 {
            for c in chains.iter_mut() {
                *c = b.add(*c, *c);
            }
        }
        b.ret(Some(chains[0]));
        let (profile, access) = analyze(&p);
        let machine = Machine::paper_2cluster(1);
        let homes = EntityMap::with_default(0, None);
        for jobs in [1, 4] {
            let starved =
                RhopConfig { max_estimator_calls: Some(2), jobs, ..RhopConfig::default() };
            let e = rhop_partition(&p, &access, &profile, &machine, &homes, &starved).unwrap_err();
            assert!(matches!(e, RhopError::EstimatorBudgetExceeded { limit: 2 }), "{e}");
        }
        let generous = RhopConfig { max_estimator_calls: Some(1_000_000), ..RhopConfig::default() };
        let (a, stats) =
            rhop_partition(&p, &access, &profile, &machine, &homes, &generous).expect("rhop");
        let (b2, _) =
            rhop_partition(&p, &access, &profile, &machine, &homes, &RhopConfig::default())
                .expect("rhop");
        assert_eq!(a.op_cluster, b2.op_cluster);
        assert!(stats.estimator_calls > 2);
    }
}
