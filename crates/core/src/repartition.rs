//! Incremental re-partitioning: the dirty-cone computation over a
//! checkpoint [`Manifest`].
//!
//! A production service sees *edits*, not fresh programs. Because RHOP
//! places each function from a pure set of inputs — the function's own
//! IR, the objects its access sites may touch, the GDP homes of those
//! objects, the machine, and a seed derived from the function *index* —
//! a function whose inputs are unchanged since a baseline run must
//! produce a byte-identical result, and can therefore *replay* the
//! baseline's recorded output instead of re-running the partitioner.
//!
//! ## Dirty rules
//!
//! A function is **dirty** (must re-run) iff any of:
//!
//! 1. its own content hash changed — the hash covers the textual IR
//!    *and* the object names its memory ops may touch, so a points-to
//!    change caused by an edit elsewhere still dirties it;
//! 2. an object group it accesses changed content or home: the group's
//!    content hash is absent from the baseline, or the baseline home
//!    differs from the home the fresh GDP pass assigns (GDP itself is
//!    always re-run — it is the cheap global pass);
//! 3. it is within the merge radius GDP uses of a dirty function: when
//!    `merge_dependent_ops` is on, dirt propagates one call-graph hop
//!    (callers and callees).
//!
//! Rule 3 is conservative padding, not a correctness requirement —
//! byte-identity already follows from RHOP's per-function purity. The
//! hard contract (pinned by `tests/incremental_fidelity.rs`) is that
//! an incremental run's placements, pinned trace and stdout are
//! byte-identical to a from-scratch run at every `--jobs` count.

use crate::checkpoint::{fingerprint, Manifest, ManifestFunc};
use crate::gdp::DataPartition;
use crate::groups::ObjectGroups;
use crate::rhop::{FuncPartitionOutcome, ReuseEntry, RhopStats};
use mcpart_analysis::{AccessInfo, AccessSite, CallGraph};
use mcpart_ir::{EntityId, FuncId, OpId, Program};
use mcpart_sched::Placement;
use std::collections::HashMap;

/// Dirty-cone statistics of one incremental run, surfaced as the
/// `repartition/{dirty_funcs,replayed_funcs,cone_frac_x1000}` counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RepartitionStats {
    /// Functions that re-ran the partitioner (the dirty cone).
    pub dirty_funcs: usize,
    /// Functions replayed byte-identically from the baseline manifest.
    pub replayed_funcs: usize,
    /// Total functions in the program.
    pub total_funcs: usize,
}

impl RepartitionStats {
    /// Dirty-cone fraction in permille (`1000` = full recompute).
    pub fn cone_frac_x1000(&self) -> u64 {
        if self.total_funcs == 0 {
            return 1000;
        }
        (self.dirty_funcs as u64 * 1000).div_ceil(self.total_funcs as u64)
    }

    /// The stats of a run with no usable baseline: everything dirty.
    pub fn all_dirty(total_funcs: usize) -> RepartitionStats {
        RepartitionStats { dirty_funcs: total_funcs, replayed_funcs: 0, total_funcs }
    }
}

/// Content hash of one function: FNV-1a of its textual IR folded with
/// the names of the objects each of its access sites may touch, in op
/// order (object sets are `BTreeSet`s, so the fold is deterministic).
pub fn function_content_hash(program: &Program, access: &AccessInfo, fid: FuncId) -> u64 {
    let func = &program.functions[fid];
    let mut text = mcpart_ir::function_to_string(func);
    for i in 0..func.num_ops() {
        let site = AccessSite { func: fid, op: OpId::new(i) };
        if let Some(objs) = access.site_objects.get(&site) {
            for &obj in objs {
                text.push('\0');
                text.push_str(&program.objects[obj].name);
            }
        }
    }
    fingerprint(text.as_bytes())
}

/// Content hash of one object group: FNV-1a over the sorted
/// `name:size` entries of its members, so the hash is stable under
/// object-id renumbering but changes when membership or sizes do.
pub fn group_content_hash(program: &Program, groups: &ObjectGroups, group: usize) -> u64 {
    let mut entries: Vec<String> = groups.groups[group]
        .iter()
        .map(|&o| format!("{}:{}", program.objects[o].name, program.objects[o].size))
        .collect();
    entries.sort_unstable();
    let mut text = String::new();
    for e in &entries {
        text.push_str(e);
        text.push('\n');
    }
    fingerprint(text.as_bytes())
}

/// Sorted, deduplicated content hashes of the groups `fid` accesses.
fn accessed_group_hashes(
    program: &Program,
    access: &AccessInfo,
    groups: &ObjectGroups,
    group_hashes: &[u64],
    fid: FuncId,
) -> Vec<u64> {
    let func = &program.functions[fid];
    let mut out: Vec<u64> = Vec::new();
    for i in 0..func.num_ops() {
        let site = AccessSite { func: fid, op: OpId::new(i) };
        if let Some(objs) = access.site_objects.get(&site) {
            for &obj in objs {
                out.push(group_hashes[groups.group_of[obj]]);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Content hash of every group (dead groups included, so indexing by
/// `group_of` is always in bounds).
fn all_group_hashes(program: &Program, groups: &ObjectGroups) -> Vec<u64> {
    (0..groups.len()).map(|g| group_content_hash(program, groups, g)).collect()
}

/// Builds the manifest of a finished GDP→RHOP run: per-function and
/// per-group content hashes, the pre-normalization op clusters, and
/// the per-function RHOP stats a clean function replays from. The
/// `unit` field is left empty; [`crate::checkpoint::run_unit_full`]
/// fills it in.
pub fn build_manifest(
    program: &Program,
    access: &AccessInfo,
    groups: &ObjectGroups,
    dp: &DataPartition,
    placement: &Placement,
    outcomes: &[Option<FuncPartitionOutcome>],
) -> Manifest {
    let group_hashes = all_group_hashes(program, groups);
    let mut funcs = Vec::with_capacity(program.functions.len());
    for (i, fid) in program.functions.keys().enumerate() {
        let (stats, retries) = match outcomes.get(i).and_then(Option::as_ref) {
            Some(o) => (
                [
                    o.stats.regions as u64,
                    o.stats.estimator_calls,
                    o.stats.moves_accepted,
                    o.stats.full_evals,
                    o.stats.pruned_evals,
                    o.stats.pruned_lock,
                    o.stats.pruned_bound,
                ],
                o.retries,
            ),
            // Quarantined: the fallback placement is not a pure
            // function of this function's inputs, so never replayable.
            None => ([0; 7], u64::MAX),
        };
        let op_cluster = if retries == 0 {
            placement.op_cluster[fid].values().map(|c| c.index() as u32).collect()
        } else {
            Vec::new()
        };
        funcs.push(ManifestFunc {
            name: program.functions[fid].name.clone(),
            hash: function_content_hash(program, access, fid),
            groups: accessed_group_hashes(program, access, groups, &group_hashes, fid),
            op_cluster,
            stats,
            retries,
        });
    }
    let mut group_entries: Vec<(u64, i64)> = groups
        .live_groups()
        .into_iter()
        .map(|g| (group_hashes[g], dp.group_cluster[g].index() as i64))
        .collect();
    group_entries.sort_unstable();
    group_entries.dedup();
    Manifest { unit: String::new(), funcs, groups: group_entries }
}

/// Computes the dirty cone and the per-function replay table for an
/// incremental run: `reuse[i]` is `Some` iff function `i` is clean and
/// the baseline carries a replayable result for it. `dp` is the home
/// assignment of the *fresh* GDP pass on the edited program.
pub fn compute_reuse(
    program: &Program,
    access: &AccessInfo,
    groups: &ObjectGroups,
    dp: &DataPartition,
    merge_radius: bool,
    baseline: &Manifest,
) -> (Vec<Option<ReuseEntry>>, RepartitionStats) {
    let n = program.functions.len();
    let group_hashes = all_group_hashes(program, groups);
    // Baseline group home by content hash; a (pathological) hash
    // collision with conflicting homes poisons the entry so every
    // function touching it goes dirty.
    let mut baseline_home: HashMap<u64, i64> = HashMap::new();
    for &(hash, home) in &baseline.groups {
        match baseline_home.entry(hash) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                if *e.get() != home {
                    e.insert(i64::MIN);
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(home);
            }
        }
    }
    let mut dirty = vec![false; n];
    for (i, fid) in program.functions.keys().enumerate() {
        let base = baseline.funcs.get(i);
        // Rule 1: identity is positional (the per-function RNG seed
        // derives from the index), so both name and hash must match
        // the entry at the same index.
        let same = base.is_some_and(|b| {
            b.name == program.functions[fid].name
                && b.hash == function_content_hash(program, access, fid)
        });
        if !same {
            dirty[i] = true;
            continue;
        }
        // Rule 2: every accessed group must exist in the baseline with
        // the same home the fresh GDP pass assigns.
        let func = &program.functions[fid];
        'ops: for op in 0..func.num_ops() {
            let site = AccessSite { func: fid, op: OpId::new(op) };
            if let Some(objs) = access.site_objects.get(&site) {
                for &obj in objs {
                    let g = groups.group_of[obj];
                    let home = dp.group_cluster[g].index() as i64;
                    if baseline_home.get(&group_hashes[g]) != Some(&home) {
                        dirty[i] = true;
                        break 'ops;
                    }
                }
            }
        }
    }
    // Rule 3: dirt propagates one call-graph hop (callers + callees)
    // when GDP merges dependent ops across that radius.
    if merge_radius && dirty.iter().any(|&d| d) {
        let cg = CallGraph::compute(program);
        let seeds: Vec<FuncId> = program
            .functions
            .keys()
            .enumerate()
            .filter(|&(i, _)| dirty[i])
            .map(|(_, fid)| fid)
            .collect();
        for fid in seeds {
            for &neighbor in cg.callees[fid].iter().chain(&cg.callers[fid]) {
                dirty[neighbor.index()] = true;
            }
        }
    }
    let mut reuse: Vec<Option<ReuseEntry>> = Vec::with_capacity(n);
    for (i, fid) in program.functions.keys().enumerate() {
        let entry = (!dirty[i])
            .then(|| baseline.funcs.get(i))
            .flatten()
            .filter(|b| b.replayable())
            .filter(|b| b.op_cluster.len() == program.functions[fid].num_ops())
            .map(|b| ReuseEntry {
                op_cluster: b.op_cluster.clone(),
                stats: RhopStats {
                    regions: b.stats[0] as usize,
                    estimator_calls: b.stats[1],
                    moves_accepted: b.stats[2],
                    full_evals: b.stats[3],
                    pruned_evals: b.stats[4],
                    pruned_lock: b.stats[5],
                    pruned_bound: b.stats[6],
                    ..RhopStats::default()
                },
            });
        reuse.push(entry);
    }
    let replayed_funcs = reuse.iter().filter(|e| e.is_some()).count();
    let stats =
        RepartitionStats { dirty_funcs: n - replayed_funcs, replayed_funcs, total_funcs: n };
    (reuse, stats)
}
