//! Post-partition placement validation.
//!
//! After data partitioning, normalization and move insertion, a
//! placement must satisfy the machine's execution rules before it can
//! be scheduled or claimed correct. This validator re-checks those
//! rules from scratch, so a buggy or corrupted partitioning stage is
//! caught here — and the pipeline's graceful-degradation ladder can
//! fall back to a simpler method — instead of producing silently wrong
//! schedules or panicking downstream.

use crate::moves::vreg_homes;
use crate::placement::Placement;
use mcpart_analysis::{AccessInfo, AccessSite};
use mcpart_ir::{ClusterId, EntityId, FuncId, OpId, Opcode, Program};
use mcpart_machine::Machine;
use std::error::Error;
use std::fmt;

/// A way in which a placement violates the machine's execution rules.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PlacementError {
    /// The placement's maps do not match the program's shape (wrong
    /// function count, op count, or object count) — typical of a stale
    /// or corrupted placement applied to the wrong program.
    Shape {
        /// What does not line up.
        message: String,
    },
    /// An operation is assigned to a cluster the machine does not have.
    ClusterOutOfRange {
        /// Function containing the operation.
        func: FuncId,
        /// The operation.
        op: OpId,
        /// The out-of-range cluster.
        cluster: ClusterId,
        /// How many clusters the machine has.
        nclusters: usize,
    },
    /// An object's home cluster is out of range for the machine.
    ObjectHomeOutOfRange {
        /// Index of the object in the program's object table.
        object: usize,
        /// The out-of-range home.
        cluster: ClusterId,
        /// How many clusters the machine has.
        nclusters: usize,
    },
    /// Under partitioned memory, a memory operation is placed off the
    /// home cluster of the object it accesses.
    MemopOffHome {
        /// Function containing the operation.
        func: FuncId,
        /// The memory operation.
        op: OpId,
        /// The accessed object's home cluster.
        home: ClusterId,
        /// Where the operation actually sits.
        actual: ClusterId,
    },
    /// A call is placed off cluster 0, violating the calling convention.
    CallOffCluster0 {
        /// Function containing the call.
        func: FuncId,
        /// The call operation.
        op: OpId,
        /// Where the call actually sits.
        actual: ClusterId,
    },
    /// A non-move operation reads a register homed on another cluster —
    /// the cross-cluster def was never bridged by an intercluster move.
    UnreachedOperand {
        /// Function containing the operation.
        func: FuncId,
        /// The consuming operation.
        op: OpId,
        /// Cluster the consumer executes on.
        need: ClusterId,
        /// Cluster the operand value lives on.
        home: ClusterId,
    },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::Shape { message } => {
                write!(f, "placement shape mismatch: {message}")
            }
            PlacementError::ClusterOutOfRange { func, op, cluster, nclusters } => write!(
                f,
                "{func}/{op} assigned to {cluster} but the machine has {nclusters} clusters"
            ),
            PlacementError::ObjectHomeOutOfRange { object, cluster, nclusters } => write!(
                f,
                "object #{object} homed on {cluster} but the machine has {nclusters} clusters"
            ),
            PlacementError::MemopOffHome { func, op, home, actual } => {
                write!(f, "memory op {func}/{op} runs on {actual} but its object lives on {home}")
            }
            PlacementError::CallOffCluster0 { func, op, actual } => {
                write!(f, "call {func}/{op} runs on {actual}, not cluster 0")
            }
            PlacementError::UnreachedOperand { func, op, need, home } => write!(
                f,
                "{func}/{op} on {need} reads a value homed on {home} with no bridging move"
            ),
        }
    }
}

impl Error for PlacementError {}

/// Checks that `placement` is executable for `program` on `machine`:
/// maps match the program's shape, every cluster index is in range,
/// every call sits on cluster 0, under partitioned memory every memory
/// operation sits on its object's home cluster, and every operand of a
/// non-move operation is homed on the consuming operation's cluster
/// (i.e. every cross-cluster def is reached through an inserted move).
///
/// Intended to run on the *post-move-insertion* program/placement pair,
/// where all of these must hold simultaneously.
///
/// # Errors
///
/// Returns the first violated rule.
pub fn validate_placement(
    program: &Program,
    placement: &Placement,
    access: &AccessInfo,
    machine: &Machine,
) -> Result<(), PlacementError> {
    let nclusters = machine.num_clusters();
    if placement.op_cluster.len() != program.functions.len() {
        return Err(PlacementError::Shape {
            message: format!(
                "placement covers {} functions, program has {}",
                placement.op_cluster.len(),
                program.functions.len()
            ),
        });
    }
    if placement.object_home.len() != program.objects.len() {
        return Err(PlacementError::Shape {
            message: format!(
                "placement homes {} objects, program has {}",
                placement.object_home.len(),
                program.objects.len()
            ),
        });
    }
    for (obj, home) in placement.object_home.iter() {
        if let Some(c) = home {
            if c.index() >= nclusters {
                return Err(PlacementError::ObjectHomeOutOfRange {
                    object: obj.index(),
                    cluster: *c,
                    nclusters,
                });
            }
        }
    }
    for (fid, f) in program.functions.iter() {
        if placement.op_cluster[fid].len() != f.ops.len() {
            return Err(PlacementError::Shape {
                message: format!(
                    "placement covers {} ops in {fid}, function has {}",
                    placement.op_cluster[fid].len(),
                    f.ops.len()
                ),
            });
        }
        let homes = vreg_homes(program, fid, placement);
        for (oid, op) in f.ops.iter() {
            let cluster = placement.cluster_of(fid, oid);
            if cluster.index() >= nclusters {
                return Err(PlacementError::ClusterOutOfRange {
                    func: fid,
                    op: oid,
                    cluster,
                    nclusters,
                });
            }
            match op.opcode {
                Opcode::Call(_) if cluster.index() != 0 => {
                    return Err(PlacementError::CallOffCluster0 {
                        func: fid,
                        op: oid,
                        actual: cluster,
                    });
                }
                Opcode::Call(_) => {}
                _ if op.opcode.is_memory() && machine.memory.is_partitioned() => {
                    let site = AccessSite { func: fid, op: oid };
                    if let Some(objs) = access.site_objects.get(&site) {
                        if let Some(home) = objs.iter().find_map(|&o| placement.object_home[o]) {
                            if home != cluster {
                                return Err(PlacementError::MemopOffHome {
                                    func: fid,
                                    op: oid,
                                    home,
                                    actual: cluster,
                                });
                            }
                        }
                    }
                }
                _ => {}
            }
            // Moves are the transfer mechanism: they may read remotely.
            if !matches!(op.opcode, Opcode::Move) && nclusters > 1 {
                for &s in &op.srcs {
                    if homes[s] != cluster {
                        return Err(PlacementError::UnreachedOperand {
                            func: fid,
                            op: oid,
                            need: cluster,
                            home: homes[s],
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moves::insert_moves;
    use mcpart_analysis::PointsTo;
    use mcpart_ir::{DataObject, FunctionBuilder, MemWidth, Profile};

    fn setup() -> (Program, AccessInfo, Machine) {
        let mut p = Program::new("t");
        let obj = p.add_object(DataObject::global("g", 16));
        let mut b = FunctionBuilder::entry(&mut p);
        let a = b.addrof(obj);
        let v = b.load(MemWidth::B4, a);
        let w = b.add(v, v);
        b.ret(Some(w));
        let pts = PointsTo::compute(&p);
        let access = AccessInfo::compute(&p, &pts, &Profile::uniform(&p, 1));
        (p, access, Machine::paper_2cluster(5))
    }

    #[test]
    fn all_on_cluster0_is_valid() {
        let (p, access, machine) = setup();
        let pl = Placement::all_on_cluster0(&p);
        validate_placement(&p, &pl, &access, &machine).expect("valid");
    }

    #[test]
    fn unbridged_cross_cluster_read_rejected() {
        let (p, access, machine) = setup();
        let mut pl = Placement::all_on_cluster0(&p);
        let f = p.entry;
        let func = p.entry_function();
        let add = func.blocks[func.entry].ops[2];
        pl.set_cluster(f, add, ClusterId::new(1));
        let e = validate_placement(&p, &pl, &access, &machine).unwrap_err();
        assert!(matches!(e, PlacementError::UnreachedOperand { .. }), "{e}");
        // After move insertion the same split is valid.
        let (np, npl, _) = insert_moves(&p, &pl, &machine);
        let pts = PointsTo::compute(&np);
        let access2 = AccessInfo::compute(&np, &pts, &Profile::uniform(&np, 1));
        validate_placement(&np, &npl, &access2, &machine).expect("moves bridge the read");
    }

    #[test]
    fn memop_off_home_rejected() {
        let (p, access, machine) = setup();
        let mut pl = Placement::all_on_cluster0(&p);
        for home in pl.object_home.values_mut() {
            *home = Some(ClusterId::new(1));
        }
        let e = validate_placement(&p, &pl, &access, &machine).unwrap_err();
        assert!(matches!(e, PlacementError::MemopOffHome { .. }), "{e}");
    }

    #[test]
    fn out_of_range_cluster_rejected() {
        let (p, access, machine) = setup();
        let mut pl = Placement::all_on_cluster0(&p);
        let f = p.entry;
        let func = p.entry_function();
        let op0 = func.blocks[func.entry].ops[0];
        pl.set_cluster(f, op0, ClusterId::new(7));
        let e = validate_placement(&p, &pl, &access, &machine).unwrap_err();
        assert!(matches!(e, PlacementError::ClusterOutOfRange { .. }), "{e}");
    }

    #[test]
    fn out_of_range_object_home_rejected() {
        let (p, access, machine) = setup();
        let mut pl = Placement::all_on_cluster0(&p);
        for home in pl.object_home.values_mut() {
            *home = Some(ClusterId::new(9));
        }
        let e = validate_placement(&p, &pl, &access, &machine).unwrap_err();
        assert!(matches!(e, PlacementError::ObjectHomeOutOfRange { .. }), "{e}");
    }

    #[test]
    fn shape_mismatch_rejected() {
        let (p, access, machine) = setup();
        let other = Program::new("other");
        let pl = Placement::all_on_cluster0(&other);
        let e = validate_placement(&p, &pl, &access, &machine).unwrap_err();
        assert!(matches!(e, PlacementError::Shape { .. }), "{e}");
    }
}
