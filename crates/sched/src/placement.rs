//! Cluster placements: where operations execute and where data objects
//! live.

use mcpart_ir::{ClusterId, EntityMap, FuncId, ObjectId, OpId, Program};

/// A complete placement decision for a program on a multicluster
//  machine.
///
/// * every operation is assigned the cluster whose function units
///   execute it;
/// * every data object optionally has a *home* cluster whose memory
///   holds it (`None` under the unified-memory model, where objects are
///   reachable from every cluster).
///
/// Calling conventions are normalized: function parameters materialize
/// on cluster 0 and `call` operations are pinned to cluster 0 by
/// [`crate::normalize_placement`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Placement {
    /// Per-function operation-to-cluster map.
    pub op_cluster: EntityMap<FuncId, EntityMap<OpId, ClusterId>>,
    /// Home memory of each data object (`None` = unified memory).
    pub object_home: EntityMap<ObjectId, Option<ClusterId>>,
}

impl Placement {
    /// A placement putting every operation on cluster 0 with unified
    /// (homeless) objects.
    pub fn all_on_cluster0(program: &Program) -> Self {
        Placement {
            op_cluster: program
                .functions
                .values()
                .map(|f| EntityMap::with_default(f.num_ops(), ClusterId::new(0)))
                .collect(),
            object_home: EntityMap::with_default(program.objects.len(), None),
        }
    }

    /// The cluster of an operation.
    pub fn cluster_of(&self, func: FuncId, op: OpId) -> ClusterId {
        self.op_cluster[func][op]
    }

    /// Sets the cluster of an operation.
    pub fn set_cluster(&mut self, func: FuncId, op: OpId, cluster: ClusterId) {
        self.op_cluster[func][op] = cluster;
    }

    /// Returns `true` when any object has a home (partitioned-memory
    /// mode).
    pub fn has_object_homes(&self) -> bool {
        self.object_home.values().any(Option::is_some)
    }

    /// Counts operations per cluster across the whole program.
    pub fn ops_per_cluster(&self, num_clusters: usize) -> Vec<usize> {
        let mut counts = vec![0usize; num_clusters];
        for per_func in self.op_cluster.values() {
            for c in per_func.values() {
                counts[c.index()] += 1;
            }
        }
        counts
    }

    /// Total object bytes homed on each cluster.
    pub fn bytes_per_cluster(&self, program: &Program, num_clusters: usize) -> Vec<u64> {
        let mut bytes = vec![0u64; num_clusters];
        for (obj, home) in self.object_home.iter() {
            if let Some(c) = home {
                bytes[c.index()] += program.objects[obj].size;
            }
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpart_ir::{DataObject, FunctionBuilder};

    #[test]
    fn default_placement_shape() {
        let mut p = Program::new("t");
        let obj = p.add_object(DataObject::global("g", 10));
        let mut b = FunctionBuilder::entry(&mut p);
        let v = b.iconst(1);
        b.ret(Some(v));
        let pl = Placement::all_on_cluster0(&p);
        assert_eq!(pl.ops_per_cluster(2), vec![2, 0]);
        assert!(!pl.has_object_homes());
        assert_eq!(pl.object_home[obj], None);
        assert_eq!(pl.bytes_per_cluster(&p, 2), vec![0, 0]);
    }

    #[test]
    fn bytes_per_cluster_sums_homes() {
        let mut p = Program::new("t");
        let a = p.add_object(DataObject::global("a", 100));
        let b_obj = p.add_object(DataObject::global("b", 28));
        let mut b = FunctionBuilder::entry(&mut p);
        b.ret(None);
        let mut pl = Placement::all_on_cluster0(&p);
        pl.object_home[a] = Some(ClusterId::new(0));
        pl.object_home[b_obj] = Some(ClusterId::new(1));
        assert_eq!(pl.bytes_per_cluster(&p, 2), vec![100, 28]);
        assert!(pl.has_object_homes());
    }
}
