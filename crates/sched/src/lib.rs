//! # mcpart-sched — clustered-VLIW scheduling and estimation
//!
//! The machine-facing half of the compiler: given a [`Placement`]
//! (operation clusters + data-object homes), this crate
//!
//! 1. normalizes the placement so it is executable
//!    ([`normalize_placement`]: calls pinned to cluster 0, memory
//!    operations relocated to their object's home memory, consistent
//!    multi-definition registers);
//! 2. inserts explicit intercluster `move` operations
//!    ([`insert_moves`]);
//! 3. list-schedules each basic block on the cluster resources
//!    ([`schedule_block`]) with the intercluster network modeled as a
//!    shared, bandwidth-limited resource;
//! 4. aggregates profile-weighted cycles and dynamic intercluster move
//!    counts ([`evaluate`]) — the paper's two evaluation metrics;
//! 5. provides the RHOP schedule-length estimator
//!    ([`RegionEstimator`]) that the computation partitioner uses to
//!    judge candidate assignments without scheduling;
//! 6. optionally modulo-schedules loop kernels
//!    ([`modulo_schedule_block`], [`evaluate_pipelined`]).
//!
//! ```
//! use mcpart_ir::{Program, FunctionBuilder, Profile};
//! use mcpart_machine::Machine;
//! use mcpart_sched::{schedule_block, Placement};
//! use mcpart_analysis::{PointsTo, AccessInfo};
//!
//! let mut program = Program::new("demo");
//! let mut b = FunctionBuilder::entry(&mut program);
//! let x = b.iconst(2);
//! let y = b.mul(x, x);
//! b.ret(Some(y));
//!
//! let machine = Machine::paper_2cluster(5);
//! let profile = Profile::uniform(&program, 1);
//! let pts = PointsTo::compute(&program);
//! let access = AccessInfo::compute(&program, &pts, &profile);
//! let placement = Placement::all_on_cluster0(&program);
//! let entry = program.entry_function().entry;
//! let schedule = schedule_block(&program, program.entry, entry, &placement, &machine, &access);
//! assert!(schedule.length >= 5, "iconst + 3-cycle mul + ret");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod depgraph;
mod estimate;
mod list;
mod modulo;
mod moves;
mod perf;
mod placement;
mod pressure;
mod validate;
mod viz;

pub use depgraph::{Dep, DepGraph, DepKind};
pub use estimate::{EstimateWorkspace, IncrementalEstimator, RegionEstimator, INFEASIBLE};
pub use list::{effective_latency, schedule_block, BlockSchedule};
pub use modulo::{evaluate_pipelined, modulo_schedule_block, ModuloSchedule};
pub use moves::{
    insert_moves, insert_moves_with, intercluster_moves_per_block, is_intercluster_move,
    normalize_placement, vreg_homes, vreg_homes_of, MoveStats, MoveStrategy,
};
pub use perf::{evaluate, PerfReport};
pub use placement::Placement;
pub use pressure::{register_pressure, PressureReport};
pub use validate::{validate_placement, PlacementError};
pub use viz::schedule_to_string;
