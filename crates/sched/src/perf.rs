//! Whole-program performance evaluation: profile-weighted schedule
//! cycles and dynamic intercluster move counts.

use crate::list::{schedule_block, BlockSchedule};
use crate::placement::Placement;
use mcpart_analysis::AccessInfo;
use mcpart_ir::{BlockId, EntityMap, FuncId, Profile, Program};
use mcpart_machine::Machine;

/// Performance of a scheduled program under a profile.
///
/// Cycle counts follow the paper's methodology: partitioned caches with
/// a 100% hit rate, so the execution time of a block is its static
/// schedule length, and total cycles are
/// `Σ_blocks schedule_length × execution_frequency`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PerfReport {
    /// Total dynamic cycles.
    pub total_cycles: u64,
    /// Total dynamic intercluster move operations.
    pub dynamic_moves: u64,
    /// Static intercluster move count.
    pub static_moves: u64,
    /// Dynamic remote memory accesses (coherent-cache model only).
    pub dynamic_remote_accesses: u64,
    /// Dynamic cycles in which no operation issued (schedule bubbles
    /// from dependence latency and transfer waits), profile-weighted.
    pub stall_cycles: u64,
    /// Dynamic cycles spent on the interconnect: each intercluster
    /// move's network latency (hop-scaled under ring/mesh topologies),
    /// profile-weighted. Overlapping transfers each count in full, so
    /// this is occupancy, not elapsed time.
    pub transfer_cycles: u64,
    /// Per-function, per-block schedules (for inspection).
    pub schedules: EntityMap<FuncId, EntityMap<BlockId, BlockSchedule>>,
}

impl PerfReport {
    /// Speedup of this report relative to `baseline` (>1 means this one
    /// is faster).
    pub fn speedup_vs(&self, baseline: &PerfReport) -> f64 {
        baseline.total_cycles as f64 / self.total_cycles.max(1) as f64
    }

    /// The paper's headline metric: performance relative to a baseline,
    /// where 1.0 means parity (computed as `baseline_cycles / cycles`).
    pub fn relative_performance(&self, baseline: &PerfReport) -> f64 {
        self.speedup_vs(baseline)
    }
}

/// Schedules every block of every function under `placement` and
/// aggregates profile-weighted cycles and intercluster move counts.
///
/// The placement must already be normalized and have moves inserted
/// (see [`crate::normalize_placement`] and [`crate::insert_moves`]);
/// this function only schedules and accounts.
pub fn evaluate(
    program: &Program,
    placement: &Placement,
    machine: &Machine,
    profile: &Profile,
    access: &AccessInfo,
) -> PerfReport {
    let mut total_cycles = 0u64;
    let mut dynamic_moves = 0u64;
    let mut static_moves = 0u64;
    let mut dynamic_remote_accesses = 0u64;
    let mut stall_cycles = 0u64;
    let mut transfer_cycles = 0u64;
    let mut schedules: EntityMap<FuncId, EntityMap<BlockId, BlockSchedule>> = EntityMap::new();
    for (fid, func) in program.functions.iter() {
        let mut per_block: EntityMap<BlockId, BlockSchedule> = EntityMap::new();
        for (bid, _) in func.blocks.iter() {
            let schedule = schedule_block(program, fid, bid, placement, machine, access);
            let freq = profile.block_freq(fid, bid);
            total_cycles += schedule.length as u64 * freq;
            dynamic_moves += schedule.intercluster_moves as u64 * freq;
            static_moves += schedule.intercluster_moves as u64;
            dynamic_remote_accesses += schedule.remote_accesses as u64 * freq;
            // Stall cycles: schedule length minus the cycles in which
            // at least one operation issued.
            let mut busy: Vec<u32> = schedule.issue.clone();
            busy.sort_unstable();
            busy.dedup();
            stall_cycles += (schedule.length as u64).saturating_sub(busy.len() as u64) * freq;
            transfer_cycles += schedule.transfer_latency * freq;
            per_block.push(schedule);
        }
        schedules.push(per_block);
    }
    PerfReport {
        total_cycles,
        dynamic_moves,
        static_moves,
        dynamic_remote_accesses,
        stall_cycles,
        transfer_cycles,
        schedules,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpart_analysis::PointsTo;
    use mcpart_ir::{ClusterId, FunctionBuilder};

    #[test]
    fn cycles_weighted_by_frequency() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let body = b.block("body");
        let done = b.block("done");
        let x = b.iconst(10);
        b.jump(body);
        b.switch_to(body);
        let y = b.add(x, x);
        let _z = b.add(y, y);
        b.jump(done);
        b.switch_to(done);
        b.ret(None);
        let pts = PointsTo::compute(&p);
        let mut profile = Profile::uniform(&p, 1);
        profile.funcs[p.entry].block_freq[body] = 100;
        let access = AccessInfo::compute(&p, &pts, &profile);
        let pl = Placement::all_on_cluster0(&p);
        let m = Machine::paper_2cluster(5);
        let report = evaluate(&p, &pl, &m, &profile, &access);
        let body_len = report.schedules[p.entry][body].length as u64;
        assert!(report.total_cycles >= 100 * body_len);
        assert_eq!(report.dynamic_moves, 0);
        assert_eq!(report.transfer_cycles, 0, "no moves, no transfer occupancy");
    }

    #[test]
    fn dynamic_moves_scale_with_frequency() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let x = b.iconst(1);
        let y = b.mov(x);
        let z = b.add(y, y);
        b.ret(Some(z));
        let f = p.entry;
        let func = p.entry_function();
        let entry = func.entry;
        let ops = func.blocks[entry].ops.clone();
        let mut pl = Placement::all_on_cluster0(&p);
        pl.set_cluster(f, ops[1], ClusterId::new(1));
        pl.set_cluster(f, ops[2], ClusterId::new(1));
        let pts = PointsTo::compute(&p);
        let mut profile = Profile::uniform(&p, 7);
        profile.funcs[f].block_freq[entry] = 7;
        let access = AccessInfo::compute(&p, &pts, &profile);
        let m = Machine::paper_2cluster(5);
        let report = evaluate(&p, &pl, &m, &profile, &access);
        assert_eq!(report.static_moves, 1);
        assert_eq!(report.dynamic_moves, 7);
        // One move per iteration at latency 5, frequency 7.
        assert_eq!(report.transfer_cycles, 7 * 5);
        // The move's latency opens bubbles the single block cannot fill.
        assert!(report.stall_cycles > 0, "a cut critical edge must stall");
    }

    #[test]
    fn relative_performance_identity() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let v = b.iconst(1);
        b.ret(Some(v));
        let pts = PointsTo::compute(&p);
        let profile = Profile::uniform(&p, 1);
        let access = AccessInfo::compute(&p, &pts, &profile);
        let pl = Placement::all_on_cluster0(&p);
        let m = Machine::paper_2cluster(5);
        let r = evaluate(&p, &pl, &m, &profile, &access);
        assert!((r.relative_performance(&r) - 1.0).abs() < 1e-12);
    }
}
