//! Register-pressure modeling: spill-traffic penalties when a block
//! needs more simultaneously-live registers on one cluster than its
//! register file holds.
//!
//! Clustering's raison d'être is keeping register files small; with
//! infinite registers the model would never reward the distribution the
//! paper's machines enforce. The approximation here is block-granular:
//! a cluster's demand in a block is the number of registers homed on it
//! that are live into the block or defined in it; each register beyond
//! the capacity costs one spill store + reload (`2 ×` store latency +
//! load latency cycles, on the memory unit — folded into the block
//! length as an additive penalty).

use crate::moves::vreg_homes;
use crate::placement::Placement;
use mcpart_analysis::Liveness;
use mcpart_ir::{BlockId, EntityMap, FuncId, Profile, Program};
use mcpart_machine::Machine;

/// Per-block, per-cluster register demand.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PressureReport {
    /// `demand[func][block][cluster]` = registers homed on the cluster
    /// that are live-in or defined in the block.
    pub demand: EntityMap<FuncId, EntityMap<BlockId, Vec<u32>>>,
    /// Total dynamic spill penalty cycles across the program.
    pub spill_cycles: u64,
}

/// Computes per-block register demand and the profile-weighted spill
/// penalty for `placement` on `machine`.
pub fn register_pressure(
    program: &Program,
    placement: &Placement,
    machine: &Machine,
    profile: &Profile,
) -> PressureReport {
    let nclusters = machine.num_clusters();
    // Spill = store + reload of one register through the local memory.
    let spill_cost = u64::from(machine.latency.store + machine.latency.load);
    let mut demand: EntityMap<FuncId, EntityMap<BlockId, Vec<u32>>> = EntityMap::new();
    let mut spill_cycles = 0u64;
    for (fid, func) in program.functions.iter() {
        let homes = vreg_homes(program, fid, placement);
        let liveness = Liveness::compute(func);
        let mut per_block: EntityMap<BlockId, Vec<u32>> = EntityMap::new();
        for (bid, block) in func.blocks.iter() {
            let mut counts = vec![0u32; nclusters];
            let mut seen = std::collections::HashSet::new();
            for &v in liveness.live_in[bid].iter() {
                if seen.insert(v) {
                    counts[homes[v].index()] += 1;
                }
            }
            for &oid in &block.ops {
                for &d in &func.ops[oid].dsts {
                    if seen.insert(d) {
                        counts[homes[d].index()] += 1;
                    }
                }
            }
            for (c, &n) in counts.iter().enumerate() {
                let capacity = machine.clusters[c].regfile_size;
                if n > capacity {
                    let spills = u64::from(n - capacity);
                    spill_cycles += spills * spill_cost * profile.block_freq(fid, bid);
                }
            }
            per_block.push(counts);
        }
        demand.push(per_block);
    }
    PressureReport { demand, spill_cycles }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpart_ir::{ClusterId, FunctionBuilder};

    fn wide_block_program(n: usize) -> Program {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        // n long-lived values all alive at the end.
        let vals: Vec<_> = (0..n).map(|i| b.iconst(i as i64)).collect();
        let mut acc = vals[0];
        for &v in &vals[1..] {
            acc = b.add(acc, v);
        }
        b.ret(Some(acc));
        p
    }

    #[test]
    fn demand_counts_defined_registers() {
        let p = wide_block_program(8);
        let machine = Machine::paper_2cluster(5);
        let placement = Placement::all_on_cluster0(&p);
        let profile = Profile::uniform(&p, 1);
        let report = register_pressure(&p, &placement, &machine, &profile);
        let entry = p.entry_function().entry;
        let counts = &report.demand[p.entry][entry];
        assert!(counts[0] >= 8, "{counts:?}");
        assert_eq!(counts[1], 0);
        // 64-entry files: no spills.
        assert_eq!(report.spill_cycles, 0);
    }

    #[test]
    fn tiny_regfile_incurs_spills() {
        let p = wide_block_program(24);
        let mut machine = Machine::paper_2cluster(5);
        machine.clusters[0].regfile_size = 8;
        machine.clusters[1].regfile_size = 8;
        let placement = Placement::all_on_cluster0(&p);
        let profile = Profile::uniform(&p, 10);
        let report = register_pressure(&p, &placement, &machine, &profile);
        assert!(report.spill_cycles > 0);
    }

    #[test]
    fn distribution_relieves_pressure() {
        let p = wide_block_program(24);
        let mut machine = Machine::paper_2cluster(5);
        machine.clusters[0].regfile_size = 20;
        machine.clusters[1].regfile_size = 20;
        let profile = Profile::uniform(&p, 10);
        let packed = Placement::all_on_cluster0(&p);
        let packed_report = register_pressure(&p, &packed, &machine, &profile);
        // Spread every second op to cluster 1.
        let mut spread = Placement::all_on_cluster0(&p);
        for (i, oid) in p.entry_function().ops.keys().enumerate() {
            if i % 2 == 1 {
                spread.set_cluster(p.entry, oid, ClusterId::new(1));
            }
        }
        let spread_report = register_pressure(&p, &spread, &machine, &profile);
        assert!(packed_report.spill_cycles > 0);
        assert!(
            spread_report.spill_cycles < packed_report.spill_cycles,
            "spreading registers across files must reduce spills: {} vs {}",
            spread_report.spill_cycles,
            packed_report.spill_cycles
        );
    }
}
