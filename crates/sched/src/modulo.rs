//! Iterative modulo scheduling (software pipelining) for loop-body
//! blocks.
//!
//! The paper's cycle model schedules each loop iteration as an acyclic
//! block; related work it builds on (Sánchez & González, MICRO'00)
//! modulo-schedules loops on fully-distributed clustered VLIWs. This
//! module implements a simplified Rau-style iterative modulo scheduler:
//! given a cluster placement, it finds an initiation interval `II` such
//! that one loop iteration can be issued every `II` cycles on the
//! cluster resources (function units and the intercluster network),
//! honoring both intra-iteration dependences and loop-carried
//! (distance-1) register and memory recurrences.
//!
//! The steady-state cost of a pipelined loop is `II` per iteration
//! instead of the full block length, which [`evaluate_pipelined`]
//! accounts for using the loop structure (drain cost is charged per
//! loop entry).
//!
//! Limitations: register lifetimes longer than `II` would need modulo
//! variable expansion or rotating registers on real hardware; the
//! cycle model here does not charge for that, so pipelined numbers are
//! mildly optimistic for kernels with long-lived values (the same
//! simplification most II-level models make).

use crate::depgraph::{DepGraph, DepKind};
use crate::list::{effective_latency, schedule_block};
use crate::moves::{is_intercluster_move, vreg_homes};
use crate::perf::PerfReport;
use crate::placement::Placement;
use mcpart_analysis::{AccessInfo, LoopForest};
use mcpart_ir::{BlockId, FuncId, OpId, Profile, Program};
use mcpart_machine::Machine;
use std::collections::HashMap;

/// A modulo schedule for one loop-body block.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ModuloSchedule {
    /// Initiation interval: cycles between successive iterations in
    /// steady state.
    pub ii: u32,
    /// Issue cycle of each operation within its iteration (same order
    /// as the block's dependence-graph nodes).
    pub issue: Vec<u32>,
    /// Flat (non-pipelined) schedule length, used for drain accounting.
    pub flat_len: u32,
}

/// A loop-carried dependence edge: `to` of the *next* iteration must
/// issue at least `latency` cycles after `from` of this iteration,
/// i.e. `t(to) + II ≥ t(from) + latency`.
#[derive(Clone, Copy, Debug)]
struct CarriedDep {
    from: u32,
    to: u32,
    latency: u32,
}

/// Collects distance-1 loop-carried dependences of a block: register
/// values defined in the block and consumed at or before their
/// definition point (live around the back edge), plus conservative
/// memory recurrences between conflicting accesses.
fn carried_deps(
    program: &Program,
    func: FuncId,
    block: BlockId,
    dg: &DepGraph,
    op_latency: &dyn Fn(OpId) -> u32,
) -> Vec<CarriedDep> {
    let f = &program.functions[func];
    let ops = &f.blocks[block].ops;
    let mut deps = Vec::new();
    // Register recurrences: def at position i feeds a use at position
    // j <= i in the next iteration.
    let mut last_def: HashMap<mcpart_ir::VReg, usize> = HashMap::new();
    for (i, &oid) in ops.iter().enumerate() {
        for &d in &f.ops[oid].dsts {
            last_def.insert(d, i);
        }
    }
    for (j, &oid) in ops.iter().enumerate() {
        for &s in &f.ops[oid].srcs {
            if let Some(&i) = last_def.get(&s) {
                if j <= i {
                    deps.push(CarriedDep {
                        from: i as u32,
                        to: j as u32,
                        latency: op_latency(ops[i]),
                    });
                }
            }
        }
    }
    // Memory recurrences: any intra-iteration ordering edge (x before y)
    // also constrains y of this iteration against x of the next.
    for d in &dg.deps {
        if matches!(
            d.kind,
            DepKind::MemFlow | DepKind::MemAnti | DepKind::MemOutput | DepKind::Side
        ) {
            deps.push(CarriedDep { from: d.to, to: d.from, latency: d.latency });
        }
    }
    deps
}

/// Attempts to modulo-schedule `block` at the given placement.
///
/// Returns `None` when the block cannot be pipelined profitably (the
/// search reaches the flat schedule length without finding a legal
/// kernel, or the block is trivial).
pub fn modulo_schedule_block(
    program: &Program,
    func: FuncId,
    block: BlockId,
    placement: &Placement,
    machine: &Machine,
    access: &AccessInfo,
) -> Option<ModuloSchedule> {
    let homes = vreg_homes(program, func, placement);
    let lat = |op: OpId| effective_latency(program, func, op, placement, &homes, machine);
    let dg = DepGraph::for_block(program, func, block, access, &lat);
    let n = dg.len();
    if n < 4 {
        return None;
    }
    let f = &program.functions[func];
    let flat = schedule_block(program, func, block, placement, machine, access);
    let flat_len = flat.length;
    let carried = carried_deps(program, func, block, &dg, &lat);

    // Resource MII: per cluster/kind and the network.
    let nclusters = machine.num_clusters();
    let mut counts = vec![[0u32; 4]; nclusters];
    let mut net = 0u32;
    let is_ic: Vec<bool> =
        (0..n).map(|i| is_intercluster_move(program, func, dg.ops[i], placement, &homes)).collect();
    for (i, &op) in dg.ops.iter().enumerate() {
        if is_ic[i] {
            net += 1;
        } else {
            let c = placement.cluster_of(func, op).index();
            counts[c][f.ops[op].opcode.fu_kind().index()] += 1;
        }
    }
    let mut res_mii = net.div_ceil(machine.interconnect.moves_per_cycle.max(1));
    for (c, kinds) in counts.iter().enumerate() {
        for (k, &count) in kinds.iter().enumerate() {
            if count > 0 {
                let units = machine
                    .fu_count(mcpart_ir::ClusterId::new(c), mcpart_ir::FuKind::ALL[k])
                    .max(1) as u32;
                res_mii = res_mii.max(count.div_ceil(units));
            }
        }
    }
    let mut ii = res_mii.max(1);

    // Height priority from the intra-iteration graph.
    let mut height = vec![0u64; n];
    for i in (0..n).rev() {
        height[i] = lat(dg.ops[i]).max(1) as u64;
        for &di in &dg.succs[i] {
            let d = dg.deps[di as usize];
            height[i] = height[i].max(d.latency as u64 + height[d.to as usize]);
        }
    }

    'search: while ii < flat_len {
        // Greedy modulo scheduling in topological (program) order with
        // a bounded number of restarts when a loop-carried constraint
        // is violated.
        let mut issue = vec![0u32; n];
        // (cluster, kind, slot) and network slot usage.
        let mut fu_used: HashMap<(usize, usize, u32), u32> = HashMap::new();
        let mut net_used: HashMap<u32, u32> = HashMap::new();
        for i in 0..n {
            let op = dg.ops[i];
            let mut earliest = 0u32;
            for &di in &dg.preds[i] {
                let d = dg.deps[di as usize];
                earliest = earliest.max(issue[d.from as usize] + d.latency);
            }
            // Find a slot obeying the modulo reservation table.
            let mut t = earliest;
            let horizon = earliest + ii * 2 + flat_len;
            loop {
                if t > horizon {
                    ii += 1;
                    continue 'search;
                }
                let slot = t % ii;
                let free = if is_ic[i] {
                    net_used.get(&slot).copied().unwrap_or(0) < machine.interconnect.moves_per_cycle
                } else {
                    let c = placement.cluster_of(func, op).index();
                    let k = f.ops[op].opcode.fu_kind().index();
                    let units =
                        machine.fu_count(mcpart_ir::ClusterId::new(c), mcpart_ir::FuKind::ALL[k]);
                    (fu_used.get(&(c, k, slot)).copied().unwrap_or(0) as usize) < units.max(1)
                };
                if free {
                    break;
                }
                t += 1;
            }
            let slot = t % ii;
            if is_ic[i] {
                *net_used.entry(slot).or_insert(0) += 1;
            } else {
                let c = placement.cluster_of(func, op).index();
                let k = f.ops[op].opcode.fu_kind().index();
                *fu_used.entry((c, k, slot)).or_insert(0) += 1;
            }
            issue[i] = t;
        }
        // Validate loop-carried constraints: t(to) + II ≥ t(from) + lat.
        for cd in &carried {
            if issue[cd.to as usize] + ii < issue[cd.from as usize] + cd.latency {
                ii += 1;
                continue 'search;
            }
        }
        return Some(ModuloSchedule { ii, issue, flat_len });
    }
    None
}

/// Whole-program evaluation with software pipelining: loop-body blocks
/// (from natural-loop detection) whose modulo schedule beats their flat
/// schedule are charged `II` per iteration plus a drain of
/// `flat_len − II` per loop *entry*; everything else uses the ordinary
/// block schedule.
pub fn evaluate_pipelined(
    program: &Program,
    placement: &Placement,
    machine: &Machine,
    profile: &Profile,
    access: &AccessInfo,
) -> PerfReport {
    let mut report = crate::perf::evaluate(program, placement, machine, profile, access);
    for (fid, func) in program.functions.iter() {
        let forest = LoopForest::compute(func);
        for l in &forest.loops {
            // Pipeline single-block loop bodies: the non-header block
            // of a 2-block natural loop (header + body/latch).
            if l.blocks.len() != 2 {
                continue;
            }
            let body = *l.blocks.iter().find(|&&b| b != l.header).expect("2 blocks");
            let freq = profile.block_freq(fid, body);
            if freq < 2 {
                continue;
            }
            let entries = profile.block_freq(fid, l.header).saturating_sub(freq).max(1);
            let Some(ms) = modulo_schedule_block(program, fid, body, placement, machine, access)
            else {
                continue;
            };
            let flat_cost = ms.flat_len as u64 * freq;
            let piped_cost =
                ms.ii as u64 * freq + (ms.flat_len.saturating_sub(ms.ii)) as u64 * entries;
            if piped_cost < flat_cost {
                report.total_cycles -= flat_cost - piped_cost;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpart_analysis::PointsTo;
    use mcpart_ir::{Cmp, DataObject, FunctionBuilder, MemWidth};

    /// A streaming loop: independent iterations (no recurrence except
    /// the induction variable), so II should be far below the flat
    /// length.
    fn streaming_loop() -> (Program, BlockId) {
        let mut p = Program::new("t");
        let src = p.add_object(DataObject::global("src", 256));
        let dst = p.add_object(DataObject::global("dst", 256));
        let mut b = FunctionBuilder::entry(&mut p);
        let i = b.iconst(0);
        let n = b.iconst(32);
        let head = b.block("head");
        let body = b.block("body");
        let exit = b.block("exit");
        b.jump(head);
        b.switch_to(head);
        let c = b.icmp(Cmp::Lt, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        let sb = b.addrof(src);
        let four = b.iconst(4);
        let off = b.mul(i, four);
        let sa = b.add(sb, off);
        let v = b.load(MemWidth::B4, sa);
        let w = b.mul(v, v);
        let w2 = b.add(w, v);
        let db = b.addrof(dst);
        let da = b.add(db, off);
        b.store(MemWidth::B4, da, w2);
        let one = b.iconst(1);
        let ni = b.add(i, one);
        b.mov_to(i, ni);
        b.jump(head);
        b.switch_to(exit);
        b.ret(None);
        (p, body)
    }

    fn analyze(p: &Program) -> (Profile, AccessInfo) {
        // Hand-annotated profile: loop bodies hot (tests do not depend
        // on the simulator to avoid a dev-dependency cycle).
        let mut profile = Profile::uniform(p, 1);
        let f = p.entry;
        for (bid, block) in p.functions[f].blocks.iter() {
            if block.label.contains("body") {
                profile.funcs[f].block_freq[bid] = 32;
            }
            if block.label.contains("head") {
                profile.funcs[f].block_freq[bid] = 33;
            }
        }
        let pts = PointsTo::compute(p);
        let access = AccessInfo::compute(p, &pts, &profile);
        (profile, access)
    }

    #[test]
    fn streaming_loop_pipelines_well() {
        let (p, body) = streaming_loop();
        let (profile, access) = analyze(&p);
        let placement = Placement::all_on_cluster0(&p);
        let m = Machine::paper_2cluster(5);
        let ms =
            modulo_schedule_block(&p, p.entry, body, &placement, &m, &access).expect("pipelinable");
        let flat = schedule_block(&p, p.entry, body, &placement, &m, &access);
        assert!(
            ms.ii <= flat.length / 2,
            "II {} should be well under flat length {}",
            ms.ii,
            flat.length
        );
        // Memory-port bound: ~2 memory ops on one 1-port cluster → II ≥ 2.
        assert!(ms.ii >= 2, "II {}", ms.ii);
        let _ = profile;
    }

    #[test]
    fn recurrence_bounds_the_ii() {
        // A loop whose body carries a long dependence through a
        // register: acc = (acc * acc') chain. II must cover it.
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let acc = b.iconst(3);
        let i = b.iconst(0);
        let n = b.iconst(16);
        let head = b.block("head");
        let body = b.block("body");
        let exit = b.block("exit");
        b.jump(head);
        b.switch_to(head);
        let c = b.icmp(Cmp::Lt, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        let m1 = b.mul(acc, acc); // 3 cycles
        let m2 = b.mul(m1, m1); // 3 cycles, feeds acc next iteration
        b.mov_to(acc, m2);
        let one = b.iconst(1);
        let ni = b.add(i, one);
        b.mov_to(i, ni);
        b.jump(head);
        b.switch_to(exit);
        b.ret(Some(acc));
        let (_, access) = analyze(&p);
        let placement = Placement::all_on_cluster0(&p);
        let m = Machine::paper_2cluster(5);
        if let Some(ms) = modulo_schedule_block(&p, p.entry, body, &placement, &m, &access) {
            // The mul-mul-mov recurrence needs ≥ 7 cycles per iteration.
            assert!(ms.ii >= 7, "II {} violates the recurrence", ms.ii);
        }
    }

    #[test]
    fn pipelined_evaluation_never_slower() {
        let (p, _) = streaming_loop();
        let (profile, access) = analyze(&p);
        let placement = Placement::all_on_cluster0(&p);
        let m = Machine::paper_2cluster(5);
        let flat = crate::perf::evaluate(&p, &placement, &m, &profile, &access);
        let piped = evaluate_pipelined(&p, &placement, &m, &profile, &access);
        assert!(piped.total_cycles <= flat.total_cycles);
        assert!(
            piped.total_cycles < flat.total_cycles,
            "streaming loop should benefit: {} vs {}",
            piped.total_cycles,
            flat.total_cycles
        );
    }

    #[test]
    fn tiny_blocks_are_not_pipelined() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let v = b.iconst(1);
        b.ret(Some(v));
        let (_, access) = analyze(&p);
        let placement = Placement::all_on_cluster0(&p);
        let m = Machine::paper_2cluster(5);
        let entry = p.entry_function().entry;
        assert!(modulo_schedule_block(&p, p.entry, entry, &placement, &m, &access).is_none());
    }
}
