//! ASCII rendering of block schedules, for debugging and reports.

use crate::list::BlockSchedule;
use crate::placement::Placement;
use mcpart_ir::{FuncId, Program};
use std::fmt::Write as _;

/// Renders a block schedule as a cycle-by-cycle timeline:
///
/// ```text
/// cycle | c0                      | c1
/// ------+-------------------------+---------------
///     0 | op3 iconst 4            | op9 load.4
///     1 | op4 mul                 |
/// ```
///
/// Only issue cycles are shown (an operation occupies its unit for one
/// cycle; results land `latency` cycles later).
pub fn schedule_to_string(
    program: &Program,
    func: FuncId,
    schedule: &BlockSchedule,
    placement: &Placement,
    num_clusters: usize,
) -> String {
    let f = &program.functions[func];
    let mut rows: Vec<Vec<Vec<String>>> = Vec::new(); // cycle -> cluster -> cells
    for (i, &op) in schedule.ops.iter().enumerate() {
        let cycle = schedule.issue[i] as usize;
        let cluster = placement.cluster_of(func, op).index();
        while rows.len() <= cycle {
            rows.push(vec![Vec::new(); num_clusters]);
        }
        rows[cycle][cluster].push(format!("{op} {}", f.ops[op].opcode));
    }
    let width = rows
        .iter()
        .flat_map(|r| r.iter())
        .map(|cells| {
            cells.iter().map(String::len).sum::<usize>() + cells.len().saturating_sub(1) * 2
        })
        .max()
        .unwrap_or(8)
        .max(8);
    let mut out = String::new();
    let _ = write!(out, "cycle");
    for c in 0..num_clusters {
        let _ = write!(out, " | {:<width$}", format!("c{c}"));
    }
    out.push('\n');
    let _ = write!(out, "-----");
    for _ in 0..num_clusters {
        let _ = write!(out, "-+-{}", "-".repeat(width));
    }
    out.push('\n');
    for (cycle, clusters) in rows.iter().enumerate() {
        if clusters.iter().all(Vec::is_empty) {
            continue;
        }
        let _ = write!(out, "{cycle:>5}");
        for cells in clusters {
            let _ = write!(out, " | {:<width$}", cells.join(", "));
        }
        out.push('\n');
    }
    let _ = writeln!(out, "length: {} cycles", schedule.length);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::schedule_block;
    use mcpart_analysis::{AccessInfo, PointsTo};
    use mcpart_ir::{ClusterId, FunctionBuilder, Profile};
    use mcpart_machine::Machine;

    #[test]
    fn timeline_mentions_ops_and_length() {
        let mut p = mcpart_ir::Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let x = b.iconst(1);
        let y = b.add(x, x);
        b.ret(Some(y));
        let pts = PointsTo::compute(&p);
        let profile = Profile::uniform(&p, 1);
        let access = AccessInfo::compute(&p, &pts, &profile);
        let mut placement = Placement::all_on_cluster0(&p);
        let f = p.entry;
        let add = p.entry_function().blocks[p.entry_function().entry].ops[1];
        placement.set_cluster(f, add, ClusterId::new(1));
        let m = Machine::paper_2cluster(5);
        let s = schedule_block(&p, f, p.entry_function().entry, &placement, &m, &access);
        let text = schedule_to_string(&p, f, &s, &placement, 2);
        assert!(text.contains("iconst"), "{text}");
        assert!(text.contains("add"), "{text}");
        assert!(text.contains("length:"), "{text}");
        assert!(text.contains("c1"), "{text}");
    }
}
