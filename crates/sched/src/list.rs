//! Resource-table list scheduling of basic blocks on a clustered VLIW.

use crate::depgraph::DepGraph;
use crate::moves::{is_intercluster_move, vreg_homes};
use crate::placement::Placement;
use mcpart_analysis::AccessInfo;
use mcpart_ir::{BlockId, EntityMap, FuncId, OpId, Program};
use mcpart_machine::Machine;
use std::collections::HashMap;

/// The schedule of one basic block.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BlockSchedule {
    /// Operations in node order of the block's dependence graph.
    pub ops: Vec<OpId>,
    /// Issue cycle of each operation (same indexing as `ops`).
    pub issue: Vec<u32>,
    /// Schedule length in cycles: the maximum completion cycle (issue
    /// plus latency), and at least 1 for non-empty blocks.
    pub length: u32,
    /// Number of intercluster moves in the block (static).
    pub intercluster_moves: u32,
    /// Summed per-move network latency of the block's intercluster
    /// moves (static). On a bus this is `intercluster_moves ×
    /// move_latency`; ring and mesh topologies scale each move by its
    /// hop distance, so the performance model charges transfers from
    /// this sum rather than from the flat count.
    pub transfer_latency: u64,
    /// Number of remote memory accesses under the coherent-cache model
    /// (static; always 0 for unified/partitioned memory).
    pub remote_accesses: u32,
}

/// Effective latency of an operation under a placement: intercluster
/// moves take the network latency between the source register's home
/// cluster and the move's cluster (hop-scaled under ring/mesh
/// topologies), everything else takes its function-unit latency.
pub fn effective_latency(
    program: &Program,
    func: FuncId,
    op: OpId,
    placement: &Placement,
    homes: &EntityMap<mcpart_ir::VReg, mcpart_ir::ClusterId>,
    machine: &Machine,
) -> u32 {
    if is_intercluster_move(program, func, op, placement, homes) {
        let src = homes[program.functions[func].ops[op].srcs[0]];
        machine.move_latency_between(src, placement.cluster_of(func, op))
    } else {
        machine.latency.of(program.functions[func].ops[op].opcode)
    }
}

/// List-schedules one basic block.
///
/// * Each operation issues on a function unit of its kind on its
///   assigned cluster; per-cluster, per-kind unit counts bound the
///   number of same-kind issues per cycle.
/// * Intercluster moves issue on the shared network instead
///   (`moves_per_cycle` machine-wide) and take the network latency.
/// * Control operations (`brc`/`jmp`/`ret`) issue after every other
///   operation has issued, modeling the branch ending the block.
/// * Priority is the dependence height (critical path to any sink).
pub fn schedule_block(
    program: &Program,
    func: FuncId,
    block: BlockId,
    placement: &Placement,
    machine: &Machine,
    access: &AccessInfo,
) -> BlockSchedule {
    let homes = vreg_homes(program, func, placement);
    // Coherent caches: a memory op on a cluster other than its object's
    // home pays the coherence penalty on top of its latency.
    let mut coherence_extra: HashMap<OpId, u32> = HashMap::new();
    let mut remote_accesses = 0u32;
    if let Some(penalty) = machine.memory.coherence_penalty() {
        for &op in &program.functions[func].blocks[block].ops {
            if !program.functions[func].ops[op].opcode.is_memory() {
                continue;
            }
            let site = mcpart_analysis::AccessSite { func, op };
            let Some(objs) = access.site_objects.get(&site) else { continue };
            let cluster = placement.cluster_of(func, op);
            if objs.iter().any(|&o| placement.object_home[o].map(|h| h != cluster).unwrap_or(false))
            {
                coherence_extra.insert(op, penalty);
                remote_accesses += 1;
            }
        }
    }
    let lat = |op: OpId| {
        effective_latency(program, func, op, placement, &homes, machine)
            + coherence_extra.get(&op).copied().unwrap_or(0)
    };
    let dg = DepGraph::for_block(program, func, block, access, &lat);
    let n = dg.len();
    if n == 0 {
        return BlockSchedule {
            ops: Vec::new(),
            issue: Vec::new(),
            length: 0,
            intercluster_moves: 0,
            transfer_latency: 0,
            remote_accesses: 0,
        };
    }
    let f = &program.functions[func];

    // Height priority: longest latency path from the node to a sink.
    let mut height = vec![0u64; n];
    for i in (0..n).rev() {
        let own = lat(dg.ops[i]).max(1) as u64;
        height[i] = own;
        for &di in &dg.succs[i] {
            let d = dg.deps[di as usize];
            height[i] = height[i].max(d.latency as u64 + height[d.to as usize]);
        }
    }

    let is_control = |i: usize| {
        let opc = f.ops[dg.ops[i]].opcode;
        matches!(
            opc,
            mcpart_ir::Opcode::BranchCond | mcpart_ir::Opcode::Jump | mcpart_ir::Opcode::Ret
        )
    };
    let is_ic_move: Vec<bool> =
        (0..n).map(|i| is_intercluster_move(program, func, dg.ops[i], placement, &homes)).collect();

    let mut issue = vec![u32::MAX; n];
    let mut ready_cycle = vec![0u32; n];
    let mut unissued_preds: Vec<usize> = (0..n).map(|i| dg.preds[i].len()).collect();
    let mut issued_count = 0usize;
    let mut non_control_left = (0..n).filter(|&i| !is_control(i)).count();

    // (cluster, kind) -> cycle -> used units; network: cycle -> used.
    let mut fu_used: HashMap<(usize, usize, u32), u32> = HashMap::new();
    let mut net_used: HashMap<u32, u32> = HashMap::new();

    let mut cycle = 0u32;
    let mut max_completion = 0u32;
    // Safety bound: every op issues within n * (max latency + n) cycles.
    // Under ring/mesh topologies a single move can take several hops, so
    // the bound uses the worst pairwise latency, not the flat bus one.
    let max_move_latency = machine
        .cluster_ids()
        .flat_map(|a| machine.cluster_ids().map(move |b| (a, b)))
        .map(|(a, b)| machine.move_latency_between(a, b))
        .max()
        .unwrap_or(0);
    let bound = (n as u32 + 2) * (max_move_latency.max(16) + 2);
    while issued_count < n && cycle <= bound {
        // Gather ready ops at this cycle, best priority first.
        let mut ready: Vec<usize> = (0..n)
            .filter(|&i| {
                issue[i] == u32::MAX
                    && unissued_preds[i] == 0
                    && ready_cycle[i] <= cycle
                    && (!is_control(i) || non_control_left == 0)
            })
            .collect();
        ready.sort_by_key(|&i| std::cmp::Reverse(height[i]));
        let mut progressed = false;
        for i in ready {
            let op_id = dg.ops[i];
            let cluster = placement.cluster_of(func, op_id).index();
            let can_issue = if is_ic_move[i] {
                let used = net_used.get(&cycle).copied().unwrap_or(0);
                used < machine.interconnect.moves_per_cycle
            } else {
                let kind = f.ops[op_id].opcode.fu_kind();
                let used = fu_used.get(&(cluster, kind.index(), cycle)).copied().unwrap_or(0);
                (used as usize) < machine.fu_count(mcpart_ir::ClusterId::new(cluster), kind)
            };
            if !can_issue {
                continue;
            }
            if is_ic_move[i] {
                *net_used.entry(cycle).or_insert(0) += 1;
            } else {
                let kind = f.ops[op_id].opcode.fu_kind();
                *fu_used.entry((cluster, kind.index(), cycle)).or_insert(0) += 1;
            }
            issue[i] = cycle;
            issued_count += 1;
            if !is_control(i) {
                non_control_left -= 1;
            }
            progressed = true;
            max_completion = max_completion.max(cycle + lat(op_id).max(1));
            for &di in &dg.succs[i] {
                let d = dg.deps[di as usize];
                let t = d.to as usize;
                unissued_preds[t] -= 1;
                ready_cycle[t] = ready_cycle[t].max(cycle + d.latency);
            }
        }
        let _ = progressed;
        cycle += 1;
    }
    debug_assert_eq!(issued_count, n, "scheduler failed to issue all operations");

    let intercluster_moves = is_ic_move.iter().filter(|&&b| b).count() as u32;
    let transfer_latency: u64 = (0..n)
        .filter(|&i| is_ic_move[i])
        .map(|i| effective_latency(program, func, dg.ops[i], placement, &homes, machine) as u64)
        .sum();
    BlockSchedule {
        ops: dg.ops,
        issue,
        length: max_completion.max(1),
        intercluster_moves,
        transfer_latency,
        remote_accesses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpart_analysis::PointsTo;
    use mcpart_ir::{ClusterId, DataObject, FunctionBuilder, MemWidth, Profile};

    fn access_of(p: &Program) -> AccessInfo {
        let pts = PointsTo::compute(p);
        AccessInfo::compute(p, &pts, &Profile::uniform(p, 1))
    }

    #[test]
    fn serial_chain_takes_sum_of_latencies() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let x = b.iconst(1); // 1 cycle
        let y = b.add(x, x); // 1
        let z = b.mul(y, y); // 3
        b.ret(Some(z)); // 1, issues last
        let access = access_of(&p);
        let pl = Placement::all_on_cluster0(&p);
        let m = Machine::paper_2cluster(5);
        let s = schedule_block(&p, p.entry, p.entry_function().entry, &pl, &m, &access);
        // iconst@0, add@1, mul@2 completes at 5, ret waits for z: @5, done 6.
        assert_eq!(s.length, 6, "{s:?}");
        assert_eq!(s.intercluster_moves, 0);
    }

    #[test]
    fn int_unit_saturation_limits_parallelism() {
        // 6 independent iconsts on one cluster with 2 int units -> 3 cycles
        // (+ ret after them).
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        for i in 0..6 {
            b.iconst(i);
        }
        b.ret(None);
        let access = access_of(&p);
        let pl = Placement::all_on_cluster0(&p);
        let m = Machine::paper_2cluster(5);
        let s = schedule_block(&p, p.entry, p.entry_function().entry, &pl, &m, &access);
        // consts occupy cycles 0,0,1,1,2,2; ret at 3 (after all issued).
        assert_eq!(s.length, 4, "{s:?}");
    }

    #[test]
    fn two_clusters_double_throughput() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        for i in 0..8 {
            b.iconst(i);
        }
        b.ret(None);
        let access = access_of(&p);
        let m = Machine::paper_2cluster(5);
        let mut pl = Placement::all_on_cluster0(&p);
        let f = p.entry;
        let func = p.entry_function();
        for (i, &op) in func.blocks[func.entry].ops.iter().enumerate() {
            if i % 2 == 1 && i < 8 {
                pl.set_cluster(f, op, ClusterId::new(1));
            }
        }
        let s = schedule_block(&p, f, func.entry, &pl, &m, &access);
        // 4 consts per cluster / 2 int units = 2 cycles, ret at 2.
        assert_eq!(s.length, 3, "{s:?}");
    }

    #[test]
    fn intercluster_move_latency_charged() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let x = b.iconst(1);
        let y = b.mov(x); // will become the consumer on cluster 1 via placement
        let z = b.add(y, y);
        b.ret(Some(z));
        let access = access_of(&p);
        let m = Machine::paper_2cluster(5);
        let mut pl = Placement::all_on_cluster0(&p);
        let f = p.entry;
        let func = p.entry_function();
        let mov = func.blocks[func.entry].ops[1];
        let add = func.blocks[func.entry].ops[2];
        // The mov reads x (home c0) and executes on c1: intercluster.
        pl.set_cluster(f, mov, ClusterId::new(1));
        pl.set_cluster(f, add, ClusterId::new(1));
        let s = schedule_block(&p, f, func.entry, &pl, &m, &access);
        assert_eq!(s.intercluster_moves, 1);
        // iconst@0, move@1 (5 cycles, done 6), add@6 (done 7), ret@7 -> 8.
        assert_eq!(s.length, 8, "{s:?}");
    }

    #[test]
    fn network_bandwidth_serializes_moves() {
        // Two values each needing a move to cluster 1; bandwidth 1/cycle
        // forces the second move a cycle later.
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let x = b.iconst(1);
        let y = b.iconst(2);
        let mx = b.mov(x);
        let my = b.mov(y);
        let z = b.add(mx, my);
        b.ret(Some(z));
        let access = access_of(&p);
        let m = Machine::paper_2cluster(5);
        let mut pl = Placement::all_on_cluster0(&p);
        let f = p.entry;
        let func = p.entry_function();
        let ops = func.blocks[func.entry].ops.clone();
        pl.set_cluster(f, ops[2], ClusterId::new(1));
        pl.set_cluster(f, ops[3], ClusterId::new(1));
        pl.set_cluster(f, ops[4], ClusterId::new(1));
        let s = schedule_block(&p, f, func.entry, &pl, &m, &access);
        assert_eq!(s.intercluster_moves, 2);
        // consts@0, moves@1 and @2 (bandwidth 1), add@7 (done 8), ret@8 -> 9.
        assert_eq!(s.length, 9, "{s:?}");
    }

    #[test]
    fn ring_topology_scales_move_latency_by_hops() {
        use mcpart_machine::{Interconnect, Topology};
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let x = b.iconst(1);
        let y = b.mov(x); // becomes an intercluster move via placement
        let z = b.add(y, y);
        b.ret(Some(z));
        let access = access_of(&p);
        let f = p.entry;
        let func = p.entry_function();
        let mov = func.blocks[func.entry].ops[1];
        let add = func.blocks[func.entry].ops[2];
        let mut pl = Placement::all_on_cluster0(&p);
        // x homed on c0; the move and its consumer on c2 (2 hops away on
        // a 4-cluster ring).
        pl.set_cluster(f, mov, ClusterId::new(2));
        pl.set_cluster(f, add, ClusterId::new(2));
        let ring = Machine::homogeneous(4, 5)
            .with_interconnect(Interconnect::bus(5).with_topology(Topology::Ring));
        let s = schedule_block(&p, f, func.entry, &pl, &ring, &access);
        assert_eq!(s.intercluster_moves, 1);
        assert_eq!(s.transfer_latency, 10, "2 hops x 5 cycles");
        // iconst@0, move@1 (10 cycles, done 11), add@11 (done 12), ret@12.
        assert_eq!(s.length, 13, "{s:?}");
        // The same placement on a bus keeps the paper's flat latency.
        let bus = Machine::homogeneous(4, 5);
        let s = schedule_block(&p, f, func.entry, &pl, &bus, &access);
        assert_eq!(s.transfer_latency, 5);
        assert_eq!(s.length, 8, "{s:?}");
    }

    #[test]
    fn load_store_ordering_respected() {
        let mut p = Program::new("t");
        let obj = p.add_object(DataObject::global("g", 8));
        let mut b = FunctionBuilder::entry(&mut p);
        let a = b.addrof(obj);
        let v = b.iconst(3);
        b.store(MemWidth::B4, a, v);
        let w = b.load(MemWidth::B4, a);
        b.ret(Some(w));
        let access = access_of(&p);
        let pl = Placement::all_on_cluster0(&p);
        let m = Machine::paper_2cluster(1);
        let s = schedule_block(&p, p.entry, p.entry_function().entry, &pl, &m, &access);
        // Find issue cycles of store (idx 2) and load (idx 3).
        assert!(s.issue[3] > s.issue[2], "load must follow store: {s:?}");
    }

    #[test]
    fn empty_block_schedules_to_zero() {
        let mut p = Program::new("t");
        let f = &mut p.functions[p.entry];
        let empty = f.add_block("empty");
        f.blocks[empty].term = Some(mcpart_ir::Terminator::Return(None));
        f.blocks[f.entry].term = Some(mcpart_ir::Terminator::Jump(empty));
        let access = access_of(&p);
        let pl = Placement::all_on_cluster0(&p);
        let m = Machine::paper_2cluster(5);
        let s = schedule_block(&p, p.entry, empty, &pl, &m, &access);
        assert_eq!(s.length, 0);
    }
}
