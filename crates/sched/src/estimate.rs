//! The RHOP schedule-length estimator.
//!
//! RHOP's key idea (Chu, Fan & Mahlke, PLDI'03) is to judge candidate
//! cluster assignments *without scheduling*: a cheap estimate combines a
//! resource bound (operations per function-unit kind per cluster), an
//! intercluster-bandwidth bound, and a dependence critical path in which
//! every *cut* register edge is stretched by the move latency.
//!
//! The CGO'06 extension is the `locked` table: memory operations whose
//! data object has a home cluster are infeasible anywhere else, so the
//! estimator returns [`INFEASIBLE`] for any assignment displacing them.

use crate::depgraph::{DepGraph, DepKind};
use mcpart_analysis::AccessInfo;
use mcpart_ir::{BlockId, ClusterId, FuKind, FuncId, OpId, Program};
use mcpart_machine::Machine;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Estimate value representing an infeasible assignment (a locked
/// operation displaced from its home cluster).
pub const INFEASIBLE: u32 = u32::MAX;

/// Schedule-length estimator for one region under candidate cluster
/// assignments.
#[derive(Clone, Debug)]
pub struct RegionEstimator {
    /// The region dependence graph (node order = program order).
    pub dg: DepGraph,
    /// Function-unit kind per node.
    fu_kind: Vec<FuKind>,
    /// Base operation latency per node.
    base_lat: Vec<u32>,
    /// Cluster locks per node ([`None`] = free).
    locked: Vec<Option<ClusterId>>,
    /// Home clusters of live-in operands per node: consuming one from a
    /// different cluster delays the node by the move latency.
    live_in_homes: Vec<Vec<u16>>,
    /// Coherent-cache model: per memory node, its object's home cluster
    /// and the penalty for executing elsewhere.
    mem_home_penalty: Vec<Option<(u16, u32)>>,
    /// Per-cluster, per-kind unit counts.
    fu_counts: Vec<[u32; 4]>,
    /// Dependence-height issue priority per node. Assignment-independent
    /// (base latencies only), so it is computed once here instead of per
    /// [`RegionEstimator::estimate`] call.
    height: Vec<u64>,
    move_latency: u32,
    moves_per_cycle: u32,
}

impl RegionEstimator {
    /// Builds an estimator for the given region blocks.
    pub fn new(
        program: &Program,
        func: FuncId,
        blocks: &[BlockId],
        access: &AccessInfo,
        machine: &Machine,
    ) -> Self {
        let lat = |op: OpId| machine.latency.of(program.functions[func].ops[op].opcode);
        let dg = DepGraph::for_region(program, func, blocks, access, &lat);
        let f = &program.functions[func];
        let fu_kind: Vec<FuKind> = dg.ops.iter().map(|&o| f.ops[o].opcode.fu_kind()).collect();
        let base_lat: Vec<u32> = dg.ops.iter().map(|&o| lat(o)).collect();
        let locked = vec![None; dg.len()];
        let live_in_homes = vec![Vec::new(); dg.len()];
        let mem_home_penalty = vec![None; dg.len()];
        let fu_counts: Vec<[u32; 4]> = machine
            .cluster_ids()
            .map(|c| {
                let mut counts = [0u32; 4];
                for kind in FuKind::ALL {
                    counts[kind.index()] = machine.fu_count(c, kind) as u32;
                }
                counts
            })
            .collect();
        let mut height = vec![0u64; dg.len()];
        for i in (0..dg.len()).rev() {
            height[i] = base_lat[i].max(1) as u64;
            for &di in &dg.succs[i] {
                let d = dg.deps[di as usize];
                height[i] = height[i].max(d.latency as u64 + height[d.to as usize]);
            }
        }
        RegionEstimator {
            dg,
            fu_kind,
            base_lat,
            locked,
            live_in_homes,
            mem_home_penalty,
            fu_counts,
            height,
            move_latency: machine.move_latency(),
            moves_per_cycle: machine.interconnect.moves_per_cycle.max(1),
        }
    }

    /// Number of nodes (operations) in the region.
    pub fn len(&self) -> usize {
        self.dg.len()
    }

    /// Returns `true` for an empty region.
    pub fn is_empty(&self) -> bool {
        self.dg.is_empty()
    }

    /// Locks a node to a cluster (used for memory operations whose
    /// object has a home, and for calls pinned to cluster 0).
    pub fn lock(&mut self, node: usize, cluster: ClusterId) {
        self.locked[node] = Some(cluster);
    }

    /// The lock of a node, if any.
    pub fn lock_of(&self, node: usize) -> Option<ClusterId> {
        self.locked[node]
    }

    /// Declares that `node` consumes a region live-in value homed on
    /// `cluster`; if the node is assigned elsewhere, the estimator
    /// delays it by the intercluster move latency. Used by the second
    /// RHOP sweep to coordinate placement across blocks.
    pub fn add_live_in_home(&mut self, node: usize, cluster: ClusterId) {
        self.live_in_homes[node].push(cluster.index() as u16);
    }

    /// Clears all live-in annotations.
    pub fn clear_live_in_homes(&mut self) {
        for v in &mut self.live_in_homes {
            v.clear();
        }
    }

    /// Declares that memory node `node` accesses an object homed on
    /// `cluster` under a coherent-cache model with the given remote
    /// penalty: executing the node elsewhere stretches its latency.
    pub fn set_mem_home(&mut self, node: usize, cluster: ClusterId, penalty: u32) {
        self.mem_home_penalty[node] = Some((cluster.index() as u16, penalty));
    }

    /// Estimates the schedule length of the region under `assign`
    /// (cluster index per node) by running a lightweight greedy list
    /// schedule: function units per cluster and the intercluster
    /// network bandwidth are honored, and every *cut* register edge
    /// inserts a virtual transfer (deduplicated per producer and
    /// destination cluster) that occupies a network slot and delays its
    /// consumers by the move latency.
    ///
    /// This plays the role of RHOP's wand-histogram estimator: cheap
    /// enough to call per candidate move, and faithful enough that
    /// refinement decisions agree with the real scheduler.
    ///
    /// Returns [`INFEASIBLE`] when a locked node is displaced.
    ///
    /// # Panics
    ///
    /// Panics if `assign.len()` differs from the node count.
    pub fn estimate(&self, assign: &[u16]) -> u32 {
        let mut ws = EstimateWorkspace::default();
        self.estimate_with(assign, &mut ws)
    }

    /// [`RegionEstimator::estimate`] with caller-provided scratch
    /// buffers. One [`EstimateWorkspace`] can serve any sequence of
    /// calls (across estimators of different sizes too); reusing it
    /// removes every per-call heap allocation from RHOP's inner loop.
    pub fn estimate_with(&self, assign: &[u16], ws: &mut EstimateWorkspace) -> u32 {
        assert_eq!(assign.len(), self.len());
        for (i, lock) in self.locked.iter().enumerate() {
            if let Some(c) = lock {
                if assign[i] as usize != c.index() {
                    return INFEASIBLE;
                }
            }
        }
        let n = self.len();
        if n == 0 {
            return 0;
        }
        let nclusters = self.fu_counts.len();
        // Wakeup buckets: nodes to (re)consider at a given cycle.
        let horizon = (n as u32 + 4) * (self.move_latency.max(8) + 4);

        // Reset the workspace. Only buckets the previous call pushed
        // into are cleared (tracked in `touched`), so the reset is
        // O(pushes), not O(horizon).
        let EstimateWorkspace {
            unissued_preds,
            ready_cycle,
            issued,
            wakeup,
            touched,
            transfers,
            transfer_requested,
            fu_free,
            candidates,
        } = ws;
        for &t in touched.iter() {
            if let Some(bucket) = wakeup.get_mut(t as usize) {
                bucket.clear();
            }
        }
        touched.clear();
        if wakeup.len() < horizon as usize + 2 {
            wakeup.resize_with(horizon as usize + 2, Vec::new);
        }
        transfers.clear();
        transfer_requested.clear();
        unissued_preds.clear();
        unissued_preds.extend((0..n).map(|i| self.dg.preds[i].len() as u32));
        ready_cycle.clear();
        ready_cycle.resize(n, 0);
        for (i, homes) in self.live_in_homes.iter().enumerate() {
            if homes.iter().any(|&h| h != assign[i]) {
                ready_cycle[i] = self.move_latency;
            }
        }
        issued.clear();
        issued.resize(n, false);
        fu_free.clear();
        fu_free.resize(nclusters, [0u32; 4]);
        for i in 0..n {
            if unissued_preds[i] == 0 {
                let at = ready_cycle[i].min(horizon);
                wakeup[at as usize].push(i as u32);
                touched.push(at);
            }
        }

        let mut issued_count = 0usize;
        let mut max_completion = 0u32;
        let mut cycle = 0u32;
        while issued_count < n && cycle <= horizon {
            for (c, counts) in fu_free.iter_mut().enumerate() {
                counts.copy_from_slice(&self.fu_counts[c]);
            }
            let mut net_free = self.moves_per_cycle;
            // Issue pending transfers first (they unblock consumers).
            while net_free > 0 {
                match transfers.peek() {
                    Some(Reverse((avail, _, _))) if *avail <= cycle => {
                        let Reverse((_, u, destc)) = transfers.pop().expect("peeked");
                        net_free -= 1;
                        let done = cycle + self.move_latency;
                        for &di in &self.dg.succs[u as usize] {
                            let d = self.dg.deps[di as usize];
                            if d.kind == DepKind::Flow
                                && assign[d.to as usize] == destc
                                && assign[d.from as usize] != destc
                            {
                                let t = d.to as usize;
                                unissued_preds[t] -= 1;
                                ready_cycle[t] = ready_cycle[t].max(done);
                                if unissued_preds[t] == 0 {
                                    let at = ready_cycle[t].max(cycle + 1).min(horizon);
                                    wakeup[at as usize].push(d.to);
                                    touched.push(at);
                                }
                            }
                        }
                        max_completion = max_completion.max(done);
                    }
                    _ => break,
                }
            }
            // Issue ready operations, highest priority first.
            candidates.clear();
            candidates.append(&mut wakeup[cycle as usize]);
            candidates.sort_by_key(|&i| Reverse(self.height[i as usize]));
            for &i in candidates.iter() {
                let iu = i as usize;
                if issued[iu] || unissued_preds[iu] != 0 || ready_cycle[iu] > cycle {
                    if !issued[iu] && unissued_preds[iu] == 0 && ready_cycle[iu] > cycle {
                        let at = ready_cycle[iu].min(horizon);
                        wakeup[at as usize].push(i);
                        touched.push(at);
                    }
                    continue;
                }
                let c = assign[iu] as usize;
                let k = self.fu_kind[iu].index();
                if fu_free[c][k] == 0 {
                    // Retry next cycle.
                    let at = (cycle + 1).min(horizon);
                    wakeup[at as usize].push(i);
                    touched.push(at);
                    continue;
                }
                fu_free[c][k] -= 1;
                issued[iu] = true;
                issued_count += 1;
                let coherence = match self.mem_home_penalty[iu] {
                    Some((home, penalty)) if home != assign[iu] => penalty,
                    _ => 0,
                };
                let finish = cycle + (self.base_lat[iu] + coherence).max(1);
                max_completion = max_completion.max(finish);
                // Wake successors / request transfers.
                for &di in &self.dg.succs[iu] {
                    let d = self.dg.deps[di as usize];
                    let t = d.to as usize;
                    let cut_flow = d.kind == DepKind::Flow && assign[t] != assign[iu];
                    if cut_flow {
                        let key = (i, assign[t]);
                        if transfer_requested.insert(key) {
                            transfers.push(Reverse((finish, i, assign[t])));
                        }
                        // The consumer is unblocked when the transfer
                        // lands (handled above).
                    } else {
                        unissued_preds[t] -= 1;
                        // Value-carrying edges stretch with the
                        // producer's coherence penalty (its result lands
                        // later); pure ordering edges do not.
                        let extra = match d.kind {
                            DepKind::Flow | DepKind::MemFlow => coherence,
                            _ => 0,
                        };
                        ready_cycle[t] = ready_cycle[t].max(cycle + d.latency + extra);
                        if unissued_preds[t] == 0 {
                            // Wake no earlier than the next cycle: this
                            // cycle's bucket has already been drained.
                            let at = ready_cycle[t].max(cycle + 1).min(horizon);
                            wakeup[at as usize].push(d.to);
                            touched.push(at);
                        }
                    }
                }
            }
            cycle += 1;
        }
        if issued_count < n {
            // Horizon exhausted (pathological contention): fall back to
            // the serial upper bound rather than underestimating.
            debug_assert!(false, "estimator failed to issue all nodes");
            return self.base_lat.iter().map(|&l| l.max(1)).sum::<u32>().max(max_completion);
        }
        max_completion.max(1)
    }

    /// Convenience: estimate with every node on cluster 0.
    pub fn estimate_single_cluster(&self) -> u32 {
        self.estimate(&vec![0u16; self.len()])
    }

    /// The peak per-(cluster, unit-kind) occupancy of an assignment:
    /// `max ceil(ops / units)`. Used by RHOP refinement as a tie-breaker
    /// — an equal-length estimate that lowers the resource peak leaves
    /// more slack for the real scheduler.
    pub fn resource_peak(&self, assign: &[u16]) -> u32 {
        let nclusters = self.fu_counts.len();
        let mut counts = vec![[0u32; 4]; nclusters];
        for (i, &kind) in self.fu_kind.iter().enumerate() {
            counts[assign[i] as usize][kind.index()] += 1;
        }
        let mut peak = 0u32;
        for (c, kinds) in counts.iter().enumerate() {
            for (k, &count) in kinds.iter().enumerate() {
                if count > 0 {
                    peak = peak.max(count.div_ceil(self.fu_counts[c][k].max(1)));
                }
            }
        }
        peak
    }
}

/// Reusable scratch buffers for [`RegionEstimator::estimate_with`].
///
/// The estimator's list-schedule simulation needs nine growable
/// buffers; allocating them per call dominated RHOP refinement, which
/// evaluates thousands of candidate assignments per region. A single
/// workspace amortizes those allocations across all calls.
#[derive(Clone, Debug, Default)]
pub struct EstimateWorkspace {
    unissued_preds: Vec<u32>,
    ready_cycle: Vec<u32>,
    issued: Vec<bool>,
    wakeup: Vec<Vec<u32>>,
    /// Bucket indices pushed into during the last run, so the next
    /// reset clears O(pushes) buckets instead of O(horizon).
    touched: Vec<u32>,
    transfers: BinaryHeap<Reverse<(u32, u32, u16)>>,
    transfer_requested: HashSet<(u32, u16)>,
    fu_free: Vec<[u32; 4]>,
    candidates: Vec<u32>,
}

/// Incremental candidate-move evaluation on top of a [`RegionEstimator`].
///
/// RHOP refinement probes every unlocked group against every other
/// cluster; evaluating each probe with [`RegionEstimator::estimate`]
/// used to clone the whole node assignment and re-walk the region from
/// scratch. This wrapper keeps the candidate state incremental:
///
/// * one scratch node assignment mutated in place by
///   [`IncrementalEstimator::try_move`] and restored by
///   [`IncrementalEstimator::rollback`] — no per-probe clone,
/// * per-(cluster, kind) occupancy buckets updated only for the moved
///   nodes, so [`IncrementalEstimator::resource_peak`] and the resource
///   lower bound cost O(clusters × kinds) instead of O(nodes),
/// * a lazily recomputed cut-aware critical path (one O(V+E) pass, no
///   heap or sort) that combines with the resource bound to prune
///   probes which provably cannot beat the incumbent,
/// * a persistent [`EstimateWorkspace`] for the probes that do need the
///   full simulation.
///
/// Pruning is **exact**: a probe is skipped only when its lower bound
/// already rules out improving on the incumbent `(estimate, peak)`
/// pair, so refinement accepts exactly the same moves — and produces
/// bit-identical placements — as full evaluation of every probe.
#[derive(Clone, Debug)]
pub struct IncrementalEstimator<'a> {
    est: &'a RegionEstimator,
    assign: Vec<u16>,
    /// Per-(cluster, kind) node counts for the current `assign`.
    counts: Vec<[u32; 4]>,
    /// Undo log of the uncommitted moves: (node, previous cluster).
    trial: Vec<(u32, u16)>,
    ws: EstimateWorkspace,
    asap: Vec<u64>,
    /// Probes answered by the full simulation.
    pub full_evals: u64,
    /// Probes answered without simulation
    /// (`pruned_lock + pruned_bound`).
    pub pruned_evals: u64,
    /// Probes rejected because a trial move displaced a locked node.
    pub pruned_lock: u64,
    /// Probes rejected by the resource/critical-path lower bound.
    pub pruned_bound: u64,
}

impl<'a> IncrementalEstimator<'a> {
    /// A fresh evaluator with every node on cluster 0.
    pub fn new(est: &'a RegionEstimator) -> Self {
        let n = est.len();
        let mut inc = IncrementalEstimator {
            est,
            assign: vec![0u16; n],
            counts: vec![[0u32; 4]; est.fu_counts.len()],
            trial: Vec::new(),
            ws: EstimateWorkspace::default(),
            asap: Vec::new(),
            full_evals: 0,
            pruned_evals: 0,
            pruned_lock: 0,
            pruned_bound: 0,
        };
        inc.rebuild_counts();
        inc
    }

    /// Loads a node-level assignment, discarding any uncommitted moves.
    pub fn load(&mut self, assign: &[u16]) {
        assert_eq!(assign.len(), self.est.len());
        self.trial.clear();
        self.assign.copy_from_slice(assign);
        self.rebuild_counts();
    }

    /// Loads a group-level assignment: node `m` gets
    /// `group_assign[g]` for each `m` in `members[g]`. Replaces the
    /// per-probe `expand` allocation RHOP previously performed.
    pub fn load_groups(&mut self, members: &[Vec<u32>], group_assign: &[u16]) {
        self.trial.clear();
        for (g, ms) in members.iter().enumerate() {
            for &m in ms {
                self.assign[m as usize] = group_assign[g];
            }
        }
        self.rebuild_counts();
    }

    fn rebuild_counts(&mut self) {
        for c in &mut self.counts {
            *c = [0u32; 4];
        }
        for (i, &kind) in self.est.fu_kind.iter().enumerate() {
            self.counts[self.assign[i] as usize][kind.index()] += 1;
        }
    }

    /// The current (trial) node assignment.
    pub fn assign(&self) -> &[u16] {
        &self.assign
    }

    /// Tentatively moves `nodes` to cluster `to`, updating the
    /// occupancy buckets for just those nodes. Stacks until
    /// [`IncrementalEstimator::commit`] or
    /// [`IncrementalEstimator::rollback`].
    pub fn try_move(&mut self, nodes: &[u32], to: u16) {
        for &m in nodes {
            let iu = m as usize;
            let from = self.assign[iu];
            self.trial.push((m, from));
            let k = self.est.fu_kind[iu].index();
            self.counts[from as usize][k] -= 1;
            self.counts[to as usize][k] += 1;
            self.assign[iu] = to;
        }
    }

    /// Reverts all uncommitted moves.
    pub fn rollback(&mut self) {
        while let Some((m, from)) = self.trial.pop() {
            let iu = m as usize;
            let to = self.assign[iu];
            let k = self.est.fu_kind[iu].index();
            self.counts[to as usize][k] -= 1;
            self.counts[from as usize][k] += 1;
            self.assign[iu] = from;
        }
    }

    /// Accepts all uncommitted moves as the new baseline.
    pub fn commit(&mut self) {
        self.trial.clear();
    }

    /// The peak per-(cluster, kind) occupancy of the current
    /// assignment, maintained incrementally; exactly
    /// [`RegionEstimator::resource_peak`].
    pub fn resource_peak(&self) -> u32 {
        let mut peak = 0u32;
        for (c, kinds) in self.counts.iter().enumerate() {
            for (k, &count) in kinds.iter().enumerate() {
                if count > 0 {
                    peak = peak.max(count.div_ceil(self.est.fu_counts[c][k].max(1)));
                }
            }
        }
        peak
    }

    /// Full schedule-length estimate of the current assignment, exactly
    /// [`RegionEstimator::estimate`] but allocation-free.
    pub fn estimate(&mut self) -> u32 {
        self.full_evals += 1;
        self.est.estimate_with(&self.assign, &mut self.ws)
    }

    /// Evaluates the current (trial) assignment against the incumbent
    /// `(bound, peak_bound)`: returns `Some((estimate, peak))` when the
    /// trial *could* improve on the incumbent (and therefore was fully
    /// evaluated), `None` when it provably cannot.
    ///
    /// `None` is exact, never heuristic: it is returned only when a
    /// displaced lock makes the trial infeasible, or when the lower
    /// bound (max of the resource bound and the cut-aware critical
    /// path) shows the trial's estimate `e` satisfies `e > bound`, or
    /// `e >= bound` while its peak ties or worsens `peak_bound` — the
    /// exact cases RHOP's acceptance test `e < bound || (e == bound &&
    /// peak < peak_bound)` rejects.
    pub fn estimate_unless_worse(&mut self, bound: u32, peak_bound: u32) -> Option<(u32, u32)> {
        for &(m, _) in &self.trial {
            if let Some(c) = self.est.locked[m as usize] {
                if self.assign[m as usize] as usize != c.index() {
                    self.pruned_evals += 1;
                    self.pruned_lock += 1;
                    return None;
                }
            }
        }
        let peak = self.resource_peak();
        // The schedule cannot be shorter than the busiest unit's
        // occupancy, nor than the cut-aware critical path.
        let lb = (peak as u64).max(self.path_lower_bound());
        if lb > bound as u64 || (lb == bound as u64 && peak >= peak_bound) {
            self.pruned_evals += 1;
            self.pruned_bound += 1;
            return None;
        }
        let e = self.estimate();
        Some((e, peak))
    }

    /// A lower bound on [`RegionEstimator::estimate`] for the current
    /// assignment: an ASAP pass in node order (valid because region dep
    /// graphs are topologically ordered by program order) using
    /// *effective* latencies.
    ///
    /// Soundness per edge `u -> v`:
    /// * a cut `Flow` edge forces a transfer that lands no earlier than
    ///   `issue(u) + d.latency + move_latency` (the transfer waits for
    ///   `finish(u) >= issue(u) + d.latency`, then takes
    ///   `move_latency`; `u`'s coherence penalty is deliberately *not*
    ///   added — `finish` includes it, but `d.latency` alone is the
    ///   only portion guaranteed on every path through the simulator),
    /// * an uncut value edge (`Flow`/`MemFlow`) delays `v` by
    ///   `d.latency` plus `u`'s coherence penalty,
    /// * ordering edges delay by `d.latency`.
    ///
    /// Each node then completes no earlier than
    /// `asap + max(1, base_lat + coherence)`, and live-in values homed
    /// off-cluster hold their consumer until `move_latency`. Every term
    /// also bounds the simulation from below, so
    /// `path_lower_bound() <= estimate()` always.
    fn path_lower_bound(&mut self) -> u64 {
        let n = self.est.len();
        let est = self.est;
        self.asap.clear();
        self.asap.resize(n, 0);
        let mut lb = 0u64;
        for i in 0..n {
            let ci = self.assign[i];
            let mut ready = self.asap[i];
            if est.live_in_homes[i].iter().any(|&h| h != ci) {
                ready = ready.max(est.move_latency as u64);
            }
            let coherence = match est.mem_home_penalty[i] {
                Some((home, penalty)) if home != ci => penalty as u64,
                _ => 0,
            };
            lb = lb.max(ready + (est.base_lat[i] as u64 + coherence).max(1));
            for &di in &est.dg.succs[i] {
                let d = est.dg.deps[di as usize];
                let t = d.to as usize;
                let eff = if d.kind == DepKind::Flow && self.assign[t] != ci {
                    d.latency as u64 + est.move_latency as u64
                } else {
                    d.latency as u64
                        + match d.kind {
                            DepKind::Flow | DepKind::MemFlow => coherence,
                            _ => 0,
                        }
                };
                self.asap[t] = self.asap[t].max(ready + eff);
            }
        }
        lb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpart_analysis::PointsTo;
    use mcpart_ir::{FunctionBuilder, Profile};

    fn setup(build: impl FnOnce(&mut FunctionBuilder<'_>)) -> (Program, AccessInfo) {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        build(&mut b);
        let pts = PointsTo::compute(&p);
        let access = AccessInfo::compute(&p, &pts, &Profile::uniform(&p, 1));
        (p, access)
    }

    #[test]
    fn resource_bound_dominates_wide_blocks() {
        // 12 independent consts: 2 int units on one cluster -> >= 6;
        // split across two clusters -> >= 3.
        let (p, access) = setup(|b| {
            for i in 0..12 {
                b.iconst(i);
            }
            b.ret(None);
        });
        let m = Machine::paper_2cluster(5);
        let est = RegionEstimator::new(&p, p.entry, &[p.entry_function().entry], &access, &m);
        let all0 = est.estimate_single_cluster();
        let mut split = vec![0u16; est.len()];
        for (i, s) in split.iter_mut().enumerate() {
            if i % 2 == 1 {
                *s = 1;
            }
        }
        let balanced = est.estimate(&split);
        assert!(all0 >= 6, "all0 = {all0}");
        assert!(balanced < all0, "balanced {balanced} vs {all0}");
    }

    #[test]
    fn cut_critical_edge_costs_move_latency() {
        let (p, access) = setup(|b| {
            let x = b.iconst(1);
            let y = b.add(x, x);
            let z = b.add(y, y);
            b.ret(Some(z));
        });
        let m = Machine::paper_2cluster(5);
        let est = RegionEstimator::new(&p, p.entry, &[p.entry_function().entry], &access, &m);
        let same = est.estimate(&vec![0; est.len()]);
        // Cut between the two adds.
        let mut assign = vec![0u16; est.len()];
        assign[2] = 1; // second add on the other cluster
        assign[3] = 1; // ret follows it
        let cut = est.estimate(&assign);
        assert!(cut >= same + 5, "cut {cut} vs same {same}");
    }

    #[test]
    fn locked_node_infeasible_elsewhere() {
        let (p, access) = setup(|b| {
            let v = b.iconst(1);
            b.ret(Some(v));
        });
        let m = Machine::paper_2cluster(5);
        let mut est = RegionEstimator::new(&p, p.entry, &[p.entry_function().entry], &access, &m);
        est.lock(0, ClusterId::new(1));
        assert_eq!(est.estimate(&[0, 0]), INFEASIBLE);
        assert_ne!(est.estimate(&[1, 0]), INFEASIBLE);
        assert_eq!(est.lock_of(0), Some(ClusterId::new(1)));
    }

    #[test]
    fn live_in_home_delays_remote_consumers() {
        // Region = the second block only, so `x` is a live-in value.
        let mut p = Program::new("t");
        let mut b = mcpart_ir::FunctionBuilder::entry(&mut p);
        let x = b.iconst(1);
        let b2 = b.block("b2");
        b.jump(b2);
        b.switch_to(b2);
        let y = b.add(x, x);
        b.ret(Some(y));
        let pts = mcpart_analysis::PointsTo::compute(&p);
        let access = AccessInfo::compute(&p, &pts, &Profile::uniform(&p, 1));
        let m = Machine::paper_2cluster(5);
        let mut est = RegionEstimator::new(&p, p.entry, &[b2], &access, &m);
        assert_eq!(est.len(), 2); // add + ret
        let local = est.estimate(&[0, 0]);
        // x lives on cluster 1: consuming it on cluster 0 is delayed by
        // the move latency.
        est.add_live_in_home(0, ClusterId::new(1));
        let remote = est.estimate(&[0, 0]);
        assert!(remote >= local + 5, "remote {remote} vs local {local}");
        // Consuming it on its home cluster avoids the delay entirely.
        let at_home = est.estimate(&[1, 1]);
        assert_eq!(at_home, local, "at_home {at_home} vs local {local}");
        est.clear_live_in_homes();
        assert_eq!(est.estimate(&[0, 0]), local);
    }

    #[test]
    fn coherent_mem_home_penalty_applies_off_cluster() {
        let mut p = Program::new("t");
        let obj = p.add_object(mcpart_ir::DataObject::global("g", 16));
        let mut b = mcpart_ir::FunctionBuilder::entry(&mut p);
        let a = b.addrof(obj);
        let v = b.load(mcpart_ir::MemWidth::B4, a);
        b.ret(Some(v));
        let pts = mcpart_analysis::PointsTo::compute(&p);
        let access = AccessInfo::compute(&p, &pts, &Profile::uniform(&p, 1));
        let m = Machine::paper_2cluster(5).with_coherent_cache(9);
        let mut est = RegionEstimator::new(&p, p.entry, &[p.entry_function().entry], &access, &m);
        let local = est.estimate(&[0, 0, 0]);
        est.set_mem_home(1, ClusterId::new(1), 9);
        let remote = est.estimate(&[0, 0, 0]);
        assert!(remote >= local + 9, "remote {remote} vs local {local}");
        // On the home cluster the penalty vanishes (modulo operand
        // transfer for the address).
        let at_home = est.estimate(&[0, 1, 1]);
        assert!(at_home < remote, "at_home {at_home} vs remote {remote}");
    }

    // A mixed region exercising locks, live-ins, memory homes, cut
    // edges and FU contention, for the incremental-vs-full checks.
    fn mixed_estimator() -> (Program, Machine) {
        let mut p = Program::new("t");
        let obj = p.add_object(mcpart_ir::DataObject::global("g", 16));
        let mut b = mcpart_ir::FunctionBuilder::entry(&mut p);
        let a = b.addrof(obj);
        let v = b.load(mcpart_ir::MemWidth::B4, a);
        let mut accum = v;
        for i in 0..6 {
            let c = b.iconst(i);
            accum = b.add(accum, c);
        }
        let w = b.mul(accum, accum);
        b.store(mcpart_ir::MemWidth::B4, a, w);
        b.ret(Some(w));
        let m = Machine::paper_2cluster(5).with_coherent_cache(9);
        (p, m)
    }

    #[test]
    fn incremental_matches_full_evaluation() {
        let (p, m) = mixed_estimator();
        let pts = mcpart_analysis::PointsTo::compute(&p);
        let access = AccessInfo::compute(&p, &pts, &Profile::uniform(&p, 1));
        let mut est = RegionEstimator::new(&p, p.entry, &[p.entry_function().entry], &access, &m);
        est.set_mem_home(1, ClusterId::new(1), 9);
        est.add_live_in_home(2, ClusterId::new(1));
        let n = est.len();
        let mut inc = IncrementalEstimator::new(&est);
        // Walk through a deterministic pseudo-random sequence of
        // assignments via try_move, checking estimate and peak against
        // the from-scratch evaluator at every step.
        let mut state = 0x1234_5678_9abc_def0u64;
        for step in 0..64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let node = (state >> 33) as usize % n;
            let to = ((state >> 17) & 1) as u16;
            inc.try_move(&[node as u32], to);
            if step % 3 == 0 {
                inc.rollback();
            } else {
                inc.commit();
            }
            let expect_e = est.estimate(inc.assign());
            let expect_p = est.resource_peak(inc.assign());
            assert_eq!(inc.estimate(), expect_e, "step {step}");
            assert_eq!(inc.resource_peak(), expect_p, "step {step}");
        }
    }

    #[test]
    fn path_lower_bound_never_exceeds_estimate() {
        let (p, m) = mixed_estimator();
        let pts = mcpart_analysis::PointsTo::compute(&p);
        let access = AccessInfo::compute(&p, &pts, &Profile::uniform(&p, 1));
        let mut est = RegionEstimator::new(&p, p.entry, &[p.entry_function().entry], &access, &m);
        est.set_mem_home(1, ClusterId::new(1), 9);
        est.add_live_in_home(2, ClusterId::new(1));
        let n = est.len();
        let mut inc = IncrementalEstimator::new(&est);
        let mut state = 0xdead_beef_cafe_f00du64;
        for _ in 0..64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let node = (state >> 33) as usize % n;
            inc.try_move(&[node as u32], ((state >> 17) & 1) as u16);
            inc.commit();
            let lb = (inc.resource_peak() as u64).max(inc.path_lower_bound());
            let e = est.estimate(inc.assign());
            assert!(lb <= e as u64, "lb {lb} > estimate {e}");
        }
    }

    #[test]
    fn estimate_unless_worse_prunes_exactly() {
        let (p, m) = mixed_estimator();
        let pts = mcpart_analysis::PointsTo::compute(&p);
        let access = AccessInfo::compute(&p, &pts, &Profile::uniform(&p, 1));
        let est = RegionEstimator::new(&p, p.entry, &[p.entry_function().entry], &access, &m);
        let n = est.len();
        let mut inc = IncrementalEstimator::new(&est);
        let bound = inc.estimate();
        let peak_bound = inc.resource_peak();
        let mut pruned = 0usize;
        for node in 0..n {
            inc.try_move(&[node as u32], 1);
            match inc.estimate_unless_worse(bound, peak_bound) {
                Some((e, peak)) => {
                    assert_eq!(e, est.estimate(inc.assign()));
                    assert_eq!(peak, est.resource_peak(inc.assign()));
                }
                None => {
                    // Pruned: the probe must genuinely fail RHOP's
                    // acceptance test against (bound, peak_bound).
                    let e = est.estimate(inc.assign());
                    let peak = est.resource_peak(inc.assign());
                    let improves = e < bound || (e == bound && peak < peak_bound);
                    assert!(!improves, "pruned an improving move: e={e} peak={peak}");
                    pruned += 1;
                }
            }
            inc.rollback();
        }
        assert_eq!(inc.pruned_evals as usize, pruned);
        // The workspace path and the allocating path agree after reuse.
        assert_eq!(inc.estimate(), bound);
    }

    #[test]
    fn load_groups_expands_group_assignments() {
        let (p, m) = mixed_estimator();
        let pts = mcpart_analysis::PointsTo::compute(&p);
        let access = AccessInfo::compute(&p, &pts, &Profile::uniform(&p, 1));
        let est = RegionEstimator::new(&p, p.entry, &[p.entry_function().entry], &access, &m);
        let n = est.len();
        // Two groups: even nodes and odd nodes.
        let members: Vec<Vec<u32>> = vec![
            (0..n as u32).filter(|i| i % 2 == 0).collect(),
            (0..n as u32).filter(|i| i % 2 == 1).collect(),
        ];
        let mut inc = IncrementalEstimator::new(&est);
        inc.load_groups(&members, &[0, 1]);
        let expect: Vec<u16> = (0..n).map(|i| (i % 2) as u16).collect();
        assert_eq!(inc.assign(), &expect[..]);
        assert_eq!(inc.estimate(), est.estimate(&expect));
        assert_eq!(inc.resource_peak(), est.resource_peak(&expect));
    }

    #[test]
    fn bandwidth_bound_counts_unique_transfers() {
        // One producer feeding many consumers on the other cluster is a
        // single transfer; many producers are many transfers.
        let (p, access) = setup(|b| {
            let x = b.iconst(1);
            for _ in 0..6 {
                b.add(x, x);
            }
            b.ret(None);
        });
        let m = Machine::paper_2cluster(1);
        let est = RegionEstimator::new(&p, p.entry, &[p.entry_function().entry], &access, &m);
        // x on 0, all adds on 1: one unique (producer, cluster) pair.
        let mut assign = vec![1u16; est.len()];
        assign[0] = 0;
        let e = est.estimate(&assign);
        assert!(e < INFEASIBLE);
        // The estimate should not balloon with consumer count.
        assert!(e <= 10, "e = {e}");
    }
}
