//! The RHOP schedule-length estimator.
//!
//! RHOP's key idea (Chu, Fan & Mahlke, PLDI'03) is to judge candidate
//! cluster assignments *without scheduling*: a cheap estimate combines a
//! resource bound (operations per function-unit kind per cluster), an
//! intercluster-bandwidth bound, and a dependence critical path in which
//! every *cut* register edge is stretched by the move latency.
//!
//! The CGO'06 extension is the `locked` table: memory operations whose
//! data object has a home cluster are infeasible anywhere else, so the
//! estimator returns [`INFEASIBLE`] for any assignment displacing them.

use crate::depgraph::{DepGraph, DepKind};
use mcpart_analysis::AccessInfo;
use mcpart_ir::{BlockId, ClusterId, FuKind, FuncId, OpId, Program};
use mcpart_machine::Machine;

/// Estimate value representing an infeasible assignment (a locked
/// operation displaced from its home cluster).
pub const INFEASIBLE: u32 = u32::MAX;

/// Schedule-length estimator for one region under candidate cluster
/// assignments.
#[derive(Clone, Debug)]
pub struct RegionEstimator {
    /// The region dependence graph (node order = program order).
    pub dg: DepGraph,
    /// Function-unit kind per node.
    fu_kind: Vec<FuKind>,
    /// Base operation latency per node.
    base_lat: Vec<u32>,
    /// Cluster locks per node ([`None`] = free).
    locked: Vec<Option<ClusterId>>,
    /// Home clusters of live-in operands per node: consuming one from a
    /// different cluster delays the node by the move latency.
    live_in_homes: Vec<Vec<u16>>,
    /// Coherent-cache model: per memory node, its object's home cluster
    /// and the penalty for executing elsewhere.
    mem_home_penalty: Vec<Option<(u16, u32)>>,
    /// Per-cluster, per-kind unit counts.
    fu_counts: Vec<[u32; 4]>,
    move_latency: u32,
    moves_per_cycle: u32,
}

impl RegionEstimator {
    /// Builds an estimator for the given region blocks.
    pub fn new(
        program: &Program,
        func: FuncId,
        blocks: &[BlockId],
        access: &AccessInfo,
        machine: &Machine,
    ) -> Self {
        let lat = |op: OpId| machine.latency.of(program.functions[func].ops[op].opcode);
        let dg = DepGraph::for_region(program, func, blocks, access, &lat);
        let f = &program.functions[func];
        let fu_kind: Vec<FuKind> = dg.ops.iter().map(|&o| f.ops[o].opcode.fu_kind()).collect();
        let base_lat: Vec<u32> = dg.ops.iter().map(|&o| lat(o)).collect();
        let locked = vec![None; dg.len()];
        let live_in_homes = vec![Vec::new(); dg.len()];
        let mem_home_penalty = vec![None; dg.len()];
        let fu_counts: Vec<[u32; 4]> = machine
            .cluster_ids()
            .map(|c| {
                let mut counts = [0u32; 4];
                for kind in FuKind::ALL {
                    counts[kind.index()] = machine.fu_count(c, kind) as u32;
                }
                counts
            })
            .collect();
        RegionEstimator {
            dg,
            fu_kind,
            base_lat,
            locked,
            live_in_homes,
            mem_home_penalty,
            fu_counts,
            move_latency: machine.move_latency(),
            moves_per_cycle: machine.interconnect.moves_per_cycle.max(1),
        }
    }

    /// Number of nodes (operations) in the region.
    pub fn len(&self) -> usize {
        self.dg.len()
    }

    /// Returns `true` for an empty region.
    pub fn is_empty(&self) -> bool {
        self.dg.is_empty()
    }

    /// Locks a node to a cluster (used for memory operations whose
    /// object has a home, and for calls pinned to cluster 0).
    pub fn lock(&mut self, node: usize, cluster: ClusterId) {
        self.locked[node] = Some(cluster);
    }

    /// The lock of a node, if any.
    pub fn lock_of(&self, node: usize) -> Option<ClusterId> {
        self.locked[node]
    }

    /// Declares that `node` consumes a region live-in value homed on
    /// `cluster`; if the node is assigned elsewhere, the estimator
    /// delays it by the intercluster move latency. Used by the second
    /// RHOP sweep to coordinate placement across blocks.
    pub fn add_live_in_home(&mut self, node: usize, cluster: ClusterId) {
        self.live_in_homes[node].push(cluster.index() as u16);
    }

    /// Clears all live-in annotations.
    pub fn clear_live_in_homes(&mut self) {
        for v in &mut self.live_in_homes {
            v.clear();
        }
    }

    /// Declares that memory node `node` accesses an object homed on
    /// `cluster` under a coherent-cache model with the given remote
    /// penalty: executing the node elsewhere stretches its latency.
    pub fn set_mem_home(&mut self, node: usize, cluster: ClusterId, penalty: u32) {
        self.mem_home_penalty[node] = Some((cluster.index() as u16, penalty));
    }

    /// Estimates the schedule length of the region under `assign`
    /// (cluster index per node) by running a lightweight greedy list
    /// schedule: function units per cluster and the intercluster
    /// network bandwidth are honored, and every *cut* register edge
    /// inserts a virtual transfer (deduplicated per producer and
    /// destination cluster) that occupies a network slot and delays its
    /// consumers by the move latency.
    ///
    /// This plays the role of RHOP's wand-histogram estimator: cheap
    /// enough to call per candidate move, and faithful enough that
    /// refinement decisions agree with the real scheduler.
    ///
    /// Returns [`INFEASIBLE`] when a locked node is displaced.
    ///
    /// # Panics
    ///
    /// Panics if `assign.len()` differs from the node count.
    pub fn estimate(&self, assign: &[u16]) -> u32 {
        assert_eq!(assign.len(), self.len());
        for (i, lock) in self.locked.iter().enumerate() {
            if let Some(c) = lock {
                if assign[i] as usize != c.index() {
                    return INFEASIBLE;
                }
            }
        }
        let n = self.len();
        if n == 0 {
            return 0;
        }
        let nclusters = self.fu_counts.len();

        // Height priority over the dependence graph (precomputable per
        // assignment only because cut edges change latencies; base
        // heights are a good enough priority).
        let mut height = vec![0u64; n];
        for i in (0..n).rev() {
            height[i] = self.base_lat[i].max(1) as u64;
            for &di in &self.dg.succs[i] {
                let d = self.dg.deps[di as usize];
                height[i] = height[i].max(d.latency as u64 + height[d.to as usize]);
            }
        }

        let mut unissued_preds: Vec<u32> = (0..n).map(|i| self.dg.preds[i].len() as u32).collect();
        let mut ready_cycle = vec![0u32; n];
        for (i, homes) in self.live_in_homes.iter().enumerate() {
            if homes.iter().any(|&h| h != assign[i]) {
                ready_cycle[i] = self.move_latency;
            }
        }
        let mut issued = vec![false; n];
        // Wakeup buckets: nodes to (re)consider at a given cycle.
        let horizon = (n as u32 + 4) * (self.move_latency.max(8) + 4);
        let mut wakeup: Vec<Vec<u32>> = vec![Vec::new(); horizon as usize + 2];
        for i in 0..n {
            if unissued_preds[i] == 0 {
                wakeup[ready_cycle[i].min(horizon) as usize].push(i as u32);
            }
        }
        // Pending transfers: (available_from, producer, dest cluster).
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut transfers: BinaryHeap<Reverse<(u32, u32, u16)>> = BinaryHeap::new();
        let mut transfer_requested: std::collections::HashSet<(u32, u16)> =
            std::collections::HashSet::new();

        let mut fu_free = vec![[0u32; 4]; nclusters];
        let mut issued_count = 0usize;
        let mut max_completion = 0u32;
        let mut cycle = 0u32;
        while issued_count < n && cycle <= horizon {
            for (c, counts) in fu_free.iter_mut().enumerate() {
                counts.copy_from_slice(&self.fu_counts[c]);
            }
            let mut net_free = self.moves_per_cycle;
            // Issue pending transfers first (they unblock consumers).
            while net_free > 0 {
                match transfers.peek() {
                    Some(Reverse((avail, _, _))) if *avail <= cycle => {
                        let Reverse((_, u, destc)) = transfers.pop().expect("peeked");
                        net_free -= 1;
                        let done = cycle + self.move_latency;
                        for &di in &self.dg.succs[u as usize] {
                            let d = self.dg.deps[di as usize];
                            if d.kind == DepKind::Flow
                                && assign[d.to as usize] == destc
                                && assign[d.from as usize] != destc
                            {
                                let t = d.to as usize;
                                unissued_preds[t] -= 1;
                                ready_cycle[t] = ready_cycle[t].max(done);
                                if unissued_preds[t] == 0 {
                                    let at = ready_cycle[t].max(cycle + 1).min(horizon);
                                    wakeup[at as usize].push(d.to);
                                }
                            }
                        }
                        max_completion = max_completion.max(done);
                    }
                    _ => break,
                }
            }
            // Issue ready operations, highest priority first.
            let mut candidates = std::mem::take(&mut wakeup[cycle as usize]);
            candidates.sort_by_key(|&i| Reverse(height[i as usize]));
            for i in candidates {
                let iu = i as usize;
                if issued[iu] || unissued_preds[iu] != 0 || ready_cycle[iu] > cycle {
                    if !issued[iu] && unissued_preds[iu] == 0 && ready_cycle[iu] > cycle {
                        wakeup[ready_cycle[iu].min(horizon) as usize].push(i);
                    }
                    continue;
                }
                let c = assign[iu] as usize;
                let k = self.fu_kind[iu].index();
                if fu_free[c][k] == 0 {
                    // Retry next cycle.
                    wakeup[(cycle + 1).min(horizon) as usize].push(i);
                    continue;
                }
                fu_free[c][k] -= 1;
                issued[iu] = true;
                issued_count += 1;
                let coherence = match self.mem_home_penalty[iu] {
                    Some((home, penalty)) if home != assign[iu] => penalty,
                    _ => 0,
                };
                let finish = cycle + (self.base_lat[iu] + coherence).max(1);
                max_completion = max_completion.max(finish);
                // Wake successors / request transfers.
                for &di in &self.dg.succs[iu] {
                    let d = self.dg.deps[di as usize];
                    let t = d.to as usize;
                    let cut_flow = d.kind == DepKind::Flow && assign[t] != assign[iu];
                    if cut_flow {
                        let key = (i, assign[t]);
                        if transfer_requested.insert(key) {
                            transfers.push(Reverse((finish, i, assign[t])));
                        }
                        // The consumer is unblocked when the transfer
                        // lands (handled above).
                    } else {
                        unissued_preds[t] -= 1;
                        // Value-carrying edges stretch with the
                        // producer's coherence penalty (its result lands
                        // later); pure ordering edges do not.
                        let extra = match d.kind {
                            DepKind::Flow | DepKind::MemFlow => coherence,
                            _ => 0,
                        };
                        ready_cycle[t] = ready_cycle[t].max(cycle + d.latency + extra);
                        if unissued_preds[t] == 0 {
                            // Wake no earlier than the next cycle: this
                            // cycle's bucket has already been drained.
                            let at = ready_cycle[t].max(cycle + 1).min(horizon);
                            wakeup[at as usize].push(d.to);
                        }
                    }
                }
            }
            cycle += 1;
        }
        if issued_count < n {
            // Horizon exhausted (pathological contention): fall back to
            // the serial upper bound rather than underestimating.
            debug_assert!(false, "estimator failed to issue all nodes");
            return self.base_lat.iter().map(|&l| l.max(1)).sum::<u32>().max(max_completion);
        }
        max_completion.max(1)
    }

    /// Convenience: estimate with every node on cluster 0.
    pub fn estimate_single_cluster(&self) -> u32 {
        self.estimate(&vec![0u16; self.len()])
    }

    /// The peak per-(cluster, unit-kind) occupancy of an assignment:
    /// `max ceil(ops / units)`. Used by RHOP refinement as a tie-breaker
    /// — an equal-length estimate that lowers the resource peak leaves
    /// more slack for the real scheduler.
    pub fn resource_peak(&self, assign: &[u16]) -> u32 {
        let nclusters = self.fu_counts.len();
        let mut counts = vec![[0u32; 4]; nclusters];
        for (i, &kind) in self.fu_kind.iter().enumerate() {
            counts[assign[i] as usize][kind.index()] += 1;
        }
        let mut peak = 0u32;
        for (c, kinds) in counts.iter().enumerate() {
            for (k, &count) in kinds.iter().enumerate() {
                if count > 0 {
                    peak = peak.max(count.div_ceil(self.fu_counts[c][k].max(1)));
                }
            }
        }
        peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpart_analysis::PointsTo;
    use mcpart_ir::{FunctionBuilder, Profile};

    fn setup(build: impl FnOnce(&mut FunctionBuilder<'_>)) -> (Program, AccessInfo) {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        build(&mut b);
        let pts = PointsTo::compute(&p);
        let access = AccessInfo::compute(&p, &pts, &Profile::uniform(&p, 1));
        (p, access)
    }

    #[test]
    fn resource_bound_dominates_wide_blocks() {
        // 12 independent consts: 2 int units on one cluster -> >= 6;
        // split across two clusters -> >= 3.
        let (p, access) = setup(|b| {
            for i in 0..12 {
                b.iconst(i);
            }
            b.ret(None);
        });
        let m = Machine::paper_2cluster(5);
        let est = RegionEstimator::new(&p, p.entry, &[p.entry_function().entry], &access, &m);
        let all0 = est.estimate_single_cluster();
        let mut split = vec![0u16; est.len()];
        for (i, s) in split.iter_mut().enumerate() {
            if i % 2 == 1 {
                *s = 1;
            }
        }
        let balanced = est.estimate(&split);
        assert!(all0 >= 6, "all0 = {all0}");
        assert!(balanced < all0, "balanced {balanced} vs {all0}");
    }

    #[test]
    fn cut_critical_edge_costs_move_latency() {
        let (p, access) = setup(|b| {
            let x = b.iconst(1);
            let y = b.add(x, x);
            let z = b.add(y, y);
            b.ret(Some(z));
        });
        let m = Machine::paper_2cluster(5);
        let est = RegionEstimator::new(&p, p.entry, &[p.entry_function().entry], &access, &m);
        let same = est.estimate(&vec![0; est.len()]);
        // Cut between the two adds.
        let mut assign = vec![0u16; est.len()];
        assign[2] = 1; // second add on the other cluster
        assign[3] = 1; // ret follows it
        let cut = est.estimate(&assign);
        assert!(cut >= same + 5, "cut {cut} vs same {same}");
    }

    #[test]
    fn locked_node_infeasible_elsewhere() {
        let (p, access) = setup(|b| {
            let v = b.iconst(1);
            b.ret(Some(v));
        });
        let m = Machine::paper_2cluster(5);
        let mut est = RegionEstimator::new(&p, p.entry, &[p.entry_function().entry], &access, &m);
        est.lock(0, ClusterId::new(1));
        assert_eq!(est.estimate(&[0, 0]), INFEASIBLE);
        assert_ne!(est.estimate(&[1, 0]), INFEASIBLE);
        assert_eq!(est.lock_of(0), Some(ClusterId::new(1)));
    }

    #[test]
    fn live_in_home_delays_remote_consumers() {
        // Region = the second block only, so `x` is a live-in value.
        let mut p = Program::new("t");
        let mut b = mcpart_ir::FunctionBuilder::entry(&mut p);
        let x = b.iconst(1);
        let b2 = b.block("b2");
        b.jump(b2);
        b.switch_to(b2);
        let y = b.add(x, x);
        b.ret(Some(y));
        let pts = mcpart_analysis::PointsTo::compute(&p);
        let access = AccessInfo::compute(&p, &pts, &Profile::uniform(&p, 1));
        let m = Machine::paper_2cluster(5);
        let mut est = RegionEstimator::new(&p, p.entry, &[b2], &access, &m);
        assert_eq!(est.len(), 2); // add + ret
        let local = est.estimate(&[0, 0]);
        // x lives on cluster 1: consuming it on cluster 0 is delayed by
        // the move latency.
        est.add_live_in_home(0, ClusterId::new(1));
        let remote = est.estimate(&[0, 0]);
        assert!(remote >= local + 5, "remote {remote} vs local {local}");
        // Consuming it on its home cluster avoids the delay entirely.
        let at_home = est.estimate(&[1, 1]);
        assert_eq!(at_home, local, "at_home {at_home} vs local {local}");
        est.clear_live_in_homes();
        assert_eq!(est.estimate(&[0, 0]), local);
    }

    #[test]
    fn coherent_mem_home_penalty_applies_off_cluster() {
        let mut p = Program::new("t");
        let obj = p.add_object(mcpart_ir::DataObject::global("g", 16));
        let mut b = mcpart_ir::FunctionBuilder::entry(&mut p);
        let a = b.addrof(obj);
        let v = b.load(mcpart_ir::MemWidth::B4, a);
        b.ret(Some(v));
        let pts = mcpart_analysis::PointsTo::compute(&p);
        let access = AccessInfo::compute(&p, &pts, &Profile::uniform(&p, 1));
        let m = Machine::paper_2cluster(5).with_coherent_cache(9);
        let mut est = RegionEstimator::new(&p, p.entry, &[p.entry_function().entry], &access, &m);
        let local = est.estimate(&[0, 0, 0]);
        est.set_mem_home(1, ClusterId::new(1), 9);
        let remote = est.estimate(&[0, 0, 0]);
        assert!(remote >= local + 9, "remote {remote} vs local {local}");
        // On the home cluster the penalty vanishes (modulo operand
        // transfer for the address).
        let at_home = est.estimate(&[0, 1, 1]);
        assert!(at_home < remote, "at_home {at_home} vs remote {remote}");
    }

    #[test]
    fn bandwidth_bound_counts_unique_transfers() {
        // One producer feeding many consumers on the other cluster is a
        // single transfer; many producers are many transfers.
        let (p, access) = setup(|b| {
            let x = b.iconst(1);
            for _ in 0..6 {
                b.add(x, x);
            }
            b.ret(None);
        });
        let m = Machine::paper_2cluster(1);
        let est = RegionEstimator::new(&p, p.entry, &[p.entry_function().entry], &access, &m);
        // x on 0, all adds on 1: one unique (producer, cluster) pair.
        let mut assign = vec![1u16; est.len()];
        assign[0] = 0;
        let e = est.estimate(&assign);
        assert!(e < INFEASIBLE);
        // The estimate should not balloon with consumer count.
        assert!(e <= 10, "e = {e}");
    }
}
