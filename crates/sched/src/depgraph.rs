//! Dependence graphs over operations, for scheduling and estimation.

use mcpart_analysis::{AccessInfo, AccessSite};
use mcpart_ir::{BlockId, FuncId, OpId, Opcode, Program, VReg};
use std::collections::HashMap;

/// The kind of a dependence edge.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DepKind {
    /// Register true dependence (def → use). Latency = producer latency;
    /// an intercluster move is charged on top by the consumer.
    Flow,
    /// Register anti dependence (use → redefinition). Zero latency: a
    /// read and a write of the same register may share a cycle (reads
    /// happen at issue).
    Anti,
    /// Register output dependence (def → redefinition).
    Output,
    /// Memory true dependence (store/malloc → load on a possibly-equal
    /// address).
    MemFlow,
    /// Memory anti dependence (load → store).
    MemAnti,
    /// Memory output dependence (store → store).
    MemOutput,
    /// Ordering around calls (side effects).
    Side,
}

/// A dependence edge between node indices of a [`DepGraph`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Dep {
    /// Producer node index.
    pub from: u32,
    /// Consumer node index.
    pub to: u32,
    /// Minimum issue-cycle distance (`issue(to) >= issue(from) +
    /// latency`).
    pub latency: u32,
    /// Edge kind.
    pub kind: DepKind,
}

/// A dependence DAG over a block's or region's operations.
///
/// Nodes are indexed densely in program order, which is a topological
/// order by construction (for regions, loop back-edges are dropped — the
/// region graph is an acyclic schedule *estimate*, exactly as in RHOP).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DepGraph {
    /// Node index → operation id.
    pub ops: Vec<OpId>,
    /// Operation id → node index.
    pub index: HashMap<OpId, u32>,
    /// All edges.
    pub deps: Vec<Dep>,
    /// Incoming edge indices per node.
    pub preds: Vec<Vec<u32>>,
    /// Outgoing edge indices per node.
    pub succs: Vec<Vec<u32>>,
    /// Containing function (for convenience).
    pub func: FuncId,
}

impl DepGraph {
    /// Builds the dependence graph of a single block.
    ///
    /// `op_latency` supplies per-operation latencies (it sees the op id,
    /// so callers can special-case intercluster moves). `access`
    /// disambiguates memory references: two memory operations conflict
    /// when their points-to object sets intersect (or when either set is
    /// empty, conservatively).
    pub fn for_block(
        program: &Program,
        func: FuncId,
        block: BlockId,
        access: &AccessInfo,
        op_latency: &dyn Fn(OpId) -> u32,
    ) -> Self {
        let blocks = [block];
        Self::build(program, func, &blocks, access, op_latency)
    }

    /// Builds the flow-centric dependence graph of a multi-block region
    /// (used by the RHOP schedule estimator). Cross-block register flow
    /// is included when the definition precedes the use in region order.
    pub fn for_region(
        program: &Program,
        func: FuncId,
        blocks: &[BlockId],
        access: &AccessInfo,
        op_latency: &dyn Fn(OpId) -> u32,
    ) -> Self {
        Self::build(program, func, blocks, access, op_latency)
    }

    fn build(
        program: &Program,
        func: FuncId,
        blocks: &[BlockId],
        access: &AccessInfo,
        op_latency: &dyn Fn(OpId) -> u32,
    ) -> Self {
        let f = &program.functions[func];
        let mut ops: Vec<OpId> = Vec::new();
        for &b in blocks {
            for &op in &f.blocks[b].ops {
                ops.push(op);
            }
        }
        let index: HashMap<OpId, u32> =
            ops.iter().enumerate().map(|(i, &op)| (op, i as u32)).collect();
        let n = ops.len();
        let mut deps: Vec<Dep> = Vec::new();
        let mut seen: HashMap<(u32, u32), usize> = HashMap::new();
        let mut add = |deps: &mut Vec<Dep>, from: u32, to: u32, latency: u32, kind: DepKind| {
            if from == to {
                return;
            }
            debug_assert!(from < to, "dependence must follow program order");
            match seen.entry((from, to)) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    let d = &mut deps[*e.get()];
                    if latency > d.latency {
                        d.latency = latency;
                        d.kind = kind;
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(deps.len());
                    deps.push(Dep { from, to, latency, kind });
                }
            }
        };

        // Register dependences.
        let mut last_def: HashMap<VReg, u32> = HashMap::new();
        let mut last_uses: HashMap<VReg, Vec<u32>> = HashMap::new();
        for (i, &op_id) in ops.iter().enumerate() {
            let i = i as u32;
            let op = &f.ops[op_id];
            for &s in &op.srcs {
                if let Some(&d) = last_def.get(&s) {
                    add(&mut deps, d, i, op_latency(ops[d as usize]), DepKind::Flow);
                }
                last_uses.entry(s).or_default().push(i);
            }
            for &d in &op.dsts {
                if let Some(&prev) = last_def.get(&d) {
                    add(&mut deps, prev, i, 1, DepKind::Output);
                }
                if let Some(users) = last_uses.get(&d) {
                    for &u in users {
                        if u < i {
                            add(&mut deps, u, i, 0, DepKind::Anti);
                        }
                    }
                }
                last_def.insert(d, i);
                last_uses.remove(&d);
            }
        }

        // Memory and side-effect ordering (within the whole region, in
        // program order).
        let objects_of = |op_id: OpId| -> Option<&mcpart_analysis::ObjectSet> {
            access.site_objects.get(&AccessSite { func, op: op_id })
        };
        let may_alias = |a: OpId, b: OpId| -> bool {
            // Constant offsets into the same object (or different
            // objects entirely) can prove independence even when the
            // object-granular sets intersect.
            if access.addresses.provably_disjoint(program, func, a, b) {
                return false;
            }
            match (objects_of(a), objects_of(b)) {
                (Some(sa), Some(sb)) => {
                    sa.is_empty() || sb.is_empty() || sa.iter().any(|o| sb.contains(o))
                }
                _ => true, // missing info: be conservative
            }
        };
        let mut mem_ops: Vec<u32> = Vec::new();
        let mut call_ops: Vec<u32> = Vec::new();

        for (i, &op_id) in ops.iter().enumerate() {
            let i = i as u32;
            let op = &f.ops[op_id];
            match op.opcode {
                Opcode::Load(_) | Opcode::Store(_) | Opcode::Malloc(_) => {
                    let i_writes = !op.opcode.is_load();
                    for &j in &mem_ops {
                        let jop = &f.ops[ops[j as usize]];
                        let j_writes = !jop.opcode.is_load();
                        if !(i_writes || j_writes) {
                            continue;
                        }
                        if !may_alias(ops[j as usize], op_id) {
                            continue;
                        }
                        let (kind, latency) = match (j_writes, i_writes) {
                            (true, false) => (DepKind::MemFlow, op_latency(ops[j as usize])),
                            (false, true) => (DepKind::MemAnti, 0),
                            (true, true) => (DepKind::MemOutput, 1),
                            (false, false) => unreachable!(),
                        };
                        add(&mut deps, j, i, latency, kind);
                    }
                    for &c in &call_ops {
                        add(&mut deps, c, i, 1, DepKind::Side);
                    }
                    mem_ops.push(i);
                }
                Opcode::Call(_) => {
                    for &j in mem_ops.iter().chain(call_ops.iter()) {
                        add(&mut deps, j, i, 1, DepKind::Side);
                    }
                    call_ops.push(i);
                }
                _ => {}
            }
        }
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for (di, d) in deps.iter().enumerate() {
            preds[d.to as usize].push(di as u32);
            succs[d.from as usize].push(di as u32);
        }
        DepGraph { ops, index, deps, preds, succs, func }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Earliest issue cycles honoring dependences (resources ignored).
    pub fn asap(&self) -> Vec<u32> {
        let mut asap = vec![0u32; self.len()];
        for i in 0..self.len() {
            for &di in &self.preds[i] {
                let d = self.deps[di as usize];
                asap[i] = asap[i].max(asap[d.from as usize] + d.latency);
            }
        }
        asap
    }

    /// Latest issue cycles for a given schedule horizon.
    pub fn alap(&self, horizon: u32) -> Vec<u32> {
        let mut alap = vec![horizon; self.len()];
        for i in (0..self.len()).rev() {
            for &di in &self.succs[i] {
                let d = self.deps[di as usize];
                alap[i] = alap[i].min(alap[d.to as usize].saturating_sub(d.latency));
            }
        }
        alap
    }

    /// Dependence-only critical-path length in cycles (the horizon for
    /// ALAP), counting each node's own latency at the sink.
    pub fn critical_path(&self, op_latency: &dyn Fn(OpId) -> u32) -> u32 {
        let asap = self.asap();
        self.ops
            .iter()
            .enumerate()
            .map(|(i, &op)| asap[i] + op_latency(op).max(1))
            .max()
            .unwrap_or(0)
    }

    /// Per-node slack = ALAP − ASAP for the dependence-only horizon.
    pub fn slack(&self) -> Vec<u32> {
        let asap = self.asap();
        let horizon = asap
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                let out: u32 =
                    self.succs[i].iter().map(|&d| self.deps[d as usize].latency).max().unwrap_or(0);
                a + out
            })
            .max()
            .unwrap_or(0);
        let alap = self.alap(horizon);
        asap.iter().zip(&alap).map(|(&a, &l)| l.saturating_sub(a)).collect()
    }

    /// Slack of an edge: how many cycles the edge could stretch without
    /// lengthening the dependence-only schedule.
    pub fn edge_slacks(&self) -> Vec<u32> {
        let asap = self.asap();
        let horizon = self
            .ops
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let out: u32 =
                    self.succs[i].iter().map(|&d| self.deps[d as usize].latency).max().unwrap_or(0);
                asap[i] + out
            })
            .max()
            .unwrap_or(0);
        let alap = self.alap(horizon);
        self.deps
            .iter()
            .map(|d| alap[d.to as usize].saturating_sub(asap[d.from as usize] + d.latency))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpart_analysis::PointsTo;
    use mcpart_ir::{DataObject, FunctionBuilder, MemWidth, Profile};

    fn setup(build: impl FnOnce(&mut FunctionBuilder<'_>)) -> (Program, AccessInfo) {
        let mut p = Program::new("t");
        p.add_object(DataObject::global("a", 64));
        p.add_object(DataObject::global("b", 64));
        let mut b = FunctionBuilder::entry(&mut p);
        build(&mut b);
        let pts = PointsTo::compute(&p);
        let access = AccessInfo::compute(&p, &pts, &Profile::uniform(&p, 1));
        (p, access)
    }

    fn unit_latency(_: OpId) -> u32 {
        1
    }

    #[test]
    fn flow_dependence_chain() {
        let (p, access) = setup(|b| {
            let x = b.iconst(1);
            let y = b.add(x, x);
            let z = b.add(y, y);
            b.ret(Some(z));
        });
        let entry = p.entry_function().entry;
        let g = DepGraph::for_block(&p, p.entry, entry, &access, &unit_latency);
        assert_eq!(g.len(), 4);
        let asap = g.asap();
        assert_eq!(asap, vec![0, 1, 2, 3]);
        assert!(g.deps.iter().any(|d| d.kind == DepKind::Flow));
    }

    #[test]
    fn independent_loads_have_no_mem_edge() {
        let (p, access) = setup(|b| {
            let a = b.addrof(mcpart_ir::ObjectId(0));
            let c = b.addrof(mcpart_ir::ObjectId(1));
            let _v = b.load(MemWidth::B4, a);
            let _w = b.load(MemWidth::B4, c);
            b.ret(None);
        });
        let entry = p.entry_function().entry;
        let g = DepGraph::for_block(&p, p.entry, entry, &access, &unit_latency);
        assert!(!g
            .deps
            .iter()
            .any(|d| matches!(d.kind, DepKind::MemFlow | DepKind::MemAnti | DepKind::MemOutput)));
    }

    #[test]
    fn store_load_same_object_ordered() {
        let (p, access) = setup(|b| {
            let a = b.addrof(mcpart_ir::ObjectId(0));
            let v = b.iconst(7);
            b.store(MemWidth::B4, a, v);
            let _w = b.load(MemWidth::B4, a);
            b.ret(None);
        });
        let entry = p.entry_function().entry;
        let g = DepGraph::for_block(&p, p.entry, entry, &access, &unit_latency);
        assert!(g.deps.iter().any(|d| d.kind == DepKind::MemFlow));
    }

    #[test]
    fn store_to_different_objects_unordered() {
        let (p, access) = setup(|b| {
            let a = b.addrof(mcpart_ir::ObjectId(0));
            let c = b.addrof(mcpart_ir::ObjectId(1));
            let v = b.iconst(7);
            b.store(MemWidth::B4, a, v);
            b.store(MemWidth::B4, c, v);
            b.ret(None);
        });
        let entry = p.entry_function().entry;
        let g = DepGraph::for_block(&p, p.entry, entry, &access, &unit_latency);
        assert!(!g.deps.iter().any(|d| d.kind == DepKind::MemOutput));
    }

    #[test]
    fn anti_dependence_on_redefinition() {
        let (p, access) = setup(|b| {
            let x = b.iconst(1);
            let _y = b.add(x, x); // uses x
            let z = b.iconst(5);
            b.mov_to(x, z); // redefines x -> anti edge from the add
            b.ret(None);
        });
        let entry = p.entry_function().entry;
        let g = DepGraph::for_block(&p, p.entry, entry, &access, &unit_latency);
        assert!(g.deps.iter().any(|d| d.kind == DepKind::Anti));
        assert!(g.deps.iter().any(|d| d.kind == DepKind::Output));
    }

    #[test]
    fn region_graph_spans_blocks() {
        let mut p = Program::new("t");
        p.add_object(DataObject::global("a", 8));
        let mut b = FunctionBuilder::entry(&mut p);
        let x = b.iconst(5);
        let b2 = b.block("b2");
        b.jump(b2);
        b.switch_to(b2);
        let y = b.add(x, x); // cross-block flow from entry
        b.ret(Some(y));
        let pts = PointsTo::compute(&p);
        let access = AccessInfo::compute(&p, &pts, &Profile::uniform(&p, 1));
        let entry = p.entry_function().entry;
        let g = DepGraph::for_region(&p, p.entry, &[entry, b2], &access, &unit_latency);
        let xi = g.index[&p.entry_function().blocks[entry].ops[0]];
        assert!(g.deps.iter().any(|d| d.from == xi && d.kind == DepKind::Flow));
    }

    #[test]
    fn slack_zero_on_critical_path() {
        let (p, access) = setup(|b| {
            let x = b.iconst(1);
            let y = b.add(x, x);
            let _z = b.iconst(9); // fully slack op
            b.ret(Some(y));
        });
        let entry = p.entry_function().entry;
        let g = DepGraph::for_block(&p, p.entry, entry, &access, &unit_latency);
        let slack = g.slack();
        // iconst on the chain has zero slack; the free iconst has plenty.
        assert_eq!(slack[0], 0);
        assert!(slack[2] > 0);
    }

    #[test]
    fn calls_serialize_memory() {
        let mut p = Program::new("t");
        let g_obj = p.add_object(DataObject::global("g", 8));
        let callee = {
            let mut cb = FunctionBuilder::new_function(&mut p, "c");
            cb.ret(None);
            cb.func_id()
        };
        let mut b = FunctionBuilder::entry(&mut p);
        let a = b.addrof(g_obj);
        let v = b.load(MemWidth::B4, a);
        b.call(callee, vec![], 0);
        let _w = b.load(MemWidth::B4, a);
        b.ret(Some(v));
        let pts = PointsTo::compute(&p);
        let access = AccessInfo::compute(&p, &pts, &Profile::uniform(&p, 1));
        let entry = p.entry_function().entry;
        let dg = DepGraph::for_block(&p, p.entry, entry, &access, &unit_latency);
        assert!(dg.deps.iter().filter(|d| d.kind == DepKind::Side).count() >= 2);
    }
}
