//! Placement normalization and intercluster move insertion.

use crate::placement::Placement;
use mcpart_analysis::{AccessInfo, AccessSite};
use mcpart_ir::{ClusterId, EntityMap, FuncId, Function, Op, OpId, Opcode, Program, VReg};
use mcpart_machine::Machine;
use std::collections::HashMap;

/// Computes the home cluster of every virtual register of `func`: the
/// cluster of its defining operations (parameters and undefined
/// registers live on cluster 0 by calling convention).
///
/// Registers with several definitions take the cluster of their first
/// definition; [`normalize_placement`] makes multi-definition groups
/// consistent beforehand.
pub fn vreg_homes(
    program: &Program,
    func: FuncId,
    placement: &Placement,
) -> EntityMap<VReg, ClusterId> {
    vreg_homes_of(&program.functions[func], &placement.op_cluster[func])
}

/// [`vreg_homes`] from a bare per-operation cluster map, for callers
/// (like the per-function RHOP tasks) that partition one function
/// without materializing a whole-program [`Placement`].
pub fn vreg_homes_of(
    f: &Function,
    clusters: &EntityMap<OpId, ClusterId>,
) -> EntityMap<VReg, ClusterId> {
    let mut homes: EntityMap<VReg, ClusterId> =
        EntityMap::with_default(f.num_vregs, ClusterId::new(0));
    let mut fixed = vec![false; f.num_vregs];
    for (oid, op) in f.ops.iter() {
        for &d in &op.dsts {
            if !std::mem::replace(&mut fixed[d.0 as usize], true) {
                homes[d] = clusters[oid];
            }
        }
    }
    homes
}

/// Makes a raw partitioning executable on `machine`:
///
/// 1. `call` operations are pinned to cluster 0 (the calling
///    convention places arguments, parameters and return values there);
/// 2. under partitioned memory, every memory operation is relocated to
///    the home cluster of the object(s) it accesses — this implements
///    both the paper's *locking* of memory operations in the second
///    RHOP pass and the Naïve baseline's post-hoc remote accesses;
/// 3. all definitions of the same register are forced onto one cluster
///    (a pinned member's cluster if any, otherwise the cluster holding
///    the definition group's highest dynamic execution frequency), so a
///    value has a unique home register file without dragging hot loop
///    definitions to a cold block's cluster.
///
/// Memory operations whose object sets span several home clusters take
/// the home of their first object (the GDP/Profile-Max coarsening makes
/// this case impossible; it can only arise with hand-built placements).
pub fn normalize_placement(
    program: &Program,
    placement: &Placement,
    access: &AccessInfo,
    machine: &Machine,
    profile: &mcpart_ir::Profile,
) -> Placement {
    let mut placement = placement.clone();
    for (fid, f) in program.functions.iter() {
        // Pass 1: pin calls and memory operations.
        let mut pinned: HashMap<OpId, ClusterId> = HashMap::new();
        for (oid, op) in f.ops.iter() {
            match op.opcode {
                Opcode::Call(_) => {
                    pinned.insert(oid, ClusterId::new(0));
                }
                _ if op.opcode.is_memory() && machine.memory.is_partitioned() => {
                    let site = AccessSite { func: fid, op: oid };
                    if let Some(objs) = access.site_objects.get(&site) {
                        if let Some(home) = objs.iter().find_map(|&o| placement.object_home[o]) {
                            pinned.insert(oid, home);
                        }
                    }
                }
                _ => {}
            }
        }
        for (&oid, &c) in &pinned {
            placement.set_cluster(fid, oid, c);
        }
        // Pass 2: definition groups. Union ops sharing a destination
        // register, then give each group one cluster: a pinned member's
        // cluster if any, else the first member's.
        let mut group_of_vreg: HashMap<VReg, usize> = HashMap::new();
        let mut groups: Vec<Vec<OpId>> = Vec::new();
        let mut group_of_op: HashMap<OpId, usize> = HashMap::new();
        for (oid, op) in f.ops.iter() {
            if op.dsts.is_empty() {
                continue;
            }
            // Collect existing groups this op touches.
            let mut target: Option<usize> = group_of_op.get(&oid).copied();
            for &d in &op.dsts {
                if let Some(&g) = group_of_vreg.get(&d) {
                    target = Some(match target {
                        Some(t) if t != g => {
                            // merge g into t
                            let moved = std::mem::take(&mut groups[g]);
                            for &m in &moved {
                                group_of_op.insert(m, t);
                            }
                            groups[t].extend(moved);
                            for (_, gv) in group_of_vreg.iter_mut() {
                                if *gv == g {
                                    *gv = t;
                                }
                            }
                            t
                        }
                        Some(t) => t,
                        None => g,
                    });
                }
            }
            let t = match target {
                Some(t) => t,
                None => {
                    groups.push(Vec::new());
                    groups.len() - 1
                }
            };
            groups[t].push(oid);
            group_of_op.insert(oid, t);
            for &d in &op.dsts {
                group_of_vreg.insert(d, t);
            }
        }
        for group in groups.iter().filter(|g| g.len() > 1) {
            let cluster = group.iter().find_map(|o| pinned.get(o).copied()).unwrap_or_else(|| {
                // Majority by dynamic frequency: a loop-carried value
                // follows its hot definitions, not a cold initializer.
                let mut freq_per_cluster: HashMap<ClusterId, u64> = HashMap::new();
                for &o in group {
                    let c = placement.cluster_of(fid, o);
                    *freq_per_cluster.entry(c).or_insert(0) +=
                        profile.op_freq(program, fid, o).max(1);
                }
                let mut best: Vec<(ClusterId, u64)> = freq_per_cluster.into_iter().collect();
                best.sort_by_key(|&(c, f)| (std::cmp::Reverse(f), c));
                best[0].0
            });
            for &o in group {
                if !pinned.contains_key(&o) {
                    placement.set_cluster(fid, o, cluster);
                }
            }
        }
    }
    placement
}

/// Statistics from move insertion.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MoveStats {
    /// Number of intercluster move operations inserted (static count).
    pub moves_inserted: usize,
    /// Of those, how many were hoisted to the producer side (one move
    /// per definition instead of one per consuming block).
    pub moves_hoisted: usize,
}

/// Where intercluster transfer moves are placed.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MoveStrategy {
    /// One move per (value, cluster) per *consuming block*: the value is
    /// re-transferred every time a block that reads it remotely
    /// executes. Simple and always safe; matches the classic consumer-
    /// side insertion.
    #[default]
    PerUseBlock,
    /// Profile-guided: when the producer's blocks execute less often
    /// than the sum of the remote consumer blocks, a single transfer is
    /// placed right after each definition instead (the copy mirrors the
    /// value's definitions, so it is valid wherever the value is).
    ProfileHoisted,
}

/// Inserts explicit intercluster `move` operations so that every
/// operation reads all of its operands from its own cluster's register
/// file.
///
/// Returns the rewritten program, the extended placement (inserted
/// moves are assigned to the *consumer's* cluster; they are recognized
/// as intercluster because their source register's home differs), and
/// insertion statistics. Within a block, a value moved to a cluster is
/// reused by later consumers on that cluster.
///
/// The input placement must be normalized (see [`normalize_placement`]):
/// all definitions of a register must share one cluster.
pub fn insert_moves(
    program: &Program,
    placement: &Placement,
    machine: &Machine,
) -> (Program, Placement, MoveStats) {
    insert_moves_with(program, placement, machine, None, MoveStrategy::PerUseBlock)
}

/// [`insert_moves`] with an explicit [`MoveStrategy`].
/// [`MoveStrategy::ProfileHoisted`] requires a profile to weigh
/// producer-side against consumer-side placement.
///
/// # Panics
///
/// Panics if `strategy` is [`MoveStrategy::ProfileHoisted`] and
/// `profile` is `None`.
pub fn insert_moves_with(
    program: &Program,
    placement: &Placement,
    machine: &Machine,
    profile: Option<&mcpart_ir::Profile>,
    strategy: MoveStrategy,
) -> (Program, Placement, MoveStats) {
    let mut new_program = program.clone();
    let mut new_placement = placement.clone();
    let mut stats = MoveStats::default();
    if machine.num_clusters() <= 1 {
        return (new_program, new_placement, stats);
    }
    if strategy == MoveStrategy::ProfileHoisted {
        assert!(profile.is_some(), "ProfileHoisted needs a profile");
    }
    for (fid, f) in program.functions.iter() {
        let homes = vreg_homes(program, fid, placement);
        // Profile-guided hoisting decisions: for each (value, cluster)
        // consumed remotely, compare the dynamic frequency of the
        // consuming blocks against the defining blocks.
        let mut hoist: HashMap<(VReg, ClusterId), ()> = HashMap::new();
        if strategy == MoveStrategy::ProfileHoisted {
            let profile = profile.expect("checked above");
            let du = mcpart_ir::DefUse::compute(f);
            let mut consumer_freq: HashMap<(VReg, ClusterId), u64> = HashMap::new();
            let mut consumer_blocks: HashMap<
                (VReg, ClusterId),
                std::collections::HashSet<mcpart_ir::BlockId>,
            > = HashMap::new();
            for (oid, op) in f.ops.iter() {
                let need = placement.cluster_of(fid, oid);
                for &s in &op.srcs {
                    if homes[s] != need {
                        let key = (s, need);
                        if consumer_blocks.entry(key).or_default().insert(op.block) {
                            *consumer_freq.entry(key).or_insert(0) +=
                                profile.block_freq(fid, op.block);
                        }
                    }
                }
            }
            for (&(v, c), &cfreq) in &consumer_freq {
                // Parameters and live-ins have no defs; leave them to
                // consumer-side insertion.
                if du.defs[v].is_empty() {
                    continue;
                }
                let def_freq: u64 =
                    du.defs[v].iter().map(|&d| profile.block_freq(fid, f.ops[d].block)).sum();
                if def_freq < cfreq {
                    hoist.insert((v, c), ());
                }
            }
        }
        let mut nf = Function::new(&f.name);
        nf.name = f.name.clone();
        nf.num_vregs = f.num_vregs;
        nf.params = f.params.clone();
        nf.regions = f.regions.clone();
        // Recreate the same block set (ids preserved).
        while nf.blocks.len() < f.blocks.len() {
            nf.add_block("");
        }
        for (bid, block) in f.blocks.iter() {
            nf.blocks[bid].label = block.label.clone();
        }
        // Registers carrying hoisted copies, shared across all blocks.
        let mut hoisted_reg: HashMap<(VReg, ClusterId), VReg> = HashMap::new();
        for &(v, c) in hoist.keys() {
            hoisted_reg.insert((v, c), VReg(0)); // placeholder, allocated below
        }
        let mut hoist_keys: Vec<(VReg, ClusterId)> = hoisted_reg.keys().copied().collect();
        hoist_keys.sort();
        for key in hoist_keys {
            let t = nf.new_vreg();
            hoisted_reg.insert(key, t);
        }
        let mut op_clusters: Vec<ClusterId> = Vec::new();
        for (bid, block) in f.blocks.iter() {
            // (vreg, cluster) -> copy register available in this block.
            let mut avail: HashMap<(VReg, ClusterId), VReg> = HashMap::new();
            for &old_id in &block.ops {
                let op = &f.ops[old_id];
                let need = placement.cluster_of(fid, old_id);
                let mut srcs = op.srcs.clone();
                for s in srcs.iter_mut() {
                    let home = homes[*s];
                    if home == need {
                        continue;
                    }
                    if let Some(&t) = hoisted_reg.get(&(*s, need)) {
                        // A producer-side copy mirrors this value.
                        *s = t;
                        continue;
                    }
                    let copy = match avail.get(&(*s, need)) {
                        Some(&c) => c,
                        None => {
                            let t = nf.new_vreg();
                            nf.append_op(bid, Op::new(Opcode::Move, vec![t], vec![*s]));
                            op_clusters.push(need);
                            stats.moves_inserted += 1;
                            avail.insert((*s, need), t);
                            t
                        }
                    };
                    *s = copy;
                }
                nf.append_op(bid, Op::new(op.opcode, op.dsts.clone(), srcs));
                op_clusters.push(need);
                // New definitions invalidate cached copies of the same
                // register, and refresh any hoisted copies right after
                // the definition.
                for &d in &op.dsts {
                    avail.retain(|(v, _), _| *v != d);
                }
                for &d in &op.dsts {
                    for cluster in machine.cluster_ids() {
                        if let Some(&t) = hoisted_reg.get(&(d, cluster)) {
                            nf.append_op(bid, Op::new(Opcode::Move, vec![t], vec![d]));
                            op_clusters.push(cluster);
                            stats.moves_inserted += 1;
                            stats.moves_hoisted += 1;
                        }
                    }
                }
            }
            nf.blocks[bid].term = block.term.clone();
        }
        let num_ops = nf.num_ops();
        new_program.functions[fid] = nf;
        let mut per_func: EntityMap<OpId, ClusterId> =
            EntityMap::with_default(num_ops, ClusterId::new(0));
        for (i, c) in op_clusters.into_iter().enumerate() {
            per_func[OpId(i as u32)] = c;
        }
        new_placement.op_cluster[fid] = per_func;
    }
    (new_program, new_placement, stats)
}

/// Returns `true` if `op` (in the post-insertion program) is an
/// intercluster move: a `Move` whose source register is homed on a
/// different cluster than the move executes on.
pub fn is_intercluster_move(
    program: &Program,
    func: FuncId,
    op: OpId,
    placement: &Placement,
    homes: &EntityMap<VReg, ClusterId>,
) -> bool {
    let operation = &program.functions[func].ops[op];
    matches!(operation.opcode, Opcode::Move)
        && homes[operation.srcs[0]] != placement.cluster_of(func, op)
}

/// Counts static intercluster moves per block of `func`.
pub fn intercluster_moves_per_block(
    program: &Program,
    func: FuncId,
    placement: &Placement,
) -> EntityMap<mcpart_ir::BlockId, u32> {
    let f = &program.functions[func];
    let homes = vreg_homes(program, func, placement);
    let mut counts = EntityMap::with_default(f.blocks.len(), 0u32);
    for (bid, block) in f.blocks.iter() {
        for &op in &block.ops {
            if is_intercluster_move(program, func, op, placement, &homes) {
                counts[bid] += 1;
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpart_analysis::PointsTo;
    use mcpart_ir::{DataObject, FunctionBuilder, MemWidth, Profile};

    fn machine() -> Machine {
        Machine::paper_2cluster(5)
    }

    fn access_of(p: &Program) -> AccessInfo {
        let pts = PointsTo::compute(p);
        AccessInfo::compute(p, &pts, &Profile::uniform(p, 1))
    }

    #[test]
    fn no_moves_when_single_cluster_consumers() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let x = b.iconst(1);
        let y = b.add(x, x);
        b.ret(Some(y));
        let pl = Placement::all_on_cluster0(&p);
        let (np, npl, stats) = insert_moves(&p, &pl, &machine());
        assert_eq!(stats.moves_inserted, 0);
        assert_eq!(np.num_ops(), p.num_ops());
        mcpart_ir::verify_program(&np).unwrap();
        assert_eq!(npl.ops_per_cluster(2), vec![p.num_ops(), 0]);
    }

    #[test]
    fn cross_cluster_use_gets_one_move_reused() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let x = b.iconst(1);
        let y = b.add(x, x); // will be on cluster 1: needs x moved
        let z = b.add(x, y); // also cluster 1: reuses moved x
        b.ret(Some(z));
        let mut pl = Placement::all_on_cluster0(&p);
        let f = p.entry;
        let func = p.entry_function();
        let add1 = func.blocks[func.entry].ops[1];
        let add2 = func.blocks[func.entry].ops[2];
        let ret = func.blocks[func.entry].ops[3];
        pl.set_cluster(f, add1, ClusterId::new(1));
        pl.set_cluster(f, add2, ClusterId::new(1));
        pl.set_cluster(f, ret, ClusterId::new(1));
        let (np, npl, stats) = insert_moves(&p, &pl, &machine());
        assert_eq!(stats.moves_inserted, 1, "x moved once and reused");
        mcpart_ir::verify_program(&np).unwrap();
        // The move executes on the consumer cluster and is flagged
        // intercluster.
        let homes = vreg_homes(&np, f, &npl);
        let moves: Vec<_> = np
            .entry_function()
            .ops
            .keys()
            .filter(|&o| is_intercluster_move(&np, f, o, &npl, &homes))
            .collect();
        assert_eq!(moves.len(), 1);
    }

    #[test]
    fn normalization_pins_memops_to_object_home() {
        let mut p = Program::new("t");
        let obj = p.add_object(DataObject::global("g", 16));
        let mut b = FunctionBuilder::entry(&mut p);
        let a = b.addrof(obj);
        let v = b.load(MemWidth::B4, a);
        b.ret(Some(v));
        let access = access_of(&p);
        let mut pl = Placement::all_on_cluster0(&p);
        pl.object_home[obj] = Some(ClusterId::new(1));
        let npl = normalize_placement(&p, &pl, &access, &machine(), &Profile::uniform(&p, 1));
        let func = p.entry_function();
        let load = func.blocks[func.entry].ops[1];
        assert_eq!(npl.cluster_of(p.entry, load), ClusterId::new(1));
        // The addrof is not a memory op; it stays.
        let addrof = func.blocks[func.entry].ops[0];
        assert_eq!(npl.cluster_of(p.entry, addrof), ClusterId::new(0));
    }

    #[test]
    fn normalization_unifies_multi_def_registers() {
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let x = b.iconst(0);
        let one = b.iconst(1);
        let next = b.add(x, one);
        b.mov_to(x, next); // second def of x
        b.ret(Some(x));
        let f = p.entry;
        let func = p.entry_function();
        let mov = func.blocks[func.entry].ops[3];
        let mut pl = Placement::all_on_cluster0(&p);
        pl.set_cluster(f, mov, ClusterId::new(1));
        let npl =
            normalize_placement(&p, &pl, &access_of(&p), &machine(), &Profile::uniform(&p, 1));
        let iconst0 = func.blocks[func.entry].ops[0];
        // Both defs of x end up on the same cluster.
        assert_eq!(npl.cluster_of(f, iconst0), npl.cluster_of(f, mov));
    }

    #[test]
    fn normalization_majority_follows_hot_definitions() {
        use mcpart_ir::{Cmp, Profile};
        // A loop-carried register defined once in a cold preheader (c0)
        // and once per iteration in a hot latch (c1): the group follows
        // the hot definition.
        let mut p = Program::new("t");
        let mut b = FunctionBuilder::entry(&mut p);
        let i = b.iconst(0);
        let n = b.iconst(100);
        let head = b.block("head");
        let body = b.block("body");
        let exit = b.block("exit");
        b.jump(head);
        b.switch_to(head);
        let c = b.icmp(Cmp::Lt, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        let one = b.iconst(1);
        let ni = b.add(i, one);
        b.mov_to(i, ni);
        b.jump(head);
        b.switch_to(exit);
        b.ret(Some(i));
        let f = p.entry;
        let mut pl = Placement::all_on_cluster0(&p);
        // Put the whole loop body (incl. the mov_to redefinition of i)
        // on cluster 1.
        for &op in &p.functions[f].blocks[body].ops {
            pl.set_cluster(f, op, ClusterId::new(1));
        }
        let mut profile = Profile::uniform(&p, 1);
        profile.funcs[f].block_freq[body] = 100;
        let npl = normalize_placement(&p, &pl, &access_of(&p), &machine(), &profile);
        // Both defs of i now sit on cluster 1 (the hot side), not on the
        // cold preheader's cluster 0.
        let iconst0 = p.functions[f].blocks[p.functions[f].entry].ops[0];
        let movto = p.functions[f].blocks[body].ops[2];
        assert_eq!(npl.cluster_of(f, iconst0), ClusterId::new(1));
        assert_eq!(npl.cluster_of(f, movto), ClusterId::new(1));
    }

    #[test]
    fn coherent_cache_does_not_pin_memops() {
        let mut p = Program::new("t");
        let obj = p.add_object(DataObject::global("g", 16));
        let mut b = FunctionBuilder::entry(&mut p);
        let a = b.addrof(obj);
        let v = b.load(MemWidth::B4, a);
        b.ret(Some(v));
        let access = access_of(&p);
        let mut pl = Placement::all_on_cluster0(&p);
        pl.object_home[obj] = Some(ClusterId::new(1));
        let coherent = Machine::paper_2cluster(5).with_coherent_cache(4);
        let npl =
            normalize_placement(&p, &pl, &access, &coherent, &mcpart_ir::Profile::uniform(&p, 1));
        let func = p.entry_function();
        let load = func.blocks[func.entry].ops[1];
        // The load keeps its computation cluster; only partitioned
        // memory relocates it.
        assert_eq!(npl.cluster_of(p.entry, load), ClusterId::new(0));
    }

    #[test]
    fn normalization_pins_calls_to_cluster0() {
        let mut p = Program::new("t");
        let callee = {
            let mut cb = FunctionBuilder::new_function(&mut p, "c");
            cb.ret(None);
            cb.func_id()
        };
        let mut b = FunctionBuilder::entry(&mut p);
        b.call(callee, vec![], 0);
        b.ret(None);
        let f = p.entry;
        let func = p.entry_function();
        let call = func.blocks[func.entry].ops[0];
        let mut pl = Placement::all_on_cluster0(&p);
        pl.set_cluster(f, call, ClusterId::new(1));
        let npl =
            normalize_placement(&p, &pl, &access_of(&p), &machine(), &Profile::uniform(&p, 1));
        assert_eq!(npl.cluster_of(f, call), ClusterId::new(0));
    }

    #[test]
    fn moved_program_preserves_semantic_ops() {
        // Store value computed on the wrong cluster: address and value
        // must both be moved to the memory op's cluster.
        let mut p = Program::new("t");
        let obj = p.add_object(DataObject::global("g", 8));
        let mut b = FunctionBuilder::entry(&mut p);
        let a = b.addrof(obj);
        let v = b.iconst(7);
        b.store(MemWidth::B4, a, v);
        b.ret(None);
        let f = p.entry;
        let func = p.entry_function();
        let store = func.blocks[func.entry].ops[2];
        let mut pl = Placement::all_on_cluster0(&p);
        pl.set_cluster(f, store, ClusterId::new(1));
        let (np, _npl, stats) = insert_moves(&p, &pl, &machine());
        assert_eq!(stats.moves_inserted, 2);
        mcpart_ir::verify_program(&np).unwrap();
        // Original ops plus two moves.
        assert_eq!(np.num_ops(), p.num_ops() + 2);
    }
}
