//! A small, deterministic, dependency-free PRNG for the partitioner.
//!
//! The multilevel partitioner and the RHOP refiner only need cheap,
//! reproducible pseudo-randomness: tie-breaking visit orders, seeded
//! initial-partition tries, and fuzz-test input generation. This crate
//! provides an xoshiro256** generator seeded through splitmix64,
//! exposed through the same call shapes as the subset of `rand` the
//! workspace historically used (`SmallRng::seed_from_u64`,
//! `rng.gen_range(lo..hi)`, `slice.shuffle(&mut rng)`), so call sites
//! read identically while the build stays fully offline.
//!
//! Determinism is part of the contract: for a given seed the sequence
//! is stable across platforms and releases, which keeps partition
//! results and test expectations reproducible.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

/// Core trait: a source of uniformly distributed `u64`s plus the
/// derived sampling helpers the workspace uses.
pub trait Rng {
    /// Next raw 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (half-open, `lo..hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, matching `rand`'s behaviour. All
    /// in-tree call sites guard the range first.
    fn gen_range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self.next_u64(), range)
    }

    /// A bernoulli sample: `true` with probability `p` (clamped to [0,1]).
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 random mantissa bits give a uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// Types samplable from a half-open range by [`Rng::gen_range`].
pub trait SampleRange: Copy {
    /// Maps 64 uniform bits into `range`.
    fn sample(bits: u64, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(bits: u64, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end - range.start) as u64;
                range.start + (bits % span) as $t
            }
        }
    )*};
}
impl_sample_uint!(u16, u32, u64, usize);

impl SampleRange for i64 {
    fn sample(bits: u64, range: std::ops::Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let span = range.end.wrapping_sub(range.start) as u64;
        range.start.wrapping_add((bits % span) as i64)
    }
}

/// Derives an independent child seed from a base seed and a stream
/// index, for handing each parallel task (a function, a restart, a
/// workload) its own deterministic RNG stream.
///
/// The derivation is two rounds of splitmix64 over a mix of `base` and
/// `stream`, so nearby stream indices produce statistically unrelated
/// sequences and `derive_seed(s, a) != derive_seed(s, b)` in practice
/// for `a != b`. The mapping is part of the determinism contract:
/// results produced from derived streams are identical regardless of
/// how many threads consume them.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut s = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let _ = splitmix64(&mut s);
    splitmix64(&mut s)
}

/// Seeding constructor, mirroring `rand::SeedableRng` where only
/// `seed_from_u64` was ever used in this workspace.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// xoshiro256** — fast, tiny state, excellent statistical quality for
/// heuristic tie-breaking. Not cryptographic.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SmallRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Slice helpers, mirroring the used subset of `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Uniform Fisher–Yates shuffle.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` on an empty slice.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(rng.next_u64() % self.len() as u64) as usize])
        }
    }
}

/// Module aliases so `use mcpart_rng::rngs::SmallRng;` mirrors the
/// `rand::rngs::SmallRng` path shape at call sites.
pub mod rngs {
    pub use super::SmallRng;
}

/// See [`SliceRandom`]; path-compatible with `rand::seq`.
pub mod seq {
    pub use super::SliceRandom;
}

/// The used subset of `rand::prelude`.
pub mod prelude {
    pub use super::{Rng, SeedableRng, SliceRandom, SmallRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit in 1000 draws");
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
        for _ in 0..100 {
            let v = rng.gen_range(3u16..4);
            assert_eq!(v, 3);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(99);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn derived_seeds_are_stable_and_distinct() {
        // Stable across calls (part of the determinism contract).
        assert_eq!(derive_seed(7, 3), derive_seed(7, 3));
        // Distinct across streams and bases for small indices (the ones
        // the partitioner actually uses).
        let mut seen = std::collections::HashSet::new();
        for base in 0..8u64 {
            for stream in 0..64u64 {
                assert!(seen.insert(derive_seed(base, stream)), "collision at {base}/{stream}");
            }
        }
        // A derived stream differs from the base stream.
        let mut base_rng = SmallRng::seed_from_u64(7);
        let mut child = SmallRng::seed_from_u64(derive_seed(7, 0));
        assert_ne!(base_rng.next_u64(), child.next_u64());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = SmallRng::seed_from_u64(2);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let one = [42u8];
        assert_eq!(one.choose(&mut rng), Some(&42));
    }
}
