//! Composable fault plans for the chaos harness.
//!
//! A [`FaultPlan`] is plain data: an ordered list of [`FaultEntry`]
//! values describing which of the repo's existing fault injectors a
//! chaos scenario arms — unit panics, fuel exhaustion, estimator
//! budgets, unit timeouts, checkpoint corruption and serve-spool kills.
//! The plan itself injects nothing; `mcpart-core` translates entries
//! into the corresponding pipeline/serve knobs. Keeping the type here
//! (the crate that owns supervision) lets both `core` and the CLI share
//! one grammar without a dependency cycle.
//!
//! The textual grammar is `+`-separated entries, each `kind:args`:
//!
//! ```text
//! panic:f0x2 + fuel:500 + estimator:64 + timeout:30000
//!   + truncate:125 + bitflip:40.3 + servekill:2
//! ```
//!
//! `none` (or the empty string) is the empty plan. [`FaultPlan::parse`]
//! rejects malformed plans with a column-carrying [`FaultPlanError`],
//! and `Display` renders the exact grammar back, so plans round-trip
//! through chaos repro files.

use std::fmt;

/// One armed fault injector.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FaultEntry {
    /// The named compilation unit's partitioning task panics on its
    /// first `times` attempts (`u32::MAX` = always). Unit names of the
    /// form `#k` are resolved by the harness against the scenario's
    /// function list, so plans stay valid across shrunk programs.
    UnitPanic {
        /// Unit (function) name or `#k` index reference.
        unit: String,
        /// Number of attempts that panic.
        times: u32,
    },
    /// GDP runs under a refinement fuel budget of `budget` passes-worth
    /// of gain updates; exhaustion downgrades the method ladder.
    Fuel {
        /// Fuel budget (0 exhausts immediately).
        budget: u64,
    },
    /// RHOP's schedule estimator may be consulted at most `calls` times
    /// per unit; exceeding the budget is a recoverable pipeline error.
    EstimatorBudget {
        /// Maximum estimator invocations per unit.
        calls: u64,
    },
    /// Each unit's partitioning attempt is killed by a watchdog after
    /// `ms` milliseconds.
    Timeout {
        /// Watchdog budget in milliseconds.
        ms: u64,
    },
    /// The checkpoint file is truncated to `permille`/1000 of its byte
    /// length before resume.
    CheckpointTruncate {
        /// Kept length in permille of the original (0..=1000).
        permille: u32,
    },
    /// One byte of the checkpoint, at `permille`/1000 of its length,
    /// gets bit `bit` flipped before resume.
    CheckpointBitflip {
        /// Byte position in permille of the file length (0..=1000).
        permille: u32,
        /// Bit index within the byte (0..=7).
        bit: u8,
    },
    /// The serve spool is killed (crash simulated) after `after`
    /// committed jobs, then recovered.
    ServeKill {
        /// Jobs committed before the kill.
        after: u32,
    },
}

impl fmt::Display for FaultEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultEntry::UnitPanic { unit, times } => {
                if *times == u32::MAX {
                    write!(f, "panic:{unit}")
                } else {
                    write!(f, "panic:{unit}x{times}")
                }
            }
            FaultEntry::Fuel { budget } => write!(f, "fuel:{budget}"),
            FaultEntry::EstimatorBudget { calls } => write!(f, "estimator:{calls}"),
            FaultEntry::Timeout { ms } => write!(f, "timeout:{ms}"),
            FaultEntry::CheckpointTruncate { permille } => write!(f, "truncate:{permille}"),
            FaultEntry::CheckpointBitflip { permille, bit } => {
                write!(f, "bitflip:{permille}.{bit}")
            }
            FaultEntry::ServeKill { after } => write!(f, "servekill:{after}"),
        }
    }
}

/// A malformed fault plan: the 1-based column of the offending token
/// and what is wrong with it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FaultPlanError {
    /// 1-based column within the plan string.
    pub column: usize,
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault plan column {}: {}", self.column, self.message)
    }
}

impl std::error::Error for FaultPlanError {}

/// An ordered composition of fault injectors.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FaultPlan {
    /// The armed injectors, in plan order.
    pub entries: Vec<FaultEntry>,
}

impl FaultPlan {
    /// The empty plan (injects nothing).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// First entry of the given shape, if armed.
    pub fn find<T>(&self, pick: impl FnMut(&FaultEntry) -> Option<T>) -> Option<T> {
        self.entries.iter().find_map(pick)
    }

    /// Parses the `+`-separated grammar (see the module docs); `none`
    /// and the empty string parse to the empty plan.
    pub fn parse(s: &str) -> Result<FaultPlan, FaultPlanError> {
        let trimmed = s.trim();
        if trimmed.is_empty() || trimmed == "none" {
            return Ok(FaultPlan::none());
        }
        let mut entries = Vec::new();
        let mut offset = 0usize;
        for piece in s.split('+') {
            let lead = piece.len() - piece.trim_start().len();
            let column = offset + lead + 1;
            let text = piece.trim();
            offset += piece.len() + 1;
            if text.is_empty() {
                return Err(FaultPlanError { column, message: "empty fault entry".to_string() });
            }
            entries.push(parse_entry(text, column)?);
        }
        Ok(FaultPlan { entries })
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.entries.is_empty() {
            return f.write_str("none");
        }
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                f.write_str("+")?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

fn err(column: usize, message: impl Into<String>) -> FaultPlanError {
    FaultPlanError { column, message: message.into() }
}

fn parse_entry(text: &str, column: usize) -> Result<FaultEntry, FaultPlanError> {
    let (kind, args) = text
        .split_once(':')
        .ok_or_else(|| err(column, format!("expected `kind:args`, got `{text}`")))?;
    let args_col = column + kind.len() + 1;
    match kind {
        "panic" => {
            if args.is_empty() {
                return Err(err(args_col, "panic needs a unit name"));
            }
            // `<unit>x<times>`: the times suffix is the part after the
            // *last* `x` iff it parses as an integer (unit names may
            // contain `x`).
            if let Some((unit, digits)) = args.rsplit_once('x') {
                if let Ok(times) = digits.parse::<u32>() {
                    if unit.is_empty() {
                        return Err(err(args_col, "panic needs a unit name"));
                    }
                    return Ok(FaultEntry::UnitPanic { unit: unit.to_string(), times });
                }
            }
            Ok(FaultEntry::UnitPanic { unit: args.to_string(), times: u32::MAX })
        }
        "fuel" => Ok(FaultEntry::Fuel { budget: int(args, args_col, "fuel budget")? }),
        "estimator" => {
            Ok(FaultEntry::EstimatorBudget { calls: int(args, args_col, "estimator budget")? })
        }
        "timeout" => {
            let ms = int(args, args_col, "timeout")?;
            if ms == 0 {
                return Err(err(args_col, "timeout must be at least 1 ms"));
            }
            Ok(FaultEntry::Timeout { ms })
        }
        "truncate" => {
            let permille = int(args, args_col, "truncate point")? as u32;
            if permille > 1000 {
                return Err(err(args_col, format!("truncate point {permille} exceeds 1000‰")));
            }
            Ok(FaultEntry::CheckpointTruncate { permille })
        }
        "bitflip" => {
            let (pos, bit) = args
                .split_once('.')
                .ok_or_else(|| err(args_col, "bitflip needs `<permille>.<bit>`"))?;
            let permille = int(pos, args_col, "bitflip position")? as u32;
            if permille > 1000 {
                return Err(err(args_col, format!("bitflip position {permille} exceeds 1000‰")));
            }
            let bit_col = args_col + pos.len() + 1;
            let bit = int(bit, bit_col, "bit index")?;
            if bit > 7 {
                return Err(err(bit_col, format!("bit index {bit} exceeds 7")));
            }
            Ok(FaultEntry::CheckpointBitflip { permille, bit: bit as u8 })
        }
        "servekill" => {
            Ok(FaultEntry::ServeKill { after: int(args, args_col, "kill point")? as u32 })
        }
        other => Err(err(
            column,
            format!(
                "unknown fault kind `{other}` (panic, fuel, estimator, timeout, truncate, \
                 bitflip, servekill)"
            ),
        )),
    }
}

fn int(s: &str, column: usize, what: &str) -> Result<u64, FaultPlanError> {
    s.parse::<u64>().map_err(|_| err(column, format!("bad {what} `{s}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_none_parse_to_the_empty_plan() {
        assert_eq!(FaultPlan::parse(""), Ok(FaultPlan::none()));
        assert_eq!(FaultPlan::parse("none"), Ok(FaultPlan::none()));
        assert_eq!(FaultPlan::none().to_string(), "none");
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn full_grammar_roundtrips() {
        let text =
            "panic:f0x2+fuel:500+estimator:64+timeout:30000+truncate:125+bitflip:40.3+servekill:2";
        let plan = FaultPlan::parse(text).expect("parse");
        assert_eq!(plan.entries.len(), 7);
        assert_eq!(plan.to_string(), text);
        assert_eq!(FaultPlan::parse(&plan.to_string()), Ok(plan));
    }

    #[test]
    fn panic_without_count_means_always() {
        let plan = FaultPlan::parse("panic:main").expect("parse");
        assert_eq!(
            plan.entries[0],
            FaultEntry::UnitPanic { unit: "main".to_string(), times: u32::MAX }
        );
        assert_eq!(plan.to_string(), "panic:main");
        // Unit names containing `x` survive when no integer suffix follows.
        let plan = FaultPlan::parse("panic:fxy").expect("parse");
        assert_eq!(
            plan.entries[0],
            FaultEntry::UnitPanic { unit: "fxy".to_string(), times: u32::MAX }
        );
    }

    #[test]
    fn whitespace_around_entries_is_tolerated() {
        let plan = FaultPlan::parse(" fuel:9 + timeout:50 ").expect("parse");
        assert_eq!(plan.entries.len(), 2);
        assert_eq!(plan.to_string(), "fuel:9+timeout:50");
    }

    #[test]
    fn find_picks_the_first_matching_entry() {
        let plan = FaultPlan::parse("fuel:9+fuel:10").expect("parse");
        let budget = plan.find(|e| match e {
            FaultEntry::Fuel { budget } => Some(*budget),
            _ => None,
        });
        assert_eq!(budget, Some(9));
        assert_eq!(
            plan.find(|e| match e {
                FaultEntry::ServeKill { after } => Some(*after),
                _ => None,
            }),
            None
        );
    }

    #[test]
    fn errors_carry_the_offending_column() {
        let e = FaultPlan::parse("fuel:9+warp:1").expect_err("unknown kind");
        assert_eq!(e.column, 8);
        assert!(e.to_string().contains("column 8"), "{e}");
        assert!(e.message.contains("warp"));

        let e = FaultPlan::parse("fuel:x").expect_err("bad int");
        assert_eq!(e.column, 6);

        let e = FaultPlan::parse("bitflip:40").expect_err("missing bit");
        assert!(e.message.contains("bitflip"));

        let e = FaultPlan::parse("bitflip:40.9").expect_err("bit too big");
        assert_eq!(e.column, 12);

        let e = FaultPlan::parse("truncate:2000").expect_err("permille range");
        assert!(e.message.contains("1000"));

        let e = FaultPlan::parse("fuel:1++fuel:2").expect_err("empty entry");
        assert!(e.message.contains("empty"));

        let e = FaultPlan::parse("timeout:0").expect_err("zero timeout");
        assert!(e.message.contains("at least 1"));

        let e = FaultPlan::parse("panic:").expect_err("no unit");
        assert!(e.message.contains("unit name"));
    }
}
