//! # mcpart-par — deterministic fork-join parallelism
//!
//! A tiny, dependency-free work-stealing pool over [`std::thread::scope`]
//! in the spirit of `mcpart-rng`: just enough parallelism for the
//! partitioning pipeline, with a hard determinism contract.
//!
//! ## The determinism contract
//!
//! [`parallel_map`] runs one closure per input item on up to `jobs`
//! worker threads and returns the results **in input order**. Callers
//! must make each item's computation a pure function of `(index, item)`
//! — no shared mutable state, no RNG shared across items (derive
//! per-item streams with [`mcpart_rng`]-style seed splitting instead).
//! Under that discipline the output is bit-identical for every `jobs`
//! value, including `1`, which is what lets `--jobs 8` reproduce
//! `--jobs 1` placements exactly.
//!
//! Work distribution is a shared atomic cursor: idle workers steal the
//! next unclaimed index, so a few slow items do not serialize the tail
//! the way fixed chunking would.
//!
//! ## Sizing
//!
//! `jobs == 0` means "auto": use [`available_jobs`] (the OS-reported
//! available parallelism). A process-wide default for code without a
//! config path (the experiment harness) is set with
//! [`set_default_jobs`] and read with [`default_jobs`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod fault;
pub mod supervise;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

use supervise::AbortHandle;

/// The parallelism the host offers (≥ 1). Falls back to 1 when the OS
/// cannot report it.
pub fn available_jobs() -> usize {
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Process-wide default worker count; 0 = "auto" (resolve to
/// [`available_jobs`] at use time).
static DEFAULT_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default worker count used by [`default_jobs`]
/// (`0` restores "auto"). Results never depend on this value — only
/// wall-clock time does — so a CLI flag may set it freely.
pub fn set_default_jobs(jobs: usize) {
    DEFAULT_JOBS.store(jobs, Ordering::Relaxed);
}

/// The process-wide default worker count: the last
/// [`set_default_jobs`] value, or [`available_jobs`] when unset.
pub fn default_jobs() -> usize {
    match DEFAULT_JOBS.load(Ordering::Relaxed) {
        0 => available_jobs(),
        n => n,
    }
}

/// Resolves a requested worker count: `0` means [`available_jobs`],
/// anything else is taken literally.
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        available_jobs()
    } else {
        jobs
    }
}

/// Applies `f` to every item and returns the results in input order.
///
/// With `jobs <= 1` (after resolving `0` to the host parallelism) or
/// fewer than two items this runs inline on the caller's thread —
/// the sequential path has zero threading overhead and is the
/// reference behaviour the parallel path must reproduce bit-for-bit.
///
/// # Panics
///
/// A panic in `f` propagates to the caller (workers are joined by
/// [`std::thread::scope`]), matching the sequential behaviour.
pub fn parallel_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = resolve_jobs(jobs).min(items.len());
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                // The receiver outlives the scope, so a send only fails
                // after a sibling panicked and tore the channel down;
                // stop stealing work in that case.
                if tx.send((i, f(i, item))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
    });
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in rx.iter() {
        slots[i] = Some(r);
    }
    slots.into_iter().map(|s| s.expect("every item produced a result")).collect()
}

/// A shared work budget for tasks fanned out by [`parallel_map`]: a
/// lock-free meter that many workers spend concurrently.
///
/// Whether the budget is ever exceeded depends only on the *total*
/// demand, not on thread interleaving: if the sum of all attempted
/// spends exceeds the limit, some spend crosses the boundary under
/// every schedule, and if it does not, none can. Callers therefore get
/// a deterministic ok/exhausted outcome even though the exact task that
/// observes exhaustion first may vary.
#[derive(Debug)]
pub struct SharedBudget {
    limit: Option<u64>,
    spent: std::sync::atomic::AtomicU64,
    abort: AbortHandle,
}

impl SharedBudget {
    /// A meter with an optional limit (`None` = unlimited).
    pub fn new(limit: Option<u64>) -> Self {
        SharedBudget::with_abort(limit, AbortHandle::default())
    }

    /// A meter whose spends also fail once `abort` fires — the hook the
    /// [`supervise::Watchdog`] uses to stop a runaway unit at its next
    /// fuel charge instead of killing its thread.
    pub fn with_abort(limit: Option<u64>, abort: AbortHandle) -> Self {
        SharedBudget { limit, spent: std::sync::atomic::AtomicU64::new(0), abort }
    }

    /// Spends one unit; returns `false` once the total crosses the
    /// limit or the abort handle fired (callers must stop working).
    pub fn spend(&self) -> bool {
        if self.abort.is_aborted() {
            return false;
        }
        let total = self.spent.fetch_add(1, Ordering::Relaxed) + 1;
        match self.limit {
            Some(limit) => total <= limit,
            None => true,
        }
    }

    /// Spends `n` units at once (retry backoff fuel); returns `false`
    /// once the total crosses the limit or the abort handle fired.
    pub fn charge(&self, n: u64) -> bool {
        if self.abort.is_aborted() {
            return false;
        }
        let total = self.spent.fetch_add(n, Ordering::Relaxed).saturating_add(n);
        match self.limit {
            Some(limit) => total <= limit,
            None => true,
        }
    }

    /// Whether a failed spend was caused by the watchdog rather than
    /// the meter itself.
    pub fn is_aborted(&self) -> bool {
        self.abort.is_aborted()
    }

    /// The configured limit, if any.
    pub fn limit(&self) -> Option<u64> {
        self.limit
    }

    /// Units spent so far (exact only after all workers joined).
    pub fn spent(&self) -> u64 {
        self.spent.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(4, &items, |i, &x| x * 2 + i as u64);
        let expect: Vec<u64> = (0..100).map(|x| x * 3).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn parallel_matches_sequential() {
        let items: Vec<u64> = (0..257).collect();
        let f = |i: usize, x: &u64| {
            // A per-item "stream": mix index and value, no shared state.
            let mut h = x.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i as u64;
            for _ in 0..50 {
                h = h.rotate_left(13).wrapping_mul(5).wrapping_add(1);
            }
            h
        };
        let seq = parallel_map(1, &items, f);
        for jobs in [2, 3, 8, 64] {
            assert_eq!(parallel_map(jobs, &items, f), seq, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: [u32; 0] = [];
        assert!(parallel_map(8, &empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(8, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn zero_jobs_resolves_to_auto() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(3), 3);
        let items: Vec<u32> = (0..10).collect();
        let out = parallel_map(0, &items, |_, &x| x);
        assert_eq!(out, items);
    }

    #[test]
    fn default_jobs_roundtrip() {
        let before = default_jobs();
        assert!(before >= 1);
        set_default_jobs(5);
        assert_eq!(default_jobs(), 5);
        set_default_jobs(0);
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        let items: Vec<u32> = (0..3).collect();
        assert_eq!(parallel_map(64, &items, |_, &x| x * x), vec![0, 1, 4]);
    }

    #[test]
    fn shared_budget_is_deterministic_in_outcome() {
        let b = SharedBudget::new(Some(10));
        let items: Vec<u32> = (0..4).collect();
        // 4 tasks × 3 spends = 12 > 10: some spend fails under any
        // interleaving.
        let results =
            parallel_map(4, &items, |_, _| (0..3).map(|_| b.spend()).collect::<Vec<bool>>());
        let failed = results.iter().flatten().filter(|ok| !**ok).count();
        assert!(failed >= 1, "total demand above the limit must be observed");
        assert_eq!(b.limit(), Some(10));
        assert_eq!(b.spent(), 12);
        let unlimited = SharedBudget::new(None);
        assert!((0..1000).all(|_| unlimited.spend()));
    }
}
