//! Supervision primitives for crash-only work units.
//!
//! A *unit of work* (one function's RHOP partition, one workload×method
//! pipeline run) is supervised so that its death does not kill the run:
//!
//! * [`catch_unit`] — panic isolation: runs a closure under
//!   [`std::panic::catch_unwind`] and converts an unwind into a typed
//!   `Err(String)` payload. The default panic hook is suppressed for
//!   supervised frames so injected faults do not spray backtraces.
//! * [`supervise_unit`] — quarantine-and-retry: a panicking unit is
//!   retried up to [`RetryPolicy::retries`] times with *deterministic,
//!   fuel-denominated* backoff (no wall-clock in the retry decision,
//!   so `--jobs N` stays bit-identical); units that never complete are
//!   collected into a [`QuarantineReport`] instead of failing the run.
//! * [`Watchdog`] — a monitor thread enforcing a per-unit wall-clock
//!   ceiling by flipping an [`AbortHandle`] that the unit's
//!   [`SharedBudget`](crate::SharedBudget) checks on every fuel charge,
//!   so a runaway unit fails cleanly at its next spend.
//!
//! ## The backoff determinism rule
//!
//! Retry decisions must be pure functions of `(unit, attempt)` — never
//! of wall-clock time or thread interleaving. Backoff is therefore
//! *fuel-denominated*: before retry `k` the supervisor charges
//! `backoff_fuel << k` units against the caller-supplied meter, and
//! gives up (quarantines) when the meter declines. Two runs with the
//! same seed and budgets make identical retry/quarantine decisions at
//! every `--jobs` count. Wall-clock enters only through the watchdog,
//! which is an explicitly non-deterministic opt-in (`--unit-timeout`).

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, Once};
use std::thread;
use std::time::{Duration, Instant};

/// Renders a panic payload into a human-readable one-line reason.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

thread_local! {
    /// Depth of [`catch_unit`] frames on this thread; non-zero means a
    /// panic here is supervised and the hook should stay quiet.
    static SUPERVISED_DEPTH: Cell<u32> = const { Cell::new(0) };
}

static QUIET_HOOK: Once = Once::new();

/// Installs (once) a panic hook that stays silent for supervised
/// frames and defers to the previous hook everywhere else.
fn install_quiet_hook() {
    QUIET_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if SUPERVISED_DEPTH.with(|d| d.get()) == 0 {
                prev(info);
            }
        }));
    });
}

/// Runs `f` with panic isolation: a panic becomes `Err(reason)` instead
/// of unwinding into (and tearing down) the worker pool.
///
/// The closure is wrapped in [`AssertUnwindSafe`]; callers must ensure
/// a panicking unit leaves no half-written *shared* state behind — the
/// pipeline guarantees this by keeping each unit's outputs (placement,
/// obs event buffer) private until the unit completes.
pub fn catch_unit<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    install_quiet_hook();
    SUPERVISED_DEPTH.with(|d| d.set(d.get() + 1));
    let result = catch_unwind(AssertUnwindSafe(f));
    SUPERVISED_DEPTH.with(|d| d.set(d.get() - 1));
    result.map_err(|payload| panic_message(payload.as_ref()))
}

/// How often and how expensively a failed unit is retried.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first (0 = fail fast).
    pub retries: u32,
    /// Base fuel charged before the first retry; doubles per retry
    /// (`backoff_fuel << attempt`), mirroring exponential backoff
    /// without consulting a clock.
    pub backoff_fuel: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { retries: 2, backoff_fuel: 16 }
    }
}

impl RetryPolicy {
    /// A policy with `retries` extra attempts and the default base fuel.
    pub fn new(retries: u32) -> Self {
        RetryPolicy { retries, ..RetryPolicy::default() }
    }

    /// Fuel charged before retrying after failed attempt `attempt`
    /// (0-based): `backoff_fuel << attempt`, saturating.
    pub fn backoff(&self, attempt: u32) -> u64 {
        if attempt >= 64 {
            return if self.backoff_fuel == 0 { 0 } else { u64::MAX };
        }
        self.backoff_fuel.saturating_mul(1u64 << attempt)
    }
}

/// One unit that exhausted its retries without completing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuarantinedUnit {
    /// Stable unit name (e.g. the function name or `workload/method`).
    pub unit: String,
    /// Attempts made, including the first.
    pub attempts: u32,
    /// The last panic payload (or abort reason) observed.
    pub reason: String,
}

/// Per-run collection of quarantined units, reported instead of
/// failing the workload.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QuarantineReport {
    /// The quarantined units, in input (unit) order.
    pub units: Vec<QuarantinedUnit>,
}

impl QuarantineReport {
    /// True when nothing was quarantined.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Number of quarantined units.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// Appends another report's units (input order preserved by the
    /// caller reducing in input order).
    pub fn merge(&mut self, other: &QuarantineReport) {
        self.units.extend(other.units.iter().cloned());
    }

    /// The unit names, for compact reporting.
    pub fn names(&self) -> Vec<&str> {
        self.units.iter().map(|u| u.unit.as_str()).collect()
    }
}

/// The outcome of supervising one unit of work.
#[derive(Debug)]
pub enum UnitOutcome<R, E> {
    /// The unit completed, possibly after retries; `backoff_spent` is
    /// the total fuel charged for those retries.
    Completed {
        /// The unit body's result.
        value: R,
        /// Panicking attempts that preceded success.
        retries: u32,
        /// Total backoff fuel charged.
        backoff_spent: u64,
    },
    /// The unit returned a typed error. Typed errors are deterministic
    /// (budget exhaustion, validation failure) so they are *not*
    /// retried here — they feed the caller's degradation ladder.
    Failed(E),
    /// The unit panicked on every attempt (or backoff fuel ran out).
    Quarantined(QuarantinedUnit),
}

/// Supervises one unit: panic isolation plus quarantine-and-retry.
///
/// `body(attempt)` runs the unit (`attempt` is 0-based so fault
/// injection can panic on early attempts only); `charge_backoff(fuel)`
/// spends retry fuel against the caller's meter and returns `false`
/// when the meter declines (the unit is then quarantined rather than
/// retried forever).
pub fn supervise_unit<R, E>(
    unit: &str,
    policy: RetryPolicy,
    mut charge_backoff: impl FnMut(u64) -> bool,
    mut body: impl FnMut(u32) -> Result<R, E>,
) -> UnitOutcome<R, E> {
    let mut backoff_spent = 0u64;
    let mut attempt = 0u32;
    loop {
        match catch_unit(|| body(attempt)) {
            Ok(Ok(value)) => {
                return UnitOutcome::Completed { value, retries: attempt, backoff_spent }
            }
            Ok(Err(e)) => return UnitOutcome::Failed(e),
            Err(reason) => {
                if attempt >= policy.retries {
                    return UnitOutcome::Quarantined(QuarantinedUnit {
                        unit: unit.to_string(),
                        attempts: attempt + 1,
                        reason,
                    });
                }
                let fuel = policy.backoff(attempt);
                backoff_spent = backoff_spent.saturating_add(fuel);
                if !charge_backoff(fuel) {
                    return UnitOutcome::Quarantined(QuarantinedUnit {
                        unit: unit.to_string(),
                        attempts: attempt + 1,
                        reason: format!("{reason} (backoff fuel exhausted)"),
                    });
                }
                attempt += 1;
            }
        }
    }
}

/// A shareable abort flag. The default handle is *disarmed*: it can
/// never fire, costs one branch to check, and lets configs embed a
/// handle unconditionally.
#[derive(Clone, Debug, Default)]
pub struct AbortHandle {
    flag: Option<Arc<AtomicBool>>,
}

impl AbortHandle {
    /// A live handle that [`Watchdog`] (or anyone) can fire.
    pub fn armed() -> Self {
        AbortHandle { flag: Some(Arc::new(AtomicBool::new(false))) }
    }

    /// Fires the abort; disarmed handles ignore this.
    pub fn abort(&self) {
        if let Some(flag) = &self.flag {
            flag.store(true, Ordering::Relaxed);
        }
    }

    /// Whether the abort fired.
    pub fn is_aborted(&self) -> bool {
        self.flag.as_ref().is_some_and(|f| f.load(Ordering::Relaxed))
    }
}

struct WatchState {
    done: Mutex<bool>,
    cv: Condvar,
}

/// Lock a mutex, tolerating poisoning: a supervised panic elsewhere
/// must not cascade into the watchdog.
fn lock_done(state: &WatchState) -> std::sync::MutexGuard<'_, bool> {
    match state.done.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A monitor thread enforcing a per-unit wall-clock ceiling.
///
/// While armed, the watchdog waits on a condvar; if the ceiling passes
/// before the guard is dropped it fires the [`AbortHandle`], which
/// makes the unit's next [`SharedBudget::spend`](crate::SharedBudget)
/// return `false` — the unit then fails through its normal typed error
/// path (no thread is killed). Dropping the watchdog disarms it.
pub struct Watchdog {
    state: Arc<WatchState>,
    thread: Option<thread::JoinHandle<()>>,
}

impl Watchdog {
    /// Arms a watchdog that fires `handle` once `ceiling` elapses.
    pub fn arm(ceiling: Duration, handle: AbortHandle) -> Watchdog {
        let state = Arc::new(WatchState { done: Mutex::new(false), cv: Condvar::new() });
        let thread_state = Arc::clone(&state);
        let thread = thread::spawn(move || {
            let start = Instant::now();
            let mut done = lock_done(&thread_state);
            while !*done {
                let elapsed = start.elapsed();
                if elapsed >= ceiling {
                    handle.abort();
                    return;
                }
                let (guard, _timeout) = match thread_state.cv.wait_timeout(done, ceiling - elapsed)
                {
                    Ok(pair) => pair,
                    Err(poisoned) => poisoned.into_inner(),
                };
                done = guard;
            }
        });
        Watchdog { state, thread: Some(thread) }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        *lock_done(&self.state) = true;
        self.state.cv.notify_all();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SharedBudget;

    #[test]
    fn catch_unit_converts_panics() {
        assert_eq!(catch_unit(|| 42), Ok(42));
        let err = catch_unit(|| -> u32 { panic!("boom {}", 7) }).unwrap_err();
        assert_eq!(err, "boom 7");
        let err = catch_unit(|| -> u32 { panic!("static boom") }).unwrap_err();
        assert_eq!(err, "static boom");
    }

    #[test]
    fn supervise_retries_then_succeeds() {
        let mut charged = Vec::new();
        let outcome = supervise_unit(
            "u",
            RetryPolicy { retries: 3, backoff_fuel: 4 },
            |fuel| {
                charged.push(fuel);
                true
            },
            |attempt| -> Result<u32, ()> {
                if attempt < 2 {
                    panic!("flaky");
                }
                Ok(attempt)
            },
        );
        match outcome {
            UnitOutcome::Completed { value, retries, backoff_spent } => {
                assert_eq!(value, 2);
                assert_eq!(retries, 2);
                assert_eq!(backoff_spent, 4 + 8);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(charged, vec![4, 8]);
    }

    #[test]
    fn supervise_quarantines_after_exhausted_retries() {
        let outcome = supervise_unit(
            "always-bad",
            RetryPolicy { retries: 2, backoff_fuel: 1 },
            |_| true,
            |_| -> Result<(), ()> { panic!("hopeless") },
        );
        match outcome {
            UnitOutcome::Quarantined(q) => {
                assert_eq!(q.unit, "always-bad");
                assert_eq!(q.attempts, 3);
                assert_eq!(q.reason, "hopeless");
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn supervise_does_not_retry_typed_errors() {
        let mut calls = 0;
        let outcome = supervise_unit(
            "typed",
            RetryPolicy { retries: 5, backoff_fuel: 1 },
            |_| true,
            |_| -> Result<(), &'static str> {
                calls += 1;
                Err("deterministic failure")
            },
        );
        assert!(matches!(outcome, UnitOutcome::Failed("deterministic failure")));
        assert_eq!(calls, 1);
    }

    #[test]
    fn backoff_fuel_exhaustion_quarantines() {
        let outcome = supervise_unit(
            "starved",
            RetryPolicy { retries: 10, backoff_fuel: 100 },
            |_| false, // meter declines immediately
            |_| -> Result<(), ()> { panic!("boom") },
        );
        match outcome {
            UnitOutcome::Quarantined(q) => {
                assert_eq!(q.attempts, 1);
                assert!(q.reason.contains("backoff fuel exhausted"), "{}", q.reason);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn watchdog_aborts_budget_spends() {
        let handle = AbortHandle::armed();
        let budget = SharedBudget::with_abort(None, handle.clone());
        assert!(budget.spend());
        {
            let _dog = Watchdog::arm(Duration::from_millis(1), handle.clone());
            // Wait for the dog to bite.
            let start = Instant::now();
            while !handle.is_aborted() && start.elapsed() < Duration::from_secs(5) {
                thread::yield_now();
            }
        }
        assert!(handle.is_aborted(), "watchdog never fired");
        assert!(!budget.spend(), "spend must fail after abort");
        assert!(budget.is_aborted());
    }

    #[test]
    fn disarmed_watchdog_never_fires() {
        let handle = AbortHandle::armed();
        {
            let _dog = Watchdog::arm(Duration::from_secs(3600), handle.clone());
        } // dropped immediately: disarmed long before the ceiling
        assert!(!handle.is_aborted());
        let disabled = AbortHandle::default();
        disabled.abort();
        assert!(!disabled.is_aborted(), "default handle can never fire");
    }

    #[test]
    fn backoff_saturates() {
        let p = RetryPolicy { retries: 0, backoff_fuel: u64::MAX };
        assert_eq!(p.backoff(1), u64::MAX);
        assert_eq!(p.backoff(200), u64::MAX);
    }
}
